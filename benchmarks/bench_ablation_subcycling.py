"""Ablation — the SKS sub-cycling count (Eq. 6).

"The number of sub-cycles can vary, depending on the force and mass
resolution of the simulation, from nc = 5-10."  Sub-cycling refreshes the
rapidly varying short-range force while freezing the expensive long-range
solve; this bench sweeps nc and measures (a) convergence of the final
particle state toward a finely sub-cycled reference, and (b) the cost
bookkeeping: long-range solves stay constant while short-range work
scales linearly with nc.
"""

import numpy as np
import pytest

from repro import HACCSimulation, SimulationConfig

from conftest import print_table


def _run(nc: int) -> HACCSimulation:
    cfg = SimulationConfig(
        box_size=64.0,
        n_per_dim=16,
        z_initial=25.0,
        z_final=5.0,
        n_steps=5,
        n_subcycles=nc,
        backend="treepm",
        step_spacing="loga",
        seed=77,
    )
    sim = HACCSimulation(cfg)
    sim.run()
    return sim


class TestSubcyclingAblation:
    def test_convergence_with_nc(self, benchmark):
        sims = benchmark.pedantic(
            lambda: {nc: _run(nc) for nc in (1, 2, 4, 8)},
            rounds=1,
            iterations=1,
        )
        ref = sims[8].particles.positions
        rows = []
        errors = {}
        for nc in (1, 2, 4):
            d = sims[nc].particles.positions - ref
            d -= 64.0 * np.round(d / 64.0)
            rms = float(np.sqrt((d**2).sum(axis=1).mean()))
            errors[nc] = rms
            rows.append([nc, f"{rms:.2e}"])
        print_table(
            "sub-cycling convergence (RMS displacement vs nc=8) [Mpc/h]",
            ["nc", "rms error"],
            rows,
        )
        # more sub-cycles converge toward the reference
        assert errors[1] > errors[2] > errors[4]
        # at nc=4 the state is already tight against nc=8
        assert errors[4] < 0.05 * 64.0 / 16  # 5% of a grid cell

    def test_cost_bookkeeping(self, benchmark):
        """nc multiplies short-range kicks, not Poisson solves — the
        economics that motivate Eq. (6)."""
        sims = benchmark.pedantic(
            lambda: {nc: _run(nc) for nc in (1, 4)},
            rounds=1,
            iterations=1,
        )
        s1, s4 = sims[1].stepper, sims[4].stepper
        print(f"\nnc=1: {s1.n_long_range_evals} PM solves, "
              f"{s1.n_short_range_evals} SR kicks; nc=4: "
              f"{s4.n_long_range_evals} PM solves, "
              f"{s4.n_short_range_evals} SR kicks")
        assert s1.n_long_range_evals == s4.n_long_range_evals
        assert s4.n_short_range_evals == 4 * s1.n_short_range_evals
