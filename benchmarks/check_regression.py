#!/usr/bin/env python
"""Performance-regression gate over ``BENCH_*.json`` records.

Every benchmark run leaves machine-readable ``BENCH_<name>.json`` records
under ``benchmarks/records/`` (see ``benchmarks/conftest.py``).  This
script compares a fresh set of records against a stored baseline and
**fails (exit 1) when a gated benchmark slowed down by more than the
threshold** — by default the Fig. 5 short-range kernel benchmarks
(``--filter fig5``) at 20% (``--threshold 0.2``).

Typical lane (see README "Testing"):

    PYTHONPATH=src python -m pytest tests -q -m "not slow"
    (cd benchmarks && PYTHONPATH=../src python -m pytest bench_fig5_kernel_threading.py -q)
    python benchmarks/check_regression.py

First run (or after an intentional perf change)::

    python benchmarks/check_regression.py --update-baseline

Non-gated records are reported informationally; records without a
baseline counterpart are noted but never fail the gate.

Instead of a baseline *directory*, the baseline can come straight out of
the run ledger (``python -m repro runs``): ``--baseline-ledger DIR``
selects a ledger root and ``--baseline-run TOKEN`` a run in it (run id,
unique prefix, ``latest``, ``latest~N``; default ``latest``), and the
BENCH records stored with that run become the baseline set.  The gate
then compares today's numbers against a *specific, provenance-stamped*
run (config hash, seed, git revision) rather than whatever was last
copied into ``records/baseline/``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from pathlib import Path

HERE = Path(__file__).parent
DEFAULT_RECORDS = HERE / "records"
DEFAULT_BASELINE = HERE / "records" / "baseline"
DEFAULT_SPEEDUP_RECORD = HERE.parent / "BENCH_executor.json"
DEFAULT_KERNEL_RECORD = HERE.parent / "BENCH_kernels.json"
DEFAULT_ROOFLINE_RECORD = HERE.parent / "BENCH_roofline.json"


def load_records(directory: Path) -> dict[str, dict]:
    """Map record name -> parsed record for every BENCH_*.json in a dir."""
    out: dict[str, dict] = {}
    if not directory.is_dir():
        return out
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            rec = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: unreadable record {path}: {exc}")
            continue
        name = rec.get("name", path.stem)
        out[name] = rec
    return out


def load_ledger_baseline(
    ledger_root: Path, token: str
) -> tuple[dict[str, dict], str]:
    """Baseline records from a ledgered run: ``({name: rec}, run_id)``.

    Imports :mod:`repro` lazily (adding ``src/`` to ``sys.path`` when the
    script runs without ``PYTHONPATH``) so the directory-baseline path
    keeps working even if the package is broken.
    """
    src = HERE.parent / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.instrument.store import RunLedger

    ledger = RunLedger(ledger_root)
    entry = ledger.get(token)
    return ledger.load_bench(entry), entry.run_id


def duration_of(rec: dict) -> float | None:
    payload = rec.get("payload", {})
    d = payload.get("duration_s")
    return float(d) if isinstance(d, (int, float)) else None


def is_gated(rec: dict, name: str, pattern: str) -> bool:
    nodeid = rec.get("payload", {}).get("nodeid", "")
    return pattern in name or pattern in nodeid


def health_verdict_of(rec: dict) -> str | None:
    """The health verdict a telemetry-enabled bench attached, if any."""
    tel = rec.get("payload", {}).get("telemetry")
    if not isinstance(tel, dict):
        return None
    verdict = tel.get("health_verdict")
    return str(verdict) if verdict is not None else None


def health_events_of(rec: dict) -> list[dict]:
    """Discrete health events ({check, severity, step}) of a record."""
    tel = rec.get("payload", {}).get("telemetry")
    if isinstance(tel, dict) and isinstance(tel.get("health_events"), list):
        return [e for e in tel["health_events"] if isinstance(e, dict)]
    return []


def faults_of(rec: dict) -> tuple[int, int] | None:
    """(faults_injected, faults_recovered) of a chaos record, if any."""
    faults = rec.get("payload", {}).get("faults")
    if not isinstance(faults, dict):
        return None
    try:
        return (
            int(faults.get("faults_injected", 0)),
            int(faults.get("faults_recovered", 0)),
        )
    except (TypeError, ValueError):
        return None


def speedup_of(rec: dict) -> dict | None:
    """The executor-scaling speedup block of a record, if present."""
    sp = rec.get("payload", {}).get("speedup")
    if not isinstance(sp, dict):
        return None
    try:
        return {
            "workers": int(sp.get("workers", 0)),
            "backend": str(sp.get("backend", "?")),
            "value": float(sp["value"]),
        }
    except (KeyError, TypeError, ValueError):
        return None


def check_speedup(
    fresh: dict[str, dict], record_path: Path, min_speedup: float
) -> tuple[list[str], list[tuple[str, ...]]]:
    """Gate the executor-scaling speedups; (failures, table_rows).

    The record is absolute — a speedup is a ratio measured within one
    run — so no baseline is involved.  Two layers:

    * the legacy ``payload.speedup`` block (thread @ 4 workers) gated
      against ``min_speedup``;
    * every entry of ``payload.speedup_gates`` (added with the
      overlapped-execution bench: the 8-process-worker >= 3.0x scale-out
      gate and the compute-only dispatch-overhead gate) against its own
      ``min_required`` — **self-skipping** when this host has fewer than
      the gate's ``min_cores`` cores, so a laptop or single-core CI
      runner reports the gate as skipped instead of lying either way.
    """
    rec = fresh.get("executor")
    if rec is None and record_path.is_file():
        try:
            rec = json.loads(record_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            return ([f"executor: unreadable record {record_path}: {exc}"],
                    [])
    if rec is None:
        return (
            [
                f"executor: no speedup record (looked in the records dir "
                f"and at {record_path}); run bench_executor_scaling.py"
            ],
            [],
        )
    failures: list[str] = []
    rows: list[tuple[str, ...]] = []
    sp = speedup_of(rec)
    if sp is None:
        return (["executor: record has no payload.speedup block"], [])
    status = (
        "ok"
        if sp["value"] >= min_speedup
        else f"BELOW {min_speedup:.2f}x"
    )
    rows.append((
        "executor",
        "speedup",
        f"{sp['value']:.2f}x",
        f">={min_speedup:.2f}x",
        f"{sp['backend']}@{sp['workers']}w {status}",
    ))
    if sp["value"] < min_speedup:
        failures.append(
            f"executor: {sp['backend']} backend at {sp['workers']} "
            f"workers reached {sp['value']:.2f}x < {min_speedup:.2f}x"
        )

    gates = rec.get("payload", {}).get("speedup_gates")
    if isinstance(gates, list):
        host_cores = os.cpu_count() or 1
        for gate in gates:
            if not isinstance(gate, dict):
                continue
            try:
                curve = str(gate.get("curve", "emulated"))
                workers = int(gate["workers"])
                backend = str(gate["backend"])
                value = float(gate["value"])
                min_required = float(gate["min_required"])
                min_cores = int(gate.get("min_cores", 1))
            except (KeyError, TypeError, ValueError):
                failures.append(
                    f"executor: malformed speedup_gates entry {gate!r}"
                )
                continue
            who = f"{backend}@{workers}w {curve}"
            if host_cores < min_cores:
                rows.append((
                    "executor", "speedup", f"{value:.2f}x",
                    f">={min_required:.2f}x",
                    f"{who} skipped ({host_cores} < {min_cores} cores)",
                ))
                continue
            ok = value >= min_required
            rows.append((
                "executor", "speedup", f"{value:.2f}x",
                f">={min_required:.2f}x",
                f"{who} {'ok' if ok else 'BELOW'}",
            ))
            if not ok:
                failures.append(
                    f"executor: {curve} curve, {backend} backend at "
                    f"{workers} workers reached {value:.2f}x < "
                    f"{min_required:.2f}x"
                )
    return (failures, rows)


def check_kernel_speedup(
    fresh: dict[str, dict],
    record_path: Path,
    min_kernel: float,
    min_f32: float,
) -> tuple[list[str], list[tuple[str, ...]]]:
    """Gate the kernel-backend sweep record; (failures, table_rows).

    Like the executor gate, the record is absolute — both speedups are
    ratios measured within one sweep — so no baseline is involved.  Two
    clauses:

    * ``numba_f32_vs_numpy_f64`` (compiled mixed-precision kernel vs the
      interpreted reference) must reach ``min_kernel``; **self-skips**
      when the record says numba was not importable where the bench ran.
    * ``f32_vs_f64_numpy`` (precision alone, same numpy path) must reach
      ``min_f32``; always gated — it needs no compiler.
    """
    rec = fresh.get("kernels")
    if rec is None and record_path.is_file():
        try:
            rec = json.loads(record_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            return ([f"kernels: unreadable record {record_path}: {exc}"], [])
    if rec is None:
        return (
            [
                f"kernels: no sweep record (looked in the records dir and "
                f"at {record_path}); run bench_fig5_kernel_threading.py"
            ],
            [],
        )
    payload = rec.get("payload", {})
    speedups = payload.get("speedups")
    if not isinstance(speedups, dict):
        return (["kernels: record has no payload.speedups block"], [])

    failures: list[str] = []
    rows: list[tuple[str, ...]] = []

    # provenance: a record measured where numba availability differed
    # from this host is apples-to-oranges — say so loudly instead of
    # silently comparing (the gate clauses below still self-skip on the
    # *record's* flag, which is the honest one for its own ratios)
    import importlib.util

    host_numba = importlib.util.find_spec("numba") is not None
    rec_numba = bool(payload.get("numba_available", False))
    if rec_numba != host_numba:
        print(
            f"PROVENANCE MISMATCH [SKIPPED/UNAVAILABLE]: BENCH_kernels "
            f"was measured with numba_available={rec_numba} but numba "
            f"is {'importable' if host_numba else 'NOT importable'} on "
            f"this host — its backend timings are not comparable here."
        )
        rows.append(
            ("kernels", "provenance", "-", "-",
             f"numba record={rec_numba} host={host_numba} MISMATCH")
        )

    f32 = speedups.get("f32_vs_f64_numpy")
    if not isinstance(f32, (int, float)):
        failures.append("kernels: record lacks the f32_vs_f64_numpy speedup")
    else:
        ok = f32 >= min_f32
        rows.append(
            ("kernels", "speedup", f"{f32:.2f}x", f">={min_f32:.2f}x",
             f"f32/f64 numpy {'ok' if ok else 'BELOW'}")
        )
        if not ok:
            failures.append(
                f"kernels: f32 vs f64 on the numpy path reached "
                f"{f32:.2f}x < {min_f32:.2f}x"
            )

    if not payload.get("numba_available", False):
        rows.append(
            ("kernels", "speedup", "-", f">={min_kernel:.2f}x",
             "numba n/a (skipped)")
        )
        return failures, rows
    nb = speedups.get("numba_f32_vs_numpy_f64")
    if not isinstance(nb, (int, float)):
        failures.append(
            "kernels: numba available but record lacks the "
            "numba_f32_vs_numpy_f64 speedup"
        )
        return failures, rows
    ok = nb >= min_kernel
    rows.append(
        ("kernels", "speedup", f"{nb:.2f}x", f">={min_kernel:.2f}x",
         f"numba@f32 vs numpy@f64 {'ok' if ok else 'BELOW'}")
    )
    if not ok:
        failures.append(
            f"kernels: compiled f32 kernel reached {nb:.2f}x < "
            f"{min_kernel:.2f}x over the interpreted f64 reference"
        )
    return failures, rows


#: phases whose counters the roofline gate requires
ROOFLINE_REQUIRED_PHASES = ("shortrange", "cic", "fft")

#: sanity ceiling on measured fraction of calibrated peak — analytic
#: flops over measured seconds can exceed 1.0 only through calibration
#: noise, so anything beyond 25% over peak means broken accounting
ROOFLINE_MAX_FRAC_PEAK = 1.25


def check_roofline(
    fresh: dict[str, dict], record_path: Path
) -> tuple[list[str], list[tuple[str, ...]]]:
    """Gate the measured-roofline record; (failures, table_rows).

    The record (``BENCH_roofline.json`` from
    ``bench_roofline_measured.py``) carries per-phase achieved work for
    an instrumented demo run at both precisions plus the host
    calibration.  Absolute gates — no baseline involved:

    * the shortrange/cic/fft phases must be present with nonzero
      counted flops at both precisions (the counters are wired);
    * each phase's measured fraction of calibrated peak must be sane
      (``0 < frac <= 1.25`` — above-peak means broken accounting);
    * the pair phase's arithmetic intensity at f32 must be >= f64
      (same flops, half the streamed bytes — the mixed-precision
      bandwidth argument the counters must reproduce).
    """
    rec = fresh.get("roofline")
    if rec is None and record_path.is_file():
        try:
            rec = json.loads(record_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            return ([f"roofline: unreadable record {record_path}: {exc}"],
                    [])
    if rec is None:
        return (
            [
                f"roofline: no record (looked in the records dir and at "
                f"{record_path}); run bench_roofline_measured.py"
            ],
            [],
        )
    payload = rec.get("payload", {})
    runs = payload.get("runs")
    if not isinstance(runs, dict) or not runs:
        return (["roofline: record has no payload.runs block"], [])

    failures: list[str] = []
    rows: list[tuple[str, ...]] = []
    for precision in sorted(runs):
        phases = runs[precision].get("phases", {})
        for name in ROOFLINE_REQUIRED_PHASES:
            ph = phases.get(name)
            if not isinstance(ph, dict) or float(ph.get("flops", 0)) <= 0:
                failures.append(
                    f"roofline: {precision} run counted no flops for "
                    f"the {name!r} phase (counter wiring broken?)"
                )
                rows.append(
                    ("roofline", f"{precision}/{name}", "-", ">0 flops",
                     "MISSING")
                )
                continue
            frac = float(ph.get("frac_peak", -1.0))
            ok = 0.0 < frac <= ROOFLINE_MAX_FRAC_PEAK
            rows.append(
                ("roofline", f"{precision}/{name}",
                 f"{100 * frac:.2f}%",
                 f"0-{100 * ROOFLINE_MAX_FRAC_PEAK:.0f}%",
                 "ok" if ok else "INSANE %peak")
            )
            if not ok:
                failures.append(
                    f"roofline: {precision}/{name} fraction of peak "
                    f"{frac:.4f} outside (0, {ROOFLINE_MAX_FRAC_PEAK}]"
                )

    pair_ai = payload.get("pair_ai", {})
    ai32 = pair_ai.get("f32")
    ai64 = pair_ai.get("f64")
    if not isinstance(ai32, (int, float)) or not isinstance(
        ai64, (int, float)
    ):
        failures.append("roofline: record lacks the pair_ai f32/f64 pair")
    else:
        ok = ai32 >= ai64
        rows.append(
            ("roofline", "pair AI", f"f32 {ai32:.3f}", f">= f64 {ai64:.3f}",
             "ok" if ok else "f32 AI BELOW f64")
        )
        if not ok:
            failures.append(
                f"roofline: pair-phase arithmetic intensity at f32 "
                f"({ai32:.3f}) fell below f64 ({ai64:.3f}) — the "
                f"byte accounting lost its precision dependence"
            )
    return failures, rows


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--records",
        type=Path,
        default=DEFAULT_RECORDS,
        help="directory with the fresh BENCH_*.json records",
    )
    ap.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="directory with the baseline records to compare against",
    )
    ap.add_argument(
        "--baseline-ledger",
        type=Path,
        metavar="DIR",
        help="take the baseline from a run ledger at DIR instead of "
             "--baseline (see 'python -m repro runs')",
    )
    ap.add_argument(
        "--baseline-run",
        default="latest",
        metavar="TOKEN",
        help="with --baseline-ledger: the baseline run (id, unique "
             "prefix, 'latest', 'latest~N'; default latest)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="fractional slowdown that fails the gate (default 0.20)",
    )
    ap.add_argument(
        "--filter",
        dest="pattern",
        default="fig5",
        help="substring of name/nodeid selecting the gated benchmarks",
    )
    ap.add_argument(
        "--update-baseline",
        action="store_true",
        help="copy the fresh records over the baseline and exit",
    )
    ap.add_argument(
        "--check-speedup",
        action="store_true",
        help="also gate the executor-scaling record (repo-root "
             "BENCH_executor.json or the records dir): fail when the "
             "short-range phase speedup at 4 workers is below "
             "--min-speedup",
    )
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=1.7,
        help="minimum accepted executor speedup (default 1.7)",
    )
    ap.add_argument(
        "--speedup-record",
        type=Path,
        default=DEFAULT_SPEEDUP_RECORD,
        help="fallback location of the executor-scaling record",
    )
    ap.add_argument(
        "--check-kernel-speedup",
        action="store_true",
        help="also gate the kernel-backend sweep record (repo-root "
             "BENCH_kernels.json or the records dir): fail when the "
             "compiled f32 kernel is below --min-kernel-speedup over the "
             "interpreted f64 reference (skipped where numba is "
             "unavailable) or f32 is below --min-f32-speedup over f64 on "
             "the numpy path",
    )
    ap.add_argument(
        "--min-kernel-speedup",
        type=float,
        default=5.0,
        help="minimum accepted numba@f32 vs numpy@f64 speedup "
             "(default 5.0)",
    )
    ap.add_argument(
        "--min-f32-speedup",
        type=float,
        default=1.5,
        help="minimum accepted f32 vs f64 speedup on the numpy path "
             "(default 1.5)",
    )
    ap.add_argument(
        "--kernel-record",
        type=Path,
        default=DEFAULT_KERNEL_RECORD,
        help="fallback location of the kernel-sweep record",
    )
    ap.add_argument(
        "--check-roofline",
        action="store_true",
        help="also gate the measured-roofline record (repo-root "
             "BENCH_roofline.json or the records dir): fail when the "
             "shortrange/cic/fft phases counted no flops, any measured "
             "fraction of calibrated peak is outside (0, 1.25], or the "
             "pair phase's f32 arithmetic intensity drops below f64",
    )
    ap.add_argument(
        "--roofline-record",
        type=Path,
        default=DEFAULT_ROOFLINE_RECORD,
        help="fallback location of the measured-roofline record",
    )
    ap.add_argument(
        "--check-health",
        action="store_true",
        help="also fail on records whose attached physics health "
             "verdict is CRIT (benches run with telemetry enabled); "
             "an unrecovered rank_died event exits 2",
    )
    args = ap.parse_args(argv)

    # the default baseline is a subdirectory of records/; the non-recursive
    # glob in load_records keeps the two sets disjoint
    fresh = load_records(args.records)

    if args.update_baseline:
        args.baseline.mkdir(parents=True, exist_ok=True)
        n = 0
        for path in sorted(args.records.glob("BENCH_*.json")):
            shutil.copy2(path, args.baseline / path.name)
            n += 1
        print(f"baseline updated: {n} records -> {args.baseline}")
        return 0

    if args.baseline_ledger is not None:
        try:
            baseline, baseline_id = load_ledger_baseline(
                args.baseline_ledger, args.baseline_run
            )
        except KeyError as exc:
            print(f"baseline ledger: {exc}")
            return 1
        baseline_desc = (
            f"ledger {args.baseline_ledger} run {baseline_id}"
        )
    else:
        baseline = load_records(args.baseline)
        baseline_desc = str(args.baseline)
    if not fresh:
        print(f"no records found in {args.records}; run the benchmarks first")
        return 1
    if not baseline:
        print(
            f"no baseline in {baseline_desc}; create one with "
            "--update-baseline (or ledger a benchmarked run)"
        )
        return 1
    print(f"baseline: {baseline_desc}")

    failures: list[str] = []
    rank_deaths: list[str] = []
    rows: list[tuple[str, str, str, str, str]] = []
    for name, rec in sorted(fresh.items()):
        cur = duration_of(rec)
        base_rec = baseline.get(name)
        gated = is_gated(rec, name, args.pattern)
        tag = "gate" if gated else "info"
        verdict = health_verdict_of(rec)
        if args.check_health and verdict == "CRIT":
            failures.append(f"{name}: physics health verdict CRIT")
            rows.append((name, "health", "-", "-", "CRIT"))
        if args.check_health:
            died = [
                e for e in health_events_of(rec)
                if e.get("check") == "rank_died"
            ]
            if died:
                steps = sorted({e.get("step") for e in died})
                rank_deaths.append(
                    f"{name}: {len(died)} unrecovered rank_died "
                    f"event(s) at step(s) {steps}"
                )
                rows.append((name, "health", "-", "-", "rank_died"))
        counts = faults_of(rec)
        if counts is not None:
            injected, recovered = counts
            rows.append(
                (name, "chaos", "-", "-",
                 f"faults {recovered}/{injected} recovered")
            )
        if cur is None:
            rows.append((name, tag, "-", "-", "no duration"))
            continue
        if base_rec is None:
            rows.append((name, tag, f"{cur:.3f}", "-", "new (no baseline)"))
            continue
        base = duration_of(base_rec)
        if base is None or base <= 0:
            rows.append((name, tag, f"{cur:.3f}", "-", "bad baseline"))
            continue
        change = cur / base - 1.0
        verdict = "ok"
        if gated and change > args.threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {base:.3f}s -> {cur:.3f}s "
                f"(+{100 * change:.1f}% > {100 * args.threshold:.0f}%)"
            )
        rows.append(
            (name, tag, f"{cur:.3f}", f"{base:.3f}", f"{change:+.1%} {verdict}")
        )

    if args.check_speedup:
        sfailures, srows = check_speedup(
            fresh, args.speedup_record, args.min_speedup
        )
        rows.extend(srows)
        failures.extend(sfailures)

    if args.check_kernel_speedup:
        kfailures, krows = check_kernel_speedup(
            fresh,
            args.kernel_record,
            args.min_kernel_speedup,
            args.min_f32_speedup,
        )
        rows.extend(krows)
        failures.extend(kfailures)

    if args.check_roofline:
        rfailures, rrows = check_roofline(fresh, args.roofline_record)
        rows.extend(rrows)
        failures.extend(rfailures)

    widths = [max(len(r[i]) for r in rows + [("name", "kind", "cur s", "base s", "status")]) for i in range(5)]
    header = ("name", "kind", "cur s", "base s", "status")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))

    if rank_deaths:
        # losing a rank without recovering it is worse than a slowdown:
        # the run's physics is wrong, not just late — distinct exit code
        print("\nFAIL: unrecovered rank death(s):")
        for f in rank_deaths:
            print(f"  {f}")
        for f in failures:
            print(f"  {f}")
        return 2
    if failures:
        print("\nFAIL: benchmark regression(s) or health failure(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nOK: no gated benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
