"""Table III & Fig. 8 — strong scaling of the full code on one rack.

1024^3 particles from 512 to 16384 cores, per-node memory utilization
from ~62% down to 4.5%.  The model reproduces the paper's structure: the
push time scales nearly ideally to 8192 cores and degrades at 16384
"only because of the extra computations in the overloaded regions" — the
overload volume factor the model computes from the shrinking rank
domains.
"""

import pytest

from repro.machine.perfmodel import FullCodeModel

from conftest import print_table


class TestTable3:
    @pytest.fixture(scope="class")
    def model(self):
        return FullCodeModel.calibrated()

    def test_regenerate_table3(self, benchmark, model):
        table = benchmark(model.table3)
        rows = []
        for d in table:
            p, q = d["paper"], d["model"]
            rows.append([
                p.cores, f"{p.particles_per_core:,}",
                f"{p.time_substep_particle:.2e}",
                f"{q.time_substep_particle:.2e}",
                f"{p.peak_percent:.1f}", f"{q.peak_percent:.1f}",
                f"{p.memory_mb_rank:.1f}", f"{q.memory_mb_rank:.1f}",
                f"x{q.overload_factor:.2f}",
            ])
        print_table(
            "Table III: strong scaling (paper | model)",
            ["cores", "part/core", "t/ss/p_p", "t/ss/p_m",
             "%pk_p", "%pk_m", "MB_p", "MB_m", "overload"],
            rows,
        )
        for d in table:
            p, q = d["paper"], d["model"]
            assert q.time_substep_particle == pytest.approx(
                p.time_substep_particle, rel=0.45
            )
            assert q.memory_mb_rank == pytest.approx(
                p.memory_mb_rank, rel=0.30
            )
            assert q.peak_percent == pytest.approx(p.peak_percent, abs=4.0)

    def test_near_ideal_to_8192(self, benchmark, model):
        """Push time scales nearly perfectly up to 8192 cores."""
        table = benchmark(model.table3)
        by_cores = {d["model"].cores: d["model"] for d in table}
        t512 = by_cores[512].time_substep_particle * 512
        t8192 = by_cores[8192].time_substep_particle * 8192
        assert t8192 / t512 < 1.8  # paper: 1.48e-8*8192 / 1.36e-7*512 = 1.74

    def test_degradation_at_16384(self, benchmark, model):
        """The 16384-core slowdown: overloaded-region compute, ~2.2x in
        cores x time vs the 512-core baseline."""
        table = benchmark(model.table3)
        first, last = table[0]["model"], table[-1]["model"]
        ratio = (last.time_substep_particle * last.cores) / (
            first.time_substep_particle * first.cores
        )
        paper = (9.33e-9 * 16384) / (1.36e-7 * 512)
        assert ratio == pytest.approx(paper, rel=0.20)
        # the cause is visible: the overload factor more than doubles
        assert last.overload_factor > 2.0 * first.overload_factor

    def test_memory_utilization_range(self, benchmark, model):
        """Per-rank memory spans the paper's 62% -> 4.5% of-node range
        (16 GB node, 16 ranks => 1024 MB/rank budget)."""
        table = benchmark(model.table3)
        fractions = [
            d["model"].memory_mb_rank / 1024.0 for d in table
        ]
        assert 0.30 < fractions[0] < 0.75
        assert fractions[-1] < 0.08
