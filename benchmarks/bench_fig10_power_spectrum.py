"""Fig. 10 — evolution of the matter fluctuation power spectrum.

Measures P(k) at the paper's six redshift frames (z = 5.5 ... 0) from the
science run and asserts the figure's structure: monotone growth of power
at every k, linear growth at small wavenumbers, and super-linear
(nonlinear) growth at large wavenumbers — "at large wavenumbers it is
highly nonlinear, and cannot be obtained by any method other than direct
simulation."
"""

import numpy as np
import pytest

from repro.analysis.power import matter_power_spectrum
from repro.cosmology import WMAP7

from conftest import print_table


class TestFig10:
    @pytest.fixture(scope="class")
    def spectra(self, science_run):
        # measure on a grid 2x finer than the force mesh: the short-range
        # force resolves structure below the PM scale (that is its job)
        cfg = science_run.config
        out = {}
        for z, pos in science_run.snapshots.items():
            out[z] = matter_power_spectrum(
                pos, cfg.box_size, 2 * cfg.grid(), subtract_shot_noise=False
            )
        return out

    def test_log_power_table(self, benchmark, science_run, spectra):
        """The log10 P(k) vs log10 k series of Fig. 10."""
        zs = sorted(spectra, reverse=True)

        def table():
            ks = spectra[zs[0]].k
            rows = []
            for i in range(0, len(ks), 2):
                rows.append(
                    [f"{np.log10(ks[i]):6.2f}"]
                    + [
                        f"{np.log10(max(spectra[z].power[i], 1e-12)):6.2f}"
                        for z in zs
                    ]
                )
            return rows

        rows = benchmark.pedantic(table, rounds=1, iterations=1)
        print_table(
            "Fig. 10: log10 P(k) per redshift",
            ["log10 k"] + [f"z={z}" for z in zs],
            rows,
        )
        # power grows monotonically with time at every k
        for i in range(len(spectra[zs[0]].k)):
            series = [spectra[z].power[i] for z in zs]
            assert series[-1] > series[0]

    def test_linear_growth_at_low_k(self, benchmark, science_run, spectra):
        """Low-k power tracks D^2(a) between successive frames.

        (The box holds only a handful of fundamental modes, so single-bin
        single-frame comparisons scatter; successive-frame growth of the
        averaged first bins is the robust linear-theory observable.)"""
        zs = sorted(spectra, reverse=True)

        def ratios():
            out = []
            for z0, z1 in zip(zs[:-1], zs[1:]):
                p0 = float(np.mean(spectra[z0].power[:4]))
                p1 = float(np.mean(spectra[z1].power[:4]))
                # growth factors at the redshifts the frames were
                # actually captured (coarse steps overshoot the labels)
                za = science_run.actual_z[z0]
                zb = science_run.actual_z[z1]
                d0 = WMAP7.growth_factor(1 / (1 + za))
                d1 = WMAP7.growth_factor(1 / (1 + zb))
                out.append((za, zb, p1 / p0, (d1 / d0) ** 2))
            return out

        rows = benchmark.pedantic(ratios, rounds=1, iterations=1)
        print_table(
            "frame-to-frame low-k growth vs linear theory",
            ["z from", "z to", "measured", "linear"],
            [[f"{a:4.1f}", f"{b:4.1f}", f"{m:7.2f}", f"{e:7.2f}"]
             for a, b, m, e in rows],
        )
        for _, _, measured, expected in rows:
            assert measured == pytest.approx(expected, rel=0.40)

    def test_nonlinear_growth_at_high_k(self, benchmark, science_run):
        """High-k power at z=0 exceeds linear theory (mode coupling):
        'at large wavenumbers it is highly nonlinear, and cannot be
        obtained by any method other than direct simulation.'"""
        from repro.cosmology import LinearPower

        cfg = science_run.config

        def excess():
            ps = matter_power_spectrum(
                science_run.snapshots[0.0],
                cfg.box_size,
                2 * cfg.grid(),
                subtract_shot_noise=True,
            )
            lin = LinearPower(WMAP7)(ps.k)
            sel = ps.k > 1.1
            return float(np.mean(ps.power[sel] / lin[sel]))

        ratio = benchmark.pedantic(excess, rounds=1, iterations=1)
        print(f"\nmean P/P_linear at k > 1.1 h/Mpc, z=0: {ratio:.2f}x")
        assert ratio > 1.3
