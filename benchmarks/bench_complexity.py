"""Algorithmic complexity of the reproduction's own solvers (Section II).

The paper states the complexity menu: PM is ``O(Np) + O(Ng log Ng)``,
the RCB tree with fat leaves is ``O(Npl)`` (per local domain), and the
close-range direct sums are ``O(Nd^2)`` inside leaves.  This bench
measures the empirical scaling exponents of this implementation's
solvers over a geometric ladder of problem sizes and asserts they sit in
the expected windows — a regression gate against accidentally
quadratic code paths.
"""

import time

import numpy as np
import pytest

from repro.grid.poisson import SpectralPoissonSolver
from repro.shortrange.grid_force import default_grid_force_fit
from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.solvers import DirectShortRange, TreePMShortRange

from conftest import print_table


def _fit_exponent(ns, times) -> float:
    """Least-squares slope of log t vs log n."""
    return float(np.polyfit(np.log(ns), np.log(times), 1)[0])


def _time(fn, repeats=3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestComplexity:
    def test_pm_solver_near_linear(self, benchmark, rng):
        """Full PM accelerations: O(Np) deposit/interp + O(Ng log Ng)
        FFTs; with Ng ~ Np the measured exponent is ~1."""

        def sweep():
            out = {}
            for n_grid, npart in ((16, 4096), (24, 13824), (32, 32768), (48, 110592)):
                solver = SpectralPoissonSolver(n_grid, 100.0)
                pos = rng.uniform(0, 100.0, (npart, 3))
                out[npart] = _time(lambda: solver.accelerations(pos))
            return out

        times = benchmark.pedantic(sweep, rounds=1, iterations=1)
        ns = np.array(list(times))
        ts = np.array(list(times.values()))
        slope = _fit_exponent(ns, ts)
        print_table(
            "PM solver scaling",
            ["N", "seconds"],
            [[n, f"{t:.4f}"] for n, t in times.items()],
        )
        print(f"measured exponent: {slope:.2f} (expect ~1.0-1.3)")
        assert 0.7 < slope < 1.5

    def test_treepm_subquadratic(self, benchmark, rng):
        """RCB TreePM at fixed density and fixed rcut: per-particle work
        is bounded, so total work is ~O(N) — far from the O(N^2) of the
        direct method."""
        fit = default_grid_force_fit()

        def sweep():
            out = {}
            for npart, box in ((512, 16.0), (1728, 24.0), (4096, 32.0)):
                # same mean density; kernel spacing fixed at 1 cell
                kernel = ShortRangeKernel(fit, spacing=1.0)
                solver = TreePMShortRange(kernel, leaf_size=48)
                pos = rng.uniform(0, box, (npart, 3))
                m = np.ones(npart)
                out[npart] = _time(
                    lambda s=solver, p=pos, mm=m, b=box: s.accelerations(
                        p, mm, box_size=b
                    ),
                    repeats=2,
                )
            return out

        times = benchmark.pedantic(sweep, rounds=1, iterations=1)
        slope = _fit_exponent(
            np.array(list(times)), np.array(list(times.values()))
        )
        print_table(
            "TreePM scaling at fixed density",
            ["N", "seconds"],
            [[n, f"{t:.4f}"] for n, t in times.items()],
        )
        print(f"measured exponent: {slope:.2f} (expect ~1, must be << 2)")
        assert slope < 1.6

    def test_direct_quadratic(self, benchmark, rng):
        """The O(N^2) reference really is quadratic once the interaction
        volume saturates (everything inside rcut)."""
        fit = default_grid_force_fit()

        def sweep():
            out = {}
            for npart in (256, 512, 1024, 2048):
                kernel = ShortRangeKernel(fit, spacing=2.0)  # rcut 6
                solver = DirectShortRange(kernel)
                pos = rng.uniform(0, 4.0, (npart, 3))  # all within rcut
                m = np.ones(npart)
                out[npart] = _time(
                    lambda s=solver, p=pos, mm=m: s.accelerations(p, mm),
                    repeats=2,
                )
            return out

        times = benchmark.pedantic(sweep, rounds=1, iterations=1)
        slope = _fit_exponent(
            np.array(list(times)), np.array(list(times.values()))
        )
        print_table(
            "direct summation scaling (saturated rcut)",
            ["N", "seconds"],
            [[n, f"{t:.4f}"] for n, t in times.items()],
        )
        print(f"measured exponent: {slope:.2f} (expect ~2)")
        assert slope > 1.6

    def test_fft_n_log_n(self, benchmark):
        """The spectral solve is Ng log Ng — the term that anchors weak
        scaling to the FFT (Section II's closing claim)."""

        def sweep():
            out = {}
            for n in (32, 48, 64, 96):
                solver = SpectralPoissonSolver(n, 100.0)
                rng = np.random.default_rng(0)
                delta = rng.standard_normal((n, n, n))
                out[n**3] = _time(lambda: solver.force_grids(delta))
            return out

        times = benchmark.pedantic(sweep, rounds=1, iterations=1)
        slope = _fit_exponent(
            np.array(list(times)), np.array(list(times.values()))
        )
        print(f"\nFFT force-grid exponent vs Ng: {slope:.2f} "
              "(expect ~1 with log corrections)")
        assert 0.8 < slope < 1.5
