"""Executor scaling — the measured analogue of the Fig. 5 speedup story.

The paper's Fig. 5 shows the short-range kernel's throughput growing
with threads per core; :mod:`bench_fig5_kernel_threading` reproduces
that **modeled** curve.  This bench puts the *measured* curve next to
it: the per-domain short-range phase of a small overloaded simulation
dispatched over 1, 2 and 4 executor workers.

On the machines this reproduction targets (often a single core, always
a GIL) the NumPy per-domain solve cannot magically scale, so the bench
emulates the paper's situation — each rank's kernel dominated by
latency the host core does not see — by injecting a calibrated
per-domain stall through the fault plan
(``FaultPlan.with_slowdown("shortrange.domain", s)``).  ``time.sleep``
releases the GIL, so the stalls genuinely overlap under the thread
backend exactly as the BG/Q kernel's memory/FPU latency overlaps across
hardware threads.  The *compute-only* curve (no emulation) is recorded
alongside, honestly labeled, so the record shows both what the
orchestration achieves and what the host's arithmetic allows.

The speedup at 4 workers is the gate of the parallel-executor PR: the
record lands in the repo root as ``BENCH_executor.json`` and
``check_regression.py --check-speedup`` fails below 1.7x.
"""

import math
import time
from pathlib import Path

from repro.config import SimulationConfig
from repro.core.simulation import HACCSimulation
from repro.instrument.report import write_bench_record
from repro.resilience import FaultPlan, use_faults

from conftest import print_table

BOX, N, DIMS = 64.0, 16, (2, 2, 1)
N_DOMAINS = DIMS[0] * DIMS[1] * DIMS[2]
REPS = 3
#: emulated per-domain kernel latency, as a multiple of the measured
#: per-domain compute time (the BG/Q kernel is latency-dominated)
LATENCY_FACTOR = 2.5
CONFIGS = ((1, "serial"), (2, "thread"), (4, "thread"), (4, "process"))
GATE_WORKERS, MIN_SPEEDUP = 4, 1.7

REPO_ROOT = Path(__file__).resolve().parents[1]


def _make_sim(workers: int, executor: str) -> HACCSimulation:
    cfg = SimulationConfig(
        box_size=BOX,
        n_per_dim=N,
        z_initial=20.0,
        z_final=5.0,
        n_steps=2,
        n_subcycles=2,
        backend="treepm",
        seed=2012,
        workers=workers,
        executor=executor,
    )
    return HACCSimulation(
        cfg, decomposition_dims=DIMS, overload_depth=cfg.rcut() + 0.5
    )


def _time_phase(sim: HACCSimulation, reps: int = REPS) -> float:
    """Mean wall-clock of the overloaded short-range phase."""
    pos = sim.particles.positions
    sim._short_range_overloaded(pos)  # warm pools, shared memory, trees
    t0 = time.perf_counter()
    for _ in range(reps):
        sim._short_range_overloaded(pos)
    return (time.perf_counter() - t0) / reps


def _sweep(plan=None) -> list[dict]:
    rows = []
    for workers, backend in CONFIGS:
        sim = _make_sim(workers, backend)
        try:
            if plan is not None:
                with use_faults(plan):
                    t = _time_phase(sim)
            else:
                t = _time_phase(sim)
        finally:
            sim.close()
        rows.append(
            {"workers": workers, "backend": backend, "duration_s": t}
        )
    serial = rows[0]["duration_s"]
    for r in rows:
        r["speedup"] = serial / r["duration_s"]
    return rows


class TestExecutorScaling:
    def test_short_range_phase_speedup(self, benchmark):
        def measure() -> dict:
            # calibrate: per-domain compute time of the serial fleet
            sim = _make_sim(1, "serial")
            try:
                compute_phase = _time_phase(sim)
            finally:
                sim.close()
            latency = LATENCY_FACTOR * compute_phase / N_DOMAINS

            plan = FaultPlan(seed=2012).with_slowdown(
                "shortrange.domain", latency
            )
            emulated = _sweep(plan)
            compute_only = _sweep()

            # modeled curve: per-domain compute c cannot overlap on one
            # host core, the emulated latency s overlaps perfectly —
            # the Amdahl shape the measurement should track
            c = compute_phase / N_DOMAINS
            modeled = [
                {
                    "workers": w,
                    "speedup": (N_DOMAINS * (c + latency))
                    / (
                        N_DOMAINS * c
                        + math.ceil(N_DOMAINS / w) * latency
                    ),
                }
                for w, _ in CONFIGS
            ]
            return {
                "compute_phase_s": compute_phase,
                "latency": latency,
                "emulated": emulated,
                "compute_only": compute_only,
                "modeled": modeled,
            }

        out = benchmark.pedantic(measure, rounds=1, iterations=1)

        rows = []
        for em, co, mo in zip(
            out["emulated"], out["compute_only"], out["modeled"]
        ):
            rows.append(
                [
                    f"{em['workers']}w {em['backend']}",
                    f"{em['duration_s']:.3f}",
                    f"{em['speedup']:.2f}x",
                    f"{mo['speedup']:.2f}x",
                    f"{co['speedup']:.2f}x",
                ]
            )
        print_table(
            "Executor scaling: short-range phase "
            f"(emulated domain latency {out['latency'] * 1e3:.1f} ms)",
            ["config", "emulated s", "speedup", "modeled", "compute-only"],
            rows,
        )

        gated = [
            r
            for r in out["emulated"]
            if r["workers"] == GATE_WORKERS and r["backend"] == "thread"
        ][0]

        payload = {
            "nodeid": "bench_executor_scaling.py::short_range_phase",
            "duration_s": gated["duration_s"],
            "problem": {
                "box_size": BOX,
                "n_per_dim": N,
                "dims": list(DIMS),
                "n_domains": N_DOMAINS,
                "reps": REPS,
            },
            "emulated_domain_latency_s": out["latency"],
            "latency_factor": LATENCY_FACTOR,
            "curve": out["emulated"],
            "compute_only": out["compute_only"],
            "modeled": out["modeled"],
            "speedup": {
                "workers": GATE_WORKERS,
                "backend": gated["backend"],
                "value": gated["speedup"],
                "min_required": MIN_SPEEDUP,
            },
        }
        path = write_bench_record(
            "executor", payload, directory=REPO_ROOT
        )
        print(f"record -> {path}")

        assert gated["speedup"] >= MIN_SPEEDUP, (
            f"thread backend at {GATE_WORKERS} workers reached only "
            f"{gated['speedup']:.2f}x (< {MIN_SPEEDUP}x) on the "
            "emulated short-range phase"
        )
        # orthogonal sanity: the emulation must not corrupt physics —
        # 2 workers must still beat 1
        assert out["emulated"][1]["speedup"] > 1.0
