"""Executor scaling — the measured analogue of the Fig. 5 speedup story.

The paper's Fig. 5 shows the short-range kernel's throughput growing
with threads per core; :mod:`bench_fig5_kernel_threading` reproduces
that **modeled** curve.  This bench puts the *measured* curve next to
it: the per-domain short-range phase of a small overloaded simulation
dispatched over 1-16 executor workers, with the 8- and 16-worker
process fleets sharded into rank groups
(:class:`repro.machine.mapping.RankGroupLayout`) and the parallel rows
running the overlapped schedule (``overlap=True`` — ghost exchange
streamed into in-flight solves).

On the machines this reproduction targets (often a single core, always
a GIL) the NumPy per-domain solve cannot magically scale, so the bench
emulates the paper's situation — each rank's kernel dominated by
latency the host core does not see — by injecting a calibrated
per-domain stall through the fault plan
(``FaultPlan.with_slowdown("shortrange.domain", s)``).  ``time.sleep``
releases the GIL and overlaps across processes regardless of core
count, so the stalls genuinely overlap exactly as the BG/Q kernel's
memory/FPU latency overlaps across hardware threads.  The
*compute-only* curve (no emulation) is recorded alongside, honestly
labeled, so the record shows both what the orchestration achieves and
what the host's arithmetic allows.

Gates (``check_regression.py --check-speedup`` reads the
``speedup_gates`` block; each gate self-skips below its ``min_cores``):

* emulated thread @ 4 workers  >= 1.7x   (the historical gate)
* emulated process @ 8 workers >= 3.0x   (this PR's scale-out gate)
* compute-only thread @ 4 workers >= 1.0x (dispatch overhead must not
  drag a real-core host below serial; needs >= 4 cores to mean that)
"""

import math
import os
import time
from pathlib import Path

from repro.config import SimulationConfig
from repro.core.simulation import HACCSimulation
from repro.instrument.report import write_bench_record
from repro.machine.mapping import RankGroupLayout
from repro.resilience import FaultPlan, use_faults

from conftest import print_table

#: grid 32 on a 64 box -> spacing 2, rcut 6, overload depth 6.5 — legal
#: for the (4, 2, 2) decomposition's 16 Mpc/h thin axis (depth < 8)
BOX, N, GRID, DIMS = 64.0, 16, 32, (4, 2, 2)
N_DOMAINS = DIMS[0] * DIMS[1] * DIMS[2]
REPS = 3
#: emulated per-domain kernel latency, as a multiple of the measured
#: per-domain compute time (the BG/Q kernel is latency-dominated); 5x
#: puts the modeled 8-worker speedup at 3.7x, clear of the 3.0x gate
LATENCY_FACTOR = 5.0
#: floor on the emulated latency so pool/dispatch overhead stays small
#: against the stall even when the compute phase is tiny
LATENCY_FLOOR_S = 0.008
#: (workers, backend, worker_groups) — groups shard the process fleet
CONFIGS = (
    (1, "serial", 1),
    (2, "thread", 1),
    (4, "thread", 1),
    (4, "process", 1),
    (8, "process", 2),
    (16, "process", 4),
)
#: curve gates mirrored into the record for check_regression.py
GATES = (
    {"curve": "emulated", "workers": 4, "backend": "thread",
     "min_required": 1.7, "min_cores": 1},
    {"curve": "emulated", "workers": 8, "backend": "process",
     "min_required": 3.0, "min_cores": 8},
    {"curve": "compute_only", "workers": 4, "backend": "thread",
     "min_required": 1.0, "min_cores": 4},
)
GATE_WORKERS, MIN_SPEEDUP = 4, 1.7

REPO_ROOT = Path(__file__).resolve().parents[1]


def _make_sim(
    workers: int, executor: str, groups: int = 1, overlap: bool = False
) -> HACCSimulation:
    cfg = SimulationConfig(
        box_size=BOX,
        n_per_dim=N,
        grid_size=GRID,
        z_initial=20.0,
        z_final=5.0,
        n_steps=2,
        n_subcycles=2,
        backend="treepm",
        seed=2012,
        workers=workers,
        executor=executor,
        worker_groups=groups,
        overlap=overlap,
    )
    return HACCSimulation(
        cfg, decomposition_dims=DIMS, overload_depth=cfg.rcut() + 0.5
    )


def _time_phase(sim: HACCSimulation, reps: int = REPS, reduce=None) -> float:
    """Wall-clock of the overloaded short-range phase (mean by default)."""
    pos = sim.particles.positions
    sim._short_range_overloaded(pos)  # warm pools, shared memory, trees
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        sim._short_range_overloaded(pos)
        samples.append(time.perf_counter() - t0)
    if reduce is min:
        return min(samples)
    return sum(samples) / len(samples)


def _sweep(plan=None, overlap: bool = False, reduce=None) -> list[dict]:
    rows = []
    for workers, backend, groups in CONFIGS:
        use_overlap = overlap and backend != "serial"
        sim = _make_sim(workers, backend, groups, use_overlap)
        try:
            if plan is not None:
                with use_faults(plan):
                    t = _time_phase(sim, reduce=reduce)
            else:
                t = _time_phase(sim, reduce=reduce)
        finally:
            sim.close()
        rows.append(
            {
                "workers": workers,
                "backend": backend,
                "worker_groups": groups,
                "overlap": use_overlap,
                "duration_s": t,
            }
        )
    serial = rows[0]["duration_s"]
    for r in rows:
        r["speedup"] = serial / r["duration_s"]
    return rows


def _curve_point(rows: list[dict], workers: int, backend: str) -> dict:
    return [
        r for r in rows
        if r["workers"] == workers and r["backend"] == backend
    ][0]


class TestExecutorScaling:
    def test_short_range_phase_speedup(self, benchmark):
        def measure() -> dict:
            # calibrate: per-domain compute time of the serial fleet
            sim = _make_sim(1, "serial")
            try:
                compute_phase = _time_phase(sim)
            finally:
                sim.close()
            latency = max(
                LATENCY_FACTOR * compute_phase / N_DOMAINS, LATENCY_FLOOR_S
            )

            plan = FaultPlan(seed=2012).with_slowdown(
                "shortrange.domain", latency
            )
            # the emulated sweep runs the overlapped schedule on the
            # parallel rows (the path this PR gates); compute-only runs
            # the sync schedule and min-of-reps timing, isolating pure
            # dispatch overhead for the >= 1.0x gate
            emulated = _sweep(plan, overlap=True)
            compute_only = _sweep(reduce=min)

            # modeled curve: per-domain compute c cannot overlap on one
            # host core, the emulated latency s overlaps perfectly —
            # the Amdahl shape the measurement should track
            c = compute_phase / N_DOMAINS
            modeled = [
                {
                    "workers": w,
                    "speedup": (N_DOMAINS * (c + latency))
                    / (
                        N_DOMAINS * c
                        + math.ceil(N_DOMAINS / w) * latency
                    ),
                }
                for w, _, _ in CONFIGS
            ]
            return {
                "compute_phase_s": compute_phase,
                "latency": latency,
                "emulated": emulated,
                "compute_only": compute_only,
                "modeled": modeled,
            }

        out = benchmark.pedantic(measure, rounds=1, iterations=1)

        rows = []
        for em, co, mo in zip(
            out["emulated"], out["compute_only"], out["modeled"]
        ):
            tag = f"{em['workers']}w {em['backend']}"
            if em["worker_groups"] > 1:
                tag += f"/{em['worker_groups']}g"
            rows.append(
                [
                    tag,
                    f"{em['duration_s']:.3f}",
                    f"{em['speedup']:.2f}x",
                    f"{mo['speedup']:.2f}x",
                    f"{co['speedup']:.2f}x",
                ]
            )
        print_table(
            "Executor scaling: short-range phase "
            f"(emulated domain latency {out['latency'] * 1e3:.1f} ms)",
            ["config", "emulated s", "speedup", "modeled", "compute-only"],
            rows,
        )

        host_cores = os.cpu_count() or 1
        curves = {
            "emulated": out["emulated"],
            "compute_only": out["compute_only"],
        }
        gates = []
        for spec in GATES:
            point = _curve_point(
                curves[spec["curve"]], spec["workers"], spec["backend"]
            )
            gates.append(
                {
                    **spec,
                    "value": point["speedup"],
                    "skipped": host_cores < spec["min_cores"],
                }
            )

        gated = _curve_point(out["emulated"], GATE_WORKERS, "thread")
        payload = {
            "nodeid": "bench_executor_scaling.py::short_range_phase",
            "duration_s": gated["duration_s"],
            "problem": {
                "box_size": BOX,
                "n_per_dim": N,
                "grid_size": GRID,
                "dims": list(DIMS),
                "n_domains": N_DOMAINS,
                "reps": REPS,
            },
            "host_cores": host_cores,
            "emulated_domain_latency_s": out["latency"],
            "latency_factor": LATENCY_FACTOR,
            "curve": out["emulated"],
            "compute_only": out["compute_only"],
            "modeled": out["modeled"],
            "rank_groups": [
                RankGroupLayout(n_workers=w, n_groups=g).describe()
                for w, b, g in CONFIGS
                if g > 1
            ],
            # legacy single-gate block (older check_regression versions)
            "speedup": {
                "workers": GATE_WORKERS,
                "backend": gated["backend"],
                "value": gated["speedup"],
                "min_required": MIN_SPEEDUP,
            },
            "speedup_gates": gates,
        }
        path = write_bench_record(
            "executor", payload, directory=REPO_ROOT
        )
        print(f"record -> {path}")

        assert gated["speedup"] >= MIN_SPEEDUP, (
            f"thread backend at {GATE_WORKERS} workers reached only "
            f"{gated['speedup']:.2f}x (< {MIN_SPEEDUP}x) on the "
            "emulated short-range phase"
        )
        # the scale-out gate: emulated latency overlaps across process
        # workers regardless of host core count, so this holds even on
        # a single-core runner
        at8 = _curve_point(out["emulated"], 8, "process")
        assert at8["speedup"] >= 3.0, (
            f"process backend at 8 workers reached only "
            f"{at8['speedup']:.2f}x (< 3.0x) on the emulated "
            "short-range phase"
        )
        # dispatch overhead: on a host with real cores, 4 thread workers
        # must not run the un-emulated phase slower than serial
        co4 = _curve_point(out["compute_only"], 4, "thread")
        if host_cores >= 4:
            assert co4["speedup"] >= 1.0, (
                f"compute-only thread backend at 4 workers fell below "
                f"serial ({co4['speedup']:.2f}x) — dispatch overhead "
                "regression"
            )
        # orthogonal sanity: the emulation must not corrupt physics —
        # 2 workers must still beat 1
        assert out["emulated"][1]["speedup"] > 1.0
