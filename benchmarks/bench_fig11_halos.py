"""Fig. 11 — a massive cluster halo and its sub-halos; Section V's halo
statistics (mergers, sub-halo accretion, the mass function).

From the science run's z=0 snapshot: FOF halos, the sub-halo
decomposition of the most massive one ("the main halo is in a relatively
relaxed configuration ... each sub-halo, depending on its mass, can host
one or more galaxies"), and the measured mass function against the
Sheth-Tormen analytic prediction.
"""

import numpy as np
import pytest

from repro.analysis.halos import fof_halos
from repro.analysis.mass_function import (
    measured_mass_function,
    sheth_tormen,
)
from repro.analysis.subhalos import find_subhalos
from repro.constants import particle_mass
from repro.cosmology import LinearPower, WMAP7

from conftest import print_table


class TestFig11:
    @pytest.fixture(scope="class")
    def catalog(self, science_run):
        cfg = science_run.config
        return fof_halos(
            science_run.final_positions,
            cfg.box_size,
            b=0.2,
            min_members=8,
            momenta=science_run.sim.particles.momenta,
        )

    def test_halo_catalog(self, benchmark, science_run):
        cfg = science_run.config
        cat = benchmark.pedantic(
            lambda: fof_halos(
                science_run.final_positions, cfg.box_size, b=0.2, min_members=8
            ),
            rounds=1,
            iterations=1,
        )
        mp = particle_mass(WMAP7.omega_m, cfg.box_size, cfg.n_particles)
        rows = [
            [h, cat.sizes[h], f"{cat.sizes[h] * mp:.2e}",
             np.round(cat.centers[h], 1).tolist()]
            for h in range(min(cat.n_halos, 6))
        ]
        print_table(
            "Fig. 11: most massive FOF halos (b=0.2)",
            ["halo", "particles", "mass [Msun/h]", "center"],
            rows,
        )
        assert cat.n_halos >= 3
        # the most massive halo is group/cluster scale at this resolution
        assert cat.sizes[0] * mp > 1e13

    def test_subhalo_decomposition(self, benchmark, science_run, catalog):
        subs = benchmark.pedantic(
            lambda: find_subhalos(
                catalog,
                science_run.final_positions,
                halo=0,
                linking_fraction=0.7,
                min_members=5,
                momenta=science_run.sim.particles.momenta,
            ),
            rounds=1,
            iterations=1,
        )
        rows = [
            ["main" if i == 0 else f"sub {i}", s.n_members,
             f"{np.linalg.norm(s.mean_velocity - catalog.mean_velocities[0]):.3f}"]
            for i, s in enumerate(subs[:6])
        ]
        print_table(
            "sub-halo decomposition of the most massive halo",
            ["structure", "particles", "|v - v_host|"],
            rows,
        )
        assert len(subs) >= 1
        # the central structure dominates the host
        assert subs[0].n_members >= 0.2 * catalog.sizes[0]
        # sub-halo membership is a partition of (a subset of) the host
        all_members = np.concatenate([s.member_indices for s in subs])
        assert len(np.unique(all_members)) == len(all_members)

    def test_mass_function_vs_sheth_tormen(
        self, benchmark, science_run, catalog
    ):
        cfg = science_run.config
        mp = particle_mass(WMAP7.omega_m, cfg.box_size, cfg.n_particles)

        def compute():
            mf = measured_mass_function(catalog, mp, n_bins=5)
            st = sheth_tormen(LinearPower(WMAP7), mf.mass)
            return mf, st

        mf, st = benchmark.pedantic(compute, rounds=1, iterations=1)
        rows = [
            [f"{m:.2e}", f"{dn:.2e}", f"{a:.2e}", c]
            for m, dn, a, c in zip(mf.mass, mf.dn_dlnm, st, mf.counts)
            if c > 0
        ]
        print_table(
            "halo mass function: measured vs Sheth-Tormen",
            ["mass", "dn/dlnM", "ST", "N"],
            rows,
        )
        # order-of-magnitude agreement in the well-sampled bins (small
        # box, FOF mass definition, ~10-particle halos: factors of a few
        # are expected; the shape — decreasing with mass — must hold)
        occupied = mf.counts > 2
        assert occupied.any()
        ratio = mf.dn_dlnm[occupied] / st[occupied]
        assert np.all(ratio > 0.1)
        assert np.all(ratio < 10.0)
