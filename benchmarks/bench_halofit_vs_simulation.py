"""Nonlinear P(k): simulation vs HALOFIT (the independent comparator).

The paper's Fig. 10 shows the nonlinear growth of P(k) that "cannot be
obtained by any method other than direct simulation"; analytic fits like
HALOFIT are calibrated *to* such simulations.  This bench closes the
loop: the science run's z=0 spectrum is compared against HALOFIT over the
resolved quasi-linear range, and the nonlinear boost shapes are compared
bin by bin.  Agreement at the tens-of-percent level is the expected
outcome for a 24^3-particle box; the asserted claims are the shape ones
(boost > 1, rising with k, same regime as HALOFIT).
"""

import numpy as np
import pytest

from repro.analysis.power import matter_power_spectrum
from repro.cosmology import LinearPower, WMAP7
from repro.cosmology.halofit import HalofitPower

from conftest import print_table


class TestHalofitComparison:
    def test_boost_shape_matches(self, benchmark, science_run):
        cfg = science_run.config
        linear = LinearPower(WMAP7)
        halofit = HalofitPower(linear)

        def compare():
            ps = matter_power_spectrum(
                science_run.snapshots[0.0],
                cfg.box_size,
                2 * cfg.grid(),
                subtract_shot_noise=True,
            )
            sel = (ps.k > 0.3) & (ps.k < 1.5)
            k = ps.k[sel]
            sim_boost = ps.power[sel] / linear(k)
            hf_boost = halofit.boost(k)
            return k, sim_boost, hf_boost

        k, sim_boost, hf_boost = benchmark.pedantic(
            compare, rounds=1, iterations=1
        )
        rows = [
            [f"{kk:.2f}", f"{sb:.2f}", f"{hb:.2f}", f"{sb / hb:.2f}"]
            for kk, sb, hb in zip(k, sim_boost, hf_boost)
        ]
        print_table(
            "nonlinear boost P/P_lin at z=0: simulation vs HALOFIT",
            ["k [h/Mpc]", "simulation", "HALOFIT", "ratio"],
            rows,
        )
        # both see a boost rising with k in the quasi-linear band ...
        assert hf_boost[-1] > hf_boost[0]
        assert np.mean(sim_boost[-4:]) > np.mean(sim_boost[:4]) * 0.9
        # ... and the simulation lands in the same regime as HALOFIT
        # (the 24^3 run under-resolves the one-halo term, so it may sit
        # below; it must not exceed HALOFIT by more than ~2x anywhere)
        ratio = sim_boost / hf_boost
        assert np.all(ratio > 0.15)
        assert np.all(ratio < 2.0)

    def test_nonlinear_scale_bracketed(self, benchmark, science_run):
        """The k where the measured boost exceeds ~1.3 brackets
        HALOFIT's k_sigma within a factor of a few."""
        cfg = science_run.config
        halofit = HalofitPower(LinearPower(WMAP7))

        def find_knl():
            ps = matter_power_spectrum(
                science_run.snapshots[0.0],
                cfg.box_size,
                2 * cfg.grid(),
                subtract_shot_noise=True,
            )
            linear = LinearPower(WMAP7)
            boost = ps.power / linear(ps.k)
            above = np.flatnonzero((ps.k > 0.2) & (boost > 1.3))
            return ps.k[above[0]] if above.size else np.inf

        k_nl_sim = benchmark.pedantic(find_knl, rounds=1, iterations=1)
        k_sigma = halofit.nonlinear_scale()
        print(f"\nsimulation k_nl ~ {k_nl_sim:.2f}, HALOFIT k_sigma = "
              f"{k_sigma:.2f} h/Mpc")
        assert k_sigma / 4 < k_nl_sim < k_sigma * 8

    def test_halofit_z_evolution_tracks_frames(self, benchmark, science_run):
        """HALOFIT's boost at the frame redshifts grows with time the
        same way the measured spectra do qualitatively."""
        halofit = HalofitPower(LinearPower(WMAP7))

        def boosts():
            k = np.array([1.0])
            return {
                z: float(halofit.boost(k, 1.0 / (1.0 + z))[0])
                for z in (3.0, 1.0, 0.0)
            }

        b = benchmark.pedantic(boosts, rounds=1, iterations=1)
        print(f"\nHALOFIT boost at k=1: z=3: {b[3.0]:.2f}, z=1: "
              f"{b[1.0]:.2f}, z=0: {b[0.0]:.2f}")
        assert b[3.0] < b[1.0] < b[0.0]
