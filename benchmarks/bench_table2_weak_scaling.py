"""Table II & Fig. 7 — full-code weak scaling to 1,572,864 cores.

Regenerates every Table II row (PFlops, % of peak, time/substep/particle,
cores x time, memory/rank) from the calibrated full-code model and checks
the headline claims: 13.94 PFlops at 69.2% of peak, ~0.06 ns push time,
and 90% parallel efficiency across the 768x core range.
"""

import pytest

from repro.machine.perfmodel import FullCodeModel

from conftest import print_table


class TestTable2:
    @pytest.fixture(scope="class")
    def model(self):
        return FullCodeModel.calibrated()

    def test_regenerate_table2(self, benchmark, model):
        table = benchmark(model.table2)
        rows = []
        for d in table:
            p, q = d["paper"], d["model"]
            rows.append([
                f"{p.cores:,}", f"{p.np_per_dim}^3",
                f"{p.pflops:.3f}", f"{q.pflops:.3f}",
                f"{p.peak_percent:.1f}", f"{q.peak_percent:.1f}",
                f"{p.time_substep_particle:.2e}",
                f"{q.time_substep_particle:.2e}",
                f"{p.memory_mb_rank:.0f}", f"{q.memory_mb_rank:.0f}",
            ])
        print_table(
            "Table II: weak scaling (paper | model)",
            ["cores", "Np", "PF_p", "PF_m", "%pk_p", "%pk_m",
             "t/ss/p_p", "t/ss/p_m", "MB_p", "MB_m"],
            rows,
        )
        for d in table:
            p, q = d["paper"], d["model"]
            assert q.cores_time_substep == pytest.approx(
                p.cores_time_substep, rel=0.20
            )
            assert q.peak_percent == pytest.approx(p.peak_percent, abs=3.0)
            assert q.memory_mb_rank == pytest.approx(
                p.memory_mb_rank, rel=0.15
            )
            # note: the paper's PFlops and %peak columns are mutually
            # inconsistent by up to ~8% on a few rows (e.g. 32768 cores:
            # 69.02% of 32768 x 12.8 GF = 0.29 PF vs the printed 0.269)
            assert q.pflops == pytest.approx(p.pflops, rel=0.10)

    def test_headline_numbers(self, benchmark, model):
        """'13.94 PFlops at 69.2% of peak and 90% parallel efficiency on
        1,572,864 cores.'"""
        h = benchmark(model.headline)
        assert h["model_pflops"] == pytest.approx(13.94, rel=0.02)
        assert h["model_peak_percent"] == pytest.approx(69.2, abs=1.0)
        print(f"\nheadline: model {h['model_pflops']:.2f} PFlops @ "
              f"{h['model_peak_percent']:.1f}% "
              f"(paper {h['paper_pflops']} @ {h['paper_peak_percent']}%)")

    def test_parallel_efficiency_90_percent(self, benchmark, model):
        """Cores x time/substep grows <= ~1.2x from 2048 to 1.57M cores
        (the paper's columns imply ~85-90% weak-scaling efficiency)."""
        table = benchmark(model.table2)
        first = table[0]["model"].cores_time_substep
        worst = max(d["model"].cores_time_substep for d in table)
        assert worst / first < 1.2

    def test_push_time_supports_throughput_claim(self, benchmark, model):
        """0.06 ns/substep/particle => a trillion-particle run does one
        substep in ~minute: 'runs of 100 billion to trillions of
        particles in a day to a week of wall-clock'."""
        h = benchmark(model.headline)
        t = h["model_time_substep_particle"]
        substep_wall = t * 3.6e12  # the 3.6-trillion-particle benchmark
        assert 100 < substep_wall < 400  # seconds per substep
        # ~300 steps x 5 subcycles => days, not weeks
        total_days = substep_wall * 300 * 5 / 86400
        assert 1 < total_days < 10
