"""Table I — FFT scaling on up to 10240^3 grid points on the BG/Q.

Two parts:

* **measured**: the actual pencil-decomposed FFT of this reproduction,
  timed over simulated rank grids (strong scaling of a fixed-size
  transform, the structure of Table I's first block);
* **modeled**: the calibrated BG/Q FFT model regenerating every published
  Table I row, with tolerances asserted.
"""

import numpy as np
import pytest

from repro.fft import PencilFFT
from repro.machine.fft_model import DistributedFFTModel

from conftest import print_table


class TestMeasuredPencilFFT:
    @pytest.mark.parametrize("ranks", [(1, 1), (2, 2), (4, 2)])
    def test_forward_transform(self, benchmark, ranks):
        """Wall-clock of the reproduction's distributed FFT (32^3)."""
        pr, pc = ranks
        n = 32
        fft = PencilFFT(n, pr, pc)
        rng = np.random.default_rng(0)
        blocks = fft.scatter(rng.standard_normal((n, n, n)))
        result = benchmark(lambda: fft.forward(blocks))
        assert len(result) == pr * pc

    def test_transpose_traffic_strong_scaling(self, benchmark):
        """Per-rank transpose volume shrinks ~1/R — the property that
        makes the strong-scaling block of Table I near-ideal."""

        def volumes():
            return {
                (pr, pc): PencilFFT(32, pr, pc).transpose_bytes_per_rank()
                for pr, pc in [(1, 2), (2, 2), (4, 2), (4, 4)]
            }

        v = benchmark(volumes)
        rows = [[f"{pr}x{pc}", pr * pc, f"{b / 1024:.1f} KiB"]
                for (pr, pc), b in sorted(v.items(), key=lambda kv: kv[0][0] * kv[0][1])]
        print_table("pencil transpose volume per rank (32^3)",
                    ["grid", "ranks", "bytes/rank"], rows)
        assert v[(4, 4)] < v[(1, 2)]


class TestTable1Model:
    def test_regenerate_table1(self, benchmark):
        """Every Table I row from the calibrated model, within 40%."""
        model = benchmark(DistributedFFTModel.calibrated)
        rows = []
        for r in model.table1():
            rows.append([
                r["block"], r["n"], r["ranks"],
                f"{r['paper_s']:.3f}", f"{r['model_s']:.3f}",
                f"{r['ratio']:.2f}",
            ])
            assert abs(r["ratio"] - 1) < 0.40
        print_table(
            "Table I: FFT wall-clock [s], paper vs model",
            ["block", "N", "ranks", "paper", "model", "ratio"],
            rows,
        )
        ratios = [r["ratio"] for r in model.table1()]
        assert np.mean(np.abs(np.array(ratios) - 1)) < 0.20

    def test_strong_scaling_series(self, benchmark):
        """1024^3 block: near-ideal scaling 256 -> 8192 ranks."""
        model = DistributedFFTModel.calibrated()
        series = benchmark(
            lambda: [model.time(1024, r) for r in (256, 512, 1024, 2048, 4096, 8192)]
        )
        speedup = series[0] / series[-1]
        print(f"\nmodel strong-scaling speedup 256->8192 ranks: "
              f"{speedup:.1f}x (ideal 32x, paper 27.9x)")
        assert 15 < speedup <= 33

    def test_weak_scaling_series(self, benchmark):
        """~160^3/rank block: times stay within a 2x band to 262144 ranks
        (paper: 5.25 -> 7.24 s)."""
        model = DistributedFFTModel.calibrated()
        cases = [(4096, 16384), (5120, 32768), (6400, 65536),
                 (8192, 131072), (9216, 262144)]
        series = benchmark(lambda: [model.time(n, r) for n, r in cases])
        assert max(series) / min(series) < 2.0
