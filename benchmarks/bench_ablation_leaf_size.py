"""Ablation A3 — the fat-leaf walk/kernel trade-off (Section III).

"The RCB tree ... decreases the overall force evaluation time by shifting
workload away from the slow tree-walking and into the force kernel.  Up
to a point, doing this actually speeds up the overall calculation: the
time spent in the force kernel goes up but the walk time decreases
faster."

This bench sweeps the leaf capacity on a clustered particle set, timing
tree build + walk separately from kernel work, and verifies (a) walk
work falls steeply with leaf size, (b) kernel work (pair interactions)
grows, and (c) the answer never changes.
"""

import time

import numpy as np
import pytest

from repro.shortrange.grid_force import default_grid_force_fit
from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.rcb_tree import RCBTree
from repro.shortrange.solvers import TreePMShortRange

from conftest import print_table

LEAF_SIZES = [4, 16, 64, 256]


def clustered_cloud(n_clusters=8, per_cluster=120, seed=7):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(2, 14, (n_clusters, 3))
    pos = np.concatenate(
        [c + 0.5 * rng.standard_normal((per_cluster, 3)) for c in centers]
    )
    return pos, np.ones(len(pos))


class TestLeafSizeAblation:
    def test_walk_vs_kernel_tradeoff(self, benchmark):
        pos, masses = clustered_cloud()
        fit = default_grid_force_fit()

        def sweep():
            out = {}
            for leaf in LEAF_SIZES:
                kernel = ShortRangeKernel(fit, spacing=1.0)
                t0 = time.perf_counter()
                tree = RCBTree(pos, masses, leaf_size=leaf)
                leaves = tree.leaves()
                lists = {
                    l: tree.interaction_list(l, kernel.rcut) for l in leaves
                }
                walk_time = time.perf_counter() - t0
                t0 = time.perf_counter()
                for l in leaves:
                    node = tree.node(l)
                    seg = slice(node.start, node.start + node.count)
                    kernel.accumulate(
                        tree.positions[seg],
                        tree.positions[lists[l]],
                        tree.masses[lists[l]],
                    )
                kernel_time = time.perf_counter() - t0
                out[leaf] = {
                    "n_leaves": len(leaves),
                    "walk_s": walk_time,
                    "kernel_s": kernel_time,
                    "interactions": kernel.interaction_count,
                    "mean_list": float(
                        np.mean([len(v) for v in lists.values()])
                    ),
                }
            return out

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        rows = [
            [leaf, r["n_leaves"], f"{r['mean_list']:.0f}",
             f"{r['walk_s'] * 1e3:.1f}", f"{r['kernel_s'] * 1e3:.1f}",
             f"{r['interactions']:.2e}"]
            for leaf, r in results.items()
        ]
        print_table(
            "leaf-size ablation (clustered cloud)",
            ["leaf", "leaves", "mean list", "walk [ms]", "kernel [ms]",
             "interactions"],
            rows,
        )
        # walk work falls steeply with fat leaves ...
        assert results[256]["walk_s"] < 0.5 * results[4]["walk_s"]
        assert results[256]["n_leaves"] < results[4]["n_leaves"] / 10
        # ... while kernel work (pair count) grows
        assert results[256]["interactions"] > results[4]["interactions"]
        # and the shared list grows with the leaf (the accuracy argument:
        # more of the nearby force summed exactly)
        assert results[256]["mean_list"] > results[4]["mean_list"]

    def test_answer_invariant(self, benchmark):
        """Leaf size is a pure performance knob."""
        pos, masses = clustered_cloud()
        fit = default_grid_force_fit()

        def forces(leaf):
            solver = TreePMShortRange(
                ShortRangeKernel(fit, spacing=1.0), leaf_size=leaf
            )
            return solver.accelerations(pos, masses)

        ref = benchmark.pedantic(
            lambda: forces(64), rounds=1, iterations=1
        )
        for leaf in (4, 256):
            assert np.allclose(forces(leaf), ref, atol=1e-11)
