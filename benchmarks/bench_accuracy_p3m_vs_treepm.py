"""Section II accuracy claim — "the P3M and the PPTreePM versions agree
to within 0.1% for the nonlinear power spectrum test in the code
comparison suite."

Identical initial conditions are evolved with both short-range backends;
the bench reports the relative nonlinear P(k) difference and asserts the
0.1% bound.  (At this scale the two backends evaluate algebraically
identical forces, so the agreement is limited only by floating-point
noise — strictly tighter than the paper's production cross-check.)
"""

import numpy as np
import pytest

from repro import HACCSimulation, SimulationConfig
from repro.analysis.power import matter_power_spectrum

from conftest import print_table


def _evolve(backend: str):
    cfg = SimulationConfig(
        box_size=64.0,
        n_per_dim=16,
        z_initial=25.0,
        z_final=3.0,
        n_steps=8,
        n_subcycles=2,
        backend=backend,
        step_spacing="loga",
        seed=99,
    )
    sim = HACCSimulation(cfg)
    sim.run()
    return sim, matter_power_spectrum(
        sim.particles.positions, cfg.box_size, cfg.grid(),
        subtract_shot_noise=False,
    )


class TestBackendAccuracy:
    def test_p3m_vs_pptreepm_power(self, benchmark):
        def compare():
            _, ps_tree = _evolve("treepm")
            _, ps_p3m = _evolve("p3m")
            return ps_tree, ps_p3m

        ps_tree, ps_p3m = benchmark.pedantic(compare, rounds=1, iterations=1)
        rel = np.abs(ps_tree.power - ps_p3m.power) / np.abs(ps_tree.power)
        rows = [
            [f"{k:.3f}", f"{a:.4e}", f"{b:.4e}", f"{r:.2e}"]
            for k, a, b, r in zip(
                ps_tree.k, ps_tree.power, ps_p3m.power, rel
            )
        ]
        print_table(
            "nonlinear P(k): PPTreePM vs P3M",
            ["k [h/Mpc]", "P_treepm", "P_p3m", "rel diff"],
            rows,
        )
        print(f"\nmax relative difference: {rel.max():.2e} "
              "(paper bound: 1e-3)")
        assert rel.max() < 1e-3

    def test_final_positions_agree(self, benchmark):
        """Stronger than the paper's statistic: particle-level agreement."""

        def compare():
            sim_a, _ = _evolve("treepm")
            sim_b, _ = _evolve("p3m")
            d = sim_a.particles.positions - sim_b.particles.positions
            d -= 64.0 * np.round(d / 64.0)
            return np.abs(d).max()

        max_dev = benchmark.pedantic(compare, rounds=1, iterations=1)
        print(f"\nmax particle position deviation: {max_dev:.2e} Mpc/h")
        assert max_dev < 1e-8
