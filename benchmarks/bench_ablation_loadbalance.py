"""Ablation — the Section VI optimization roadmap, quantified.

Two of the paper's named future optimizations are implemented and
measured here:

* **multiple trees per rank** ("improve (nodal) load balancing by using
  multiple trees at each rank, enabling an improved threading of the
  tree-build"): max-block particle count shrinks ~1/n_trees even on
  clustered data, bounding the longest single-thread build;
* **threaded forward CIC** ("fully thread all the components of the
  long-range solver, in particular the forward CIC algorithm"):
  privatization gives perfect worker balance at n_workers x grid memory;
  slab ownership gives shared-grid memory but inherits the particle
  distribution's imbalance.
"""

import numpy as np
import pytest

from repro.grid.cic import cic_deposit
from repro.grid.threaded_cic import ThreadedCIC
from repro.shortrange.grid_force import default_grid_force_fit
from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.multitree import MultiTreeShortRange

from conftest import print_table


def clustered_cloud(rng, n_dense=1600, n_diffuse=400, box=16.0):
    pos = np.concatenate(
        [
            np.mod(rng.standard_normal((n_dense, 3)) * 0.6 + box / 3, box),
            rng.uniform(0, box, (n_diffuse, 3)),
        ]
    )
    return pos, np.ones(len(pos))


class TestMultiTreeLoadBalance:
    def test_build_work_bounded(self, benchmark, rng):
        pos, masses = clustered_cloud(rng)
        fit = default_grid_force_fit()

        def sweep():
            out = {}
            for n_trees in (1, 2, 4, 8):
                solver = MultiTreeShortRange(
                    ShortRangeKernel(fit, spacing=1.0),
                    leaf_size=32,
                    n_trees=n_trees,
                )
                solver.accelerations(pos, masses, box_size=16.0)
                out[n_trees] = solver.last_balance_report()
            return out

        reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
        rows = [
            [n, f"{max(r['particles_per_block']):.0f}",
             f"{r['build_imbalance']:.2f}", f"{r['work_imbalance']:.2f}"]
            for n, r in reports.items()
        ]
        print_table(
            "multi-tree load balance (clustered cloud, 2000 particles)",
            ["trees", "max block", "build imbalance", "work imbalance"],
            rows,
        )
        # the largest single build shrinks ~1/n_trees
        assert max(reports[8]["particles_per_block"]) < 0.2 * max(
            reports[1]["particles_per_block"]
        )
        # and stays balanced despite the clustering
        assert reports[8]["build_imbalance"] < 1.2

    def test_answers_identical_across_tree_counts(self, benchmark, rng):
        pos, masses = clustered_cloud(rng, n_dense=400, n_diffuse=100)
        fit = default_grid_force_fit()

        def both():
            one = MultiTreeShortRange(
                ShortRangeKernel(fit, 1.0), leaf_size=32, n_trees=1
            ).accelerations(pos, masses, box_size=16.0)
            eight = MultiTreeShortRange(
                ShortRangeKernel(fit, 1.0), leaf_size=32, n_trees=8
            ).accelerations(pos, masses, box_size=16.0)
            return float(np.abs(one - eight).max())

        dev = benchmark.pedantic(both, rounds=1, iterations=1)
        print(f"\nmax deviation 1 vs 8 trees: {dev:.2e}")
        assert dev < 1e-11


class TestThreadedCICAblation:
    def test_strategy_tradeoffs(self, benchmark, rng):
        pos = rng.uniform(0, 32.0, (20000, 3))
        pos[:10000, 0] *= 0.25  # half the particles crowd low-x slabs
        n = 32

        def sweep():
            out = {}
            for strategy in ThreadedCIC.STRATEGIES:
                t = ThreadedCIC(8, strategy)
                grid = t.deposit(pos, n, 32.0)
                out[strategy] = (t.last_report, grid)
            return out

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        serial = cic_deposit(pos, n, 32.0)
        rows = []
        for strategy, (report, grid) in results.items():
            rows.append([
                strategy,
                f"{report.load_imbalance:.2f}",
                f"{report.private_grid_bytes / 1024:.0f} KiB",
                f"{np.abs(grid - serial).max():.1e}",
            ])
        print_table(
            "threaded forward-CIC strategies (8 workers, skewed input)",
            ["strategy", "load imbalance", "grid memory", "max dev"],
            rows,
        )
        priv, _ = results["privatize"]
        slab, _ = results["slab"]
        # privatization: balanced but n_workers x memory
        assert priv.load_imbalance < 1.01
        assert priv.private_grid_bytes == 8 * n**3 * 8
        # slab: shared memory but inherits the skew
        assert slab.private_grid_bytes == n**3 * 8
        assert slab.load_imbalance > 1.5
        # both exact
        for _, (_, grid) in results.items():
            assert np.allclose(grid, serial, atol=1e-12)
