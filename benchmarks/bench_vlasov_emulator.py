"""Two framing claims of Section I, made quantitative.

1. "The Vlasov-Poisson equation is very difficult to solve directly
   because of its high dimensionality ... Consequently, N-body methods
   are used."  We solve the 1+1D problem directly (phase-space grid) and
   with the N-body analogue (sheet model), show they agree, and compare
   their state sizes — then extrapolate the 3+3D grid cost that makes
   direct solution impossible at survey scale.

2. "Scientific inference ... is a statistical inverse problem where many
   runs of the forward problem are needed ... hundreds of large-scale
   simulations will be required."  The emulator bench measures the
   design-train-predict pipeline: percent-level P(k) accuracy at a
   ~1000x+ per-evaluation speedup over the forward model.
"""

import time

import numpy as np
import pytest

from repro.cosmology.emulator import PowerSpectrumEmulator
from repro.vlasov import SheetModel, VlasovPoisson1D

from conftest import print_table


class TestVlasovVsNbody:
    def test_methods_agree_and_costs_diverge(self, benchmark):
        def run_both():
            vp = VlasovPoisson1D(128, 256, 1.0, 0.8)
            vp.set_cold_perturbation(0.05)
            sm = SheetModel.cold_perturbation(4000, 1.0, 0.05)
            t0 = time.perf_counter()
            vp.run(1.5, 0.02)
            t_vlasov = time.perf_counter() - t0
            t0 = time.perf_counter()
            sm.run(1.5, 0.02)
            t_nbody = time.perf_counter() - t0
            dv = vp.density_contrast()
            ds = sm.density_contrast(128)
            err = float(np.abs(dv - ds).max() / np.abs(ds).max())
            return err, t_vlasov, t_nbody, vp.f.size, sm.x.size * 2

        err, t_v, t_n, grid_state, nbody_state = benchmark.pedantic(
            run_both, rounds=1, iterations=1
        )
        rows = [
            ["phase-space grid", f"{grid_state:,}", f"{t_v:.2f}"],
            ["sheet N-body", f"{nbody_state:,}", f"{t_n:.2f}"],
        ]
        print_table(
            "1+1D Vlasov-Poisson: direct vs N-body (t = 1.5)",
            ["method", "state size", "wall [s]"],
            rows,
        )
        print(f"density-profile disagreement: {100 * err:.1f}%")
        assert err < 0.12

    def test_six_dimensional_extrapolation(self, benchmark):
        """State-size ladder for direct integration in 2, 4, 6 phase
        dimensions at 128 points/axis vs the paper's 3.6e12 particles."""

        def ladder():
            return {d: 128**d for d in (2, 4, 6)}

        sizes = benchmark(ladder)
        rows = [
            [f"{d // 2}+{d // 2}D", f"{s:.2e} cells"]
            for d, s in sizes.items()
        ]
        rows.append(["paper's N-body", "3.6e+12 particles x 6 coords"])
        print_table(
            "direct Vlasov state vs dimensionality",
            ["problem", "state"],
            rows,
        )
        # the 6-D grid at survey resolution (grid >= 1e4 per axis for the
        # paper's dynamic range) is beyond any machine: ~1e24 cells
        survey_cells = (1e4) ** 6
        paper_particles = 3.6e12 * 6
        assert survey_cells / paper_particles > 1e9


class TestEmulatorThroughput:
    def test_design_train_predict(self, benchmark):
        def pipeline():
            em = PowerSpectrumEmulator(n_design=16, seed=11)
            errs = em.validate(n_test=3, seed=12)
            t0 = time.perf_counter()
            for _ in range(50):
                em(0.27, 0.8, -1.0)
            per_call = (time.perf_counter() - t0) / 50
            t0 = time.perf_counter()
            em.truth(0.27, 0.8, -1.0)
            forward = time.perf_counter() - t0
            return errs, per_call, forward

        errs, per_call, forward = benchmark.pedantic(
            pipeline, rounds=1, iterations=1
        )
        print(f"\nemulator: max |dlnP| = {100 * errs.max():.2f}% over "
              f"held-out cosmologies; {per_call * 1e6:.0f} us/prediction vs "
              f"{forward * 1e3:.0f} ms/forward solve "
              f"({forward / per_call:.0f}x)")
        assert errs.max() < 0.05
        assert forward / per_call > 100

    def test_mcmc_feasibility_bookkeeping(self, benchmark):
        """The inverse-problem arithmetic: a 1e5-sample MCMC needs 1e5
        forward evaluations; at the paper's per-simulation cost that is
        centuries, emulated it is seconds — the reason the paper's
        throughput requirement is 'hundreds' of simulations (to train),
        not hundreds of thousands (to sample)."""

        def bookkeeping():
            mcmc_samples = 1e5
            sim_hours = 14.0  # the paper's 16-rack science test run
            direct_years = mcmc_samples * sim_hours / (24 * 365)
            emulated_seconds = mcmc_samples * 150e-6
            return direct_years, emulated_seconds

        years, seconds = benchmark(bookkeeping)
        print(f"\nMCMC with direct simulations: ~{years:.0f} machine-years; "
              f"emulated: ~{seconds:.0f} s")
        assert years > 100
        assert seconds < 600
