"""Ablation A2 — the spectral filter (Eq. 5) and force matching.

Sweeps the filter parameters (sigma, ns) and measures (a) the CIC
anisotropy noise of the PM pair force and (b) the radius where the grid
force joins the Newtonian asymptote.  The nominal (0.8, 3) choice is the
paper's: it suppresses anisotropy enough to hand over to the short-range
force at only 3 grid cells, "with important ramifications for
performance".
"""

import numpy as np
import pytest

from repro.shortrange.grid_force import measure_grid_force

from conftest import print_table

SWEEP = [
    (0.0, 0),   # unfiltered CIC
    (0.4, 1),
    (0.8, 3),   # nominal
    (1.2, 3),
]


def _noise_and_handover(sigma: float, ns: int):
    s, fr, ft = measure_grid_force(
        32, sigma=sigma, ns=ns, n_sources=6, n_samples_per_source=300, seed=3
    )
    near = s < 1.0
    noise = float(np.median(ft[near]))
    # handover radius: first radial bin from which the binned median grid
    # force stays within 2.5% of the Newtonian asymptote
    r = np.sqrt(s)
    ratio = fr * s**1.5
    edges = np.arange(0.5, 4.51, 0.25)
    medians = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        sel = (r >= lo) & (r < hi)
        medians.append(np.median(ratio[sel]) if sel.any() else np.nan)
    medians = np.asarray(medians)
    handover = None
    for i in range(len(medians)):
        tail = medians[i:]
        tail = tail[np.isfinite(tail)]
        if tail.size and np.all(np.abs(tail - 1.0) < 0.025):
            handover = float(edges[i])
            break
    return noise, handover


class TestFilterAblation:
    def test_sweep(self, benchmark):
        results = benchmark.pedantic(
            lambda: {p: _noise_and_handover(*p) for p in SWEEP},
            rounds=1,
            iterations=1,
        )
        rows = [
            [f"{sig}", f"{ns}", f"{noise:.4f}",
             f"{hand:.2f}" if hand else ">4.5"]
            for (sig, ns), (noise, hand) in results.items()
        ]
        print_table(
            "filter ablation: sub-cell anisotropy noise and handover radius",
            ["sigma", "ns", "noise", "handover [cells]"],
            rows,
        )
        nominal_noise, nominal_hand = results[(0.8, 3)]
        raw_noise, _ = _noise_and_handover(0.0, 0)
        # nominal filter cuts anisotropy several-fold
        assert nominal_noise < 0.25 * raw_noise
        # and the handover lands at ~3 grid cells (the paper's matching
        # radius), not far beyond
        assert nominal_hand is not None
        assert nominal_hand < 4.0

    def test_stronger_filter_pushes_handover_out(self, benchmark):
        """Over-filtering trades performance: sigma=1.2 suppresses more
        noise but delays the Newtonian asymptote, forcing a larger rcut
        and a more expensive short-range sum."""
        noise_nominal, hand_nominal = benchmark.pedantic(
            lambda: _noise_and_handover(0.8, 3), rounds=1, iterations=1
        )
        noise_heavy, hand_heavy = _noise_and_handover(1.2, 3)
        print(f"\nsigma=0.8: noise {noise_nominal:.4f}, handover "
              f"{hand_nominal:.2f}; sigma=1.2: noise {noise_heavy:.4f}, "
              f"handover {hand_heavy if hand_heavy else '>4.5'}")
        assert noise_heavy <= noise_nominal * 1.1
        if hand_heavy is not None:
            assert hand_heavy >= hand_nominal
