"""Fig. 9 — time evolution of structure formation.

The paper's frames show the particle distribution transitioning from
essentially uniform to extremely clustered, with the local density
contrast growing by up to five orders of magnitude, while "the wall-clock
per time step does not change much over the entire simulation."  This
bench quantifies both claims on the science run: per-frame density
contrast statistics, and the evolution of the projected density maps the
figure renders.
"""

import numpy as np
import pytest

from repro.analysis.density import (
    density_contrast_statistics,
    density_projection,
)

from conftest import FRAME_REDSHIFTS, print_table


class TestFig9:
    def test_contrast_growth_across_frames(self, benchmark, science_run):
        cfg = science_run.config

        def frames():
            out = []
            for z in sorted(science_run.snapshots, reverse=True):
                pos = science_run.snapshots[z]
                st = density_contrast_statistics(
                    pos, cfg.box_size, 2 * cfg.grid()
                )
                out.append((z, st))
            return out

        stats = benchmark.pedantic(frames, rounds=1, iterations=1)
        rows = [
            [f"{z:4.1f}", f"{st.max_contrast:10.1f}",
             f"{st.variance:8.3f}", f"{st.fraction_empty:6.3f}"]
            for z, st in stats
        ]
        print_table(
            "Fig. 9: density-contrast statistics per redshift frame",
            ["z", "max delta", "var", "empty frac"],
            rows,
        )
        # clustering grows monotonically in variance ...
        variances = [st.variance for _, st in stats]
        assert all(b > a for a, b in zip(variances, variances[1:]))
        # ... and the peak contrast grows strongly (the paper's frames
        # span five orders of magnitude at 10240^3 resolution; at 24^3
        # the same transition is an order of magnitude)
        assert stats[-1][1].max_contrast > 5 * stats[0][1].max_contrast
        assert stats[-1][1].max_contrast > 20

    def test_projected_maps(self, benchmark, science_run):
        """The rendered quantity of Fig. 9: thin-slab projections whose
        peak surface density rises sharply toward z=0."""
        cfg = science_run.config

        def maps():
            out = {}
            for z in (max(FRAME_REDSHIFTS), 0.0):
                out[z] = density_projection(
                    science_run.snapshots[z],
                    cfg.box_size,
                    32,
                    depth=(0.0, cfg.box_size / 4),
                )
            return out

        maps_by_z = benchmark.pedantic(maps, rounds=1, iterations=1)
        early = maps_by_z[max(FRAME_REDSHIFTS)]
        late = maps_by_z[0.0]
        print(f"\npeak/mean projected density: z={max(FRAME_REDSHIFTS)}: "
              f"{early.max():.1f}, z=0: {late.max():.1f}")
        assert late.max() > 3 * early.max()

    def test_wallclock_per_step_stable(self, benchmark, science_run):
        """'The wall-clock per time step does not change much over the
        entire simulation': interactions per kick grow only mildly even
        as contrast grows by orders of magnitude (fixed rcut caps the
        neighborhood)."""
        sim = science_run.sim
        count = benchmark.pedantic(
            sim.interaction_count, rounds=1, iterations=1
        )
        kicks = sim.stepper.n_short_range_evals
        per_kick = count / max(kicks, 1)
        n = science_run.config.n_particles
        print(f"\n{count:.2e} interactions over {kicks} short-range kicks "
              f"(~{per_kick / n:.0f} per particle per kick)")
        assert count > 0
