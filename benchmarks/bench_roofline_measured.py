"""Measured roofline record — the data behind ``--check-roofline``.

Runs the same tiny instrumented TreePM demo at both precisions, pairs
the counted analytic work (:mod:`repro.instrument.perfcount`) with the
measured span seconds and this host's calibrated peak
(:mod:`repro.machine.calibrate`), and leaves a repo-root
``BENCH_roofline.json`` carrying per-phase achieved GFLOP/s, arithmetic
intensity, and fraction of calibrated peak.  The CI gate
(``check_regression.py --check-roofline``) then holds three invariants:
the shortrange/cic/fft counters are wired (nonzero flops), every
fraction of peak is sane, and the pair phase's f32 arithmetic intensity
stays at or above f64 — the bandwidth half of the paper's
mixed-precision argument, reproduced from the byte accounting alone.
"""

import tempfile
import time
from pathlib import Path

import pytest

from repro import instrument
from repro.config import SimulationConfig
from repro.core.simulation import HACCSimulation
from repro.instrument import Registry, roofline_table, work_summary
from repro.instrument.report import write_bench_record
from repro.machine.calibrate import calibrate

from conftest import print_table

REPO_ROOT = Path(__file__).resolve().parents[1]

#: phases the record must carry with nonzero counted flops
REQUIRED_PHASES = ("shortrange", "cic", "fft")


def _demo_config(precision: str) -> SimulationConfig:
    return SimulationConfig(
        box_size=32.0,
        n_per_dim=12,
        z_initial=25.0,
        z_final=20.0,
        n_steps=3,
        backend="treepm",
        dtype=precision,
        seed=11,
    )


class TestMeasuredRoofline:
    def test_roofline_record(self, benchmark):
        def measure() -> dict:
            out = {}
            for precision in ("f64", "f32"):
                reg = Registry()
                sim = HACCSimulation(_demo_config(precision))
                with instrument.use(reg):
                    t0 = time.perf_counter()
                    sim.run()
                    wall = time.perf_counter() - t0
                out[precision] = {
                    "phases": work_summary(reg),
                    "wall_s": wall,
                }
            return out

        runs = benchmark.pedantic(measure, rounds=1, iterations=1)

        # calibrate into a scratch dir: the bench record embeds the
        # measurement, the repo never carries a host-specific cache
        with tempfile.TemporaryDirectory() as tmp:
            cal = calibrate(root=tmp)

        payload_runs: dict = {}
        pair_ai: dict = {}
        table_rows = []
        for precision, data in runs.items():
            phases = data["phases"]
            table = roofline_table(phases, cal)
            by_name = {row["name"]: row for row in table["phases"]}

            # the counters must be wired for every compute phase
            for name in REQUIRED_PHASES:
                assert name in by_name, (
                    f"{precision}: phase {name!r} missing from the "
                    f"work summary — its counters never fired"
                )
                assert by_name[name]["flops"] > 0
                frac = by_name[name]["frac_peak"]
                assert 0.0 < frac <= 1.25, (
                    f"{precision}/{name}: fraction of peak {frac:.4f} "
                    f"is not sane"
                )
                table_rows.append(
                    [
                        f"{precision}/{name}",
                        f"{by_name[name]['seconds']:.4f}",
                        f"{by_name[name]['gflops']:.3f}",
                        f"{by_name[name]['gbytes_per_s']:.3f}",
                        f"{100 * frac:.2f}%",
                        by_name[name]["bound_by"],
                    ]
                )

            pair_ai[precision] = by_name["shortrange"][
                "arithmetic_intensity"
            ]
            payload_runs[precision] = {
                "wall_s": data["wall_s"],
                "phases": by_name,
                "total": table["total"],
            }

        print_table(
            f"Measured roofline (peak {cal.peak_gflops:.1f} GFLOP/s, "
            f"triad {cal.stream_gbs:.1f} GB/s)",
            ["phase", "seconds", "GFLOP/s", "GB/s", "% peak", "bound"],
            table_rows,
        )

        # same pair flops, half the streamed bytes: f32 AI >= f64 AI
        assert pair_ai["f32"] >= pair_ai["f64"], (
            f"pair AI f32 {pair_ai['f32']:.3f} < f64 "
            f"{pair_ai['f64']:.3f} — byte accounting lost its "
            f"precision dependence"
        )
        assert pair_ai["f32"] == pytest.approx(2 * pair_ai["f64"])

        payload = {
            "nodeid": "bench_roofline_measured.py::roofline",
            "duration_s": sum(d["wall_s"] for d in runs.values()),
            "problem": {
                "box_size": 32.0,
                "n_per_dim": 12,
                "n_steps": 3,
                "backend": "treepm",
            },
            "calibration": cal.to_dict(),
            "runs": payload_runs,
            "pair_ai": pair_ai,
        }
        path = write_bench_record("roofline", payload, directory=REPO_ROOT)
        print(f"record -> {path}")
