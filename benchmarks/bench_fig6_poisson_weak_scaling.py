"""Fig. 6 — weak scaling of the Poisson solver on three architectures.

* **modeled**: time per step per particle vs ranks for Roadrunner
  (slab-decomposed FFT), BG/P and BG/Q (pencil-decomposed), asserting the
  paper's structure: near-ideal (1/R) scaling for all three, the BG/Q
  lowest, and the slab decomposition's hard rank ceiling;
* **measured**: the reproduction's own distributed Poisson solve across
  growing simulated rank grids at fixed per-rank load.
"""

import numpy as np
import pytest

from repro.fft import PencilFFT
from repro.grid.poisson import SpectralPoissonSolver
from repro.machine.architectures import ARCHITECTURES

from conftest import print_table

RANKS = [64, 256, 1024, 4096, 16384, 65536, 131072]
PARTICLES_PER_RANK = 2.0e6


class TestFig6Model:
    def test_three_architecture_series(self, benchmark):
        def compute():
            out = {}
            for key, arch in ARCHITECTURES.items():
                model = arch.fft_model()
                series = []
                for r in RANKS:
                    n = round((PARTICLES_PER_RANK * r) ** (1 / 3))
                    if r > arch.rank_limit(n) or r > arch.max_ranks:
                        series.append(None)  # beyond this machine's reach
                        continue
                    series.append(
                        model.poisson_time_per_particle(r, PARTICLES_PER_RANK)
                    )
                out[key] = series
            return out

        series = benchmark(compute)

        rows = []
        for key, vals in series.items():
            rows.append(
                [ARCHITECTURES[key].name]
                + [
                    f"{v * 1e9:.3f}" if v is not None else "--"
                    for v in vals
                ]
            )
        print_table(
            "Fig. 6: Poisson-solver time per step per particle [ns]",
            ["architecture"] + [str(r) for r in RANKS],
            rows,
        )

        bgq, bgp, rr = series["bgq"], series["bgp"], series["roadrunner"]
        # BG/Q fastest wherever machines overlap
        for a, b in zip(bgq, bgp):
            if a is not None and b is not None:
                assert a < b
        # near-ideal scaling: time/particle falls ~1/R.  The model keeps
        # the slow torus-extent creep seen in Table I's weak block, so
        # allow up to ~5x above the pure 1/R line at the far end of the
        # 2048x rank range.
        ideal = bgq[0] * RANKS[0] / np.array(RANKS[: len(bgq)])
        for v, i in zip(bgq, ideal):
            assert i <= v < 5.0 * i
        # slab ceiling: Roadrunner cannot reach the largest configurations
        assert rr[-1] is None

    def test_slab_ceiling_is_structural(self, benchmark):
        """Nrank < N for slab vs Nrank < N^2 for pencil (Section IV.A)."""
        arch = ARCHITECTURES["roadrunner"]
        limit = benchmark(lambda: arch.rank_limit(1024))
        assert limit == 1024
        assert ARCHITECTURES["bgq"].rank_limit(1024) == 1024**2


class TestMeasuredDistributedPoisson:
    @pytest.mark.parametrize("grid", [(1, 1), (2, 2), (4, 4)])
    def test_force_solve(self, benchmark, grid):
        """Real distributed Poisson force solve over simulated ranks.

        Fixed per-rank load is impossible in-process (all ranks share one
        CPU), so this times the fixed-size solve at increasing rank
        counts — communication volume grows while math stays constant."""
        pr, pc = grid
        n = 16
        solver = SpectralPoissonSolver(n, 32.0)
        rng = np.random.default_rng(0)
        delta = rng.standard_normal((n, n, n))
        delta -= delta.mean()
        pencil = PencilFFT(n, pr, pc)
        result = benchmark(
            lambda: solver.force_grids_distributed(delta, pencil)
        )
        assert len(result) == 3
