"""Section IV.B — node performance counters of the 96-rack run.

The paper prints a remarkable set of hardware-counter numbers for the
full 1,572,864-core run.  This bench regenerates every one of them from
the instruction-mix/roofline model (which contains no fitted constants —
only the counter inputs and BQC issue rules) and asserts the paper's
derived values:

* max throughput 100/56.10 = 1.783 instructions/cycle;
* completed 1.508 IPC = 85% of the issue ceiling;
* 142.32 GFlops/node = 69.5% of the 204.8 peak;
* memory traffic 0.344 of 18 B/cycle — a 52x headroom that places HACC
  deep in the compute-bound regime ("very high rate of data reuse").
"""

import pytest

from repro.machine.roofline import InstructionMixModel

from conftest import print_table


class TestSectionIVBCounters:
    def test_counter_table(self, benchmark):
        model = InstructionMixModel()
        s = benchmark(model.summary)
        rows = [
            ["FPU instruction fraction", "56.10%", f"{100 * s['fpu_fraction']:.2f}%"],
            ["max instructions/cycle", "1.783", f"{s['max_ipc']:.3f}"],
            ["completed instructions/cycle", "1.508", f"{s['measured_ipc']:.3f}"],
            ["issue-rate efficiency", "85%", f"{100 * s['issue_efficiency']:.1f}%"],
            ["L1 hit rate", "99.62%", f"{100 * s['l1_hit_rate']:.2f}%"],
            ["memory bandwidth headroom", "~52x", f"{s['bandwidth_headroom']:.1f}x"],
        ]
        print_table(
            "Section IV.B node counters (paper | model)",
            ["counter", "paper", "model"],
            rows,
        )
        assert s["max_ipc"] == pytest.approx(1.783, abs=0.001)
        assert s["issue_efficiency"] == pytest.approx(0.85, abs=0.01)
        assert s["bandwidth_headroom"] == pytest.approx(52.3, abs=0.1)

    def test_gflops_consistency(self, benchmark):
        """The three counter families (instruction rate, flop counters,
        peak fraction) are mutually consistent."""
        model = InstructionMixModel()

        def derive():
            f = model.implied_flops_per_fpu_instruction(142.32)
            return f, model.sustained_node_gflops(f)

        f, gflops = benchmark(derive)
        print(f"\nimplied flops per FPU instruction: {f:.2f} "
              "(QPX FMA = 8, non-FMA = 4; kernel mix 16-of-26 FMA)")
        assert 4.0 < f < 8.0
        assert gflops == pytest.approx(142.32, rel=1e-12)
        assert gflops * 1e9 / model.node.flops_per_node_peak == pytest.approx(
            0.695, abs=0.001
        )

    def test_compute_bound_placement(self, benchmark):
        model = InstructionMixModel()
        point = benchmark(model.roofline)
        print(f"\narithmetic intensity: {point.arithmetic_intensity:.0f} "
              f"flops/byte; memory-bound: {point.memory_bound}")
        assert not point.memory_bound
        assert point.arithmetic_intensity > 100

    def test_byte_per_flop_future_argument(self, benchmark):
        """Section IV.C: 'the (memory) byte/flop ratio could easily
        evolve to being worse by a factor of 10' — even then HACC's
        measured intensity keeps it compute bound."""
        degraded = InstructionMixModel(
            memory_peak_bytes_per_cycle=1.8  # 10x worse byte/flop machine
        )
        point = benchmark(degraded.roofline)
        assert not point.memory_bound
