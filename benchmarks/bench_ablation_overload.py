"""Ablation A4 — particle overloading depth.

"The typical memory overhead cost for a large run is ~10%" (Section II).
The overhead is pure geometry: ``prod (w_i + 2d)/w_i - 1`` for rank-domain
widths w and depth d.  This bench (a) measures the realized replica
fraction against the geometric prediction across depths, (b) evaluates
the production-geometry bookkeeping behind the ~10% claim, and (c) shows
the correctness cliff: with depth below the force cutoff, rank-local
forces near boundaries become wrong.
"""

import numpy as np
import pytest

from repro.parallel.decomposition import DomainDecomposition
from repro.parallel.overload import OverloadExchange
from repro.shortrange.grid_force import default_grid_force_fit
from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.solvers import TreePMShortRange

from conftest import print_table


class TestOverloadAblation:
    def test_memory_overhead_vs_depth(self, benchmark):
        box = 100.0
        decomp = DomainDecomposition(box, (2, 2, 2))
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, box, (30000, 3))
        mom = np.zeros_like(pos)

        def sweep():
            out = {}
            for depth in (2.0, 5.0, 10.0, 20.0):
                ex = OverloadExchange(decomp, depth)
                domains = ex.distribute(pos, mom)
                passive = sum(d.n_passive for d in domains)
                out[depth] = passive / pos.shape[0]
            return out

        fractions = benchmark.pedantic(sweep, rounds=1, iterations=1)
        rows = []
        for depth, frac in fractions.items():
            geo = decomp.overload_volume_factor(depth) - 1.0
            rows.append([depth, f"{100 * frac:.1f}%", f"{100 * geo:.1f}%"])
            assert frac == pytest.approx(geo, rel=0.10)
        print_table(
            "overload replica overhead vs depth (50 Mpc/h domains)",
            ["depth [Mpc/h]", "measured", "geometric"],
            rows,
        )

    def test_production_overhead_is_ten_percent(self, benchmark):
        """The paper's bookkeeping: a large run (Table II row 1 geometry,
        ~113-227 Mpc domains) with an overload depth of ~4 grid cells
        (covering rcut + drift) costs ~10% extra particles."""

        def production():
            decomp = DomainDecomposition(1814.0, (16, 8, 16))
            depth = 3.0 * 1814.0 / 1600.0  # rcut = 3 grid cells
            return decomp.overload_volume_factor(depth) - 1.0

        overhead = benchmark(production)
        print(f"\nproduction-geometry overload overhead: "
              f"{100 * overhead:.1f}% (paper: ~10%)")
        assert 0.05 < overhead < 0.20  # same ballpark as the paper's ~10%

    def test_insufficient_depth_breaks_forces(self, benchmark):
        """Depth below rcut loses boundary sources: the rank-local force
        near domain edges deviates from the global answer — why the
        refresh cadence and depth are tied to the force cutoff."""
        box = 64.0
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, box, (1500, 3))
        masses = np.ones(1500)
        fit = default_grid_force_fit()
        kernel = ShortRangeKernel(fit, spacing=box / 16)  # rcut = 12
        solver = TreePMShortRange(kernel, leaf_size=32)
        reference = solver.accelerations(pos, masses, box_size=box)
        decomp = DomainDecomposition(box, (2, 1, 1))

        def worst_error(depth):
            ex = OverloadExchange(decomp, depth)
            domains = ex.distribute(pos, np.zeros_like(pos))
            err = 0.0
            for dom in domains:
                order = np.argsort(~dom.active, kind="stable")
                p = dom.positions[order]
                m = dom.masses[order]
                ids = dom.ids[order]
                n_act = dom.n_active
                local = solver.accelerations_cloud(p, m, n_act)
                scale = np.abs(reference).max()
                err = max(
                    err,
                    float(
                        np.abs(local - reference[ids[:n_act]]).max() / scale
                    ),
                )
            return err

        errors = benchmark.pedantic(
            lambda: {d: worst_error(d) for d in (4.0, 12.5)},
            rounds=1,
            iterations=1,
        )
        print(f"\nrelative force error: depth 4 (< rcut): "
              f"{errors[4.0]:.3f}; depth 12.5 (> rcut): {errors[12.5]:.2e}")
        assert errors[12.5] < 1e-10
        assert errors[4.0] > 1e-3
