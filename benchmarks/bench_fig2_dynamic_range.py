"""Fig. 2 — zoom-in visualization / global spatial dynamic range.

The figure zooms from the full box down to a halo-hosting sub-volume,
illustrating a global dynamic range of ~1e6 (Gpc box / kpc force
resolution).  At laptop scale the same construction is: nested zooms
around the densest structure, with the realized density climbing at
every level, plus the formal dynamic-range bookkeeping (box size over
force resolution), which reaches the paper's 1e6 at production
parameters.
"""

import numpy as np
import pytest

from repro.analysis.density import zoom_series
from repro.analysis.halos import fof_halos

from conftest import print_table


class TestFig2:
    def test_zoom_ladder(self, benchmark, science_run):
        cfg = science_run.config
        pos = science_run.final_positions
        cat = fof_halos(pos, cfg.box_size, b=0.2, min_members=8)
        assert cat.n_halos > 0, "no halo to zoom into"
        center = cat.centers[0]
        sizes = [cfg.box_size, cfg.box_size / 4, cfg.box_size / 16]

        levels = benchmark.pedantic(
            lambda: zoom_series(pos, cfg.box_size, center, sizes, n=32),
            rounds=1,
            iterations=1,
        )
        rows = [
            [f"{lv.size:6.2f}", lv.n_particles, f"{lv.max_over_mean:9.1f}"]
            for lv in levels
        ]
        print_table(
            "Fig. 2: zoom ladder around the most massive halo",
            ["window [Mpc/h]", "particles", "peak/mean"],
            rows,
        )
        # deeper zooms concentrate on denser material: mean density of
        # the selected sub-volume rises at every level
        densities = [
            lv.n_particles / lv.size**3 for lv in levels
        ]
        assert densities[1] > densities[0]
        assert densities[2] > densities[1]
        # the innermost window still holds a resolved structure
        assert levels[-1].n_particles > 20

    def test_formal_dynamic_range_bookkeeping(self, benchmark):
        """Production bookkeeping: (9.14 Gpc box) / (0.007 Mpc force
        resolution) ~ 1.3e6 — 'the global spatial dynamic range covered
        by the simulation, ~1e6'."""

        def production():
            box_mpc = 9140.0
            force_resolution = 0.007  # Mpc, from Section V
            return box_mpc / force_resolution

        dr = benchmark(production)
        print(f"\nproduction dynamic range: {dr:.2e}")
        assert 1e6 < dr < 2e6

    def test_zoom_volume_scaling(self, benchmark, science_run):
        """A (7 Mpc)^3 sub-volume of the (9.14 Gpc)^3 box is a volume
        fraction of ~4.5e-10 — the figure's nesting depth; at our scale
        the same relative ladder applies."""
        cfg = science_run.config

        def fraction():
            return (cfg.box_size / 16) ** 3 / cfg.box_size**3

        frac = benchmark(fraction)
        assert frac == pytest.approx(16**-3)
