"""Shared fixtures for the benchmark harness.

``science_run`` evolves one small TreePM simulation from z=25 to z=0 with
snapshots at the paper's Fig. 9/10 redshift frames; the figure benches
(Figs. 2, 9, 10, 11) analyze it.  It is session-scoped: the run happens
once per benchmark session.

Every bench prints the paper-vs-reproduction rows it regenerates (run
with ``-s`` to see them inline); tolerances are asserted so the bench
suite doubles as a regression gate on the reproduction quality.

Each bench additionally leaves a machine-readable ``BENCH_<name>.json``
record (outcome, duration, and — when instrumentation is enabled — the
section/counter summary) under ``benchmarks/records/`` via
:func:`repro.instrument.report.write_bench_record`; point
``REPRO_BENCH_DIR`` elsewhere to redirect them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np
import pytest

from repro import HACCSimulation, SimulationConfig
from repro.instrument import get_registry, get_telemetry
from repro.instrument.health import worst_severity
from repro.instrument.report import write_bench_record
from repro.resilience.faults import get_fault_plan

#: redshift frames of Figs. 9/10
FRAME_REDSHIFTS = (5.5, 3.0, 1.9, 0.9, 0.4, 0.0)


@dataclass
class ScienceRun:
    """A completed small-scale science run plus its snapshot ladder."""

    config: SimulationConfig
    sim: HACCSimulation
    snapshots: dict = field(default_factory=dict)  # z label -> positions copy
    actual_z: dict = field(default_factory=dict)   # z label -> capture z

    @property
    def final_positions(self) -> np.ndarray:
        return self.sim.particles.positions


def _run_science(n_per_dim: int = 24) -> ScienceRun:
    config = SimulationConfig(
        box_size=100.0,
        n_per_dim=n_per_dim,
        z_initial=25.0,
        z_final=0.0,
        n_steps=14,
        n_subcycles=2,
        backend="treepm",
        step_spacing="loga",
        seed=2012,
    )
    sim = HACCSimulation(config)
    run = ScienceRun(config=config, sim=sim)
    targets = sorted(FRAME_REDSHIFTS, reverse=True)
    pending = list(targets)

    def on_step(s: HACCSimulation) -> None:
        while pending and s.redshift <= pending[0]:
            label = pending.pop(0)
            run.snapshots[label] = s.particles.positions.copy()
            # coarse steps can overshoot the target; record the truth
            run.actual_z[label] = max(s.redshift, 0.0)

    sim.run(callback=on_step)
    return run


@pytest.fixture(scope="session")
def science_run() -> ScienceRun:
    return _run_science()


_RECORD_DIR = Path(__file__).parent / "records"


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call":
        return
    registry = get_registry()
    payload = {
        "nodeid": item.nodeid,
        "outcome": report.outcome,
        "duration_s": report.duration,
    }
    # when a bench ran with live telemetry, fold the load-balance and
    # health picture into the record so check_regression can gate on it
    tel = get_telemetry()
    if tel.enabled and tel.steps:
        steps = tel.steps
        alerts = [al for s in steps for al in s.alerts]
        payload["telemetry"] = {
            "steps": len(steps),
            "max_imbalance": tel.max_imbalance(),
            "alerts": len(alerts),
            "health_verdict": worst_severity(
                [al["severity"] for al in alerts]
            ),
            "health_events": [
                {
                    "check": al["check"],
                    "severity": al["severity"],
                    "step": al["step"],
                }
                for al in alerts
            ],
        }
    # a bench that ran under fault injection records the chaos ledger so
    # check_regression can assert injected faults were actually survived
    plan = get_fault_plan()
    if plan.enabled:
        payload["faults"] = plan.summary()
    write_bench_record(
        item.name,
        payload,
        directory=os.environ.get("REPRO_BENCH_DIR") or _RECORD_DIR,
        registry=registry if registry.enabled else None,
    )


@pytest.fixture()
def rng():
    """Fresh deterministic generator per bench."""
    return np.random.default_rng(20121119)  # arXiv posting date seed


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Uniform table printer for paper-vs-model output."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(r, widths)))
