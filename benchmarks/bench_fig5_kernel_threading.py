"""Fig. 5 — threading performance of the force-evaluation kernel.

* **modeled**: percent-of-peak curves for all eight (ranks/node,
  threads/rank) configurations over the Fig. 5 neighbor-list range, with
  the paper's qualitative features asserted (80% plateau at 4
  threads/core, ~3x gap to 1 thread/core, mild ranks-per-node penalty);
* **measured**: this reproduction's vectorized NumPy kernel, timed per
  interaction as a function of interaction-list size — the same
  "efficiency grows with list size" shape, in interpreted-Python units.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.instrument.report import write_bench_record
from repro.machine.kernel_model import FIG5_CONFIGS, ForceKernelModel
from repro.shortrange.backends import available_backends
from repro.shortrange.grid_force import default_grid_force_fit
from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.solvers import TreePMShortRange

from conftest import print_table

LIST_SIZES = np.array([64, 125, 250, 500, 1000, 2500, 5000], dtype=float)
REPO_ROOT = Path(__file__).resolve().parents[1]


class TestFig5Model:
    def test_all_configurations(self, benchmark):
        model = ForceKernelModel()
        curves = benchmark(lambda: model.fig5_curves(LIST_SIZES))

        rows = []
        for (r, t), vals in curves.items():
            rows.append(
                [f"{r}r x {t}t"] + [f"{v:.1f}" for v in vals]
            )
        print_table(
            "Fig. 5: % of node peak vs neighbor-list size",
            ["config"] + [str(int(n)) for n in LIST_SIZES],
            rows,
        )

        # paper features:
        four_per_core = curves[(16, 4)]
        one_per_core = curves[(16, 1)]
        # close to 80% of peak at 4 threads/core and large lists
        assert 74 < four_per_core[-1] < 81
        # broad plateau: half the peak value reached well before n=500
        assert four_per_core[3] > 0.8 * four_per_core[-1]
        # 1 thread/core sits ~3x lower (6-cycle latency, 2 streams)
        assert one_per_core[-1] == pytest.approx(
            four_per_core[-1] / 3.0, rel=0.05
        )
        # 2 ranks/node: exceptional but slightly below 16 ranks/node
        assert curves[(2, 32)][-1] < four_per_core[-1]
        assert curves[(2, 32)][-1] > 0.9 * four_per_core[-1]

    def test_typical_run_band(self, benchmark):
        """Representative simulations have lists of 500-2500 (Section
        III); the model puts the 16/4 operating point at 65-78% there."""
        model = ForceKernelModel()
        band = benchmark(
            lambda: 100 * model.peak_fraction(
                np.array([500.0, 2500.0]), 16, 4
            )
        )
        assert 60 < band[0] < band[1] < 80


class TestMeasuredKernel:
    @pytest.mark.parametrize("nlist", [64, 512, 2048])
    def test_per_interaction_cost(self, benchmark, nlist):
        """NumPy kernel time per interaction falls with list size (the
        vectorization-efficiency shape of Fig. 5)."""
        fit = default_grid_force_fit()
        kernel = ShortRangeKernel(fit, spacing=1.0)
        rng = np.random.default_rng(1)
        targets = rng.uniform(0, 2.0, (64, 3))
        sources = rng.uniform(0, 4.0, (nlist, 3))
        masses = np.ones(nlist)
        benchmark(lambda: kernel.accumulate(targets, sources, masses))

    def test_efficiency_grows_with_list(self, benchmark):
        """Directly verify the plateau shape on the real kernel."""
        import time

        fit = default_grid_force_fit()
        kernel = ShortRangeKernel(fit, spacing=1.0)
        rng = np.random.default_rng(2)
        targets = rng.uniform(0, 2.0, (16, 3))

        def measure() -> dict:
            per_interaction = {}
            for nlist in (8, 4096):
                sources = rng.uniform(0, 4.0, (nlist, 3))
                masses = np.ones(nlist)
                kernel.accumulate(targets, sources, masses)  # warm up
                t0 = time.perf_counter()
                reps = 10
                for _ in range(reps):
                    kernel.accumulate(targets, sources, masses)
                dt = time.perf_counter() - t0
                per_interaction[nlist] = dt / (reps * 16 * nlist)
            return per_interaction

        per_interaction = benchmark.pedantic(measure, rounds=1, iterations=1)
        print(f"\nmeasured ns/interaction: small list "
              f"{per_interaction[8] * 1e9:.1f}, large list "
              f"{per_interaction[4096] * 1e9:.1f}")
        assert per_interaction[4096] < 0.5 * per_interaction[8]


class TestBatchedEngineSpeedup:
    """End-to-end short-range force: batched engine vs the per-leaf loop.

    The gate of the batched-engine PR: at the largest benchmarked N the
    packed CSR + chunked evaluation must be at least 3x faster than the
    naive walk-evaluate-per-leaf path, while charging the *identical*
    ``pp.interactions`` count (same lists, same pairs — only the
    execution schedule changes, exactly the Section III claim that
    list building and kernel streaming are separable concerns).
    """

    SIZES = (2000, 8000, 20000)
    BOX = 32.0

    def test_end_to_end_speedup(self, benchmark, rng):
        fit = default_grid_force_fit()
        kernel = ShortRangeKernel(fit, spacing=1.0)

        def measure() -> list[dict]:
            out = []
            for n in self.SIZES:
                pos = rng.uniform(0, self.BOX, (n, 3))
                m = np.ones(n)
                row = {"n": n}
                for label, naive in (("batched", False), ("naive", True)):
                    solver = TreePMShortRange(
                        kernel, leaf_size=128, naive=naive
                    )
                    kernel.reset_counters()
                    t0 = time.perf_counter()
                    acc = solver.accelerations(pos, m, box_size=self.BOX)
                    row[label] = time.perf_counter() - t0
                    row[f"{label}_interactions"] = kernel.interaction_count
                    row[f"{label}_acc"] = acc
                out.append(row)
            return out

        rows = benchmark.pedantic(measure, rounds=1, iterations=1)
        table = []
        for row in rows:
            speedup = row["naive"] / row["batched"]
            table.append(
                [
                    row["n"],
                    f"{row['naive']:.3f}",
                    f"{row['batched']:.3f}",
                    f"{speedup:.2f}x",
                    row["batched_interactions"],
                ]
            )
            assert (
                row["batched_interactions"] == row["naive_interactions"]
            ), "batched and naive paths must charge identical pair counts"
            scale = np.abs(row["naive_acc"]).max()
            np.testing.assert_allclose(
                row["batched_acc"], row["naive_acc"], atol=1e-9 * scale
            )
        print_table(
            "End-to-end short-range force: naive vs batched",
            ["N", "naive s", "batched s", "speedup", "interactions"],
            table,
        )
        largest = rows[-1]
        assert largest["naive"] / largest["batched"] >= 3.0


class TestKernelBackendSweep:
    """Backend x precision sweep of the short-range force — the record
    behind ``check_regression.py --check-kernel-speedup``.

    Times the same end-to-end TreePM evaluation (tree + lists + kernel)
    through every available kernel backend at both precisions, asserts
    the seam's correctness contract (identical pair counts everywhere;
    f64 numba bitwise equal to f64 numpy), and leaves a repo-root
    ``BENCH_kernels.json`` with per-configuration timings and the two
    gated speedups: compiled-f32 vs the interpreted-f64 reference (the
    paper's mixed-precision compiled kernel; gated at 5x when numba is
    importable) and f32 vs f64 on the numpy path alone (the pure
    bandwidth half of mixed precision; gated at 1.5x always).
    """

    N = 20000
    BOX = 32.0
    REPS = 3

    def test_backend_precision_sweep(self, benchmark, rng):
        fit = default_grid_force_fit()
        backends = [b for b in available_backends() if b != "cupy"]
        numba_available = "numba" in backends
        pos = rng.uniform(0, self.BOX, (self.N, 3))
        masses = rng.uniform(0.5, 1.5, self.N)

        def measure() -> list[dict]:
            entries = []
            for backend in backends:
                for precision, dtype in (
                    ("f64", np.float64), ("f32", np.float32)
                ):
                    kernel = ShortRangeKernel(
                        fit, spacing=1.0, eps_cells=0.01, dtype=dtype
                    )
                    solver = TreePMShortRange(
                        kernel, leaf_size=128, kernel_backend=backend
                    )
                    # warm-up: numba JIT-compiles on first call, numpy
                    # grows its workspace buffers
                    solver.accelerations(pos, masses, box_size=self.BOX)
                    best = np.inf
                    for _ in range(self.REPS):
                        kernel.reset_counters()
                        t0 = time.perf_counter()
                        acc = solver.accelerations(
                            pos, masses, box_size=self.BOX
                        )
                        best = min(best, time.perf_counter() - t0)
                    pairs = kernel.interaction_count
                    entries.append(
                        {
                            "backend": backend,
                            "precision": precision,
                            "seconds": best,
                            "interactions": pairs,
                            "ns_per_pair": 1e9 * best / max(pairs, 1),
                            "acc": acc,
                        }
                    )
            return entries

        entries = benchmark.pedantic(measure, rounds=1, iterations=1)

        by_key = {(e["backend"], e["precision"]): e for e in entries}
        ref = by_key[("numpy", "f64")]

        # contract: every configuration evaluates the identical lists
        for e in entries:
            assert e["interactions"] == ref["interactions"], (
                f"{e['backend']}/{e['precision']} charged "
                f"{e['interactions']} pairs != numpy/f64 "
                f"{ref['interactions']}"
            )
        # contract: strict-IEEE compiled f64 is bitwise the reference
        if numba_available:
            assert np.array_equal(
                by_key[("numba", "f64")]["acc"], ref["acc"]
            ), "f64 numba must be bitwise identical to f64 numpy"
        # f32 tracks f64 at the documented tolerance
        scale = np.abs(ref["acc"]).max()
        for e in entries:
            if e["precision"] == "f32":
                assert (
                    np.max(np.abs(e["acc"] - ref["acc"])) < 1e-4 * scale
                ), f"{e['backend']}/f32 drifted beyond 1e-4"

        table = []
        for e in entries:
            table.append(
                [
                    f"{e['backend']}/{e['precision']}",
                    f"{e['seconds']:.3f}",
                    f"{e['ns_per_pair']:.1f}",
                    f"{ref['seconds'] / e['seconds']:.2f}x",
                ]
            )
        print_table(
            f"Kernel backends: end-to-end short-range force "
            f"(N={self.N}, {ref['interactions']} pairs)",
            ["config", "seconds", "ns/pair", "vs numpy/f64"],
            table,
        )

        speedups = {
            "f32_vs_f64_numpy": (
                ref["seconds"] / by_key[("numpy", "f32")]["seconds"]
            ),
        }
        if numba_available:
            speedups["numba_f64_vs_numpy_f64"] = (
                ref["seconds"] / by_key[("numba", "f64")]["seconds"]
            )
            speedups["numba_f32_vs_numpy_f64"] = (
                ref["seconds"] / by_key[("numba", "f32")]["seconds"]
            )

        payload = {
            "nodeid": "bench_fig5_kernel_threading.py::kernel_backends",
            "duration_s": sum(e["seconds"] for e in entries),
            "problem": {
                "box_size": self.BOX,
                "n": self.N,
                "leaf_size": 128,
                "reps": self.REPS,
            },
            "numba_available": numba_available,
            "entries": [
                {k: v for k, v in e.items() if k != "acc"}
                for e in entries
            ],
            "speedups": speedups,
        }
        path = write_bench_record("kernels", payload, directory=REPO_ROOT)
        print(f"record -> {path}")
