#!/usr/bin/env bash
# CI lane: smoke tests + Fig. 5 kernel benchmarks + regression/health gate.
#
# Usage: scripts/ci_check.sh
#
# Runs the fast ("not slow") test suite, regenerates the gated Fig. 5
# benchmark records, and checks them against the stored baseline with
# benchmarks/check_regression.py --check-health (fails on >20% slowdown
# of a gated bench or a CRIT physics-health verdict).  Bootstraps the
# baseline on first run instead of failing.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

PYTHON="${PYTHON:-python}"

echo "== 1/3 smoke tests (pytest -m 'not slow') =="
PYTHONPATH=src "$PYTHON" -m pytest tests -q -m "not slow"

echo "== 2/3 fig5 kernel benchmarks =="
(cd benchmarks && PYTHONPATH=../src "$PYTHON" -m pytest bench_fig5_kernel_threading.py -q)

echo "== 3/3 regression + health gate =="
if [ ! -d benchmarks/records/baseline ] || \
   ! ls benchmarks/records/baseline/BENCH_*.json >/dev/null 2>&1; then
    echo "no baseline found -- bootstrapping from this run"
    "$PYTHON" benchmarks/check_regression.py --update-baseline
fi
"$PYTHON" benchmarks/check_regression.py --check-health

echo "ci_check: all gates passed"
