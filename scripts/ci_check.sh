#!/usr/bin/env bash
# CI lane: smoke tests + chaos lane + benchmarks + regression gates.
#
# Usage: scripts/ci_check.sh
#
# Runs the fast ("not slow") test suite, a parallel-executor smoke run
# (the demo CLI under --workers 2), the deterministic chaos lane twice
# (fault-injection tests under a fixed seed, REPRO_CHAOS_SEED — once on
# the default serial fleet, once dispatched over REPRO_CHAOS_WORKERS
# thread workers), the gated Fig. 5 kernel benchmarks plus the
# executor-scaling bench, and checks the records against the stored
# baseline with benchmarks/check_regression.py --check-health
# --check-speedup (fails on >20% slowdown of a gated bench, a CRIT
# physics-health verdict, or a short-range executor speedup below 1.7x
# at 4 workers; an unrecovered rank death exits 2).  Bootstraps the
# baseline on first run instead of failing.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

PYTHON="${PYTHON:-python}"
export REPRO_CHAOS_SEED="${REPRO_CHAOS_SEED:-2012}"
export REPRO_CHAOS_WORKERS="${REPRO_CHAOS_WORKERS:-2}"

echo "== 1/6 smoke tests (pytest -m 'not slow') =="
PYTHONPATH=src "$PYTHON" -m pytest tests -q -m "not slow"

echo "== 2/6 parallel smoke (demo --workers 2) =="
PYTHONPATH=src "$PYTHON" -m repro demo --steps 2 --n-per-dim 12 --workers 2

echo "== 3/6 chaos lane (pytest -m chaos, seed $REPRO_CHAOS_SEED) =="
PYTHONPATH=src "$PYTHON" -m pytest tests -q -m chaos

echo "== 4/6 chaos lane under $REPRO_CHAOS_WORKERS workers =="
PYTHONPATH=src "$PYTHON" -m pytest tests/test_parallel_executor.py -q -m chaos

echo "== 5/6 fig5 kernel + executor scaling benchmarks =="
(cd benchmarks && PYTHONPATH=../src "$PYTHON" -m pytest bench_fig5_kernel_threading.py bench_executor_scaling.py -q)

echo "== 6/6 regression + health + speedup gate =="
if [ ! -d benchmarks/records/baseline ] || \
   ! ls benchmarks/records/baseline/BENCH_*.json >/dev/null 2>&1; then
    echo "no baseline found -- bootstrapping from this run"
    "$PYTHON" benchmarks/check_regression.py --update-baseline
fi
"$PYTHON" benchmarks/check_regression.py --check-health --check-speedup

echo "ci_check: all gates passed"

