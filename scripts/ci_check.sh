#!/usr/bin/env bash
# CI lane: smoke tests + chaos lane + Fig. 5 benchmarks + regression gate.
#
# Usage: scripts/ci_check.sh
#
# Runs the fast ("not slow") test suite, the deterministic chaos lane
# (fault-injection tests under a fixed seed, REPRO_CHAOS_SEED), the
# gated Fig. 5 benchmark records, and checks them against the stored
# baseline with benchmarks/check_regression.py --check-health (fails on
# >20% slowdown of a gated bench or a CRIT physics-health verdict; an
# unrecovered rank death exits 2).  Bootstraps the baseline on first run
# instead of failing.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

PYTHON="${PYTHON:-python}"
export REPRO_CHAOS_SEED="${REPRO_CHAOS_SEED:-2012}"

echo "== 1/4 smoke tests (pytest -m 'not slow') =="
PYTHONPATH=src "$PYTHON" -m pytest tests -q -m "not slow"

echo "== 2/4 chaos lane (pytest -m chaos, seed $REPRO_CHAOS_SEED) =="
PYTHONPATH=src "$PYTHON" -m pytest tests -q -m chaos

echo "== 3/4 fig5 kernel benchmarks =="
(cd benchmarks && PYTHONPATH=../src "$PYTHON" -m pytest bench_fig5_kernel_threading.py -q)

echo "== 4/4 regression + health gate =="
if [ ! -d benchmarks/records/baseline ] || \
   ! ls benchmarks/records/baseline/BENCH_*.json >/dev/null 2>&1; then
    echo "no baseline found -- bootstrapping from this run"
    "$PYTHON" benchmarks/check_regression.py --update-baseline
fi
"$PYTHON" benchmarks/check_regression.py --check-health

echo "ci_check: all gates passed"

