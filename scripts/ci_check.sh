#!/usr/bin/env bash
# CI lane: smoke tests + chaos lane + benchmarks + regression gates.
#
# Usage: scripts/ci_check.sh
#
# Runs the fast ("not slow") test suite, a parallel-executor smoke run
# (the demo CLI under --workers 2), the deterministic chaos lane twice
# (fault-injection tests under a fixed seed, REPRO_CHAOS_SEED — once on
# the default serial fleet, once dispatched over REPRO_CHAOS_WORKERS
# thread workers), the gated Fig. 5 kernel benchmarks plus the
# executor-scaling bench, and checks the records against the stored
# baseline with benchmarks/check_regression.py --check-health
# --check-speedup (fails on >20% slowdown of a gated bench, a CRIT
# physics-health verdict, or a short-range executor speedup below 1.7x
# at 4 workers; an unrecovered rank death exits 2).  Exercises
# the observability stack end to end: two small ledgered runs, then
# 'python -m repro report --compare' must produce a machine-readable
# JSON comparison with a verdict.  Finally gates the kernel-backend
# sweep (BENCH_kernels.json from the fig5 bench): the compiled f32
# kernel must beat the interpreted f64 reference by 5x (self-skips
# where numba is unavailable) and f32 must beat f64 by 1.5x on the
# numpy path.  Lane 9 gates the measured roofline: 'report --roofline'
# on a ledgered run must place the shortrange/cic/fft phases against
# the calibrated host peak, and check_regression.py --check-roofline
# holds the counters wired, %peak sane, and f32 pair AI >= f64.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

PYTHON="${PYTHON:-python}"
export REPRO_CHAOS_SEED="${REPRO_CHAOS_SEED:-2012}"
export REPRO_CHAOS_WORKERS="${REPRO_CHAOS_WORKERS:-2}"

echo "== 1/9 smoke tests (pytest -m 'not slow') =="
PYTHONPATH=src "$PYTHON" -m pytest tests -q -m "not slow"

echo "== 2/9 parallel smoke (demo --workers 2) =="
PYTHONPATH=src "$PYTHON" -m repro demo --steps 2 --n-per-dim 12 --workers 2

echo "== 3/9 chaos lane (pytest -m chaos, seed $REPRO_CHAOS_SEED) =="
PYTHONPATH=src "$PYTHON" -m pytest tests -q -m chaos

echo "== 4/9 chaos lane under $REPRO_CHAOS_WORKERS workers =="
PYTHONPATH=src "$PYTHON" -m pytest tests/test_parallel_executor.py -q -m chaos

echo "== 5/9 fig5 kernel + executor scaling benchmarks =="
(cd benchmarks && PYTHONPATH=../src "$PYTHON" -m pytest bench_fig5_kernel_threading.py bench_executor_scaling.py -q)

echo "== 6/9 regression + health + speedup gate =="
if [ ! -d benchmarks/records/baseline ] || \
   ! ls benchmarks/records/baseline/BENCH_*.json >/dev/null 2>&1; then
    echo "no baseline found -- bootstrapping from this run"
    "$PYTHON" benchmarks/check_regression.py --update-baseline
fi
"$PYTHON" benchmarks/check_regression.py --check-health --check-speedup

echo "== 7/9 run ledger + critical-path report lane =="
CI_OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$CI_OBS_DIR"' EXIT
PYTHONPATH=src "$PYTHON" -m repro profile --steps 2 --n-per-dim 8 \
    --telemetry "$CI_OBS_DIR/a.jsonl" --ledger "$CI_OBS_DIR/ledger" \
    > /dev/null
PYTHONPATH=src "$PYTHON" -m repro profile --steps 2 --n-per-dim 8 \
    --workers 2 --executor thread \
    --telemetry "$CI_OBS_DIR/b.jsonl" --ledger "$CI_OBS_DIR/ledger" \
    > /dev/null
PYTHONPATH=src "$PYTHON" -m repro runs list --ledger "$CI_OBS_DIR/ledger"
PYTHONPATH=src "$PYTHON" -m repro report \
    --compare latest~1 latest --ledger "$CI_OBS_DIR/ledger" --json \
    > "$CI_OBS_DIR/report.json"
"$PYTHON" - "$CI_OBS_DIR/report.json" <<'PYEOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep.get("verdict") in ("OK", "IMPROVED", "REGRESSION"), rep.get("verdict")
assert rep.get("phases"), "comparison has no phases"
print(f"report lane: verdict {rep['verdict']}, "
      f"{len(rep['phases'])} phases compared")
PYEOF

echo "== 8/9 kernel-backend speedup gate =="
"$PYTHON" benchmarks/check_regression.py --check-kernel-speedup

echo "== 9/9 measured roofline gate =="
# the ledgered run from lane 7 already carries a registry.json; place
# it on the calibrated host roofline (calibration caches in the ledger)
PYTHONPATH=src "$PYTHON" -m repro report \
    --roofline --ledger "$CI_OBS_DIR/ledger" --json \
    > "$CI_OBS_DIR/roofline.json"
"$PYTHON" - "$CI_OBS_DIR/roofline.json" <<'PYEOF'
import json, sys
tab = json.load(open(sys.argv[1]))
phases = {row["name"]: row for row in tab.get("phases", [])}
for name in ("shortrange", "cic", "fft"):
    assert name in phases, f"roofline lane: phase {name!r} missing"
    assert phases[name]["flops"] > 0, f"{name}: no flops counted"
    frac = phases[name]["frac_peak"]
    assert 0.0 < frac <= 1.25, f"{name}: insane frac_peak {frac}"
cal = tab["calibration"]
print(f"roofline lane: peak {cal['peak_gflops']:.1f} GFLOP/s, "
      f"{len(phases)} phases placed")
PYEOF
(cd benchmarks && PYTHONPATH=../src "$PYTHON" -m pytest bench_roofline_measured.py -q)
"$PYTHON" benchmarks/check_regression.py --check-roofline

echo "ci_check: all gates passed"

