#!/usr/bin/env bash
# CI lane: smoke tests + chaos lane + benchmarks + regression gates.
#
# Usage: scripts/ci_check.sh
#
# Runs the fast ("not slow") test suite, a parallel-executor smoke run
# (the demo CLI under --workers 2), an overlapped-execution smoke run
# (the run CLI under --overlap at 2 workers, ghost exchange streamed
# into in-flight solves), the deterministic chaos lane twice
# (fault-injection tests under a fixed seed, REPRO_CHAOS_SEED — once on
# the default serial fleet, once dispatched over REPRO_CHAOS_WORKERS
# thread workers), the gated Fig. 5 kernel benchmarks plus the
# executor-scaling bench, and checks the records against the stored
# baseline with benchmarks/check_regression.py --check-health
# --check-speedup (fails on >20% slowdown of a gated bench, a CRIT
# physics-health verdict, a short-range executor speedup below 1.7x
# at 4 workers, or any failing speedup_gates entry — the 8-process-
# worker >= 3.0x scale-out gate self-skips below 8 cores, the
# compute-only dispatch-overhead gate below 4; an unrecovered rank
# death exits 2).  Lane 11 kills a
# live campaign supervisor and its child mid-run (SIGKILL, a simulated
# node death) and requires 'campaign resume' to finish the suite with
# exactly-once ledger entries and correct attempt counts.  Exercises
# the observability stack end to end: two small ledgered runs, then
# 'python -m repro report --compare' must produce a machine-readable
# JSON comparison with a verdict.  Finally gates the kernel-backend
# sweep (BENCH_kernels.json from the fig5 bench): the compiled f32
# kernel must beat the interpreted f64 reference by 5x (self-skips
# where numba is unavailable) and f32 must beat f64 by 1.5x on the
# numpy path.  Lane 10 gates the measured roofline: 'report --roofline'
# on a ledgered run must place the shortrange/cic/fft phases against
# the calibrated host peak, and check_regression.py --check-roofline
# holds the counters wired, %peak sane, and f32 pair AI >= f64.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

PYTHON="${PYTHON:-python}"
export REPRO_CHAOS_SEED="${REPRO_CHAOS_SEED:-2012}"
export REPRO_CHAOS_WORKERS="${REPRO_CHAOS_WORKERS:-2}"

echo "== 1/11 smoke tests (pytest -m 'not slow') =="
PYTHONPATH=src "$PYTHON" -m pytest tests -q -m "not slow"

echo "== 2/11 parallel smoke (demo --workers 2) =="
PYTHONPATH=src "$PYTHON" -m repro demo --steps 2 --n-per-dim 12 --workers 2

echo "== 3/11 overlapped execution smoke (run --overlap, 2 workers) =="
PYTHONPATH=src "$PYTHON" -m repro run --steps 2 --n-per-dim 12 --workers 2 \
    --overlap --decomposition 2,1,1 --overload-depth 8

echo "== 4/11 chaos lane (pytest -m chaos, seed $REPRO_CHAOS_SEED) =="
PYTHONPATH=src "$PYTHON" -m pytest tests -q -m chaos

echo "== 5/11 chaos lane under $REPRO_CHAOS_WORKERS workers =="
PYTHONPATH=src "$PYTHON" -m pytest tests/test_parallel_executor.py -q -m chaos

echo "== 6/11 fig5 kernel + executor scaling benchmarks =="
(cd benchmarks && PYTHONPATH=../src "$PYTHON" -m pytest bench_fig5_kernel_threading.py bench_executor_scaling.py -q)

echo "== 7/11 regression + health + speedup gate =="
if [ ! -d benchmarks/records/baseline ] || \
   ! ls benchmarks/records/baseline/BENCH_*.json >/dev/null 2>&1; then
    echo "no baseline found -- bootstrapping from this run"
    "$PYTHON" benchmarks/check_regression.py --update-baseline
fi
"$PYTHON" benchmarks/check_regression.py --check-health --check-speedup

echo "== 8/11 run ledger + critical-path report lane =="
CI_OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$CI_OBS_DIR"' EXIT
PYTHONPATH=src "$PYTHON" -m repro profile --steps 2 --n-per-dim 8 \
    --telemetry "$CI_OBS_DIR/a.jsonl" --ledger "$CI_OBS_DIR/ledger" \
    > /dev/null
PYTHONPATH=src "$PYTHON" -m repro profile --steps 2 --n-per-dim 8 \
    --workers 2 --executor thread \
    --telemetry "$CI_OBS_DIR/b.jsonl" --ledger "$CI_OBS_DIR/ledger" \
    > /dev/null
PYTHONPATH=src "$PYTHON" -m repro runs list --ledger "$CI_OBS_DIR/ledger"
PYTHONPATH=src "$PYTHON" -m repro report \
    --compare latest~1 latest --ledger "$CI_OBS_DIR/ledger" --json \
    > "$CI_OBS_DIR/report.json"
"$PYTHON" - "$CI_OBS_DIR/report.json" <<'PYEOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep.get("verdict") in ("OK", "IMPROVED", "REGRESSION"), rep.get("verdict")
assert rep.get("phases"), "comparison has no phases"
print(f"report lane: verdict {rep['verdict']}, "
      f"{len(rep['phases'])} phases compared")
PYEOF

echo "== 9/11 kernel-backend speedup gate =="
"$PYTHON" benchmarks/check_regression.py --check-kernel-speedup

echo "== 10/11 measured roofline gate =="
# the ledgered run from lane 7 already carries a registry.json; place
# it on the calibrated host roofline (calibration caches in the ledger)
PYTHONPATH=src "$PYTHON" -m repro report \
    --roofline --ledger "$CI_OBS_DIR/ledger" --json \
    > "$CI_OBS_DIR/roofline.json"
"$PYTHON" - "$CI_OBS_DIR/roofline.json" <<'PYEOF'
import json, sys
tab = json.load(open(sys.argv[1]))
phases = {row["name"]: row for row in tab.get("phases", [])}
for name in ("shortrange", "cic", "fft"):
    assert name in phases, f"roofline lane: phase {name!r} missing"
    assert phases[name]["flops"] > 0, f"{name}: no flops counted"
    frac = phases[name]["frac_peak"]
    assert 0.0 < frac <= 1.25, f"{name}: insane frac_peak {frac}"
cal = tab["calibration"]
print(f"roofline lane: peak {cal['peak_gflops']:.1f} GFLOP/s, "
      f"{len(phases)} phases placed")
PYEOF
(cd benchmarks && PYTHONPATH=../src "$PYTHON" -m pytest bench_roofline_measured.py -q)
"$PYTHON" benchmarks/check_regression.py --check-roofline

echo "== 11/11 campaign supervisor chaos lane =="
# A tiny 4-config campaign (one config injects a rank death that the
# overload-replica recovery absorbs).  Mid-flight, SIGKILL both the
# supervisor and its child -- a simulated node death -- then 'campaign
# resume' must finish the suite with every run DONE, correct attempt
# counts (the killed run retried once, uncharged), and exactly one
# ledger entry per run.
CAMP_DIR="$CI_OBS_DIR/campaign"
cat > "$CI_OBS_DIR/campaign.toml" <<'EOF'
[campaign]
name = "ci-smoke"
max_attempts = 3
timeout_s = 300.0
heartbeat_timeout_s = 120.0
poll_interval_s = 0.05
retry_base_delay = 0.01
retry_max_delay = 0.05
extra_args = ["--inject-slowdown", "shortrange:0.3"]

[base]
box_size = 64.0
n_per_dim = 8
n_steps = 4
n_subcycles = 1
backend = "treepm"

[grid]
seed = [1, 2]

[[runs]]
seed = 3

[[runs]]
seed = 4
extra_args = ["--decomposition", "2,1,1", "--overload-depth", "14",
              "--inject-rank-death", "1:0"]
EOF
PYTHONPATH=src "$PYTHON" -m repro campaign run "$CI_OBS_DIR/campaign.toml" \
    --dir "$CAMP_DIR" --ledger "$CI_OBS_DIR/ledger" > /dev/null 2>&1 &
CAMPAIGN_PID=$!
CHILD_PID="$("$PYTHON" - "$CAMP_DIR" <<'PYEOF'
import json, pathlib, sys, time
camp = pathlib.Path(sys.argv[1])
journal = camp / "journal.jsonl"
deadline = time.monotonic() + 120
while time.monotonic() < deadline:
    open_runs = {}
    if journal.is_file():
        for line in open(journal):
            try:
                ev = json.loads(line)
            except json.JSONDecodeError:
                continue
            if ev.get("kind") == "dispatched":
                open_runs[ev["run"]] = ev.get("pid")
            elif ev.get("kind") == "exit":
                open_runs.pop(ev["run"], None)
    for rid, pid in open_runs.items():
        tel = camp / "runs" / rid / "telemetry.jsonl"
        # in flight with at least one flushed step: a genuine
        # mid-trajectory kill
        if pid and tel.is_file() and sum(1 for _ in open(tel)) >= 2:
            print(pid)
            sys.exit(0)
    time.sleep(0.1)
sys.exit("campaign lane: never reached a mid-flight state")
PYEOF
)"
kill -9 "$CAMPAIGN_PID" 2>/dev/null || true
kill -9 "$CHILD_PID" 2>/dev/null || true
wait "$CAMPAIGN_PID" 2>/dev/null || true
while kill -0 "$CHILD_PID" 2>/dev/null; do sleep 0.1; done
PYTHONPATH=src "$PYTHON" -m repro campaign resume "$CI_OBS_DIR/campaign.toml" \
    --dir "$CAMP_DIR" --ledger "$CI_OBS_DIR/ledger"
PYTHONPATH=src "$PYTHON" -m repro campaign status "$CI_OBS_DIR/campaign.toml" \
    --dir "$CAMP_DIR" --json > "$CI_OBS_DIR/campaign_status.json"
"$PYTHON" - "$CI_OBS_DIR/campaign_status.json" "$CI_OBS_DIR/ledger/index.jsonl" <<'PYEOF'
import json, sys
status = json.load(open(sys.argv[1]))
assert status["ok"] and status["complete"], status["counts"]
runs = {r["run"]: r for r in status["runs"]}
assert all(r["state"] == "DONE" for r in runs.values()), runs
attempts = sorted(r["attempts"] for r in runs.values())
assert attempts == [1, 1, 1, 2], f"wrong attempt counts: {attempts}"
assert all(r["failures"] == 0 for r in runs.values()), \
    "a supervisor kill must not charge the retry budget"
entries = [json.loads(l) for l in open(sys.argv[2]) if l.strip()]
campaign_runs = [
    e["extra"]["campaign_run"] for e in entries
    if e.get("extra", {}).get("campaign_id") == status["campaign_id"]
]
assert sorted(campaign_runs) == sorted(runs), \
    f"ledger not exactly-once: {sorted(campaign_runs)}"
bad = [e["run_id"] for e in entries
       if e.get("extra", {}).get("campaign_id") == status["campaign_id"]
       and e.get("verdict") not in ("OK", "WARN")]
assert not bad, f"campaign runs with bad verdicts: {bad}"
print(f"campaign lane: 4/4 DONE, attempts {attempts}, "
      f"{len(campaign_runs)} ledger entries (exactly once)")
PYEOF

echo "ci_check: all gates passed"

