"""Cycle-level model of the BG/Q short-range force kernel (Fig. 5).

The paper's kernel facts (Section III):

* the unrolled loop body is **26 QPX instructions** processing 8
  interactions (4 SIMD lanes x 2-fold unroll); **16 are FMAs**, for 168
  flops — so the arithmetic ceiling is ``168 / (26 x 8) = 81%`` of peak;
* floating-point latency is **6 cycles**; dependent instructions are kept
  apart by the 2-fold unroll and by running up to **4 hardware threads
  per core**, i.e. latency is fully hidden once
  ``threads_per_core x unroll >= 6`` independent streams exist;
* each particle also pays per-list overhead (neighbor-list generation,
  loop head/tail, write-back), so efficiency climbs with neighbor-list
  size and plateaus near the ceiling — the shape of Fig. 5.

The model composes exactly those three effects:

.. math:: \\mathrm{peak\\ fraction}(n, r, t) =
          \\underbrace{\\tfrac{168}{208}}_{\\rm ceiling}
          \\times \\underbrace{\\min(1, t_c u / \\lambda)}_{\\rm issue}
          \\times \\underbrace{\\tfrac{n}{n + h}}_{\\rm overhead}
          \\times \\underbrace{(1 - \\pi \\log_2(16/r))}_{\\rm locality}

with ``t_c`` threads/core, ``u = 2`` unroll, ``lambda = 6``,
``h`` the per-particle overhead in interaction-equivalents, and a small
locality penalty for few fat ranks (Fig. 5's "exceptional performance
even at 2 ranks per node" — slightly below the 16-rank curves).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.bgq import BGQNode
from repro.machine.paper_data import (
    KERNEL_FLOPS,
    KERNEL_INSTRUCTIONS,
    KERNEL_INTERACTIONS_PER_ITERATION,
)

__all__ = ["ForceKernelModel", "FIG5_CONFIGS"]

#: the eight (ranks/node, threads/rank) configurations plotted in Fig. 5
FIG5_CONFIGS = (
    (16, 4),
    (8, 8),
    (4, 16),
    (2, 32),
    (16, 1),
    (8, 2),
    (4, 4),
    (2, 8),
)


@dataclass(frozen=True)
class ForceKernelModel:
    """Performance model for the short-range force kernel.

    Parameters
    ----------
    node:
        BG/Q node constants.
    unroll:
        Loop unroll factor (2 in the paper's kernel).
    overhead_interactions:
        Per-particle fixed cost expressed in interaction-equivalents
        (list generation + loop head/tail); sets where the Fig. 5 curves
        bend over.
    locality_penalty:
        Fractional loss per halving of ranks/node below 16 (larger
        per-rank working sets stress L1/L2 slightly).
    """

    node: BGQNode = BGQNode()
    unroll: int = 2
    overhead_interactions: float = 120.0
    locality_penalty: float = 0.012

    def __post_init__(self) -> None:
        if self.unroll < 1:
            raise ValueError(f"unroll must be >= 1: {self.unroll}")
        if self.overhead_interactions < 0:
            raise ValueError("overhead_interactions must be >= 0")

    # ------------------------------------------------------------------
    @property
    def arithmetic_ceiling(self) -> float:
        """168/208 ~= 0.81: flops actually encoded vs all-FMA maximum."""
        max_flops = (
            KERNEL_INSTRUCTIONS
            * self.node.qpx_width
            * self.node.fma_flops_per_lane
        )
        return KERNEL_FLOPS / max_flops

    def issue_utilization(self, threads_per_core: float) -> float:
        """FPU issue-slot utilization from latency hiding.

        ``threads_per_core x unroll`` independent instruction streams
        cover the 6-cycle dependency latency; fewer streams stall the
        pipeline proportionally.
        """
        if threads_per_core <= 0:
            raise ValueError(
                f"threads_per_core must be positive: {threads_per_core}"
            )
        streams = threads_per_core * self.unroll
        return min(1.0, streams / self.node.fp_latency_cycles)

    def list_efficiency(self, neighbors) -> np.ndarray:
        """Fraction of kernel cycles doing pair work vs per-list overhead."""
        n = np.asarray(neighbors, dtype=np.float64)
        if np.any(n <= 0):
            raise ValueError("neighbor-list sizes must be positive")
        return n / (n + self.overhead_interactions)

    def locality_factor(self, ranks_per_node: int) -> float:
        """Mild penalty for few, fat ranks (2-32 threads per rank)."""
        if ranks_per_node < 1 or ranks_per_node > self.node.app_cores:
            raise ValueError(
                f"ranks_per_node out of range: {ranks_per_node}"
            )
        halvings = np.log2(self.node.app_cores / ranks_per_node)
        return float(max(0.0, 1.0 - self.locality_penalty * halvings))

    # ------------------------------------------------------------------
    def peak_fraction(
        self,
        neighbors,
        ranks_per_node: int = 16,
        threads_per_rank: int = 4,
    ) -> np.ndarray:
        """Fraction of node peak attained by the kernel (the Fig. 5 y-axis)."""
        total_threads = ranks_per_node * threads_per_rank
        max_threads = self.node.app_cores * self.node.hw_threads_per_core
        if total_threads > max_threads:
            raise ValueError(
                f"{ranks_per_node} ranks x {threads_per_rank} threads "
                f"exceeds {max_threads} hardware threads"
            )
        threads_per_core = total_threads / self.node.app_cores
        return (
            self.arithmetic_ceiling
            * self.issue_utilization(threads_per_core)
            * self.list_efficiency(neighbors)
            * self.locality_factor(ranks_per_node)
        )

    def gflops_per_node(self, neighbors, ranks_per_node=16, threads_per_rank=4):
        """Sustained node GFlops for the kernel."""
        frac = self.peak_fraction(neighbors, ranks_per_node, threads_per_rank)
        return frac * self.node.flops_per_node_peak / 1e9

    def cycles_per_interaction(
        self, neighbors, ranks_per_node: int = 16, threads_per_rank: int = 4
    ) -> np.ndarray:
        """Core cycles spent per pair interaction, including overheads."""
        frac = self.peak_fraction(neighbors, ranks_per_node, threads_per_rank)
        flops_per_cycle_core = (
            self.node.qpx_width * self.node.fma_flops_per_lane
        )
        flops_per_interaction = (
            KERNEL_FLOPS / KERNEL_INTERACTIONS_PER_ITERATION
        )
        return flops_per_interaction / (frac * flops_per_cycle_core)

    # ------------------------------------------------------------------
    def fig5_curves(self, neighbors) -> dict[tuple[int, int], np.ndarray]:
        """Percent-of-peak curves for the eight Fig. 5 configurations."""
        n = np.asarray(neighbors, dtype=np.float64)
        return {
            (r, t): 100.0 * self.peak_fraction(n, r, t)
            for (r, t) in FIG5_CONFIGS
        }
