"""Full-code performance model: Tables II-III, Figs. 7-8.

Structure of the model (all inputs are facts stated in the paper plus two
calibrated scalars, documented in EXPERIMENTS.md):

* the 16/4 operating point spends **80% kernel / 10% walk / 5% FFT / 5%
  other** (Section III); kernel and walk work scales with the number of
  *overloaded* particles per rank, FFT/other with the owned particles;
* the **overloading geometry** is computable exactly from each Table II
  row's box size and rank geometry: the compute/memory inflation is
  ``prod_i (w_i + 2 d) / w_i`` for rank-domain widths ``w_i`` and
  overload depth ``d``.  In the weak-scaling regime this factor is nearly
  constant (hence the flat "Cores x Time/Substep" column); in the Table
  III strong-scaling 'abuse' regime it blows up — reproducing the
  slowdown at 16384 cores and the memory column's shallow decline;
* **calibrated scalars**: the per-particle substep cost at unit overload
  (``c0``, from Table II row 1) and the effective overload depth in grid
  cells (``d = 10``, set by the Table III degradation ratio).

Memory per rank = particles x 80 B x overload factor + grid x 40 B +
28 MB fixed (code, MPI buffers, tree metadata) — byte counts chosen once,
checked against both tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.machine.bgq import BGQNode
from repro.machine.kernel_model import ForceKernelModel
from repro.machine.paper_data import (
    FULLCODE_PEAK_FRACTION,
    FULLCODE_TIME_SPLIT,
    TABLE2,
    TABLE3,
    TABLE3_BOX_MPC,
    TABLE3_NP_PER_DIM,
    Table2Row,
    Table3Row,
)
from repro.parallel.decomposition import DomainDecomposition, balanced_dims

__all__ = ["ScalingRow", "FullCodeModel"]


@dataclass(frozen=True)
class ScalingRow:
    """One model-predicted scaling-table row."""

    cores: int
    n_particles: int
    overload_factor: float
    pflops: float
    peak_percent: float
    time_substep_particle: float
    cores_time_substep: float
    memory_mb_rank: float

    @property
    def time_substep(self) -> float:
        return self.time_substep_particle * self.n_particles


@dataclass
class FullCodeModel:
    """Analytic weak/strong scaling model of the full HACC code on BG/Q.

    Parameters
    ----------
    node:
        Hardware constants.
    kernel:
        Force-kernel cycle model (sets the attainable kernel efficiency).
    overload_depth_cells:
        Effective overload depth in grid cells (calibrated: 10).
    bytes_per_particle:
        Resident bytes per particle (positions/velocities in single
        precision plus ids, buffers and tree slots).
    bytes_per_grid_point:
        PM grid + FFT workspace bytes per grid point.
    fixed_memory_mb:
        Code / MPI / OS overhead per rank.
    ranks_per_node:
        16 in the Table II configuration (1 rank per core).
    typical_neighbors:
        Representative neighbor-list size (paper: 500-2500).
    """

    node: BGQNode = field(default_factory=BGQNode)
    kernel: ForceKernelModel = field(default_factory=ForceKernelModel)
    overload_depth_cells: float = 10.0
    bytes_per_particle: float = 80.0
    bytes_per_grid_point: float = 40.0
    fixed_memory_mb: float = 28.0
    ranks_per_node: int = 16
    typical_neighbors: float = 1500.0
    #: per-particle-substep core-time at unit overload factor (s*cores);
    #: calibrated against Table II row 1 by :meth:`calibrated`.
    c0: float = 6.0e-5

    # ------------------------------------------------------------------
    def overload_factor(
        self, box_mpc: float, geometry: tuple[int, int, int], np_per_dim: int
    ) -> float:
        """Overloaded-to-owned volume ratio for one run geometry."""
        decomp = DomainDecomposition(box_mpc, geometry)
        depth = self.overload_depth_cells * box_mpc / np_per_dim
        return decomp.overload_volume_factor(depth)

    def _time_scale(self, g: float) -> float:
        """Work inflation: kernel+walk scale with overloaded particles."""
        split = FULLCODE_TIME_SPLIT
        local = split["kernel"] + split["walk"]
        return local * g + (1.0 - local)

    def peak_fraction(self, g: float, g_ref: float, earlier_kernel: bool = False) -> float:
        """Sustained fraction of peak vs the overload factor.

        Edge (passive) particles have truncated neighbor lists, dragging
        kernel efficiency down as the passive fraction grows; Table III
        ran "an earlier version of the force kernel" a few percent slower.
        """
        base = FULLCODE_PEAK_FRACTION
        if earlier_kernel:
            base *= 0.955
        drop = 0.05 * max(g - g_ref, 0.0) / g_ref
        return base * (1.0 - drop)

    def memory_mb(
        self, particles_per_rank: float, grid_per_rank: float, g: float
    ) -> float:
        """Resident MB per rank."""
        return (
            particles_per_rank * self.bytes_per_particle * g
            + grid_per_rank * self.bytes_per_grid_point
        ) / 1.0e6 + self.fixed_memory_mb

    # ------------------------------------------------------------------
    def predict(
        self,
        *,
        cores: int,
        np_per_dim: int,
        box_mpc: float,
        geometry: tuple[int, int, int] | None = None,
        earlier_kernel: bool = False,
        g_ref: float | None = None,
    ) -> ScalingRow:
        """Model one run configuration (ranks = cores, 16 ranks/node)."""
        if cores < 1:
            raise ValueError(f"cores must be >= 1: {cores}")
        if geometry is None:
            geometry = balanced_dims(cores)  # type: ignore[assignment]
        n_particles = np_per_dim**3
        g = self.overload_factor(box_mpc, tuple(geometry), np_per_dim)
        if g_ref is None:
            g_ref = g
        cores_time = self.c0 * self._time_scale(g)
        peak = self.peak_fraction(g, g_ref, earlier_kernel)
        ppr = n_particles / cores  # ranks == cores
        grid_pr = np_per_dim**3 / cores
        return ScalingRow(
            cores=cores,
            n_particles=n_particles,
            overload_factor=g,
            pflops=cores * self.node.flops_per_core_peak * peak / 1e15,
            peak_percent=100.0 * peak,
            time_substep_particle=cores_time / cores,
            cores_time_substep=cores_time,
            memory_mb_rank=self.memory_mb(ppr, grid_pr, g),
        )

    # ------------------------------------------------------------------
    @classmethod
    def calibrated(cls, **kwargs) -> "FullCodeModel":
        """Calibrate ``c0`` against the first Table II row.

        Everything else is either a hardware constant or a documented
        byte-count assumption; the remaining rows of Tables II-III are
        predictions.
        """
        model = cls(**kwargs)
        anchor = TABLE2[0]
        g = model.overload_factor(
            anchor.box_mpc, anchor.geometry, anchor.np_per_dim
        )
        model.c0 = anchor.cores_time_substep / model._time_scale(g)
        return model

    # ------------------------------------------------------------------
    def table2(self) -> list[dict]:
        """Model vs paper for every Table II row (weak scaling, Fig. 7)."""
        g_ref = self.overload_factor(
            TABLE2[0].box_mpc, TABLE2[0].geometry, TABLE2[0].np_per_dim
        )
        out = []
        for row in TABLE2:
            pred = self.predict(
                cores=row.cores,
                np_per_dim=row.np_per_dim,
                box_mpc=row.box_mpc,
                geometry=row.geometry,
                g_ref=g_ref,
            )
            out.append({"paper": row, "model": pred})
        return out

    def table3(self) -> list[dict]:
        """Model vs paper for every Table III row (strong scaling, Fig. 8)."""
        rows = []
        g_ref = None
        for row in TABLE3:
            geometry = balanced_dims(row.cores)
            pred = self.predict(
                cores=row.cores,
                np_per_dim=TABLE3_NP_PER_DIM,
                box_mpc=TABLE3_BOX_MPC,
                geometry=geometry,  # type: ignore[arg-type]
                earlier_kernel=True,
                g_ref=g_ref,
            )
            if g_ref is None:
                g_ref = pred.overload_factor
            rows.append({"paper": row, "model": pred})
        return rows

    # ------------------------------------------------------------------
    def headline(self) -> dict:
        """The paper's headline numbers from the 96-rack configuration."""
        row = TABLE2[-1]
        pred = self.predict(
            cores=row.cores,
            np_per_dim=row.np_per_dim,
            box_mpc=row.box_mpc,
            geometry=row.geometry,
            g_ref=self.overload_factor(
                TABLE2[0].box_mpc, TABLE2[0].geometry, TABLE2[0].np_per_dim
            ),
        )
        return {
            "cores": row.cores,
            "paper_pflops": row.pflops,
            "model_pflops": pred.pflops,
            "paper_peak_percent": row.peak_percent,
            "model_peak_percent": pred.peak_percent,
            "paper_time_substep_particle": row.time_substep_particle,
            "model_time_substep_particle": pred.time_substep_particle,
        }
