"""One-shot host calibration: measured peak GFLOP/s and STREAM GB/s.

The paper reports efficiency against known hardware ceilings (204.8
GFlops and 42.6 GB/s per BG/Q node).  This host has no spec sheet we
can trust, so we measure the two ceilings once — a dense-matmul peak
(BLAS is the fastest flop source reachable from numpy, the same role
the QPX FMA units play in Table II) and a STREAM-triad bandwidth — and
cache them under the run ledger, keyed by a host fingerprint.  Every
``report --roofline`` then states *measured fraction of calibrated
peak*, comparable to the paper's 69.2%-of-peak headline.

Calibration is deliberately cheap (well under a second of benchmarking
at the default sizes) because it runs lazily on the first roofline
request per machine; ``force=True`` re-measures.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "HostCalibration",
    "host_fingerprint",
    "measure_peak_gflops",
    "measure_stream_gbs",
    "calibrate",
    "CALIBRATION_FILENAME",
]

CALIBRATION_FILENAME = "calibration.json"


@dataclass(frozen=True)
class HostCalibration:
    """Measured flop and bandwidth ceilings of one host."""

    peak_gflops: float
    stream_gbs: float
    fingerprint: str
    measured_unix: float

    def balance(self) -> float:
        """Machine balance point in flops/byte: phases with a higher
        arithmetic intensity are compute-bound here, lower memory-bound
        (the ridge of the roofline)."""
        if self.stream_gbs <= 0:
            return float("inf")
        return self.peak_gflops / self.stream_gbs

    def to_dict(self) -> dict:
        return {
            "peak_gflops": self.peak_gflops,
            "stream_gbs": self.stream_gbs,
            "fingerprint": self.fingerprint,
            "measured_unix": self.measured_unix,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HostCalibration":
        return cls(
            peak_gflops=float(data["peak_gflops"]),
            stream_gbs=float(data["stream_gbs"]),
            fingerprint=str(data.get("fingerprint", "")),
            measured_unix=float(data.get("measured_unix", 0.0)),
        )


def host_fingerprint() -> str:
    """Identity key for the calibration cache: hostname, arch, core
    count, numpy version.  A changed fingerprint invalidates the cache
    (new machine, resized container, different BLAS)."""
    return "|".join(
        (
            platform.node(),
            platform.machine(),
            str(os.cpu_count() or 0),
            f"numpy-{np.__version__}",
        )
    )


def measure_peak_gflops(n: int = 512, reps: int = 5) -> float:
    """Peak flop rate via dense f64 matmul (2·n³ flops), best of reps.

    BLAS GEMM is the highest flop rate numpy can reach — the measured
    stand-in for the node's FMA peak.  Best-of is the right statistic
    for a ceiling: noise only slows runs down.
    """
    rng = np.random.default_rng(12345)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    a @ b  # warm up BLAS thread pool / allocator
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        a @ b
        best = min(best, time.perf_counter() - t0)
    return 2.0 * n**3 / best / 1e9


def measure_stream_gbs(n: int = 4_000_000, reps: int = 5) -> float:
    """Memory bandwidth via the STREAM triad ``a = b + s*c``.

    Uses the STREAM counting convention: 3 × 8 bytes moved per element
    (two loads, one store) — write-allocate traffic is not charged,
    matching published triad numbers.
    """
    b = np.full(n, 1.5)
    c = np.full(n, 0.5)
    a = np.empty(n)
    s = 3.0
    np.add(b, s * c, out=a)  # warm up
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        np.multiply(c, s, out=a)
        np.add(a, b, out=a)
        best = min(best, time.perf_counter() - t0)
    return 3 * 8 * n / best / 1e9


def calibrate(
    root: str | Path | None = None,
    force: bool = False,
    matmul_n: int = 512,
    stream_n: int = 4_000_000,
) -> HostCalibration:
    """Measured host ceilings, cached at ``<ledger root>/calibration.json``.

    ``root`` defaults to the run-ledger root (``REPRO_LEDGER_DIR`` or
    ``.repro/ledger``) so calibration lives next to the runs it rates.
    The cache is reused while the host fingerprint matches; ``force``
    re-measures unconditionally.
    """
    if root is None:
        from repro.instrument.store import default_ledger_root

        root = default_ledger_root()
    root = Path(root)
    cache = root / CALIBRATION_FILENAME
    fingerprint = host_fingerprint()

    if not force and cache.is_file():
        try:
            data = json.loads(cache.read_text())
            cal = HostCalibration.from_dict(data)
            if cal.fingerprint == fingerprint:
                return cal
        except (ValueError, KeyError):
            pass  # unreadable cache: fall through and re-measure

    cal = HostCalibration(
        peak_gflops=measure_peak_gflops(n=matmul_n),
        stream_gbs=measure_stream_gbs(n=stream_n),
        fingerprint=fingerprint,
        measured_unix=time.time(),
    )
    root.mkdir(parents=True, exist_ok=True)
    tmp = cache.with_suffix(".tmp")
    tmp.write_text(json.dumps(cal.to_dict(), indent=2) + "\n")
    os.replace(tmp, cache)
    return cal
