"""Instruction-mix / memory roofline analysis of the 96-rack run.

Section IV.B reports unusually detailed node counters for the full
1,572,864-core run:

* instruction mix FPU = 56.10%, FXU = 43.90%;
* 1.508 instructions/cycle completed per core — 85% of the maximal
  issue rate implied by the mix;
* 142.32 GFlops sustained from a 204.8 GFlops node = 69.5% of peak;
* L1 hit rate 99.62% with a 6.4 GB/node footprint;
* memory bandwidth 0.344 B/cycle used of an 18 B/cycle measured peak.

This module re-derives those numbers from first principles so the
arithmetic is checkable (and reusable for what-if analyses): the A2 core
dual-issues at most one FPU and one FXU instruction per cycle from
different threads, so a stream with FPU fraction ``f >= 1/2`` is
FPU-issue-bound at ``1/f`` instructions/cycle.  Sustained flops then
follow from the completed FPU rate times the average flops per FPU
instruction, and the bytes/flop together with the bandwidth ceiling
places the code on the roofline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.bgq import BGQNode
from repro.machine.paper_data import (
    FPU_INSTRUCTION_FRACTION,
    INSTRUCTIONS_PER_CYCLE,
    L1_HIT_RATE,
    MEMORY_BW_PEAK_BYTES_PER_CYCLE,
    MEMORY_BW_USED_BYTES_PER_CYCLE,
)

__all__ = ["InstructionMixModel", "RooflinePoint"]


@dataclass(frozen=True)
class RooflinePoint:
    """Where a code sits on the (intensity, performance) plane."""

    arithmetic_intensity: float  # flops per byte of memory traffic
    flops_per_cycle: float
    bandwidth_bound_flops_per_cycle: float

    @property
    def memory_bound(self) -> bool:
        return self.flops_per_cycle > self.bandwidth_bound_flops_per_cycle


@dataclass
class InstructionMixModel:
    """Issue-rate and roofline arithmetic for a BG/Q core.

    Parameters default to the Section IV.B counter values; override them
    for what-if analyses.
    """

    node: BGQNode = field(default_factory=BGQNode)
    fpu_fraction: float = FPU_INSTRUCTION_FRACTION
    instructions_per_cycle: float = INSTRUCTIONS_PER_CYCLE
    l1_hit_rate: float = L1_HIT_RATE
    memory_bytes_per_cycle: float = MEMORY_BW_USED_BYTES_PER_CYCLE
    memory_peak_bytes_per_cycle: float = MEMORY_BW_PEAK_BYTES_PER_CYCLE

    def __post_init__(self) -> None:
        if not 0 < self.fpu_fraction <= 1:
            raise ValueError(
                f"fpu_fraction must lie in (0, 1]: {self.fpu_fraction}"
            )
        if self.instructions_per_cycle <= 0:
            raise ValueError("instructions_per_cycle must be positive")

    # ------------------------------------------------------------------
    # issue-rate arithmetic (the paper's 1.783 / 85% numbers)
    # ------------------------------------------------------------------
    def max_instructions_per_cycle(self) -> float:
        """Issue ceiling for this mix.

        The core completes at most 1 FPU + 1 FXU per cycle; a stream
        that is FPU-heavy (f > 1/2) saturates the FPU port first, capping
        total throughput at ``1/f`` ("100/56.10 = 1.783
        instructions/cycle").
        """
        f = max(self.fpu_fraction, 1.0 - self.fpu_fraction)
        return 1.0 / f

    def issue_efficiency(self) -> float:
        """Completed / maximal instruction rate (paper: 85%)."""
        return self.instructions_per_cycle / self.max_instructions_per_cycle()

    def fpu_instructions_per_cycle(self) -> float:
        """Completed FPU instructions per cycle per core."""
        return self.instructions_per_cycle * self.fpu_fraction

    def sustained_node_gflops(self, flops_per_fpu_instruction: float) -> float:
        """Node GFlops from the completed FPU rate.

        The paper's counters give 142.32 GFlops/node; with the measured
        instruction rate that corresponds to ~6.6 flops per FPU
        instruction (a mix of 8-flop QPX FMAs and 4-flop non-FMA ops),
        consistent with the kernel's 16-of-26-FMA composition.
        """
        if flops_per_fpu_instruction <= 0:
            raise ValueError("flops_per_fpu_instruction must be positive")
        per_core = (
            self.fpu_instructions_per_cycle()
            * flops_per_fpu_instruction
            * self.node.clock_hz
        )
        return per_core * self.node.app_cores / 1e9

    def implied_flops_per_fpu_instruction(
        self, sustained_node_gflops: float = 142.32
    ) -> float:
        """Invert :meth:`sustained_node_gflops` for the measured GFlops."""
        per_core = sustained_node_gflops * 1e9 / self.node.app_cores
        return per_core / (
            self.fpu_instructions_per_cycle() * self.node.clock_hz
        )

    # ------------------------------------------------------------------
    # roofline
    # ------------------------------------------------------------------
    def roofline(self, sustained_node_gflops: float = 142.32) -> RooflinePoint:
        """Locate the full code on the node roofline.

        The measured memory traffic (0.344 B/cycle of 18) puts HACC far
        into the compute-bound region: "this testifies to the very high
        rate of data reuse."
        """
        flops_per_cycle = (
            sustained_node_gflops * 1e9 / self.node.clock_hz
        )
        bytes_per_cycle = self.memory_bytes_per_cycle
        intensity = (
            flops_per_cycle / bytes_per_cycle if bytes_per_cycle > 0 else float("inf")
        )
        bw_bound = intensity * self.memory_peak_bytes_per_cycle
        return RooflinePoint(
            arithmetic_intensity=intensity,
            flops_per_cycle=flops_per_cycle,
            bandwidth_bound_flops_per_cycle=bw_bound,
        )

    def bandwidth_headroom(self) -> float:
        """Peak/used memory bandwidth (paper: 18 / 0.344 ~ 52x)."""
        if self.memory_bytes_per_cycle <= 0:
            return float("inf")
        return self.memory_peak_bytes_per_cycle / self.memory_bytes_per_cycle

    def summary(self) -> dict:
        """The Section IV.B table as a dict (for the roofline bench)."""
        return {
            "fpu_fraction": self.fpu_fraction,
            "max_ipc": self.max_instructions_per_cycle(),
            "measured_ipc": self.instructions_per_cycle,
            "issue_efficiency": self.issue_efficiency(),
            "l1_hit_rate": self.l1_hit_rate,
            "bandwidth_headroom": self.bandwidth_headroom(),
            "flops_per_fpu_instruction": self.implied_flops_per_fpu_instruction(),
        }
