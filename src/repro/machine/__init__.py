"""BG/Q machine and performance models.

The paper's headline results (13.94 PFlops on 1,572,864 cores, Tables
I-III, Figs. 5-8) require 96 racks of Blue Gene/Q.  Per the reproduction's
substitution policy (DESIGN.md), this subpackage provides an analytical /
discrete performance simulator of that machine, built only from hardware
constants and algorithm facts stated in the paper:

* :mod:`repro.machine.bgq` — the BQC node (16 A2 cores x 4 hw threads,
  QPX, 1.6 GHz, 204.8 GFlops, cache/memory parameters) and system sizes;
* :mod:`repro.machine.kernel_model` — cycle-level model of the
  26-instruction short-range force kernel (Fig. 5);
* :mod:`repro.machine.network` — 5-D torus communication times;
* :mod:`repro.machine.fft_model` — distributed-FFT timing (Table I,
  Fig. 6), calibrated against two anchor rows and predicting the rest;
* :mod:`repro.machine.perfmodel` — full-code weak/strong scaling
  (Tables II-III, Figs. 7-8) from the paper's 80/10/5/5 time split and
  the overloading geometry;
* :mod:`repro.machine.paper_data` — the published table rows, kept in one
  place for calibration and for the paper-vs-model comparisons in
  EXPERIMENTS.md.
"""

from repro.machine.bgq import BGQNode, BGQSystem
from repro.machine.kernel_model import ForceKernelModel
from repro.machine.network import TorusNetworkModel
from repro.machine.fft_model import DistributedFFTModel
from repro.machine.architectures import ARCHITECTURES, ArchSpec
from repro.machine.perfmodel import FullCodeModel, ScalingRow
from repro.machine.roofline import InstructionMixModel, RooflinePoint
from repro.machine.calibrate import HostCalibration, calibrate
from repro.machine.mapping import MappingAnalysis, RankGroupLayout

__all__ = [
    "HostCalibration",
    "calibrate",
    "BGQNode",
    "BGQSystem",
    "ForceKernelModel",
    "TorusNetworkModel",
    "DistributedFFTModel",
    "ArchSpec",
    "ARCHITECTURES",
    "FullCodeModel",
    "ScalingRow",
    "InstructionMixModel",
    "RooflinePoint",
    "MappingAnalysis",
    "RankGroupLayout",
]
