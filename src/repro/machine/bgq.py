"""The Blue Gene/Q compute node and system model.

All numbers come from Section III of the paper (and the BQC literature it
cites): a System-on-Chip with 17 augmented 64-bit PowerPC A2 cores (16 for
applications), 4 hardware threads and a 4-wide SIMD quad FPU (QPX) per
core, 1.6 GHz clock, 16 KB private L1 per core, a shared 32 MB L2, and a
5-D torus with 10 links totalling 40 GB/s per node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.parallel.topology import TorusTopology

__all__ = ["BGQNode", "BGQSystem"]


@dataclass(frozen=True)
class BGQNode:
    """One BQC node; defaults are the paper's hardware constants."""

    clock_hz: float = 1.6e9
    app_cores: int = 16
    hw_threads_per_core: int = 4
    qpx_width: int = 4  # SIMD lanes
    fma_flops_per_lane: int = 2  # multiply + add
    fp_latency_cycles: int = 6
    vector_registers: int = 32
    l1_data_kb: int = 16
    l2_shared_mb: int = 32
    l2_latency_cycles: int = 45
    memory_gb: int = 16
    memory_bw_bytes_per_cycle: float = 18.0
    torus_links: int = 10
    torus_total_bw_bytes: float = 40.0e9

    @property
    def flops_per_core_peak(self) -> float:
        """12.8 GFlops: 4 lanes x 2 flops x 1.6 GHz."""
        return self.clock_hz * self.qpx_width * self.fma_flops_per_lane

    @property
    def flops_per_node_peak(self) -> float:
        """204.8 GFlops per BQC."""
        return self.flops_per_core_peak * self.app_cores

    @property
    def link_bandwidth_bytes(self) -> float:
        """Per-link bandwidth (uniform split of the 40 GB/s total)."""
        return self.torus_total_bw_bytes / self.torus_links

    @property
    def memory_bandwidth_bytes(self) -> float:
        """Sustained memory bandwidth in bytes/s (18 B/cycle measured)."""
        return self.memory_bw_bytes_per_cycle * self.clock_hz

    def flops_per_rank_peak(self, ranks_per_node: int) -> float:
        """Peak flop rate available to one MPI rank."""
        if not 1 <= ranks_per_node <= self.app_cores * self.hw_threads_per_core:
            raise ValueError(
                f"ranks_per_node out of range: {ranks_per_node}"
            )
        return self.flops_per_node_peak / ranks_per_node


@dataclass(frozen=True)
class BGQSystem:
    """A BG/Q partition: racks of 1024 nodes on a 5-D torus.

    The paper's reference systems: Mira (48 racks), Sequoia (96 racks —
    the 1,572,864-core configuration of Table II).
    """

    n_nodes: int
    node: BGQNode = BGQNode()

    NODES_PER_RACK = 1024

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1: {self.n_nodes}")

    @classmethod
    def racks(cls, n_racks: float, node: BGQNode | None = None) -> "BGQSystem":
        """System with ``n_racks`` racks (fractional racks allowed for
        sub-rack partitions)."""
        if n_racks <= 0:
            raise ValueError(f"n_racks must be positive: {n_racks}")
        return cls(
            n_nodes=int(round(n_racks * cls.NODES_PER_RACK)),
            node=node if node is not None else BGQNode(),
        )

    @classmethod
    def for_ranks(
        cls, ranks: int, ranks_per_node: int = 16, node: BGQNode | None = None
    ) -> "BGQSystem":
        """Smallest partition hosting ``ranks`` MPI ranks."""
        if ranks < 1:
            raise ValueError(f"ranks must be >= 1: {ranks}")
        n_nodes = max(1, math.ceil(ranks / ranks_per_node))
        return cls(n_nodes=n_nodes, node=node if node is not None else BGQNode())

    # ------------------------------------------------------------------
    @property
    def cores(self) -> int:
        return self.n_nodes * self.node.app_cores

    @property
    def peak_flops(self) -> float:
        return self.n_nodes * self.node.flops_per_node_peak

    @property
    def peak_pflops(self) -> float:
        return self.peak_flops / 1.0e15

    def torus(self) -> TorusTopology:
        """A balanced 5-D torus over the partition's nodes."""
        return TorusTopology.balanced(self.n_nodes, ndim=5)
