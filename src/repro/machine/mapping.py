"""Rank-to-torus mapping quality for the pencil FFT's communicators.

Section IV.A attributes the pencil FFT's behaviour to transposes that
"only involve a subset of all tasks" with "a reduction in communication
hotspots in the interconnect".  That property is *mapping dependent*: the
row/column communicators of the 2-D rank grid must land on compact torus
neighborhoods, or every subset all-to-all sprays traffic across the
machine.

This module evaluates mappings: given a ``pr x pc`` rank grid and a torus,
it computes the mean hop distance within row and column communicators for

* ``"linear"`` — ranks assigned to nodes in linear order (the naive
  default): rows are contiguous (good), columns are strided (bad);
* ``"blocked"`` — the torus is tiled into ``pr x pc``-shaped blocks so
  both communicator families stay compact — the balanced choice a
  production mapping file implements.

The comm term of :class:`repro.machine.DistributedFFTModel` assumes
subset locality; :meth:`MappingAnalysis.subset_hops` quantifies how much
of it each mapping actually delivers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.decomposition import balanced_dims
from repro.parallel.topology import TorusTopology

__all__ = ["MappingAnalysis", "RankGroupLayout"]


@dataclass(frozen=True)
class RankGroupLayout:
    """Sharded worker layout: ``n_groups`` rank groups x workers-per-group.

    The paper partitions the 5-D torus into compact sub-blocks and keeps
    each rank's collectives inside its block (Sec. IV.A); the process
    executor mirrors that by sharding its worker fleet into independent
    pools.  This class is the *map* from work items to groups — blocked
    and contiguous, so a group always owns a compact slab of the domain
    list, exactly like a torus sub-block owns a compact slab of ranks —
    plus the hop-distance analysis of how well those groups land on the
    torus.

    The layout never affects results: grouping changes which pool runs a
    task, not what it computes or the order results are reduced.
    """

    n_workers: int
    n_groups: int = 1
    ranks_per_node: int = 8

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1: {self.n_workers}")
        if self.n_groups < 1:
            raise ValueError(f"n_groups must be >= 1: {self.n_groups}")
        if self.n_groups > self.n_workers:
            raise ValueError(
                f"{self.n_groups} groups need at least that many "
                f"workers, got {self.n_workers}"
            )
        if self.n_workers % self.n_groups:
            raise ValueError(
                f"workers ({self.n_workers}) must divide evenly into "
                f"groups ({self.n_groups})"
            )

    @property
    def workers_per_group(self) -> int:
        return self.n_workers // self.n_groups

    # ------------------------------------------------------------------
    def group_of(self, index: int, n_items: int) -> int:
        """Group owning item ``index`` of ``n_items`` (blocked layout).

        Contiguous blocks: items ``[g*n/G, (g+1)*n/G)`` belong to group
        ``g`` — the same formula the executor uses to route chunks, kept
        here as the single documented definition.
        """
        if n_items < 1:
            raise ValueError(f"n_items must be >= 1: {n_items}")
        index = int(index) % n_items
        return min(index * self.n_groups // n_items, self.n_groups - 1)

    def group_slices(self, n_items: int) -> list[tuple[int, int]]:
        """Half-open ``[start, stop)`` item ranges per group."""
        bounds = [
            n_items * g // self.n_groups for g in range(self.n_groups + 1)
        ]
        return list(zip(bounds[:-1], bounds[1:]))

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Layout summary plus torus locality of the grouped fleet.

        Treats each group as a row of a ``n_groups x workers_per_group``
        rank grid and reuses :class:`MappingAnalysis`: ``row_mean_hops``
        under the blocked mapping is the mean intra-group hop distance —
        the paper's criterion for a good torus partition.
        """
        analysis = MappingAnalysis(
            pr=self.n_groups,
            pc=self.workers_per_group,
            ranks_per_node=self.ranks_per_node,
        )
        hops = analysis.subset_hops("blocked")
        return {
            "n_workers": self.n_workers,
            "n_groups": self.n_groups,
            "workers_per_group": self.workers_per_group,
            "intra_group_mean_hops": hops["row_mean_hops"],
            "cross_group_mean_hops": hops["col_mean_hops"],
            "machine_mean_hops": hops["machine_mean_hops"],
        }


@dataclass(frozen=True)
class MappingAnalysis:
    """Hop-distance analysis of a pencil rank grid on a torus.

    Parameters
    ----------
    pr, pc:
        Rank-grid dimensions (``pr * pc`` ranks total).
    ranks_per_node:
        Ranks packed per node (consecutive ranks share a node).
    torus:
        Target topology; by default a balanced 5-D torus just large
        enough for the ranks.
    """

    pr: int
    pc: int
    ranks_per_node: int = 8
    torus: TorusTopology | None = None

    def __post_init__(self) -> None:
        if self.pr < 1 or self.pc < 1:
            raise ValueError(f"invalid rank grid {self.pr}x{self.pc}")
        if self.ranks_per_node < 1:
            raise ValueError(
                f"ranks_per_node must be >= 1: {self.ranks_per_node}"
            )
        if self.torus is None:
            n_nodes = max(
                1, (self.pr * self.pc + self.ranks_per_node - 1)
                // self.ranks_per_node
            )
            object.__setattr__(
                self, "torus", TorusTopology(balanced_dims(n_nodes, 5))
            )

    @property
    def n_ranks(self) -> int:
        return self.pr * self.pc

    # ------------------------------------------------------------------
    # mappings: rank (i, j) -> node id
    # ------------------------------------------------------------------
    def node_of_rank(self, i: int, j: int, mapping: str) -> int:
        """Node hosting rank-grid coordinate (i, j) under a mapping."""
        if not (0 <= i < self.pr and 0 <= j < self.pc):
            raise ValueError(f"rank coordinate ({i}, {j}) out of grid")
        if mapping == "linear":
            rank = i * self.pc + j
        elif mapping == "blocked":
            # tile the node sequence so that each row block and column
            # block is contiguous: order ranks in pc-major tiles of
            # shape (ranks_per_node-compatible) — here a simple
            # column-within-row-block ordering that keeps both families
            # compact
            tile = max(1, int(round(self.ranks_per_node**0.5)))
            bi, oi = divmod(i, tile)
            bj, oj = divmod(j, tile)
            tiles_per_row = (self.pc + tile - 1) // tile
            tile_id = bi * tiles_per_row + bj
            rank = tile_id * tile * tile + oi * tile + oj
        else:
            raise ValueError(f"unknown mapping {mapping!r}")
        return (rank // self.ranks_per_node) % self.torus.n_nodes

    # ------------------------------------------------------------------
    def subset_hops(self, mapping: str) -> dict:
        """Mean pairwise hop distance within row and column communicators.

        Lower is better: the transpose all-to-alls travel that many links
        per message on average.
        """
        row_hops = []
        for i in range(self.pr):
            nodes = [
                self.node_of_rank(i, j, mapping) for j in range(self.pc)
            ]
            row_hops.append(self._mean_pair_hops(nodes))
        col_hops = []
        for j in range(self.pc):
            nodes = [
                self.node_of_rank(i, j, mapping) for i in range(self.pr)
            ]
            col_hops.append(self._mean_pair_hops(nodes))
        return {
            "row_mean_hops": float(np.mean(row_hops)),
            "col_mean_hops": float(np.mean(col_hops)),
            "worst_family_hops": float(
                max(np.mean(row_hops), np.mean(col_hops))
            ),
            "machine_mean_hops": self.torus.average_hops(),
        }

    def _mean_pair_hops(self, nodes: list[int]) -> float:
        if len(nodes) < 2:
            return 0.0
        total, count = 0.0, 0
        for a_idx in range(len(nodes)):
            for b_idx in range(a_idx + 1, len(nodes)):
                total += self.torus.hops(nodes[a_idx], nodes[b_idx])
                count += 1
        return total / count

    # ------------------------------------------------------------------
    def locality_advantage(self) -> float:
        """Worst-family hops, linear / blocked (> 1 means blocking wins)."""
        linear = self.subset_hops("linear")["worst_family_hops"]
        blocked = self.subset_hops("blocked")["worst_family_hops"]
        if blocked == 0:
            return float("inf") if linear > 0 else 1.0
        return linear / blocked
