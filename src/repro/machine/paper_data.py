"""Published performance numbers from Habib et al. (SC 2012).

Kept verbatim in one module so that (a) model calibration uses clearly
marked anchor rows only, and (b) every bench can print paper-vs-model
columns without re-typing values.  Units follow the paper: seconds,
PFlops, MB.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FFTRow",
    "TABLE1_STRONG",
    "TABLE1_WEAK_160",
    "TABLE1_WEAK_200",
    "Table2Row",
    "TABLE2",
    "Table3Row",
    "TABLE3",
    "KERNEL_INSTRUCTIONS",
    "KERNEL_FMA_INSTRUCTIONS",
    "KERNEL_FLOPS",
    "KERNEL_INTERACTIONS_PER_ITERATION",
    "FULLCODE_TIME_SPLIT",
    "FULLCODE_PEAK_FRACTION",
    "FPU_INSTRUCTION_FRACTION",
    "INSTRUCTIONS_PER_CYCLE",
    "L1_HIT_RATE",
    "MEMORY_BW_USED_BYTES_PER_CYCLE",
    "MEMORY_BW_PEAK_BYTES_PER_CYCLE",
]


@dataclass(frozen=True)
class FFTRow:
    """One row of Table I: FFT size (per dimension), ranks, seconds."""

    n: int
    ranks: int
    seconds: float


#: Table I, first block: strong scaling of a 1024^3 FFT (8 ranks/node).
TABLE1_STRONG = (
    FFTRow(1024, 256, 2.731),
    FFTRow(1024, 512, 1.392),
    FFTRow(1024, 1024, 0.713),
    FFTRow(1024, 2048, 0.354),
    FFTRow(1024, 4096, 0.179),
    FFTRow(1024, 8192, 0.098),
)

#: Table I, second block: weak scaling at ~160^3 grid points per rank.
TABLE1_WEAK_160 = (
    FFTRow(4096, 16384, 5.254),
    FFTRow(5120, 32768, 6.173),
    FFTRow(6400, 65536, 6.841),
    FFTRow(8192, 131072, 7.359),
    FFTRow(9216, 262144, 7.238),
)

#: Table I, third block: weak scaling at ~200^3 grid points per rank.
TABLE1_WEAK_200 = (
    FFTRow(5120, 16384, 10.36),
    FFTRow(6400, 32768, 12.40),
    FFTRow(8192, 65536, 14.72),
    FFTRow(10240, 131072, 14.24),
)


@dataclass(frozen=True)
class Table2Row:
    """One row of Table II (weak scaling, ~2M particles/core)."""

    cores: int
    np_per_dim: int
    box_mpc: float
    geometry: tuple[int, int, int]
    pflops: float
    peak_percent: float
    time_substep_particle: float
    cores_time_substep: float
    memory_mb_rank: float


TABLE2 = (
    Table2Row(2048, 1600, 1814.0, (16, 8, 16), 0.018, 69.00, 4.12e-8, 8.44e-5, 377.0),
    Table2Row(4096, 2048, 2286.0, (16, 16, 16), 0.036, 68.59, 1.92e-8, 7.86e-5, 380.0),
    Table2Row(8192, 2560, 2880.0, (16, 32, 16), 0.072, 68.75, 1.00e-8, 8.21e-5, 395.0),
    Table2Row(16384, 3200, 3628.0, (32, 32, 16), 0.144, 68.50, 5.19e-9, 8.50e-5, 376.0),
    Table2Row(32768, 4096, 4571.0, (64, 32, 16), 0.269, 69.02, 2.88e-9, 9.44e-5, 414.0),
    Table2Row(65536, 5120, 5714.0, (64, 64, 16), 0.576, 68.64, 1.46e-9, 9.59e-5, 418.0),
    Table2Row(131072, 6656, 6857.0, (64, 64, 32), 1.16, 69.37, 7.41e-10, 9.70e-5, 377.0),
    Table2Row(262144, 8192, 9142.0, (64, 64, 64), 2.27, 67.70, 3.04e-10, 7.96e-5, 346.0),
    Table2Row(393216, 9216, 9857.0, (96, 64, 64), 3.39, 67.27, 2.03e-10, 7.99e-5, 342.0),
    Table2Row(524288, 10240, 11429.0, (128, 64, 64), 4.53, 67.46, 1.59e-10, 8.36e-5, 348.0),
    Table2Row(786432, 12288, 13185.0, (128, 128, 48), 7.02, 69.75, 1.2e-10, 9.90e-5, 415.0),
    Table2Row(1572864, 15360, 16614.0, (192, 128, 64), 13.94, 69.22, 5.96e-11, 9.93e-5, 402.0),
)


@dataclass(frozen=True)
class Table3Row:
    """One row of Table III (strong scaling, 1024^3 particles)."""

    cores: int
    particles_per_core: int
    tflops: float
    peak_percent: float
    time_substep: float
    time_substep_particle: float
    memory_mb_rank: float
    memory_fraction_percent: float


TABLE3 = (
    Table3Row(512, 2097152, 4.42, 67.44, 145.94, 1.36e-7, 368.82, 62.39),
    Table3Row(1024, 1048576, 8.77, 66.89, 98.01, 9.13e-8, 230.07, 31.52),
    Table3Row(2048, 524288, 17.99, 68.67, 49.16, 4.58e-8, 125.86, 15.09),
    Table3Row(4096, 262144, 33.06, 63.05, 21.97, 2.05e-8, 75.816, 8.57),
    Table3Row(8192, 131072, 67.72, 64.59, 15.90, 1.48e-8, 57.15, 6.33),
    Table3Row(16384, 65536, 131.27, 62.59, 10.01, 9.33e-9, 41.355, 4.50),
)

#: Fig. 8 caption: strong-scaling box is (1.42 Gpc)^3.
TABLE3_BOX_MPC = 1420.0
TABLE3_NP_PER_DIM = 1024

# ---------------------------------------------------------------------------
# Section III/IV scalar facts about the kernel and the full code
# ---------------------------------------------------------------------------

#: instructions in the unrolled kernel loop body
KERNEL_INSTRUCTIONS = 26
#: of which FMAs (8 flops each on QPX); the rest are non-FMA FPU ops
KERNEL_FMA_INSTRUCTIONS = 16
#: flops per loop body: 16 FMA x 8 + 10 x 4 = 168 ("= 40 + 128" in the text)
KERNEL_FLOPS = 168
#: interactions covered per loop body: 4-wide QPX x 2-fold unroll
KERNEL_INTERACTIONS_PER_ITERATION = 8

#: measured full-code time split at the 16 ranks/4 threads operating point:
#: force kernel, tree walk, FFT, everything else (tree build, CIC, ...)
FULLCODE_TIME_SPLIT = {"kernel": 0.80, "walk": 0.10, "fft": 0.05, "other": 0.05}

#: overall sustained fraction of peak for the full code (Section IV.B)
FULLCODE_PEAK_FRACTION = 0.695

#: instruction mix and throughput measured on the 96-rack run
FPU_INSTRUCTION_FRACTION = 0.5610
INSTRUCTIONS_PER_CYCLE = 1.508
L1_HIT_RATE = 0.9962
MEMORY_BW_USED_BYTES_PER_CYCLE = 0.344
MEMORY_BW_PEAK_BYTES_PER_CYCLE = 18.0
