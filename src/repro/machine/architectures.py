"""Architecture specifications for the Fig. 6 cross-platform comparison.

Fig. 6 shows weak scaling of the Poisson solver on three machines:
Roadrunner (slab-decomposed FFT, ``Nrank < N`` hard limit), BG/P and BG/Q
(pencil-decomposed, ``Nrank < N^2``).  The reproduction models each
machine by two effective parameters — per-rank FFT throughput and network
bisection behaviour — with BG/Q calibrated against Table I and the other
two scaled from their hardware ratios (documented below; the paper prints
no Fig. 6 tables, so the *levels* are estimates while the *shape* —
near-ideal flatness and the slab rank ceiling — is the reproduced claim).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.bgq import BGQNode
from repro.machine.fft_model import DistributedFFTModel

__all__ = ["ArchSpec", "ARCHITECTURES"]


@dataclass(frozen=True)
class ArchSpec:
    """One machine in the Fig. 6 comparison.

    Parameters
    ----------
    name:
        Display name.
    decomposition:
        ``"pencil"`` or ``"slab"``; slab enforces ``Nrank <= N``.
    rate_scale:
        Per-rank FFT throughput relative to the calibrated BG/Q value.
    bandwidth_scale:
        Effective bisection bandwidth relative to BG/Q.
    ranks_per_node:
        MPI ranks per node for the Poisson phase.
    max_ranks:
        Largest configuration shown in Fig. 6 for this machine.
    """

    name: str
    decomposition: str
    rate_scale: float
    bandwidth_scale: float
    ranks_per_node: int
    max_ranks: int

    def fft_model(self) -> DistributedFFTModel:
        """A calibrated BG/Q model rescaled to this architecture."""
        base = DistributedFFTModel.calibrated()
        return DistributedFFTModel(
            node=BGQNode(),
            ranks_per_node=self.ranks_per_node,
            rate_flops_per_rank=base.rate_flops_per_rank * self.rate_scale,
            link_efficiency=min(
                1.0, base.link_efficiency * self.bandwidth_scale
            ),
        )

    def rank_limit(self, n: int) -> int:
        """Scalability ceiling of the decomposition for an ``n^3`` FFT."""
        if self.decomposition == "slab":
            return n
        if self.decomposition == "pencil":
            return n * n
        raise ValueError(f"unknown decomposition {self.decomposition!r}")


#: Fig. 6's three machines.  Scale factors: BG/P's PPC450 (850 MHz, 4
#: cores, no QPX) delivers roughly 1/4 of a BG/Q rank's FFT throughput on
#: its 3-D torus; Roadrunner's Opteron layer (where the spectral solver
#: runs) is comparable per rank to BG/P but its fat-tree Infiniband gives
#: the slab transpose relatively more bisection per node.
ARCHITECTURES = {
    "bgq": ArchSpec(
        name="BG/Q (pencil)",
        decomposition="pencil",
        rate_scale=1.0,
        bandwidth_scale=1.0,
        ranks_per_node=8,
        max_ranks=131072,
    ),
    "bgp": ArchSpec(
        name="BG/P (pencil)",
        decomposition="pencil",
        rate_scale=0.25,
        bandwidth_scale=0.4,
        ranks_per_node=4,
        max_ranks=131072,
    ),
    "roadrunner": ArchSpec(
        name="Roadrunner (slab)",
        decomposition="slab",
        rate_scale=0.3,
        bandwidth_scale=0.7,
        ranks_per_node=4,
        max_ranks=4096,
    ),
}
