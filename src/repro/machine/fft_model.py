"""Distributed-FFT timing model (Table I, Fig. 6).

The pencil FFT's cost has two parts with different scalings:

* **compute** — three 1-D FFT passes, ``5 N^3 log2(N^3)`` flops split
  over the ranks, at an effective per-rank rate (FFTs are memory-bound,
  so the rate is far below QPX peak);
* **communication** — two transpose phases, each moving (almost) the
  rank's whole local volume.  Each transpose is an all-to-all *within a
  row or column of the rank grid*; with a torus-aware mapping those
  subsets are spatially local, so the cost per byte grows with the
  partition's linear extent, ``(nodes)^(1/5)`` on the 5-D torus.  This is
  exactly the gentle upward creep of the weak-scaling rows of Table I
  (5.25 s at 16k ranks -> 7.36 s at 131k ranks for ~160^3 points per
  rank) coexisting with near-ideal strong scaling at fixed size.

Calibration: the two rates (compute flops/s per rank, link efficiency)
are fitted by least squares to the published Table I rows — the model
*form* comes from the architecture; only these two scalars are free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.machine.bgq import BGQNode
from repro.machine.network import TorusNetworkModel
from repro.machine.paper_data import (
    TABLE1_STRONG,
    TABLE1_WEAK_160,
    TABLE1_WEAK_200,
    FFTRow,
)
from repro.parallel.topology import TorusTopology

__all__ = ["DistributedFFTModel"]


@dataclass
class DistributedFFTModel:
    """Timing model for the pencil-decomposed 3-D FFT on BG/Q.

    Parameters
    ----------
    node:
        Node constants.
    ranks_per_node:
        MPI ranks per node (Table I was measured at 8).
    rate_flops_per_rank:
        Effective sequential FFT throughput per rank (calibrated).
    link_efficiency:
        Achieved fraction of raw link bandwidth in the transpose
        all-to-alls (calibrated).
    """

    node: BGQNode = field(default_factory=BGQNode)
    ranks_per_node: int = 8
    rate_flops_per_rank: float = 3.0e8
    link_efficiency: float = 0.5

    # ------------------------------------------------------------------
    @staticmethod
    def fft_flops(n: int) -> float:
        """Nominal 3-D complex FFT flops: ``5 N^3 log2(N^3)``."""
        if n < 2:
            raise ValueError(f"n must be >= 2: {n}")
        return 5.0 * n**3 * 3.0 * math.log2(n)

    @staticmethod
    def transpose_bytes(n: int) -> float:
        """Bytes moved by the two pencil transposes (complex double)."""
        return 2.0 * n**3 * 16.0

    def _terms(self, n: int, ranks: int) -> tuple[float, float]:
        """(compute flops per rank, hop-weighted comm bytes per rank).

        The comm term is the per-rank transpose volume scaled by the
        partition's per-dimension torus extent ``nodes^(1/5)`` — subset
        all-to-alls travel further, per byte, on bigger machines.
        """
        if ranks < 1:
            raise ValueError(f"ranks must be >= 1: {ranks}")
        nodes = max(1, ranks // self.ranks_per_node)
        extent = nodes ** 0.2
        compute = self.fft_flops(n) / ranks
        comm = self.transpose_bytes(n) / ranks * extent
        return compute, comm

    def time(self, n: int, ranks: int) -> float:
        """Predicted wall-clock seconds for one 3-D FFT of size ``n^3``."""
        compute, comm = self._terms(n, ranks)
        bw = self.node.link_bandwidth_bytes * self.link_efficiency
        return compute / self.rate_flops_per_rank + comm / bw

    # ------------------------------------------------------------------
    @classmethod
    def calibrated(
        cls,
        rows: tuple[FFTRow, ...] | None = None,
        node: BGQNode | None = None,
        ranks_per_node: int = 8,
    ) -> "DistributedFFTModel":
        """Least-squares calibration of the two rates against Table I.

        ``T = A / rate + B / bw`` is linear in ``(1/rate, 1/bw)``; solve
        the overdetermined system over the published rows.  Residuals are
        *relative* (each row divided by its published time) so the
        sub-second strong-scaling rows carry the same weight as the
        multi-second weak-scaling rows.
        """
        node = node if node is not None else BGQNode()
        if rows is None:
            rows = TABLE1_STRONG + TABLE1_WEAK_160 + TABLE1_WEAK_200
        if len(rows) < 2:
            raise ValueError("need at least two rows to calibrate")
        model = cls(node=node, ranks_per_node=ranks_per_node)
        design = []
        target = []
        for row in rows:
            a, b = model._terms(row.n, row.ranks)
            design.append([a / row.seconds, b / row.seconds])
            target.append(1.0)
        coeff, *_ = np.linalg.lstsq(
            np.asarray(design), np.asarray(target), rcond=None
        )
        inv_rate, inv_bw = (max(c, 1e-30) for c in coeff)
        model.rate_flops_per_rank = 1.0 / inv_rate
        model.link_efficiency = 1.0 / (inv_bw * node.link_bandwidth_bytes)
        return model

    # ------------------------------------------------------------------
    def table1(self) -> list[dict]:
        """Model predictions next to every published Table I row."""
        out = []
        for block, rows in (
            ("strong-1024^3", TABLE1_STRONG),
            ("weak-160^3/rank", TABLE1_WEAK_160),
            ("weak-200^3/rank", TABLE1_WEAK_200),
        ):
            for row in rows:
                t = self.time(row.n, row.ranks)
                out.append(
                    {
                        "block": block,
                        "n": row.n,
                        "ranks": row.ranks,
                        "paper_s": row.seconds,
                        "model_s": t,
                        "ratio": t / row.seconds,
                    }
                )
        return out

    def poisson_time_per_particle(
        self,
        ranks: int,
        particles_per_rank: float,
        n_ffts_per_solve: int = 4,
    ) -> float:
        """Seconds per long-range solve per particle (the Fig. 6 y-axis).

        One forward plus three gradient-component inverse FFTs per
        Poisson solve; the grid matches the particle load (~1 point per
        particle, the paper's standard loading).
        """
        if particles_per_rank <= 0:
            raise ValueError("particles_per_rank must be positive")
        n = int(round((particles_per_rank * ranks) ** (1.0 / 3.0)))
        n = max(n, 2)
        return (
            n_ffts_per_solve
            * self.time(n, ranks)
            / (particles_per_rank * ranks)
        )
