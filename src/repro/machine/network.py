"""Torus network timing model.

Converts the byte counts produced by the distributed algorithms (pencil
FFT transposes, overloading refreshes) into time on a BG/Q-style torus.
All-to-all-heavy phases are bisection-limited: half of the total traffic
must cross the balanced bisection of the torus, whose link count scales
as ``n_nodes^(4/5)`` in 5-D — which is exactly why the measured weak-
scaling FFT times of Table I creep up slowly with partition size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.bgq import BGQNode
from repro.parallel.topology import TorusTopology

__all__ = ["TorusNetworkModel"]


@dataclass(frozen=True)
class TorusNetworkModel:
    """Network timing for a partition of ``n_nodes`` BG/Q nodes.

    Parameters
    ----------
    n_nodes:
        Partition size.
    node:
        Node constants (link bandwidth).
    efficiency:
        Achieved fraction of raw link bandwidth for large messages
        (protocol + routing overhead); calibrated by the FFT model.
    latency_s:
        Per-phase software latency.
    """

    n_nodes: int
    node: BGQNode = BGQNode()
    efficiency: float = 0.8
    latency_s: float = 5.0e-6

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1: {self.n_nodes}")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must lie in (0, 1]: {self.efficiency}")

    def topology(self) -> TorusTopology:
        return TorusTopology.balanced(self.n_nodes, ndim=5)

    # ------------------------------------------------------------------
    def effective_link_bandwidth(self) -> float:
        """Bytes/s per link after protocol efficiency."""
        return self.node.link_bandwidth_bytes * self.efficiency

    def alltoall_time(self, total_bytes: float) -> float:
        """Bisection-limited time for an all-to-all moving ``total_bytes``.

        ``total_bytes`` is the sum over all nodes of the data each ships
        off-node; on average half of it crosses the bisection.
        """
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        topo = self.topology()
        links = max(topo.bisection_links(), 1)
        return (
            self.latency_s
            + 0.5 * total_bytes / (links * self.effective_link_bandwidth())
        )

    def nearest_neighbor_time(self, bytes_per_node: float) -> float:
        """Simultaneous halo/overload exchange with the 26 spatial
        neighbors, limited by the node's injection bandwidth."""
        if bytes_per_node < 0:
            raise ValueError("bytes_per_node must be non-negative")
        inject = self.node.torus_total_bw_bytes * self.efficiency
        return self.latency_s + bytes_per_node / inject

    def reduction_time(self, bytes_per_item: float) -> float:
        """Tree allreduce: latency-dominated, ~2 log2(N) hops."""
        import math

        hops = 2.0 * math.log2(max(self.n_nodes, 2))
        return hops * self.latency_s + bytes_per_item / self.effective_link_bandwidth()
