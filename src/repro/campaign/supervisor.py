"""Per-run subprocess supervision: keep a suite alive through failures.

The supervisor walks the :class:`~repro.campaign.queue.CampaignQueue`
in spec order and, for each dispatchable run, launches ``python -m
repro run`` as a subprocess with its own checkpoint rotation directory
and telemetry stream.  While an attempt runs it watches three things:

* **liveness** — the child's exit code (``0`` done, the distinct
  :data:`~repro.resilience.signals.INTERRUPTED_EXIT_CODE` for a
  graceful preemption, anything else a failure);
* **progress** — a :class:`Heartbeat` on the run's telemetry stream:
  bytes appended means the run is stepping; silence past the policy's
  ``heartbeat_timeout_s`` means a hang, and hangs get SIGTERM (the run
  checkpoints and exits) before SIGKILL;
* **wall clock** — a per-attempt ``timeout_s`` budget.

Failures retry under the exponential-backoff semantics of
:class:`repro.resilience.retry.RetryPolicy`; a run that exhausts its
attempt budget is QUARANTINED (a poison config must not take the
campaign down with it — the suite completes with a non-zero exit and an
honest report instead).  Every finished run is recorded in the
:class:`~repro.instrument.store.RunLedger` exactly once (campaign id +
attempt number in the entry), with the journal's ``ledgered`` fact and
an idempotency query guarding the crash window between ledger write and
journal write.

The supervisor itself shuts down cleanly on SIGTERM/SIGINT: the
in-flight child gets SIGTERM, checkpoints its tail state, and the
journal records the attempt as ``interrupted`` — ``campaign resume``
picks the suite up where it stopped, resuming the interrupted run from
its checkpoint with a bit-identical trajectory.
"""

from __future__ import annotations

import glob
import json
import logging
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable

from repro.campaign.queue import CampaignQueue, RunState
from repro.campaign.specs import CampaignSpec, RunSpec
from repro.resilience.retry import RetryPolicy
from repro.resilience.signals import (
    INTERRUPTED_EXIT_CODE,
    ShutdownRequested,
    graceful_shutdown,
)

__all__ = [
    "CampaignSupervisor",
    "Heartbeat",
    "campaign_status",
    "campaign_stream_paths",
]

logger = logging.getLogger(__name__)


class Heartbeat:
    """Progress detector on a telemetry stream's byte offset.

    The simulation flushes one JSONL line per step, so a healthy run
    keeps growing its stream; a child stuck in a deadlock, a livelocked
    solver, or a swap storm stops appending.  The heartbeat tracks the
    file size (missing file = no progress *yet* — the clock starts at
    dispatch, so a child that never produces its first step still times
    out) and reports the silence duration.
    """

    def __init__(
        self,
        path: str | Path,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = Path(path)
        self.clock = clock
        self._last_size = -1
        self._last_progress = clock()

    def poll(self) -> float:
        """Seconds since the stream last grew (0.0 right after growth)."""
        try:
            size = self.path.stat().st_size
        except OSError:
            size = -1
        if size != self._last_size:
            self._last_size = size
            self._last_progress = self.clock()
        return self.clock() - self._last_progress


def _default_launcher(cmd: list[str], log_path: Path, env: dict):
    """Launch one run attempt; stdout+stderr tee to the attempt log."""
    log_path.parent.mkdir(parents=True, exist_ok=True)
    with open(log_path, "ab") as log:
        return subprocess.Popen(
            cmd, stdout=log, stderr=subprocess.STDOUT, env=env
        )


def _sweep_child_shm(pid: int) -> int:
    """Unlink /dev/shm segments a hard-killed child left behind.

    The executor names its POSIX shared-memory segments
    ``repro-<pid>-...`` and guards them with close()/atexit, but SIGKILL
    defeats any in-process cleanup — so after a hard kill the supervisor
    sweeps the victim's segments by name.  Returns the count removed.
    """
    removed = 0
    for path in glob.glob(f"/dev/shm/repro-{pid}-*"):
        try:
            os.unlink(path)
            removed += 1
        except OSError:  # pragma: no cover - raced another cleanup
            pass
    if removed:
        logger.warning(
            "swept %d leaked shared-memory segment(s) of pid %d",
            removed, pid,
        )
    return removed


class CampaignSupervisor:
    """Drive a campaign to completion (see module docstring).

    Parameters
    ----------
    spec:
        The expanded :class:`~repro.campaign.specs.CampaignSpec`.
    directory:
        Campaign directory (journal, per-run subdirectories).
    ledger_root:
        Run-ledger root; defaults to the spec's ``ledger`` or the
        CLI-default ledger location.
    launcher, clock, sleep:
        Injectable for tests: ``launcher(cmd, log_path, env)`` must
        return a ``Popen``-like object (``poll``/``pid``/``terminate``/
        ``kill``/``wait``); fake clocks make the timeout, heartbeat and
        backoff paths testable without real time.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        directory: str | Path,
        ledger_root: str | Path | None = None,
        *,
        launcher: Callable | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.spec = spec
        self.directory = Path(directory)
        if ledger_root is None:
            ledger_root = spec.ledger
        if ledger_root is None:
            from repro.instrument.store import default_ledger_root

            ledger_root = default_ledger_root()
        self.ledger_root = Path(ledger_root)
        self.queue = CampaignQueue(self.directory, spec)
        self.launcher = launcher or _default_launcher
        self.clock = clock
        self.sleep = sleep
        self._retry = RetryPolicy(
            max_attempts=max(2, spec.policy.max_attempts),
            base_delay=spec.policy.retry_base_delay,
            multiplier=spec.policy.retry_multiplier,
            max_delay=spec.policy.retry_max_delay,
            sleep=sleep,
            clock=clock,
        )
        self._shutdown: int | None = None

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def run_dir(self, run_id: str) -> Path:
        return self.directory / "runs" / run_id

    def stream_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "telemetry.jsonl"

    def checkpoint_dir(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "ckpt"

    # ------------------------------------------------------------------
    # dispatch plumbing
    # ------------------------------------------------------------------
    def _materialize(self, run: RunSpec) -> None:
        """Write the run's config.json (idempotent, pre-dispatch)."""
        run_dir = self.run_dir(run.run_id)
        run_dir.mkdir(parents=True, exist_ok=True)
        config_path = run_dir / "config.json"
        if not config_path.is_file():
            tmp = config_path.with_suffix(".json.tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(run.config.to_dict(), fh, indent=2,
                          sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, config_path)

    def command(self, run: RunSpec) -> list[str]:
        """The child command line for one attempt of ``run``."""
        run_dir = self.run_dir(run.run_id)
        ckpt = self.checkpoint_dir(run.run_id)
        cmd = [
            sys.executable, "-m", "repro", "run",
            "--config", str(run_dir / "config.json"),
            "--outdir", str(ckpt),
            "--resume", str(ckpt),
            "--checkpoint-every", str(self.spec.policy.checkpoint_every),
            "--telemetry", str(self.stream_path(run.run_id)),
        ]
        cmd.extend(self.spec.extra_args)
        cmd.extend(run.extra_args)
        return cmd

    def _child_env(self) -> dict:
        """Child environment: inherit, but guarantee repro is importable."""
        env = dict(os.environ)
        import repro

        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        parts = [pkg_root] + [
            p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
        ]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        return env

    # ------------------------------------------------------------------
    # one attempt
    # ------------------------------------------------------------------
    def _watch(self, proc, run: RunSpec) -> tuple[str, int | None]:
        """Wait for one attempt to end; returns ``(outcome, exit_code)``.

        Polls child liveness, the per-attempt wall-clock budget, and the
        telemetry heartbeat.  Timeout and hang terminate the child
        gracefully first (SIGTERM — the run checkpoints its tail state)
        and escalate to SIGKILL after ``grace_s``.
        """
        policy = self.spec.policy
        start = self.clock()
        heartbeat = Heartbeat(self.stream_path(run.run_id), self.clock)
        while True:
            code = proc.poll()
            if code is not None:
                if code == 0:
                    return "done", code
                if code == INTERRUPTED_EXIT_CODE:
                    # preempted by someone other than us (we only get
                    # here when *we* didn't signal): retry, no charge
                    return "interrupted", code
                return "failed", code
            elapsed = self.clock() - start
            if policy.timeout_s is not None and elapsed > policy.timeout_s:
                logger.warning(
                    "run %s: attempt exceeded %.1fs wall budget, "
                    "terminating", run.run_id, policy.timeout_s,
                )
                code = self._terminate(proc)
                return "timeout", code
            if (
                policy.heartbeat_timeout_s is not None
                and heartbeat.poll() > policy.heartbeat_timeout_s
            ):
                logger.warning(
                    "run %s: no telemetry progress for %.1fs, declaring "
                    "hang", run.run_id, policy.heartbeat_timeout_s,
                )
                code = self._terminate(proc)
                return "hang", code
            self.sleep(policy.poll_interval_s)

    def _terminate(self, proc) -> int | None:
        """SIGTERM (checkpoint + exit), escalate to SIGKILL, reap."""
        grace = self.spec.policy.grace_s
        try:
            proc.terminate()
        except OSError:  # pragma: no cover - already gone
            pass
        try:
            return proc.wait(timeout=grace)
        except subprocess.TimeoutExpired:
            logger.warning(
                "pid %s ignored SIGTERM for %.1fs, killing",
                getattr(proc, "pid", "?"), grace,
            )
            try:
                proc.kill()
            except OSError:  # pragma: no cover - already gone
                pass
            code = proc.wait()
            _sweep_child_shm(proc.pid)
            return code

    def _interrupt_child(self, proc, run: RunSpec) -> None:
        """Supervisor shutdown: let the in-flight child checkpoint."""
        logger.info(
            "shutdown: interrupting in-flight run %s", run.run_id
        )
        self._terminate(proc)

    # ------------------------------------------------------------------
    # ledger (exactly-once)
    # ------------------------------------------------------------------
    def _ledger_done_run(self, run: RunSpec, attempt: int) -> str | None:
        """Record a finished run's artifacts in the run ledger once.

        Idempotent across supervisor crashes: before recording, the
        ledger is queried for an entry carrying this campaign id + run
        id — the crash window between ``ledger.record`` and the
        journal's ``ledgered`` fact therefore cannot double-record.
        """
        from repro.instrument.store import RunLedger

        ledger = RunLedger(self.ledger_root)
        for entry in ledger.entries():
            if (
                entry.extra.get("campaign_id") == self.spec.campaign_id
                and entry.extra.get("campaign_run") == run.run_id
            ):
                return entry.run_id
        stream = self.stream_path(run.run_id)
        entry = ledger.record(
            stream_path=stream if stream.is_file() else None,
            manifest=None if stream.is_file() else {
                "config_hash": run.config_hash,
                "seed": run.config.seed,
                "backend": run.config.backend,
                "n_steps": run.config.n_steps,
                "n_particles": run.config.n_particles,
            },
            extra={
                "command": "campaign",
                "campaign_id": self.spec.campaign_id,
                "campaign_name": self.spec.name,
                "campaign_run": run.run_id,
                "attempt": int(attempt),
            },
        )
        return entry.run_id

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------
    def run(self, resume: bool = False) -> int:
        """Drive the campaign; returns the campaign exit status.

        ``0`` — every run DONE; ``1`` — completed but with FAILED or
        QUARANTINED runs (the honest-report path);
        :data:`INTERRUPTED_EXIT_CODE` — stopped by SIGTERM/SIGINT with
        the in-flight run checkpointed (resume to continue).
        """
        self.queue.open(resume=resume)
        reconciled = self.queue.reconcile()
        if reconciled:
            logger.warning(
                "reconciled %d run(s) found in flight after a "
                "supervisor crash: %s", len(reconciled),
                ", ".join(reconciled),
            )
        self._ledger_unledgered()
        try:
            with graceful_shutdown():
                self._drain()
        except ShutdownRequested as exc:
            self.queue.record_shutdown(exc.signal_name)
            logger.warning(
                "campaign interrupted by %s; resume with "
                "'python -m repro campaign resume'", exc.signal_name,
            )
            return INTERRUPTED_EXIT_CODE
        summary = self.queue.summary()
        logger.info("campaign %s: %s", self.spec.name, summary["counts"])
        return 0 if summary["ok"] else 1

    def _ledger_unledgered(self) -> None:
        """Close the crash window: DONE runs missing their ledger fact."""
        for state in self.queue.unledgered_done():
            run = self.spec.get(state.run_id)
            ledger_id = self._ledger_done_run(run, state.attempts)
            if ledger_id is not None:
                self.queue.record_ledgered(state.run_id, ledger_id)

    def _drain(self) -> None:
        """Dispatch until no run is dispatchable (the sequential loop)."""
        while True:
            state = self.queue.next_dispatchable()
            if state is None:
                return
            run = self.spec.get(state.run_id)
            if state.failures:
                delay = self._retry.delay(state.failures - 1)
                logger.info(
                    "run %s: backing off %.2fs before attempt %d",
                    run.run_id, delay, state.attempts + 1,
                )
                self.sleep(delay)
            self._attempt(run, state)

    def _attempt(self, run: RunSpec, state: RunState) -> None:
        """One supervised attempt of one run."""
        attempt = state.attempts + 1
        self._materialize(run)
        cmd = self.command(run)
        log_path = self.run_dir(run.run_id) / f"attempt-{attempt:02d}.log"
        proc = self.launcher(cmd, log_path, self._child_env())
        self.queue.record_dispatch(run.run_id, attempt, proc.pid)
        logger.info(
            "run %s: attempt %d/%d dispatched (pid %s)",
            run.run_id, attempt, self.spec.policy.max_attempts, proc.pid,
        )
        try:
            outcome, code = self._watch(proc, run)
        except ShutdownRequested:
            self._interrupt_child(proc, run)
            self.queue.record_exit(
                run.run_id, attempt, "interrupted", proc.poll()
            )
            raise
        self.queue.record_exit(run.run_id, attempt, outcome, code)
        logger.info(
            "run %s: attempt %d %s (exit %s)",
            run.run_id, attempt, outcome, code,
        )
        if outcome == "done":
            ledger_id = self._ledger_done_run(run, attempt)
            if ledger_id is not None:
                self.queue.record_ledgered(run.run_id, ledger_id)
            return
        # failure accounting is replayed from the journal; quarantine is
        # re-derived there too, but record the explicit fact for status
        replayed = self.queue.states()[run.run_id]
        if replayed.state == "QUARANTINED":
            self.queue.record_quarantine(run.run_id, replayed.attempts)
            logger.error(
                "run %s QUARANTINED after %d failed attempt(s) — "
                "continuing with the rest of the campaign",
                run.run_id, replayed.failures,
            )


# ----------------------------------------------------------------------
# status / monitoring views
# ----------------------------------------------------------------------
def campaign_status(
    spec: CampaignSpec, directory: str | Path
) -> dict:
    """Machine-readable campaign status (the ``status --json`` payload)."""
    queue = CampaignQueue(directory, spec)
    states = queue.states()
    summary = queue.summary()
    return {
        "campaign_id": spec.campaign_id,
        "name": spec.name,
        "directory": str(directory),
        "runs": [
            {
                **states[run.run_id].to_dict(),
                "config_hash": run.config_hash,
                "seed": run.config.seed,
            }
            for run in spec.runs
        ],
        "runs_total": summary["runs"],
        "counts": summary["counts"],
        "done": summary["done"],
        "complete": summary["complete"],
        "ok": summary["ok"],
    }


def campaign_stream_paths(
    spec: CampaignSpec, directory: str | Path
) -> list[tuple[str, str]]:
    """``(run_id, telemetry_path)`` for the monitor's fleet dashboard.

    Paths are returned whether or not the stream exists yet — runs that
    have not been dispatched simply render as ``waiting`` rows, and the
    follower picks each file up when it appears.
    """
    directory = Path(directory)
    return [
        (run.run_id, str(directory / "runs" / run.run_id
                         / "telemetry.jsonl"))
        for run in spec.runs
    ]
