"""Campaign orchestration: suites of supervised, resumable runs.

The paper's production context is not one heroic run but a *campaign*:
many configurations (cosmology grids, parameter scans, seed ensembles)
run under a mean time between failures short enough that supervision and
restartability are first-class design constraints (Sec. II).  This
package is that layer:

* :mod:`repro.campaign.specs` — declarative suite specifications
  (TOML/JSON): a base :class:`~repro.config.SimulationConfig`, cartesian
  parameter grids, and explicit run lists, each expanding to a config
  with a stable hash and seed;
* :mod:`repro.campaign.queue` — a crash-safe, append-only journaled work
  queue (fsync'd JSONL state machine ``PENDING → RUNNING → DONE / FAILED
  / QUARANTINED``) whose resume path replays the journal for
  exactly-once accounting;
* :mod:`repro.campaign.supervisor` — per-run subprocess supervision:
  heartbeat-based hang detection fed from the telemetry stream, per-run
  wall-clock timeouts, exponential-backoff retries
  (:class:`~repro.resilience.retry.RetryPolicy` semantics),
  poison-config quarantine, SIGTERM-safe shutdown that checkpoints
  in-flight runs, and exactly-once run-ledger recording.

Surfaced as ``python -m repro campaign run|status|resume SPEC.toml``.
"""

from __future__ import annotations

from repro.campaign.queue import (
    CampaignJournal,
    CampaignQueue,
    JournalError,
    RunState,
)
from repro.campaign.specs import (
    CampaignSpec,
    RunSpec,
    SpecError,
    SupervisionPolicy,
    expand_spec,
    load_spec,
)
from repro.campaign.supervisor import (
    CampaignSupervisor,
    Heartbeat,
    campaign_status,
)

__all__ = [
    "CampaignJournal",
    "CampaignQueue",
    "CampaignSpec",
    "CampaignSupervisor",
    "Heartbeat",
    "JournalError",
    "RunSpec",
    "RunState",
    "SpecError",
    "SupervisionPolicy",
    "campaign_status",
    "expand_spec",
    "load_spec",
]
