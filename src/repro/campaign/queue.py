"""The campaign work queue: an append-only, fsync'd JSONL journal.

Crash safety is the whole design.  The supervisor process itself is a
failure domain — it can be SIGKILLed, OOM-killed, or lose its node —
so campaign state lives in a journal of *facts*, one JSON line per
event, each flushed and fsynced before the action it describes is
considered committed:

``campaign``
    Header line: campaign id, name, run inventory.  Written once;
    reopening verifies the id so a resume with an edited spec fails
    loudly instead of silently re-keying runs.
``dispatched``
    Run ``r`` started attempt ``n`` as pid ``p``.
``exit``
    Attempt ``n`` of run ``r`` ended with an outcome: ``done``,
    ``failed`` (non-zero exit), ``timeout``, ``hang`` (heartbeat
    silence), or ``interrupted`` (supervisor shutdown — does not count
    against the retry budget).
``quarantined``
    Run ``r`` exhausted its attempt budget; the campaign carries on.
``ledgered``
    Run ``r``'s finished artifacts were recorded in the run ledger as
    ``ledger_run_id`` — the exactly-once marker the resume path checks
    before recording again.
``shutdown``
    The supervisor exited deliberately (signal or quarantine-complete).

Replaying the journal reconstructs every run's state machine::

    PENDING -> RUNNING -> DONE
                       -> FAILED ----(retry)----> RUNNING
                       -> FAILED --(budget gone)-> QUARANTINED

A run found RUNNING during replay (a ``dispatched`` with no matching
``exit``) means the supervisor died mid-attempt: :meth:`CampaignQueue.
reconcile` converts it to an ``exit``/``supervisor-crash`` fact and the
run is re-dispatched — via the checkpoint auto-resume, so no work is
lost and the ledger still sees the run exactly once.

Corrupt or torn trailing lines (the crash happened mid-write) are
skipped on replay, mirroring the run ledger's index semantics.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "CampaignJournal",
    "CampaignQueue",
    "JournalError",
    "RunState",
    "DISPATCHABLE_STATES",
    "FAILURE_OUTCOMES",
    "TERMINAL_STATES",
]

#: attempt outcomes that count against the retry budget; a supervisor
#: crash or shutdown is the environment's fault, not the config's, so
#: ``interrupted`` and ``supervisor-crash`` leave the budget untouched
FAILURE_OUTCOMES = ("failed", "timeout", "hang")

#: states from which the supervisor may (re-)dispatch a run
DISPATCHABLE_STATES = ("PENDING", "FAILED")

#: states a run never leaves
TERMINAL_STATES = ("DONE", "QUARANTINED")


class JournalError(RuntimeError):
    """The journal is unusable or inconsistent with the spec."""


@dataclass
class RunState:
    """Replayed view of one run's state machine."""

    run_id: str
    state: str = "PENDING"
    #: dispatches so far (the attempt number of the *next* dispatch is
    #: ``attempts + 1``)
    attempts: int = 0
    #: failures charged against the retry budget
    failures: int = 0
    last_outcome: str | None = None
    last_exit_code: int | None = None
    last_pid: int | None = None
    ledger_run_id: str | None = None
    #: a ``dispatched`` with no matching ``exit`` was replayed — the
    #: supervisor crashed while this run was in flight
    in_flight: bool = False

    def to_dict(self) -> dict:
        return {
            "run": self.run_id,
            "state": self.state,
            "attempts": self.attempts,
            "failures": self.failures,
            "last_outcome": self.last_outcome,
            "last_exit_code": self.last_exit_code,
            "ledger_run_id": self.ledger_run_id,
        }


class CampaignJournal:
    """Append-only fsync'd JSONL event log (the queue's storage layer)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.is_file()

    def append(self, record: dict) -> None:
        """Write one event line; it is durable when this returns."""
        rec = dict(record)
        rec.setdefault("t", time.time())
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(rec) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def replay(self) -> list[dict]:
        """All parseable events in order; torn trailing lines skipped."""
        events: list[dict] = []
        if not self.path.is_file():
            return events
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(rec, dict):
                    events.append(rec)
        return events


@dataclass
class _Replay:
    """The full replayed campaign state."""

    header: dict | None = None
    states: dict = field(default_factory=dict)
    shutdowns: int = 0


class CampaignQueue:
    """The journal-backed state machine the supervisor drives.

    Parameters
    ----------
    directory:
        Campaign directory; the journal lives at
        ``<directory>/journal.jsonl``.
    spec:
        The expanded :class:`~repro.campaign.specs.CampaignSpec`; run
        inventory and ``max_attempts`` come from it.
    """

    def __init__(self, directory: str | Path, spec) -> None:
        self.directory = Path(directory)
        self.spec = spec
        self.journal = CampaignJournal(self.directory / "journal.jsonl")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self, resume: bool = False) -> dict:
        """Create or re-attach; returns the replayed run states.

        A fresh directory gets the header line and the ``campaign.json``
        sidecar.  An existing journal is verified against the spec's
        campaign id — a mismatch (edited spec) raises
        :class:`JournalError` rather than corrupting the accounting.
        ``resume=True`` requires an existing journal.
        """
        replay = self._replay()
        if replay.header is None:
            if resume:
                raise JournalError(
                    f"no campaign journal under {self.directory} "
                    "(nothing to resume — use 'campaign run')"
                )
            self.directory.mkdir(parents=True, exist_ok=True)
            meta = self.spec.to_meta()
            with open(
                self.directory / "campaign.json", "w", encoding="utf-8"
            ) as fh:
                json.dump(meta, fh, indent=2, sort_keys=True)
            self.journal.append(
                {
                    "kind": "campaign",
                    "campaign_id": self.spec.campaign_id,
                    "name": self.spec.name,
                    "n_runs": len(self.spec.runs),
                }
            )
            replay = self._replay()
        else:
            recorded = replay.header.get("campaign_id")
            if recorded != self.spec.campaign_id:
                raise JournalError(
                    f"journal at {self.journal.path} belongs to campaign "
                    f"{recorded!r}, but this spec expands to "
                    f"{self.spec.campaign_id!r} — the spec changed; "
                    "start a fresh campaign directory"
                )
        return replay.states

    def reconcile(self) -> list[str]:
        """Convert crashed-in-flight runs back to dispatchable state.

        For every run replayed as ``in_flight`` (the supervisor died
        between ``dispatched`` and ``exit``), append the missing
        ``exit`` fact with outcome ``supervisor-crash``.  The run's
        checkpoints survive, so its re-dispatch resumes rather than
        recomputes — and because the ledger is only written on ``done``,
        the crashed attempt can never double-ledger.  Returns the
        reconciled run ids.
        """
        reconciled = []
        for state in self.states().values():
            if state.in_flight:
                self.record_exit(
                    state.run_id,
                    attempt=state.attempts,
                    outcome="supervisor-crash",
                    exit_code=None,
                )
                reconciled.append(state.run_id)
        return reconciled

    # ------------------------------------------------------------------
    # event writers (each is one durable fact)
    # ------------------------------------------------------------------
    def record_dispatch(
        self, run_id: str, attempt: int, pid: int | None
    ) -> None:
        self.journal.append(
            {
                "kind": "dispatched",
                "run": run_id,
                "attempt": int(attempt),
                "pid": pid,
            }
        )

    def record_exit(
        self,
        run_id: str,
        attempt: int,
        outcome: str,
        exit_code: int | None,
    ) -> None:
        self.journal.append(
            {
                "kind": "exit",
                "run": run_id,
                "attempt": int(attempt),
                "outcome": outcome,
                "code": exit_code,
            }
        )

    def record_quarantine(self, run_id: str, attempts: int) -> None:
        self.journal.append(
            {
                "kind": "quarantined",
                "run": run_id,
                "attempts": int(attempts),
            }
        )

    def record_ledgered(self, run_id: str, ledger_run_id: str) -> None:
        self.journal.append(
            {
                "kind": "ledgered",
                "run": run_id,
                "ledger_run_id": ledger_run_id,
            }
        )

    def record_shutdown(self, reason: str) -> None:
        self.journal.append({"kind": "shutdown", "reason": reason})

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def _replay(self) -> _Replay:
        replay = _Replay()
        states: dict[str, RunState] = {
            run.run_id: RunState(run_id=run.run_id)
            for run in self.spec.runs
        }
        max_attempts = self.spec.policy.max_attempts
        for event in self.journal.replay():
            kind = event.get("kind")
            if kind == "campaign":
                if replay.header is None:
                    replay.header = event
                continue
            if kind == "shutdown":
                replay.shutdowns += 1
                continue
            run_id = event.get("run")
            state = states.get(run_id)
            if state is None:
                continue  # unknown run (foreign line): ignore, don't die
            if kind == "dispatched":
                state.attempts = max(
                    state.attempts, int(event.get("attempt") or 0)
                )
                state.last_pid = event.get("pid")
                state.state = "RUNNING"
                state.in_flight = True
            elif kind == "exit":
                state.in_flight = False
                outcome = event.get("outcome")
                state.last_outcome = outcome
                state.last_exit_code = event.get("code")
                if outcome == "done":
                    state.state = "DONE"
                elif outcome in ("interrupted", "supervisor-crash"):
                    # preempted, not broken: retryable, budget untouched
                    state.state = "PENDING"
                else:
                    state.failures += 1
                    state.state = (
                        "QUARANTINED"
                        if state.failures >= max_attempts
                        else "FAILED"
                    )
            elif kind == "quarantined":
                state.state = "QUARANTINED"
            elif kind == "ledgered":
                state.ledger_run_id = event.get("ledger_run_id")
        replay.states = states
        return replay

    def states(self) -> dict[str, RunState]:
        """Current state of every run, replayed from the journal."""
        return self._replay().states

    # ------------------------------------------------------------------
    # scheduling views
    # ------------------------------------------------------------------
    def next_dispatchable(self) -> RunState | None:
        """The first run (spec order) that wants an attempt, if any."""
        states = self.states()
        for run in self.spec.runs:
            state = states[run.run_id]
            if state.state in DISPATCHABLE_STATES:
                return state
        return None

    def unledgered_done(self) -> list[RunState]:
        """DONE runs whose artifacts were never ledgered (crash window)."""
        return [
            s
            for s in self.states().values()
            if s.state == "DONE" and s.ledger_run_id is None
        ]

    def summary(self) -> dict:
        """Aggregate counts: the campaign-level progress view."""
        states = self.states()
        counts: dict[str, int] = {}
        for s in states.values():
            counts[s.state] = counts.get(s.state, 0) + 1
        done = counts.get("DONE", 0)
        return {
            "runs": len(states),
            "counts": counts,
            "done": done,
            "complete": all(
                s.state in TERMINAL_STATES for s in states.values()
            ),
            "ok": done == len(states),
        }
