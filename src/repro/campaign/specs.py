"""Declarative campaign specifications: one file describes a suite.

A spec is a TOML (or JSON) document with four sections:

``[campaign]``
    Name, supervision policy (attempt budget, per-run timeout, heartbeat
    timeout, retry backoff), optional default directory / ledger root,
    and ``extra_args`` appended to every run's ``python -m repro run``
    command line.
``[base]``
    :class:`~repro.config.SimulationConfig` fields shared by every run
    (``box_size`` and ``n_per_dim`` are required, everything else
    defaults).  A nested ``[base.cosmology]`` table overrides background
    parameters.
``[grid]``
    Cartesian axes: every key maps to a *list* of values, and the spec
    expands to the full product (in key order, last axis fastest).
    Dotted keys (``"cosmology.sigma8"``) reach into the nested
    cosmology.
``[[runs]]``
    Explicit runs appended after the grid, each a table of overrides on
    ``base`` (plus an optional per-run ``extra_args`` list — e.g. fault
    injection flags for a chaos lane).

Every expanded run owns a frozen, validated config with a stable
:meth:`~repro.config.SimulationConfig.config_hash` and a deterministic
``run_id`` (index + hash prefix), so re-expanding the same spec after a
supervisor crash re-derives the identical suite — the property the
journal replay and the run ledger key on.

Example::

    [campaign]
    name = "sigma8-grid"
    max_attempts = 3
    timeout_s = 1200.0

    [base]
    box_size = 64.0
    n_per_dim = 16
    n_steps = 8

    [grid]
    seed = [1, 2]
    "cosmology.sigma8" = [0.75, 0.85]
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import SimulationConfig

__all__ = [
    "CampaignSpec",
    "RunSpec",
    "SpecError",
    "SupervisionPolicy",
    "expand_spec",
    "load_spec",
]


class SpecError(ValueError):
    """A campaign spec is malformed or expands to an invalid config."""


@dataclass(frozen=True)
class SupervisionPolicy:
    """How hard the supervisor fights for each run before giving up.

    Parameters
    ----------
    max_attempts:
        Failed attempts (crash, CRIT exit, timeout, hang) a run may
        accumulate before it is QUARANTINED as a poison config.
        Supervisor-initiated interruptions (shutdown) do not count.
    timeout_s:
        Per-attempt wall-clock budget; ``None`` disables the timeout.
    heartbeat_timeout_s:
        Maximum silence on the run's telemetry stream (no bytes
        appended) before the attempt is declared hung; ``None``
        disables hang detection.
    grace_s:
        Seconds between SIGTERM (checkpoint and exit) and SIGKILL.
    poll_interval_s:
        Supervisor poll cadence while a child runs.
    retry_base_delay, retry_multiplier, retry_max_delay:
        Exponential backoff before re-dispatching a failed run —
        :class:`repro.resilience.retry.RetryPolicy` semantics, and
        enforced through that class.
    checkpoint_every:
        ``--checkpoint-every`` passed to each run (steps).
    """

    max_attempts: int = 3
    timeout_s: float | None = 900.0
    heartbeat_timeout_s: float | None = 300.0
    grace_s: float = 10.0
    poll_interval_s: float = 0.25
    retry_base_delay: float = 0.5
    retry_multiplier: float = 2.0
    retry_max_delay: float = 30.0
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SpecError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise SpecError(f"timeout_s must be > 0: {self.timeout_s}")
        if (
            self.heartbeat_timeout_s is not None
            and self.heartbeat_timeout_s <= 0
        ):
            raise SpecError(
                f"heartbeat_timeout_s must be > 0: "
                f"{self.heartbeat_timeout_s}"
            )
        if self.grace_s < 0:
            raise SpecError(f"grace_s must be >= 0: {self.grace_s}")
        if self.checkpoint_every < 1:
            raise SpecError(
                f"checkpoint_every must be >= 1: {self.checkpoint_every}"
            )


@dataclass(frozen=True)
class RunSpec:
    """One expanded run: identity, config, and per-run extras."""

    run_id: str
    index: int
    config: SimulationConfig
    #: the axis/override values that distinguish this run from ``base``
    overrides: dict = field(default_factory=dict)
    #: extra ``python -m repro run`` CLI arguments for this run
    extra_args: tuple = ()

    @property
    def config_hash(self) -> str:
        return self.config.config_hash()


@dataclass(frozen=True)
class CampaignSpec:
    """A fully expanded campaign: runs plus supervision policy."""

    name: str
    runs: tuple
    policy: SupervisionPolicy = field(default_factory=SupervisionPolicy)
    #: extra run-command arguments shared by every run
    extra_args: tuple = ()
    #: default campaign directory (CLI ``--dir`` overrides)
    directory: str | None = None
    #: default ledger root (CLI ``--ledger`` overrides)
    ledger: str | None = None

    def __post_init__(self) -> None:
        if not self.runs:
            raise SpecError(f"campaign {self.name!r} expands to no runs")
        ids = [r.run_id for r in self.runs]
        if len(set(ids)) != len(ids):  # pragma: no cover - by construction
            raise SpecError(f"duplicate run ids in campaign: {ids}")

    @property
    def campaign_id(self) -> str:
        """Stable identity: name + every run's config hash + extras.

        Two spec files that expand to the same suite share an id, and a
        journal records the id it was opened with — so resuming with an
        *edited* spec fails loudly instead of silently re-keying runs.
        """
        payload = json.dumps(
            {
                "name": self.name,
                "runs": [
                    [r.run_id, r.config_hash, list(r.extra_args)]
                    for r in self.runs
                ],
                "extra_args": list(self.extra_args),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    def get(self, run_id: str) -> RunSpec:
        for run in self.runs:
            if run.run_id == run_id:
                return run
        raise KeyError(f"campaign has no run {run_id!r}")

    def to_meta(self) -> dict:
        """The ``campaign.json`` sidecar: identity + run inventory."""
        return {
            "campaign_id": self.campaign_id,
            "name": self.name,
            "runs": [
                {
                    "run": r.run_id,
                    "config_hash": r.config_hash,
                    "seed": r.config.seed,
                    "overrides": _jsonable(r.overrides),
                }
                for r in self.runs
            ],
        }


def _jsonable(obj):
    """Round-trip arbitrary override values through JSON-safe types."""
    try:
        json.dumps(obj)
        return obj
    except TypeError:
        return repr(obj)


# ----------------------------------------------------------------------
# expansion
# ----------------------------------------------------------------------
def _apply_override(config_dict: dict, key: str, value) -> None:
    """Set ``key`` (possibly dotted into cosmology) in a config dict."""
    if "." in key:
        head, rest = key.split(".", 1)
        if head != "cosmology" or "." in rest:
            raise SpecError(
                f"unsupported dotted override {key!r} (only "
                f"'cosmology.<field>' nests)"
            )
        cosmo = dict(config_dict.get("cosmology") or {})
        cosmo[rest] = value
        config_dict["cosmology"] = cosmo
    else:
        config_dict[key] = value


def _build_config(base: dict, overrides: dict, where: str):
    config_dict = json.loads(json.dumps(base))  # deep copy, JSON-safe
    for key, value in overrides.items():
        _apply_override(config_dict, key, value)
    try:
        return SimulationConfig.from_dict(config_dict)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"{where}: invalid config ({exc})") from exc


def expand_spec(data: dict, name: str | None = None) -> CampaignSpec:
    """Expand a parsed spec document into a :class:`CampaignSpec`."""
    if not isinstance(data, dict):
        raise SpecError(f"spec must be a table, got {type(data).__name__}")
    campaign = dict(data.get("campaign") or {})
    base = dict(data.get("base") or {})
    grid = dict(data.get("grid") or {})
    runs_section = list(data.get("runs") or [])
    unknown = set(data) - {"campaign", "base", "grid", "runs"}
    if unknown:
        raise SpecError(f"unknown spec sections: {sorted(unknown)}")
    if not base:
        raise SpecError("spec has no [base] section")

    spec_name = campaign.pop("name", None) or name or "campaign"
    directory = campaign.pop("dir", None)
    ledger = campaign.pop("ledger", None)
    shared_extra = tuple(str(a) for a in campaign.pop("extra_args", []))
    policy_fields = {
        f: campaign.pop(f)
        for f in (
            "max_attempts", "timeout_s", "heartbeat_timeout_s",
            "grace_s", "poll_interval_s", "retry_base_delay",
            "retry_multiplier", "retry_max_delay", "checkpoint_every",
        )
        if f in campaign
    }
    if campaign:
        raise SpecError(
            f"unknown [campaign] keys: {sorted(campaign)}"
        )
    for key in ("timeout_s", "heartbeat_timeout_s"):
        # TOML has no null: 0 (or false) disables the timeout
        if key in policy_fields and not policy_fields[key]:
            policy_fields[key] = None
    policy = SupervisionPolicy(**policy_fields)

    # grid axes: every value must be a list; product in key order
    overrides_list: list[dict] = []
    if grid:
        axes = []
        for key, values in grid.items():
            if key == "extra_args":
                raise SpecError(
                    "extra_args cannot be a grid axis (set it in "
                    "[campaign] or per-[[runs]] entry)"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise SpecError(
                    f"[grid] {key} must be a non-empty list, got "
                    f"{values!r}"
                )
            axes.append((key, list(values)))
        for combo in itertools.product(*(vals for _, vals in axes)):
            overrides_list.append(
                {key: value for (key, _), value in zip(axes, combo)}
            )
    for i, entry in enumerate(runs_section):
        if not isinstance(entry, dict):
            raise SpecError(f"[[runs]] entry {i} must be a table")
        overrides_list.append(dict(entry))
    if not overrides_list:
        overrides_list.append({})  # a bare [base] is a one-run campaign

    runs: list[RunSpec] = []
    for index, overrides in enumerate(overrides_list):
        extra = tuple(str(a) for a in overrides.pop("extra_args", []))
        config = _build_config(base, overrides, f"run {index}")
        runs.append(
            RunSpec(
                run_id=f"r{index:03d}-{config.config_hash()[:6]}",
                index=index,
                config=config,
                overrides=overrides,
                extra_args=extra,
            )
        )
    return CampaignSpec(
        name=spec_name,
        runs=tuple(runs),
        policy=policy,
        extra_args=shared_extra,
        directory=directory,
        ledger=ledger,
    )


def load_spec(path: str | Path) -> CampaignSpec:
    """Parse and expand a spec file (``.toml`` or ``.json``)."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SpecError(f"cannot read spec {path}: {exc}") from exc
    if path.suffix.lower() == ".json":
        try:
            data = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise SpecError(f"{path}: invalid JSON ({exc})") from exc
    else:
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - python < 3.11
            raise SpecError(
                f"{path}: TOML specs need Python >= 3.11 (tomllib); "
                "use a .json spec instead"
            ) from exc
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            raise SpecError(f"{path}: invalid TOML ({exc})") from exc
    return expand_spec(data, name=path.stem)
