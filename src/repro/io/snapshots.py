"""Snapshot persistence.

The paper's science run stored "a subset of the particles and the mass
fluctuation power spectrum at 10 intermediate snapshots"; these helpers
provide the same two artifact types as compressed ``.npz`` files with
embedded metadata, so the example scripts and benches can checkpoint and
resume analysis.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.particles import Particles

__all__ = [
    "save_snapshot",
    "load_snapshot",
    "save_power_history",
    "load_power_history",
]

_FORMAT_VERSION = 1


def save_snapshot(
    path: str | Path,
    particles: Particles,
    a: float,
    *,
    subsample: int = 1,
    metadata: dict | None = None,
) -> Path:
    """Write a particle snapshot.

    Parameters
    ----------
    path:
        Target file (``.npz`` appended if missing).
    particles:
        State to store.
    a:
        Scale factor of the snapshot.
    subsample:
        Keep every ``subsample``-th particle (the paper stored "a subset
        of the particles" when the file system was small).
    metadata:
        JSON-serializable extras stored alongside.
    """
    if subsample < 1:
        raise ValueError(f"subsample must be >= 1: {subsample}")
    if a <= 0:
        raise ValueError(f"scale factor must be positive: {a}")
    p = Path(path)
    if p.suffix != ".npz":
        # append rather than replace: "z0.5" must become "z0.5.npz"
        p = p.with_name(p.name + ".npz")
    sel = slice(None, None, subsample)
    meta = {"format_version": _FORMAT_VERSION, **(metadata or {})}
    np.savez_compressed(
        p,
        positions=particles.positions[sel],
        momenta=particles.momenta[sel],
        masses=particles.masses[sel],
        ids=particles.ids[sel],
        box_size=np.float64(particles.box_size),
        a=np.float64(a),
        metadata=json.dumps(meta),
    )
    return p


def load_snapshot(path: str | Path) -> tuple[Particles, float, dict]:
    """Read a snapshot; returns ``(particles, a, metadata)``."""
    with np.load(Path(path), allow_pickle=False) as data:
        meta = json.loads(str(data["metadata"]))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported snapshot format: {meta.get('format_version')}"
            )
        particles = Particles(
            positions=data["positions"].copy(),
            momenta=data["momenta"].copy(),
            masses=data["masses"].copy(),
            ids=data["ids"].copy(),
            box_size=float(data["box_size"]),
        )
        return particles, float(data["a"]), meta


def save_power_history(
    path: str | Path,
    redshifts: list[float],
    spectra: list,
    *,
    metadata: dict | None = None,
) -> Path:
    """Store a sequence of power spectra (the Fig. 10 data product).

    ``spectra`` are :class:`repro.analysis.power.PowerSpectrum` objects,
    one per redshift.
    """
    if len(redshifts) != len(spectra):
        raise ValueError(
            f"{len(redshifts)} redshifts but {len(spectra)} spectra"
        )
    p = Path(path)
    if p.suffix != ".npz":
        # append rather than replace: "z0.5" must become "z0.5.npz"
        p = p.with_name(p.name + ".npz")
    arrays = {"redshifts": np.asarray(redshifts, dtype=np.float64)}
    for i, ps in enumerate(spectra):
        arrays[f"k_{i}"] = ps.k
        arrays[f"p_{i}"] = ps.power
        arrays[f"nmodes_{i}"] = ps.n_modes
    meta = {"format_version": _FORMAT_VERSION, **(metadata or {})}
    np.savez_compressed(p, metadata=json.dumps(meta), **arrays)
    return p


def load_power_history(path: str | Path) -> tuple[np.ndarray, list[dict]]:
    """Read a power-spectrum history; returns ``(redshifts, records)``.

    Each record is a dict with ``k``, ``power`` and ``n_modes`` arrays.
    """
    with np.load(Path(path), allow_pickle=False) as data:
        z = data["redshifts"].copy()
        records = []
        for i in range(len(z)):
            records.append(
                {
                    "k": data[f"k_{i}"].copy(),
                    "power": data[f"p_{i}"].copy(),
                    "n_modes": data[f"nmodes_{i}"].copy(),
                }
            )
        return z, records
