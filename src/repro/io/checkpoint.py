"""Checkpoint / restart for simulations.

The paper's science test run took ~14 hours on 16 racks; production
campaigns run for days.  Any code at that scale checkpoints.  A
checkpoint stores the full dynamical state (particles + scale factor +
step index) plus the complete configuration, and restores a simulation
that continues *bit-for-bit* identically to an uninterrupted run — the
property the integration test asserts (the dynamics is deterministic, so
this is a strong end-to-end test of state capture).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.config import SimulationConfig
from repro.core.particles import Particles
from repro.core.simulation import HACCSimulation
from repro.cosmology.background import Cosmology

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def save_checkpoint(path: str | Path, sim: HACCSimulation) -> Path:
    """Write the simulation's full restartable state."""
    p = Path(path)
    if p.suffix != ".npz":
        # append rather than replace: "z0.5" must become "z0.5.npz"
        p = p.with_name(p.name + ".npz")
    cfg = sim.config
    cfg_dict = asdict(cfg)
    cfg_dict["cosmology"] = asdict(cfg.cosmology)
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": cfg_dict,
        "step_index": sim._step_index,
    }
    np.savez_compressed(
        p,
        positions=sim.particles.positions,
        momenta=sim.particles.momenta,
        masses=sim.particles.masses,
        ids=sim.particles.ids,
        a=np.float64(sim.a),
        metadata=json.dumps(meta),
    )
    return p


def load_checkpoint(path: str | Path) -> HACCSimulation:
    """Restore a simulation from a checkpoint; ``run()`` resumes where
    the original left off."""
    with np.load(Path(path), allow_pickle=False) as data:
        meta = json.loads(str(data["metadata"]))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format: {meta.get('format_version')}"
            )
        cfg_dict = dict(meta["config"])
        cfg_dict["cosmology"] = Cosmology(**cfg_dict["cosmology"])
        config = SimulationConfig(**cfg_dict)
        particles = Particles(
            positions=data["positions"].copy(),
            momenta=data["momenta"].copy(),
            masses=data["masses"].copy(),
            ids=data["ids"].copy(),
            box_size=config.box_size,
        )
        sim = HACCSimulation(config, particles=particles)
        sim.a = float(data["a"])
        sim._step_index = int(meta["step_index"])
        return sim
