"""Checkpoint / restart for simulations, hardened for faulty machines.

The paper's science test run took ~14 hours on 16 racks; production
campaigns run for days and *will* see node loss and I/O hiccups
mid-write.  A checkpoint stores the full dynamical state (particles +
scale factor + step index) plus the complete configuration, and restores
a simulation that continues *bit-for-bit* identically to an
uninterrupted run — the property the integration test asserts.

Hardening (the fault model is a crash or corruption at any byte):

* **atomic writes** — the state is serialized to a temporary file in the
  destination directory and published with ``os.replace``; a reader
  never observes a half-written checkpoint under the final name;
* **checksums** — every array is covered by a CRC32C recorded in the
  metadata manifest and verified on load; silent corruption (bit rot, a
  torn RAID stripe) surfaces as a typed :class:`CheckpointError` instead
  of garbage physics;
* **rotation + fallback** — :class:`Checkpointer` keeps the newest
  ``keep_last`` files of a run directory and
  :func:`find_latest_valid` walks them newest-first, skipping anything
  truncated or corrupt, so one bad file costs one checkpoint interval,
  not the run;
* **scheduling** — :class:`CheckpointSchedule` triggers by step count
  and/or wall-clock interval, driven from ``HACCSimulation.run``;
* **fault injection** — the writer consults the active
  :class:`repro.resilience.faults.FaultPlan` after publishing each file,
  so chaos tests can truncate or bit-flip a scheduled write and assert
  the fallback path.

All load-side failures raise :class:`CheckpointError` carrying the
offending path; foreign ``.npz`` files report the keys they *did*
contain, and files written by a future format version are rejected
instead of being misread.
"""

from __future__ import annotations

import json
import logging
import os
import re
import time
from dataclasses import asdict
from pathlib import Path
from typing import Callable

import numpy as np

from repro.config import SimulationConfig
from repro.core.particles import Particles
from repro.core.simulation import HACCSimulation
from repro.resilience.faults import get_fault_plan

__all__ = [
    "CheckpointError",
    "CheckpointSchedule",
    "Checkpointer",
    "crc32c",
    "find_latest_valid",
    "load_checkpoint",
    "save_checkpoint",
    "verify_checkpoint",
]

logger = logging.getLogger(__name__)

_FORMAT_VERSION = 2
#: versions this reader understands (1 = pre-checksum files)
_SUPPORTED_VERSIONS = (1, 2)

#: arrays every checkpoint carries
_ARRAY_KEYS = ("positions", "momenta", "masses", "ids", "a")

#: rotation file naming: ``ckpt_<step>.npz``
_CKPT_RE = re.compile(r"^ckpt_(\d+)\.npz$")


class CheckpointError(Exception):
    """A checkpoint could not be read, verified, or understood.

    Attributes
    ----------
    path:
        The offending file.
    """

    def __init__(self, path: str | Path, message: str) -> None:
        self.path = Path(path)
        super().__init__(f"{path}: {message}")


# ----------------------------------------------------------------------
# CRC32C (Castagnoli): the checksum the paper-era GPFS/burst-buffer
# stacks use for data integrity; table-driven, reflected poly 0x1EDC6F41
# ----------------------------------------------------------------------
def _crc32c_table() -> list[int]:
    poly = 0x82F63B78  # reflected Castagnoli polynomial
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ poly if crc & 1 else crc >> 1
        table.append(crc)
    return table


_CRC32C_TABLE = _crc32c_table()


def crc32c(data: bytes | bytearray | memoryview | np.ndarray) -> int:
    """CRC32C of a byte buffer or the raw bytes of an array."""
    if isinstance(data, np.ndarray):
        data = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        data = data.tobytes()
    table = _CRC32C_TABLE
    crc = 0xFFFFFFFF
    for byte in memoryview(data):
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


# ----------------------------------------------------------------------
# path and metadata plumbing
# ----------------------------------------------------------------------
def _normalize_path(path: str | Path) -> Path:
    """Normalize a checkpoint destination to exactly one ``.npz`` suffix.

    ``with_suffix`` semantics on the *final* extension only: a
    case-variant ``.NPZ`` is normalized rather than doubled up, while
    dotted science names (``z0.5``, ``run.v2``) keep their full stem and
    gain ``.npz`` — ``with_suffix`` alone would truncate ``z0.5`` to
    ``z0.npz``.
    """
    p = Path(path)
    if p.suffix.lower() == ".npz":
        return p.with_suffix(".npz")
    return p.with_name(p.name + ".npz")


def _checkpoint_metadata(sim: HACCSimulation, checksums: dict) -> dict:
    cfg = sim.config
    cfg_dict = asdict(cfg)
    cfg_dict["cosmology"] = asdict(cfg.cosmology)
    return {
        "format_version": _FORMAT_VERSION,
        "config": cfg_dict,
        "step_index": sim._step_index,
        "checksums": checksums,
    }


def _apply_checkpoint_fault(path: Path, spec: dict) -> None:
    """Corrupt a just-written checkpoint per an injected fault spec."""
    plan = get_fault_plan()
    size = path.stat().st_size
    mode = spec["mode"]
    offset = spec.get("offset")
    if mode == "truncate":
        keep = size // 2 if offset is None else min(int(offset), size)
        with open(path, "r+b") as fh:
            fh.truncate(keep)
        logger.warning(
            "fault injection: truncated checkpoint %s to %d/%d bytes",
            path, keep, size,
        )
    elif mode == "bitflip":
        at = plan.rng_uniform(size) if offset is None else int(offset) % size
        bit = 1 << plan.rng_uniform(8)
        with open(path, "r+b") as fh:
            fh.seek(at)
            byte = fh.read(1)[0]
            fh.seek(at)
            fh.write(bytes([byte ^ bit]))
        logger.warning(
            "fault injection: flipped bit 0x%02x at byte %d of %s",
            bit, at, path,
        )
    else:  # pragma: no cover - schedule builder validates modes
        raise ValueError(f"unknown checkpoint fault mode {mode!r}")


# ----------------------------------------------------------------------
# save / load
# ----------------------------------------------------------------------
def save_checkpoint(path: str | Path, sim: HACCSimulation) -> Path:
    """Atomically write the simulation's full restartable state.

    The arrays and their CRC32C manifest are serialized to a temporary
    sibling file which is fsynced and renamed over the destination; a
    crash at any point leaves either the previous file or none, never a
    torn one.  Returns the (suffix-normalized) final path.
    """
    p = _normalize_path(path)
    arrays = {
        "positions": sim.particles.positions,
        "momenta": sim.particles.momenta,
        "masses": sim.particles.masses,
        "ids": sim.particles.ids,
        "a": np.float64(sim.a),
    }
    checksums = {
        name: f"{crc32c(np.asarray(arr)):08x}" for name, arr in arrays.items()
    }
    meta = _checkpoint_metadata(sim, checksums)
    p.parent.mkdir(parents=True, exist_ok=True)
    tmp = p.parent / f".{p.name}.tmp-{os.getpid()}.npz"
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, metadata=json.dumps(meta), **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, p)
    finally:
        if tmp.exists():  # publication failed; leave no litter behind
            tmp.unlink()
    plan = get_fault_plan()
    if plan.enabled:
        spec = plan.checkpoint_fault()
        if spec is not None:
            _apply_checkpoint_fault(p, spec)
    return p


def _read_metadata(path: Path, data) -> dict:
    if "metadata" not in data:
        raise CheckpointError(
            path,
            "not a repro checkpoint (no 'metadata' entry; found keys: "
            f"{sorted(data.files)})",
        )
    try:
        meta = json.loads(str(data["metadata"]))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(path, f"unreadable metadata: {exc}") from exc
    version = meta.get("format_version")
    if not isinstance(version, int):
        raise CheckpointError(
            path, f"missing/invalid format_version: {version!r}"
        )
    if version > _FORMAT_VERSION:
        raise CheckpointError(
            path,
            f"format_version {version} is newer than the supported "
            f"{_FORMAT_VERSION}; upgrade the code to read this file",
        )
    if version not in _SUPPORTED_VERSIONS:
        raise CheckpointError(
            path, f"unsupported checkpoint format_version: {version}"
        )
    return meta


def _load_verified(path: Path) -> tuple[dict, dict]:
    """Read, structurally validate, and checksum-verify a checkpoint.

    Returns ``(metadata, arrays)``; every failure mode — missing file,
    torn zip, foreign content, checksum mismatch — is normalized to
    :class:`CheckpointError`.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            meta = _read_metadata(path, data)
            missing = [k for k in _ARRAY_KEYS if k not in data]
            if missing:
                raise CheckpointError(
                    path,
                    f"missing arrays {missing}; found keys: "
                    f"{sorted(data.files)}",
                )
            # materialize inside the context so a truncated member
            # surfaces here, not lazily at first use
            arrays = {k: np.asarray(data[k]).copy() for k in _ARRAY_KEYS}
    except CheckpointError:
        raise
    except FileNotFoundError as exc:
        raise CheckpointError(path, "no such file") from exc
    except Exception as exc:  # zipfile/zlib/EOF errors: torn or foreign
        raise CheckpointError(
            path, f"unreadable ({type(exc).__name__}: {exc})"
        ) from exc
    checksums = meta.get("checksums")
    if checksums:
        for name, expected in checksums.items():
            actual = f"{crc32c(arrays[name]):08x}"
            if actual != expected:
                raise CheckpointError(
                    path,
                    f"checksum mismatch on {name!r}: "
                    f"recorded {expected}, computed {actual}",
                )
    return meta, arrays


def verify_checkpoint(path: str | Path) -> dict:
    """Fully validate a checkpoint; returns its metadata or raises."""
    meta, _ = _load_verified(Path(path))
    return meta


def load_checkpoint(path: str | Path, **sim_kwargs) -> HACCSimulation:
    """Restore a simulation from a verified checkpoint; ``run()``
    resumes where the original left off.

    Extra keyword arguments (``decomposition_dims``, ``retry_policy``,
    ...) are forwarded to the :class:`HACCSimulation` constructor so a
    decomposed run resumes with the same parallel structure.
    """
    path = Path(path)
    meta, arrays = _load_verified(path)
    try:
        config = SimulationConfig.from_dict(meta["config"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            path, f"invalid config payload: {exc}"
        ) from exc
    particles = Particles(
        positions=arrays["positions"],
        momenta=arrays["momenta"],
        masses=arrays["masses"],
        ids=arrays["ids"],
        box_size=config.box_size,
    )
    sim = HACCSimulation(config, particles=particles, **sim_kwargs)
    sim.a = float(arrays["a"])
    sim._step_index = int(meta["step_index"])
    return sim


# ----------------------------------------------------------------------
# rotation directories and auto-resume
# ----------------------------------------------------------------------
def _rotation_files(directory: Path) -> list[tuple[int, Path]]:
    """(step, path) of every rotation file, newest (highest step) first."""
    out = []
    for p in directory.iterdir():
        m = _CKPT_RE.match(p.name)
        if m:
            out.append((int(m.group(1)), p))
    return sorted(out, reverse=True)


def find_latest_valid(directory: str | Path) -> Path | None:
    """The newest checkpoint in a rotation directory that verifies.

    Walks ``ckpt_*.npz`` newest-first; anything truncated, corrupt, or
    foreign is skipped with a warning (and, when fault injection is
    live, counted as a survived checkpoint fault).  Returns ``None``
    when nothing valid remains.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    skipped = False
    for _, path in _rotation_files(directory):
        try:
            verify_checkpoint(path)
        except CheckpointError as exc:
            skipped = True
            logger.warning("skipping invalid checkpoint: %s", exc)
            continue
        if skipped:
            plan = get_fault_plan()
            if plan.enabled:
                plan.note_recovery("checkpoint")
        return path
    return None


class CheckpointSchedule:
    """When to checkpoint: every K steps and/or every T seconds.

    ``every_steps=K`` fires on steps ``K, 2K, ...`` (1-based count of
    completed steps); ``every_seconds=T`` fires whenever at least ``T``
    seconds of wall clock passed since the last write.  Either trigger
    alone suffices; with both, whichever fires first wins.
    """

    def __init__(
        self,
        every_steps: int | None = None,
        every_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if every_steps is None and every_seconds is None:
            raise ValueError(
                "schedule needs every_steps and/or every_seconds"
            )
        if every_steps is not None and every_steps < 1:
            raise ValueError(f"every_steps must be >= 1: {every_steps}")
        if every_seconds is not None and every_seconds <= 0:
            raise ValueError(f"every_seconds must be > 0: {every_seconds}")
        self.every_steps = every_steps
        self.every_seconds = every_seconds
        self.clock = clock
        self._last_time = clock()

    def due(self, steps_completed: int) -> bool:
        """Should a checkpoint be written after this many steps?"""
        if (
            self.every_steps is not None
            and steps_completed % self.every_steps == 0
        ):
            return True
        if self.every_seconds is not None:
            return self.clock() - self._last_time >= self.every_seconds
        return False

    def wrote(self) -> None:
        """Reset the wall-clock trigger (a checkpoint was written)."""
        self._last_time = self.clock()


class Checkpointer:
    """Scheduled, rotated, atomic checkpoints for one run directory.

    Parameters
    ----------
    directory:
        Run directory; files are named ``ckpt_<step>.npz``.
    keep_last:
        Rotation depth — older files beyond the newest ``keep_last`` are
        pruned after each successful write (pruning never removes the
        file just written).
    schedule:
        Optional :class:`CheckpointSchedule`; without one,
        :meth:`maybe_checkpoint` writes after *every* step.
    """

    def __init__(
        self,
        directory: str | Path,
        keep_last: int = 3,
        schedule: CheckpointSchedule | None = None,
    ) -> None:
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1: {keep_last}")
        self.directory = Path(directory)
        self.keep_last = int(keep_last)
        self.schedule = schedule
        self.n_written = 0
        self.last_path: Path | None = None

    def maybe_checkpoint(
        self, sim: HACCSimulation, force: bool = False
    ) -> Path | None:
        """Write a checkpoint if the schedule says so; driver hook.

        ``force=True`` (the driver's end-of-run call) writes regardless
        of the schedule — unless this step's file was already written.
        """
        due = force or self.schedule is None or self.schedule.due(
            sim._step_index
        )
        if not due:
            return None
        target = self.directory / f"ckpt_{sim._step_index:06d}.npz"
        if self.last_path is not None and self.last_path == target:
            return None
        return self.checkpoint(sim)

    def checkpoint(self, sim: HACCSimulation) -> Path:
        """Unconditionally write (and rotate) a checkpoint now."""
        path = save_checkpoint(
            self.directory / f"ckpt_{sim._step_index:06d}.npz", sim
        )
        self.n_written += 1
        self.last_path = path
        if self.schedule is not None:
            self.schedule.wrote()
        self._prune()
        logger.debug("checkpoint written: %s", path)
        return path

    def _prune(self) -> None:
        for _, path in _rotation_files(self.directory)[self.keep_last:]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup is fine
                pass
