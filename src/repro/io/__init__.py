"""Snapshot and measurement I/O (compressed ``.npz`` containers)."""

from repro.io.snapshots import (
    load_power_history,
    load_snapshot,
    save_power_history,
    save_snapshot,
)
from repro.io.checkpoint import (
    CheckpointError,
    Checkpointer,
    CheckpointSchedule,
    crc32c,
    find_latest_valid,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)

__all__ = [
    "save_snapshot",
    "load_snapshot",
    "save_power_history",
    "load_power_history",
    "save_checkpoint",
    "load_checkpoint",
    "verify_checkpoint",
    "find_latest_valid",
    "crc32c",
    "CheckpointError",
    "CheckpointSchedule",
    "Checkpointer",
]
