"""Serialize a registry to JSON-lines, CSV, and Chrome ``trace_event``.

All writers accept either a filesystem path or an open text file and all
have a matching loader, so the round trip is testable without touching
external tooling.  The Chrome format follows the ``trace_event`` spec's
complete-event (``"ph": "X"``) form: load the file at ``chrome://tracing``
or https://ui.perfetto.dev to see the span hierarchy of a run.
"""

from __future__ import annotations

import csv
import io
import json
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.instrument.registry import NullRegistry, Registry, SpanEvent

__all__ = [
    "write_jsonl",
    "load_jsonl",
    "write_csv",
    "load_csv",
    "write_chrome_trace",
    "load_chrome_trace",
    "spans_nest",
    "to_jsonl_string",
]

_CSV_FIELDS = ("name", "path", "start", "end", "duration", "thread", "rank")


@contextmanager
def _open_text(dest, mode: str) -> Iterator:
    """Yield a text file for a path-or-file destination."""
    if isinstance(dest, (str, Path)):
        with open(dest, mode, encoding="utf-8", newline="") as fh:
            yield fh
    else:
        yield dest


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------
def write_jsonl(registry: Registry | NullRegistry, dest) -> int:
    """One JSON object per line: span events, then counters, then steps.

    Returns the number of lines written.  Record kinds are tagged with a
    ``"kind"`` field so a stream parser needs no lookahead.
    """
    lines = 0
    with _open_text(dest, "w") as fh:
        for ev in registry.events:
            fh.write(json.dumps({"kind": "span", **ev.to_dict()}) + "\n")
            lines += 1
        for name, value in sorted(registry.counters.items()):
            fh.write(
                json.dumps({"kind": "counter", "name": name, "value": value})
                + "\n"
            )
            lines += 1
        for step in registry.steps:
            fh.write(json.dumps({"kind": "step", **step.to_dict()}) + "\n")
            lines += 1
    return lines


def load_jsonl(src) -> dict:
    """Inverse of :func:`write_jsonl`.

    Returns ``{"spans": [SpanEvent...], "counters": {...}, "steps": [...]}``
    (steps as plain dicts).
    """
    spans: list[SpanEvent] = []
    counters: dict[str, float] = {}
    steps: list[dict] = []
    with _open_text(src, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.pop("kind")
            if kind == "span":
                spans.append(SpanEvent(**rec))
            elif kind == "counter":
                counters[rec["name"]] = rec["value"]
            elif kind == "step":
                steps.append(rec)
            else:
                raise ValueError(f"unknown record kind {kind!r}")
    return {"spans": spans, "counters": counters, "steps": steps}


# ----------------------------------------------------------------------
# CSV (span events only — the spreadsheet-friendly view)
# ----------------------------------------------------------------------
def write_csv(registry: Registry | NullRegistry, dest) -> int:
    """Span events as CSV with a header row; returns the event count."""
    events = registry.events
    with _open_text(dest, "w") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_FIELDS)
        for ev in events:
            writer.writerow(
                [ev.name, ev.path, repr(ev.start), repr(ev.end),
                 repr(ev.duration), ev.thread, ev.rank]
            )
    return len(events)


def load_csv(src) -> list[SpanEvent]:
    """Inverse of :func:`write_csv` (durations are recomputed)."""
    with _open_text(src, "r") as fh:
        reader = csv.DictReader(fh)
        return [
            SpanEvent(
                name=row["name"],
                path=row["path"],
                start=float(row["start"]),
                end=float(row["end"]),
                thread=int(row["thread"]),
                rank=int(row.get("rank") or 0),
            )
            for row in reader
        ]


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def write_chrome_trace(registry: Registry | NullRegistry, dest) -> int:
    """Chrome ``trace_event`` JSON (complete events, microsecond units).

    Each simulated rank gets its own process lane: span events carry
    ``pid = rank`` (thread id inside the lane) and every lane is labelled
    with a ``process_name`` metadata event, so a multi-rank run reads as
    a rank-by-rank timeline in the viewer.  Counters are attached as
    ``"ph": "C"`` counter events at the end of the trace so they show up
    as tracks.  Returns the number of trace events written (metadata
    excluded).
    """
    events = registry.events
    trace = [
        {
            "name": ev.name,
            "cat": "repro",
            "ph": "X",
            "ts": ev.start * 1e6,
            "dur": ev.duration * 1e6,
            "pid": ev.rank,
            "tid": ev.thread,
            "args": {"path": ev.path},
        }
        for ev in events
    ]
    t_end = max((ev.end for ev in events), default=0.0)
    for name, value in sorted(registry.counters.items()):
        trace.append(
            {
                "name": name,
                "cat": "repro",
                "ph": "C",
                "ts": t_end * 1e6,
                "pid": 0,
                "args": {"value": value},
            }
        )
    n_spans_counters = len(trace)
    # executor worker lanes live at pid >= WORKER_LANE_BASE (see
    # repro.parallel.executor) and are labelled as workers, not ranks
    from repro.parallel.executor import WORKER_LANE_BASE

    for rank in sorted({ev.rank for ev in events}):
        label = (
            f"worker {rank - WORKER_LANE_BASE}"
            if rank >= WORKER_LANE_BASE
            else f"rank {rank}"
        )
        trace.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": rank,
                "args": {"name": label},
            }
        )
    with _open_text(dest, "w") as fh:
        json.dump({"traceEvents": trace, "displayTimeUnit": "ms"}, fh)
    return n_spans_counters


def load_chrome_trace(src) -> dict:
    """Inverse of :func:`write_chrome_trace`.

    Returns ``{"spans": [SpanEvent...], "counters": {...}}``; span paths
    are recovered from the ``args.path`` attachment.
    """
    with _open_text(src, "r") as fh:
        payload = json.load(fh)
    spans: list[SpanEvent] = []
    counters: dict[str, float] = {}
    for ev in payload["traceEvents"]:
        if ev["ph"] == "X":
            start = ev["ts"] / 1e6
            spans.append(
                SpanEvent(
                    name=ev["name"],
                    path=ev["args"]["path"],
                    start=start,
                    end=start + ev["dur"] / 1e6,
                    thread=ev["tid"],
                    rank=ev.get("pid", 0),
                )
            )
        elif ev["ph"] == "C":
            counters[ev["name"]] = ev["args"]["value"]
    return {"spans": spans, "counters": counters}


def spans_nest(spans: list[SpanEvent]) -> bool:
    """Check the parenthesis property: child spans lie inside parents.

    For every span whose ``path`` names a parent, some event with the
    parent path must enclose it in time on the same thread.  Used by the
    round-trip tests to confirm exported traces preserve the hierarchy.
    """
    eps = 1e-12
    by_path: dict[tuple[int, str], list[SpanEvent]] = {}
    for ev in spans:
        by_path.setdefault((ev.thread, ev.path), []).append(ev)
    for ev in spans:
        if "/" not in ev.path:
            continue
        parent_path = ev.path.rsplit("/", 1)[0]
        parents = by_path.get((ev.thread, parent_path), [])
        if not any(
            p.start <= ev.start + eps and ev.end <= p.end + eps
            for p in parents
        ):
            return False
    return True


def to_jsonl_string(registry: Registry | NullRegistry) -> str:
    """Convenience: the JSON-lines export as an in-memory string."""
    buf = io.StringIO()
    write_jsonl(registry, buf)
    return buf.getvalue()
