"""Comm/compute overlap attribution: how much communication was hidden.

The paper's performance architecture is built on hiding communication
behind the short-range compute (Sec. IV): the overload exchange and the
spectral solve proceed while the tree/PP kernels run, so at scale the
measured comm cost is a small exposed sliver of the true traffic time
(Figs. 7-8 attribute the rest to overlap).  This module is the measured
version of that claim for the overlapped execution paths.

:class:`OverlapMeter` wraps every *communication / assembly* segment of
an overlapped section.  The caller states whether independent compute
was in flight while the segment ran; the meter charges two counters on
the active registry —

``overlap.total_s``
    wall seconds spent in comm segments of overlapped sections;
``overlap.hidden_s``
    the subset that ran while at least one compute task was in flight
    (i.e. the seconds a bulk-synchronous schedule would have exposed).

— and opens an ``overlap.hidden`` / ``overlap.exposed`` span so traces
show *which* comm intervals were covered.  The ratio
``hidden_s / total_s`` is the **overlap efficiency** surfaced by
``report --roofline`` and the monitor dashboard: 0 means fully
bulk-synchronous, 1 means every comm second was covered by compute.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.instrument.registry import get_registry

__all__ = ["OverlapMeter", "overlap_efficiency"]

#: counter names charged by the meter (single source of truth)
TOTAL_COUNTER = "overlap.total_s"
HIDDEN_COUNTER = "overlap.hidden_s"


class OverlapMeter:
    """Accumulates hidden vs total comm seconds for one overlapped phase.

    Cheap to construct per step; all charging goes through the active
    registry, so a disabled registry makes the meter nearly free.  Local
    ``hidden_s`` / ``total_s`` attributes accumulate regardless, for
    callers that want the ratio without instrumentation.
    """

    def __init__(self) -> None:
        self.hidden_s = 0.0
        self.total_s = 0.0

    @contextmanager
    def comm(self, hidden: bool = False):
        """Time one comm/assembly segment.

        ``hidden=True`` asserts that independent compute was in flight
        for the segment's duration (the caller knows its own pending-task
        count); the segment then counts as hidden communication.
        """
        reg = get_registry()
        name = "overlap.hidden" if hidden else "overlap.exposed"
        t0 = time.perf_counter()
        if reg.enabled:
            with reg.span(name):
                yield
        else:
            yield
        dt = time.perf_counter() - t0
        self.total_s += dt
        if hidden:
            self.hidden_s += dt
        if reg.enabled:
            reg.count(TOTAL_COUNTER, dt)
            if hidden:
                reg.count(HIDDEN_COUNTER, dt)

    def efficiency(self) -> float | None:
        """Hidden / total comm seconds, ``None`` before any segment."""
        if self.total_s <= 0.0:
            return None
        return min(1.0, self.hidden_s / self.total_s)


def overlap_efficiency(counters: dict) -> float | None:
    """Overlap efficiency from a counter dict (registry or step record).

    Returns ``hidden / total`` comm seconds, or ``None`` when the run
    recorded no overlapped sections at all — the monitor renders that as
    "-" rather than conflating "no overlap used" with "nothing hidden".
    """
    total = float(counters.get(TOTAL_COUNTER, 0.0))
    if total <= 0.0:
        return None
    return min(1.0, float(counters.get(HIDDEN_COUNTER, 0.0)) / total)
