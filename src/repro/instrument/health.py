"""Physics health monitoring: invariant thresholds and run verdicts.

A long N-body campaign can go numerically bad long before it crashes —
energy drifting, momentum accumulating from force asymmetries, a
corrupted FFT silently feeding garbage accelerations.  This module turns
the repo's physics invariants into *monitored* quantities:

* :class:`Threshold` / :class:`HealthThresholds` — WARN/CRIT levels per
  named check, with paper-informed defaults (the flagship runs hold the
  energy error to ~0.1%; we default to far looser levels suited to the
  small step counts of test runs);
* :class:`HealthMonitor` — consumes ``{check: value}`` samples each
  step, emits :class:`HealthEvent` records on threshold crossings, and
  reduces the run to an ``OK`` / ``WARN`` / ``CRIT`` verdict with a
  shell-friendly exit status (``CRIT`` → 2);
* :class:`SimulationHealth` — wires a live :class:`HACCSimulation` to
  the monitor: Layzer-Irvine residual (:mod:`repro.core.diagnostics`),
  total momentum drift, CIC mass conservation, and an FFT round-trip
  probe on the current density grid.

The monitor is deliberately dumb about *where* values come from — tests
drive it with synthetic series, the driver feeds it physics, and the
benchmark harness reads its verdict into ``BENCH_*.json`` records.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, fields, replace
from typing import Iterable, Mapping

# NOTE: repro.core.diagnostics is imported lazily inside SimulationHealth.
# The diagnostics module pulls in the grid layer, which itself imports
# repro.instrument for counters — a top-level import here would close
# that cycle and break whichever module is imported first.

__all__ = [
    "Threshold",
    "HealthThresholds",
    "HealthEvent",
    "HealthMonitor",
    "SimulationHealth",
    "SEVERITY_ORDER",
    "worst_severity",
]

logger = logging.getLogger(__name__)

#: verdict severity ranking, mildest first
SEVERITY_ORDER = ("OK", "WARN", "CRIT")


@dataclass(frozen=True)
class Threshold:
    """A WARN/CRIT level pair for one monitored quantity (upper bounds)."""

    warn: float
    crit: float

    def __post_init__(self) -> None:
        if self.warn > self.crit:
            raise ValueError(
                f"warn level {self.warn} exceeds crit level {self.crit}"
            )

    def severity(self, value: float) -> str:
        """Classify ``value`` against the levels (NaN is always CRIT)."""
        if value != value:  # NaN: the quantity itself is broken
            return "CRIT"
        if value >= self.crit:
            return "CRIT"
        if value >= self.warn:
            return "WARN"
        return "OK"


@dataclass(frozen=True)
class HealthThresholds:
    """Default threshold set for the simulation's invariants.

    Calibrated against the repo's own healthy runs: the PM field-energy
    bookkeeping has a known spectral-vs-CIC discretization floor of
    ~10-15% of the integrated energy flux (the integration suite accepts
    0.15), so the energy WARN sits just above it — a WARN honestly flags
    runs stepped too coarsely for energy conservation (the default demo
    config transiently reaches ~3) while CRIT means the residual
    genuinely blew up.  Momentum drift, CIC mass defect and the FFT
    round trip are machine-precision quantities in a healthy run, so
    their levels sit many orders above the floor but far below any real
    failure.
    """

    energy_residual: Threshold = Threshold(warn=0.25, crit=5.0)
    momentum_drift: Threshold = Threshold(warn=1e-8, crit=1e-4)
    mass_error: Threshold = Threshold(warn=1e-10, crit=1e-6)
    fft_roundtrip: Threshold = Threshold(warn=1e-12, crit=1e-8)
    imbalance: Threshold = Threshold(warn=1.5, crit=3.0)

    def as_mapping(self) -> dict[str, Threshold]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def with_(self, **kwargs) -> "HealthThresholds":
        """Copy with selected checks replaced (Threshold or (warn, crit))."""
        coerced = {
            name: th if isinstance(th, Threshold) else Threshold(*th)
            for name, th in kwargs.items()
        }
        return replace(self, **coerced)


@dataclass(frozen=True)
class HealthEvent:
    """One threshold crossing observed at one step."""

    step: int
    severity: str
    check: str
    value: float
    threshold: float
    message: str

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "severity": self.severity,
            "check": self.check,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
        }


class HealthMonitor:
    """Threshold engine: samples in, events and a run verdict out."""

    def __init__(
        self, thresholds: HealthThresholds | Mapping[str, Threshold] | None = None
    ) -> None:
        if thresholds is None:
            thresholds = HealthThresholds()
        if isinstance(thresholds, HealthThresholds):
            thresholds = thresholds.as_mapping()
        self.thresholds: dict[str, Threshold] = dict(thresholds)
        self.events: list[HealthEvent] = []
        self.last_values: dict[str, float] = {}

    def check(
        self, step: int, values: Mapping[str, float]
    ) -> list[HealthEvent]:
        """Classify one step's samples; returns (and stores) new events.

        Values without a configured threshold are recorded in
        ``last_values`` but never alert — producers may feed extra
        context freely.
        """
        new: list[HealthEvent] = []
        for check, value in values.items():
            self.last_values[check] = float(value)
            threshold = self.thresholds.get(check)
            if threshold is None:
                continue
            severity = threshold.severity(float(value))
            if severity == "OK":
                continue
            bound = (
                threshold.crit if severity == "CRIT" else threshold.warn
            )
            event = HealthEvent(
                step=int(step),
                severity=severity,
                check=check,
                value=float(value),
                threshold=bound,
                message=(
                    f"{check} = {float(value):.3e} exceeds "
                    f"{severity} level {bound:.3e} at step {step}"
                ),
            )
            new.append(event)
            log = (
                logger.critical if severity == "CRIT" else logger.warning
            )
            log("health: %s", event.message)
        self.events.extend(new)
        return new

    def emit(
        self,
        step: int,
        severity: str,
        check: str,
        message: str = "",
        value: float = 0.0,
        threshold: float = 0.0,
    ) -> HealthEvent:
        """Record a discrete event that is not a threshold crossing.

        The resilience layer uses this for machine-fault events —
        ``rank_died`` (CRIT, a domain was lost and not reconstructed),
        ``rank_recovered`` (WARN, rebuilt from overload replicas),
        ``comm_retry`` / ``comm_gave_up`` — so machine faults land in
        the same event log, verdict, and exit status as the physics
        invariants.
        """
        if severity not in SEVERITY_ORDER:
            raise ValueError(
                f"severity must be one of {SEVERITY_ORDER}: {severity!r}"
            )
        event = HealthEvent(
            step=int(step),
            severity=severity,
            check=check,
            value=float(value),
            threshold=float(threshold),
            message=message or f"{check} at step {step}",
        )
        if severity != "OK":
            self.events.append(event)
            log = (
                logger.critical if severity == "CRIT" else logger.warning
            )
            log("health: %s", event.message)
        return event

    # ------------------------------------------------------------------
    def verdict(self) -> str:
        """Worst severity seen over the whole run."""
        worst = 0
        for ev in self.events:
            worst = max(worst, SEVERITY_ORDER.index(ev.severity))
        return SEVERITY_ORDER[worst]

    def exit_status(self) -> int:
        """Shell status: 0 for OK/WARN, 2 for CRIT."""
        return 2 if self.verdict() == "CRIT" else 0

    def summary(self) -> dict:
        """Verdict plus event counts, for bench records and end-of-run."""
        return {
            "verdict": self.verdict(),
            "warnings": sum(1 for e in self.events if e.severity == "WARN"),
            "criticals": sum(1 for e in self.events if e.severity == "CRIT"),
            "last_values": dict(self.last_values),
        }


class SimulationHealth:
    """Attach physics health monitoring to a :class:`HACCSimulation`.

    Construct it right after the simulation (it snapshots the initial
    energy state and momentum), then call :meth:`observe` after every
    step — e.g. as the ``run()`` callback, or let the driver's telemetry
    hook do it when installed as ``sim.health``.

    Parameters
    ----------
    sim:
        The simulation to watch.
    thresholds:
        Override the default :class:`HealthThresholds`.
    check_fft:
        Include the FFT round-trip probe (costs one transform pair per
        step on the PM grid).
    """

    def __init__(
        self,
        sim,
        thresholds: HealthThresholds | None = None,
        check_fft: bool = True,
    ) -> None:
        from repro.core.diagnostics import (
            LayzerIrvineMonitor,
            total_momentum,
        )

        self.sim = sim
        self.check_fft = check_fft
        self.monitor = HealthMonitor(thresholds)
        self.energy = LayzerIrvineMonitor(
            sim.poisson, sim.cosmology.omega_m
        )
        self.energy.record(sim.particles, sim.a)
        self._p0 = total_momentum(sim.particles)
        self.last_events: list[HealthEvent] = []

    def values(self) -> dict[str, float]:
        """Measure the current invariants (records an energy state)."""
        from repro.core.diagnostics import (
            cic_mass_error,
            fft_roundtrip_error,
            momentum_drift,
        )

        sim = self.sim
        self.energy.record(sim.particles, sim.a)
        out = {
            "energy_residual": abs(self.energy.relative_residual()),
            "momentum_drift": momentum_drift(sim.particles, self._p0),
            "mass_error": cic_mass_error(sim.particles, sim.config.grid()),
        }
        if self.check_fft:
            out["fft_roundtrip"] = fft_roundtrip_error(
                sim.density_contrast()
            )
        return out

    def observe(
        self, extra: Mapping[str, float] | None = None
    ) -> list[HealthEvent]:
        """Measure, classify, and return this step's new events."""
        values = self.values()
        if extra:
            values.update({k: float(v) for k, v in extra.items()})
        self.last_events = self.monitor.check(self.sim._step_index, values)
        return self.last_events

    # convenience forwarders ------------------------------------------------
    def verdict(self) -> str:
        return self.monitor.verdict()

    def exit_status(self) -> int:
        return self.monitor.exit_status()

    def summary(self) -> dict:
        return self.monitor.summary()


def worst_severity(severities: Iterable[str]) -> str:
    """Reduce a set of severity strings to the worst one."""
    worst = 0
    for s in severities:
        worst = max(worst, SEVERITY_ORDER.index(s))
    return SEVERITY_ORDER[worst]
