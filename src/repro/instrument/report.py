"""Reporting surface: measured-vs-model tables and BENCH_*.json records.

The measured side comes from a live :class:`repro.instrument.Registry`
populated by an instrumented run; the model side is the calibrated BG/Q
machine model's time split (Section III of the paper: the 16-ranks /
4-threads operating point spends 80% in the PP kernel, 10% in the tree
walk, 5% in the FFT, 5% elsewhere — the attribution behind Table II).

Section-name → Table II row mapping
-----------------------------------
========================  ======================  ===============
span name(s)              profile row             model bucket
========================  ======================  ===============
``cic.deposit``           CIC deposit             other
``fft.forward``           forward FFT             fft
``poisson.filter``        filter                  fft
``fft.inverse``           inverse FFT             fft
``cic.interpolate``       CIC interpolate         other
``tree.build``            tree build              walk
``tree.walk``             tree walk               walk
``pp.kernel, pp.batch``   PP kernel               kernel
``sks.stream, sks.kick``  stream/kick             other
========================  ======================  ===============

Python-vs-BG/Q caveat: the *fractions* are comparable in structure, not
in value — a NumPy PP kernel is far slower relative to FFTW-class FFTs
than hand-scheduled QPX, so expect the measured kernel share to exceed
80% at paper-like sub-cycling.  The table exists to make exactly that
kind of statement quantitative.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.instrument.registry import NullRegistry, Registry

__all__ = [
    "ProfileRow",
    "SECTION_ROWS",
    "section_table",
    "bucket_table",
    "render_profile",
    "write_bench_record",
    "bench_provenance_notes",
]


@dataclass(frozen=True)
class ProfileRow:
    """One row of the profile table: sections, counters, model bucket."""

    label: str
    sections: tuple[str, ...]
    bucket: str
    counters: tuple[str, ...] = ()


#: canonical profile rows in paper Table II order
SECTION_ROWS = (
    ProfileRow("CIC deposit", ("cic.deposit",), "other",
               ("cic.deposit_particles",)),
    ProfileRow("forward FFT", ("fft.forward",), "fft",
               ("fft.forward_points",)),
    ProfileRow("filter", ("poisson.filter",), "fft",
               ("poisson.filter_points",)),
    ProfileRow("inverse FFT", ("fft.inverse",), "fft",
               ("fft.inverse_points",)),
    ProfileRow("CIC interpolate", ("cic.interpolate",), "other",
               ("cic.interp_particles",)),
    ProfileRow("tree build", ("tree.build",), "walk",
               ("tree.build_particles",)),
    ProfileRow("tree walk", ("tree.walk",), "walk",
               ("tree.list_length",)),
    ProfileRow("PP kernel", ("pp.kernel", "pp.batch"), "kernel",
               ("pp.interactions", "pp.flops")),
    ProfileRow("stream/kick", ("sks.stream", "sks.kick"), "other",
               ("sks.substeps",)),
)


def _model_split() -> dict[str, float]:
    from repro.machine.paper_data import FULLCODE_TIME_SPLIT

    return dict(FULLCODE_TIME_SPLIT)


def section_table(
    registry: Registry | NullRegistry,
    rows: tuple[ProfileRow, ...] = SECTION_ROWS,
) -> list[dict]:
    """Measured seconds/fractions/counters per profile row.

    ``fraction`` is relative to the total time under ``step`` spans when
    present (otherwise the sum over all rows); ``model_fraction`` is the
    machine model's share for the row's Table II bucket.
    """
    totals = registry.section_totals()
    counters = registry.counters
    split = _model_split()

    def row_seconds(row: ProfileRow) -> float:
        return sum(
            totals.get(s, {}).get("seconds", 0.0) for s in row.sections
        )

    def row_calls(row: ProfileRow) -> int:
        return sum(totals.get(s, {}).get("calls", 0) for s in row.sections)

    step_total = totals.get("step", {}).get("seconds", 0.0)
    if step_total <= 0.0:
        step_total = sum(row_seconds(r) for r in rows)
    out = []
    for row in rows:
        seconds = row_seconds(row)
        counter_name, counter_value = "", 0.0
        for cname in row.counters:
            if cname in counters:
                counter_name, counter_value = cname, counters[cname]
                break
        out.append(
            {
                "label": row.label,
                "sections": row.sections,
                "bucket": row.bucket,
                "seconds": seconds,
                "calls": row_calls(row),
                "fraction": seconds / step_total if step_total > 0 else 0.0,
                "counter": counter_name,
                "counter_value": counter_value,
                "model_fraction": split.get(row.bucket, 0.0),
            }
        )
    return out


def bucket_table(
    registry: Registry | NullRegistry,
    rows: tuple[ProfileRow, ...] = SECTION_ROWS,
) -> list[dict]:
    """Measured vs model time split aggregated to the paper's buckets."""
    table = section_table(registry, rows)
    split = _model_split()
    measured: dict[str, float] = {k: 0.0 for k in split}
    for entry in table:
        measured[entry["bucket"]] = (
            measured.get(entry["bucket"], 0.0) + entry["seconds"]
        )
    total = sum(measured.values())
    return [
        {
            "bucket": bucket,
            "seconds": measured.get(bucket, 0.0),
            "measured_fraction": (
                measured.get(bucket, 0.0) / total if total > 0 else 0.0
            ),
            "model_fraction": frac,
        }
        for bucket, frac in split.items()
    ]


def _fmt_count(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3e}"


def render_profile(
    registry: Registry | NullRegistry,
    rows: tuple[ProfileRow, ...] = SECTION_ROWS,
) -> str:
    """Human-readable measured-vs-model profile (the ``--profile`` table)."""
    table = section_table(registry, rows)
    buckets = bucket_table(registry, rows)
    totals = registry.section_totals()
    lines = []
    step = totals.get("step")
    if step:
        lines.append(
            f"profiled {step['calls']} step(s), "
            f"{step['seconds']:.3f} s inside step spans"
        )
    header = (
        f"{'section':16s} {'measured s':>10s} {'% of step':>9s} "
        f"{'calls':>6s} {'bucket':>7s} {'model %':>8s}  counters"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for entry in table:
        counter = (
            f"{entry['counter']}={_fmt_count(entry['counter_value'])}"
            if entry["counter"]
            else "-"
        )
        lines.append(
            f"{entry['label']:16s} {entry['seconds']:10.4f} "
            f"{100 * entry['fraction']:8.1f}% {entry['calls']:6d} "
            f"{entry['bucket']:>7s} {100 * entry['model_fraction']:7.1f}%  "
            f"{counter}"
        )
    lines.append("")
    lines.append("paper Table II attribution (Section III time split) "
                 "vs this run:")
    for entry in buckets:
        lines.append(
            f"  {entry['bucket']:7s} measured "
            f"{100 * entry['measured_fraction']:5.1f}%   "
            f"model/paper {100 * entry['model_fraction']:5.1f}%"
        )
    comm_bytes = registry.counter("comm.bytes")
    if comm_bytes:
        lines.append(
            f"  comm    {_fmt_count(comm_bytes)} bytes in "
            f"{_fmt_count(registry.counter('comm.messages'))} messages"
        )
    return "\n".join(lines)


def bench_provenance_notes(records: dict) -> list[str]:
    """Loud warnings for bench records whose backend availability flags
    differ from the current host.

    ``BENCH_kernels.json`` (and any record carrying a
    ``numba_available`` flag) encodes which kernel backends existed when
    it was measured.  Comparing such a record against a host where the
    availability differs is apples to oranges — a record timed without
    numba says nothing about this host's compiled kernel, and vice
    versa.  Every consumer (``report``, ``check_regression.py``) prints
    these notes instead of silently comparing.
    """
    import importlib.util

    host_numba = importlib.util.find_spec("numba") is not None
    notes = []
    for name, rec in sorted((records or {}).items()):
        payload = rec.get("payload", rec) if isinstance(rec, dict) else {}
        if not isinstance(payload, dict):
            continue
        flag = payload.get("numba_available")
        if flag is None or bool(flag) == host_numba:
            continue
        notes.append(
            f"PROVENANCE MISMATCH [SKIPPED/UNAVAILABLE]: bench record "
            f"{name!r} was measured with numba_available={bool(flag)} "
            f"but numba is "
            f"{'importable' if host_numba else 'NOT importable'} on this "
            f"host — its backend timings are not comparable here."
        )
    return notes


# ----------------------------------------------------------------------
# machine-readable benchmark records
# ----------------------------------------------------------------------
def write_bench_record(
    name: str,
    payload: dict,
    directory: str | Path | None = None,
    registry: Registry | NullRegistry | None = None,
) -> Path:
    """Write a ``BENCH_<name>.json`` record and return its path.

    Parameters
    ----------
    name:
        Record stem; non-filename characters are replaced with ``_``.
    payload:
        Arbitrary JSON-serializable measurement data.
    directory:
        Destination (created if missing); defaults to the
        ``REPRO_BENCH_DIR`` environment variable, then
        ``benchmarks/records``.
    registry:
        If given, its :meth:`~repro.instrument.Registry.summary` — the
        section totals and counters — is embedded under ``"instrument"``.
    """
    if directory is None:
        directory = os.environ.get("REPRO_BENCH_DIR", "benchmarks/records")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    safe = "".join(c if c.isalnum() or c in "-._" else "_" for c in name)
    path = directory / f"BENCH_{safe}.json"
    record = {"name": name, "payload": payload}
    if registry is not None:
        summary = registry.summary()
        record["instrument"] = {
            "sections": summary["sections"],
            "counters": summary["counters"],
        }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
