"""Logging configuration for the ``repro`` package.

One small entry point, :func:`logging_setup`, replaces the ad-hoc
``print`` calls that used to live in the CLI and the simulation driver.
It configures the ``"repro"`` logger hierarchy only — library consumers
embedding repro keep full control of root logging.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["logging_setup"]

#: handler marker so repeated setup calls replace rather than stack
_HANDLER_NAME = "repro-cli"


def logging_setup(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the ``repro`` logger from a CLI verbosity level.

    Parameters
    ----------
    verbosity:
        ``-1`` (or lower) → WARNING (``-q``), ``0`` → INFO,
        ``1`` (or higher) → DEBUG (``-v``).
    stream:
        Destination stream; defaults to ``sys.stdout`` so demo products
        and progress lines interleave in order.

    Returns the configured ``"repro"`` logger.  Idempotent: calling it
    again replaces the handler installed by the previous call.
    """
    if verbosity <= -1:
        level = logging.WARNING
    elif verbosity == 0:
        level = logging.INFO
    else:
        level = logging.DEBUG
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if handler.get_name() == _HANDLER_NAME:
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
    handler.set_name(_HANDLER_NAME)
    if level <= logging.DEBUG:
        fmt = "%(name)s %(levelname).1s %(message)s"
    else:
        fmt = "%(message)s"
    handler.setFormatter(logging.Formatter(fmt))
    logger.addHandler(handler)
    logger.propagate = False
    return logger
