"""Measured work accounting: analytic FLOP/byte counts per profiled phase.

Spans record *seconds*; this module pairs them with *work* so a profiled
run reports achieved GFLOP/s, arithmetic intensity, and fraction of the
calibrated host peak per phase — the measured analogue of the paper's
Section IV.B hardware-counter table (142.32 GFlops/node = 69.5% of peak,
52x memory-bandwidth headroom).

The accounting is **analytic**: hot paths charge ``*.flops`` / ``*.bytes``
counters derived from the operation counts they already track (pair
interactions, particles deposited, FFT points) times the per-unit costs
defined here.  There are no hardware counters in interpreted Python; what
is measured is the *time*, and the work model converts counted operations
into the flops and memory traffic an ideal implementation of the same
algorithm performs.  That makes "fraction of peak" a statement about the
algorithm's throughput on this host, directly comparable across backends
and precisions (the f32 path charges half the bytes of f64 for the same
flops — the bandwidth half of the paper's mixed-precision argument).

Per-unit work model (single source of truth — the hand-computed test
assertions in ``tests/test_perfcount.py`` pin every constant):

========== =============================================================
phase       per-unit flops / bytes
========== =============================================================
shortrange  ``PAIR_FLOPS`` = 21 flops per pair interaction (Section III:
            168 flops per 26-instruction unrolled iteration covering 8
            interactions); 4 streamed operands per pair (neighbor x, y,
            z, m) × itemsize bytes — targets and accumulators stay in
            registers, as in the QPX kernel.
cic         47 flops per particle per pass: 12 coordinate preparation
            (scale/wrap/floor/frac × 3 dims) + 3 complement weights +
            16 corner-weight products (8 corners × 2 multiplies) + 16
            scatter/gather multiply-adds.  Bytes: 8 corners × (grid
            read + write × itemsize + an 8-byte flattened index).
fft         ``5 N log2 N`` flops per N-point transform (the standard
            radix-2 butterfly count); bytes: one complex load + store
            per point per radix-2 pass (``2 × complex_itemsize × N ×
            log2 N``) — the classic AI ≈ 5/32 memory-bound placement.
filter      6 flops per point (one complex multiply) and 3 complex
            operands per point (field in, kernel in, field out); folded
            into the fft phase like the Table II bucket.
comm        0 flops; bytes are the already-counted ``comm.bytes``.
========== =============================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "PAIR_FLOPS",
    "PAIR_STREAMED_OPERANDS",
    "CIC_FLOPS_PER_PARTICLE",
    "CIC_INDEX_BYTES",
    "FILTER_FLOPS_PER_POINT",
    "FILTER_OPERANDS_PER_POINT",
    "pair_bytes",
    "cic_bytes",
    "fft_flops",
    "fft_bytes",
    "filter_flops",
    "filter_bytes",
    "PhaseWork",
    "PHASES",
    "work_summary",
    "achieved_gflops",
    "step_perf",
    "roofline_table",
    "render_roofline",
]

#: flops per pair interaction (Section III: 168 flops / 8 interactions).
#: ``repro.shortrange.kernel`` imports this — one constant, two users.
PAIR_FLOPS = 21.0

#: values streamed per pair: neighbor x, y, z and mass (the target
#: coordinates and the force accumulator live in registers)
PAIR_STREAMED_OPERANDS = 4

#: flops per particle per CIC pass (deposit or gather): 12 coordinate
#: prep + 3 complement weights + 16 corner-weight products + 16
#: multiply-adds into/out of the 8 corners
CIC_FLOPS_PER_PARTICLE = 47.0

#: bytes per flattened corner index (int64)
CIC_INDEX_BYTES = 8

#: flops per grid point of the spectral filter (one complex multiply)
FILTER_FLOPS_PER_POINT = 6.0

#: complex operands touched per filtered point: field in, kernel in,
#: field out
FILTER_OPERANDS_PER_POINT = 3


def pair_bytes(n_pairs: float, itemsize: int) -> float:
    """Streamed bytes for ``n_pairs`` interactions at ``itemsize``."""
    return float(n_pairs) * PAIR_STREAMED_OPERANDS * itemsize


def cic_bytes(n_particles: float, itemsize: int) -> float:
    """Traffic of one CIC pass: 8 corners × (read + write + index)."""
    return float(n_particles) * 8 * (2 * itemsize + CIC_INDEX_BYTES)


def fft_flops(n_points: float) -> float:
    """``5 N log2 N`` butterfly flops for one N-point transform."""
    n = float(n_points)
    if n < 2:
        return 0.0
    return 5.0 * n * math.log2(n)


def fft_bytes(n_points: float, complex_itemsize: int = 16) -> float:
    """One complex load + store per point per radix-2 pass."""
    n = float(n_points)
    if n < 2:
        return 0.0
    return 2.0 * complex_itemsize * n * math.log2(n)


def filter_flops(n_points: float) -> float:
    """Complex-multiply flops of the spectral filter."""
    return FILTER_FLOPS_PER_POINT * float(n_points)


def filter_bytes(n_points: float, complex_itemsize: int = 16) -> float:
    """Filter traffic: field read + kernel read + field write."""
    return FILTER_OPERANDS_PER_POINT * complex_itemsize * float(n_points)


# ----------------------------------------------------------------------
# phase aggregation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseWork:
    """Seconds + analytic work of one roofline phase."""

    name: str
    seconds: float
    flops: float
    bytes: float

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s (0 when no time was recorded)."""
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0

    @property
    def gbytes_per_s(self) -> float:
        """Achieved GB/s of modeled traffic."""
        return self.bytes / self.seconds / 1e9 if self.seconds > 0 else 0.0

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of modeled traffic (``inf`` for zero bytes)."""
        if self.bytes <= 0:
            return float("inf") if self.flops > 0 else 0.0
        return self.flops / self.bytes

    def fraction_of_peak(self, peak_gflops: float) -> float:
        """Achieved / calibrated-peak flop rate."""
        return self.gflops / peak_gflops if peak_gflops > 0 else 0.0

    def bound_by(self, balance_flops_per_byte: float) -> str:
        """Roofline classification against the machine balance point."""
        if self.flops <= 0:
            return "comm" if self.bytes > 0 else "-"
        ai = self.arithmetic_intensity
        return "compute" if ai >= balance_flops_per_byte else "memory"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "flops": self.flops,
            "bytes": self.bytes,
            "gflops": self.gflops,
            "gbytes_per_s": self.gbytes_per_s,
            "arithmetic_intensity": (
                self.arithmetic_intensity
                if self.arithmetic_intensity != float("inf")
                else None
            ),
        }


#: roofline phases: name -> (span sections, flops counter, bytes counter).
#: Sections are the spans the simulation already opens; the counters are
#: charged by the hot paths (kernel seam, CIC, Poisson/pencil FFTs, comm).
PHASES: tuple[tuple[str, tuple[str, ...], str, str], ...] = (
    ("shortrange", ("pp.kernel", "pp.batch"), "pp.flops", "pp.bytes"),
    ("cic", ("cic.deposit", "cic.interpolate"), "cic.flops", "cic.bytes"),
    ("fft",
     ("fft.forward", "fft.inverse", "poisson.filter",
      "fft.pencil.forward", "fft.pencil.inverse"),
     "fft.flops", "fft.bytes"),
    ("comm", (), "", "comm.bytes"),
)


def _summary_of(source) -> tuple[dict, dict]:
    """``(sections, counters)`` from a registry or a registry.json dict."""
    if isinstance(source, dict):
        return dict(source.get("sections") or {}), dict(
            source.get("counters") or {}
        )
    return source.section_totals(), dict(source.counters)


def work_summary(source) -> list[PhaseWork]:
    """Per-phase :class:`PhaseWork` from a registry or its saved summary.

    ``source`` is a live :class:`~repro.instrument.Registry` or the
    ``registry.json`` dict the run ledger stores (``{"sections": ...,
    "counters": ...}``).  Phases with neither time nor work are omitted.
    """
    sections, counters = _summary_of(source)

    def seconds_of(names: tuple[str, ...]) -> float:
        return sum(
            float(sections.get(s, {}).get("seconds", 0.0)) for s in names
        )

    out = []
    for name, spans, flops_ctr, bytes_ctr in PHASES:
        flops = float(counters.get(flops_ctr, 0.0)) if flops_ctr else 0.0
        nbytes = float(counters.get(bytes_ctr, 0.0)) if bytes_ctr else 0.0
        seconds = seconds_of(spans)
        if name == "comm" and seconds == 0.0:
            # comm has no dedicated span; its traffic overlaps the
            # exchange inside the shortrange/step sections, so report
            # volume against the whole stepped time
            seconds = float(sections.get("step", {}).get("seconds", 0.0))
        if flops == 0.0 and nbytes == 0.0 and seconds == 0.0:
            continue
        out.append(
            PhaseWork(name=name, seconds=seconds, flops=flops, bytes=nbytes)
        )
    return out


def achieved_gflops(source) -> float | None:
    """Whole-run achieved GFLOP/s: total charged flops over stepped time.

    The denominator is the time under ``step`` spans (the run's
    instrumented wall); returns ``None`` when the source records no
    flops or no stepped time — e.g. an un-instrumented run.
    """
    sections, counters = _summary_of(source)
    flops = sum(
        float(counters.get(ctr, 0.0)) for _, _, ctr, _ in PHASES if ctr
    )
    seconds = float(sections.get("step", {}).get("seconds", 0.0))
    if flops <= 0 or seconds <= 0:
        return None
    return flops / seconds / 1e9


def step_perf(step_record) -> dict | None:
    """Per-step achieved-throughput summary from a ``StepRecord``.

    Returns ``{"gflops", "pair_ns", "ai"}`` — flushed into the telemetry
    stream each step so the monitor dashboard can show live achieved
    ns/pair without waiting for the run to finish.  ``None`` when the
    step charged no work (un-instrumented or kernel-free steps).
    """
    counters = step_record.counters
    sections = step_record.sections
    flops = sum(
        float(counters.get(ctr, 0.0)) for _, _, ctr, _ in PHASES if ctr
    )
    nbytes = sum(
        float(counters.get(ctr, 0.0)) for _, _, _, ctr in PHASES if ctr
    )
    if flops <= 0:
        return None
    wall = float(step_record.wall_time)
    perf: dict = {
        "gflops": flops / wall / 1e9 if wall > 0 else 0.0,
        "ai": flops / nbytes if nbytes > 0 else None,
    }
    pairs = float(counters.get("pp.interactions", 0.0))
    pair_s = sum(
        float(sections.get(s, 0.0)) for s in ("pp.kernel", "pp.batch")
    )
    if pairs > 0 and pair_s > 0:
        perf["pair_ns"] = 1e9 * pair_s / pairs
    from repro.instrument.overlap import overlap_efficiency

    overlap = overlap_efficiency(counters)
    if overlap is not None:
        perf["overlap"] = overlap
    return perf


# ----------------------------------------------------------------------
# roofline table (measured vs model)
# ----------------------------------------------------------------------
def _model_point() -> dict:
    """The paper's Section IV.B placement (the "model" column).

    Derived from :class:`repro.machine.roofline.InstructionMixModel`:
    sustained 142.32 GFlops of a 204.8 GFlops node (69.5% of peak) at
    the measured 0.344 B/cycle of traffic.
    """
    from repro.machine.roofline import InstructionMixModel

    model = InstructionMixModel()
    sustained = 142.32
    point = model.roofline(sustained)
    return {
        "frac_peak": sustained * 1e9 / model.node.flops_per_node_peak,
        "arithmetic_intensity": point.arithmetic_intensity,
        "bandwidth_headroom": model.bandwidth_headroom(),
        "memory_bound": point.memory_bound,
    }


def roofline_table(
    phases: list[PhaseWork], calibration, counters: dict | None = None
) -> dict:
    """Machine-readable roofline placement of a run's phases.

    ``calibration`` is a :class:`repro.machine.calibrate.HostCalibration`
    giving this host's measured peak GFLOP/s and STREAM-triad GB/s; the
    balance point ``peak / bandwidth`` classifies each phase as compute-
    or memory-bound.  The ``model`` block carries the paper's numbers for
    the measured-vs-model column.  Pass the run's ``counters`` dict to
    attach an ``overlap`` block (hidden vs total comm seconds from the
    overlapped execution paths) when the run recorded one.
    """
    balance = calibration.balance()
    rows = []
    for ph in phases:
        row = ph.to_dict()
        row["frac_peak"] = ph.fraction_of_peak(calibration.peak_gflops)
        row["frac_stream"] = (
            ph.gbytes_per_s / calibration.stream_gbs
            if calibration.stream_gbs > 0
            else 0.0
        )
        row["bound_by"] = ph.bound_by(balance)
        rows.append(row)
    total = PhaseWork(
        name="total",
        seconds=sum(p.seconds for p in phases if p.name != "comm"),
        flops=sum(p.flops for p in phases),
        bytes=sum(p.bytes for p in phases),
    )
    trow = total.to_dict()
    trow["frac_peak"] = total.fraction_of_peak(calibration.peak_gflops)
    trow["bound_by"] = total.bound_by(balance)
    table = {
        "calibration": calibration.to_dict(),
        "balance_flops_per_byte": balance,
        "phases": rows,
        "total": trow,
        "model": _model_point(),
    }
    if counters:
        from repro.instrument.overlap import overlap_efficiency

        efficiency = overlap_efficiency(counters)
        if efficiency is not None:
            table["overlap"] = {
                "hidden_s": float(counters.get("overlap.hidden_s", 0.0)),
                "total_s": float(counters.get("overlap.total_s", 0.0)),
                "efficiency": efficiency,
            }
    return table


def _fmt_ai(value) -> str:
    if value is None:
        return "-"
    if value == float("inf"):
        return "inf"
    return f"{value:.3f}"


def render_roofline(table: dict) -> str:
    """Human-readable roofline table (the ``report --roofline`` view)."""
    cal = table["calibration"]
    model = table["model"]
    lines = [
        (
            f"host calibration: peak {cal['peak_gflops']:.2f} GFLOP/s, "
            f"STREAM triad {cal['stream_gbs']:.2f} GB/s "
            f"(balance {table['balance_flops_per_byte']:.2f} flops/byte)"
        ),
        (
            f"paper model (Section IV.B): {100 * model['frac_peak']:.1f}% "
            f"of peak at AI {model['arithmetic_intensity']:.0f} "
            f"flops/byte ({model['bandwidth_headroom']:.0f}x bandwidth "
            f"headroom)"
        ),
    ]
    header = (
        f"{'phase':10s} {'seconds':>9s} {'GFLOP/s':>9s} {'GB/s':>8s} "
        f"{'AI f/B':>8s} {'% peak':>7s} {'bound':>8s} {'model %':>8s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in table["phases"] + [table["total"]]:
        model_pct = (
            f"{100 * model['frac_peak']:7.1f}%"
            if row["name"] in ("shortrange", "total")
            else "       -"
        )
        lines.append(
            f"{row['name']:10s} {row['seconds']:9.4f} "
            f"{row['gflops']:9.3f} {row['gbytes_per_s']:8.3f} "
            f"{_fmt_ai(row['arithmetic_intensity']):>8s} "
            f"{100 * row['frac_peak']:6.2f}% {row['bound_by']:>8s} "
            f"{model_pct}"
        )
    overlap = table.get("overlap")
    if overlap:
        lines.append(
            f"overlap efficiency: {100 * overlap['efficiency']:.1f}% "
            f"({overlap['hidden_s']:.4f}s of {overlap['total_s']:.4f}s "
            f"comm hidden behind compute)"
        )
    lines.append(
        "AI and traffic are the analytic work model (see "
        "repro.instrument.perfcount); %peak is measured time against "
        "the calibrated host peak."
    )
    return "\n".join(lines)
