"""The run ledger: an append-only index of completed runs.

PRs 1 and 3 gave a *single* run rich observability — span traces,
telemetry streams, health verdicts, BENCH records — but the paper's
performance story (Sec. IV, Figs. 5-8, Tables I-III) is told across
*many* runs: scaling sweeps, imbalance histograms, per-phase breakdowns
compared between configurations.  The ledger is where those runs
accumulate:

* ``<root>/index.jsonl`` — one JSON line per recorded run, append-only;
  corrupt or half-written lines are skipped on read, so a crash during
  ``record`` never poisons the ledger;
* ``<root>/runs/<run_id>/`` — the run's artifacts, copied in at record
  time: ``entry.json`` (the full entry), ``telemetry.jsonl`` (the
  RunStream), ``trace.json`` (Chrome trace of the registry), and
  ``bench/BENCH_*.json`` records.

Entries are queryable by config hash, seed, executor backend / worker
count, short-range backend, git revision and health verdict — the axes
the paper's scaling tables vary — and resolve by id, unique id prefix,
or the ``latest`` / ``latest~N`` relative tokens the CLI and the CI
report lane use.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "RunEntry",
    "RunLedger",
    "git_revision",
    "default_ledger_root",
]

#: environment override for the CLI's default ledger location
LEDGER_ENV = "REPRO_LEDGER_DIR"

#: fallback ledger location (relative to the working directory)
DEFAULT_ROOT = ".repro/ledger"


def default_ledger_root() -> Path:
    """The CLI's ledger root: ``$REPRO_LEDGER_DIR`` or ``.repro/ledger``."""
    return Path(os.environ.get(LEDGER_ENV) or DEFAULT_ROOT)


def git_revision(cwd: str | Path | None = None) -> str | None:
    """Best-effort short git revision of the working tree (or ``None``).

    ``REPRO_GIT_REV`` overrides (hermetic CI); failures of any kind —
    no git, not a repository, timeout — degrade to ``None`` rather than
    raising, because provenance must never break a run.
    """
    env_rev = os.environ.get("REPRO_GIT_REV")
    if env_rev:
        return env_rev
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


@dataclass(frozen=True)
class RunEntry:
    """One ledgered run: identity, provenance, outcome, artifact names."""

    run_id: str
    created_unix: float
    config_hash: str | None = None
    seed: int | None = None
    backend: str | None = None
    executor: str | None = None
    workers: int | None = None
    kernel_backend: str | None = None
    precision: str | None = None
    n_steps: int | None = None
    n_particles: int | None = None
    git_rev: str | None = None
    verdict: str | None = None
    wall_s: float | None = None
    steps_completed: int | None = None
    alerts: int | None = None
    #: whole-run achieved GFLOP/s (analytic flops over stepped seconds,
    #: see :func:`repro.instrument.perfcount.achieved_gflops`); ``None``
    #: for un-instrumented runs
    gflops: float | None = None
    artifacts: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "created_unix": self.created_unix,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "backend": self.backend,
            "executor": self.executor,
            "workers": self.workers,
            "kernel_backend": self.kernel_backend,
            "precision": self.precision,
            "n_steps": self.n_steps,
            "n_particles": self.n_particles,
            "git_rev": self.git_rev,
            "verdict": self.verdict,
            "wall_s": self.wall_s,
            "steps_completed": self.steps_completed,
            "alerts": self.alerts,
            "gflops": self.gflops,
            "artifacts": dict(self.artifacts),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, rec: dict) -> "RunEntry":
        known = {f: rec.get(f) for f in (
            "run_id", "created_unix", "config_hash", "seed", "backend",
            "executor", "workers", "kernel_backend", "precision",
            "n_steps", "n_particles", "git_rev",
            "verdict", "wall_s", "steps_completed", "alerts", "gflops",
        )}
        known["created_unix"] = float(known.get("created_unix") or 0.0)
        if not known.get("run_id"):
            raise ValueError(f"ledger record without run_id: {rec!r}")
        return cls(
            artifacts=dict(rec.get("artifacts") or {}),
            extra=dict(rec.get("extra") or {}),
            **known,
        )

    def meta(self) -> dict:
        """The identity block run reports lead with."""
        out = {
            "run_id": self.run_id,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "backend": self.backend,
            "executor": self.executor,
            "workers": self.workers,
            "kernel_backend": self.kernel_backend,
            "precision": self.precision,
            "git_rev": self.git_rev,
        }
        # campaign-dispatched runs carry their suite identity so a
        # report ties the artifact back to its campaign + attempt
        for key in ("campaign_id", "campaign_name", "campaign_run",
                    "attempt"):
            if key in self.extra:
                out[key] = self.extra[key]
        return out


class RunLedger:
    """Append-only on-disk index of completed runs (see module docs)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.index_path = self.root / "index.jsonl"
        self.runs_dir = self.root / "runs"

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        manifest: dict | None = None,
        stream_path: str | Path | None = None,
        registry=None,
        trace_path: str | Path | None = None,
        bench_records: dict[str, dict] | None = None,
        verdict: str | None = None,
        extra: dict | None = None,
    ) -> RunEntry:
        """Ingest one completed run and return its :class:`RunEntry`.

        Parameters
        ----------
        manifest:
            The run manifest (see
            :func:`repro.instrument.telemetry.run_manifest`); when absent
            it is recovered from the stream's manifest line.
        stream_path:
            Telemetry RunStream JSONL to copy in; its end record supplies
            the verdict / wall time / alert count unless given directly.
        registry:
            A live :class:`repro.instrument.Registry`; its Chrome trace
            (span tree + per-rank/worker lanes) and summary are stored.
        trace_path:
            Alternatively, an already-exported Chrome trace to copy in.
        bench_records:
            ``{name: record}`` BENCH payloads to store under ``bench/``.
        verdict:
            Health verdict override (``OK``/``WARN``/``CRIT``/...).
        """
        from repro.instrument.telemetry import read_stream

        stream_data = None
        if stream_path is not None and Path(stream_path).is_file():
            stream_data = read_stream(stream_path)
        if manifest is None and stream_data is not None:
            manifest = stream_data.get("manifest") or {}
        manifest = dict(manifest or {})
        end = (stream_data or {}).get("end") or {}
        steps = (stream_data or {}).get("steps") or []

        run_id = self._next_run_id(manifest.get("config_hash"))
        run_dir = self.runs_dir / run_id
        run_dir.mkdir(parents=True, exist_ok=True)

        artifacts: dict = {}
        gflops = None
        if stream_path is not None and Path(stream_path).is_file():
            shutil.copy2(stream_path, run_dir / "telemetry.jsonl")
            artifacts["telemetry"] = "telemetry.jsonl"
        if registry is not None:
            from repro.instrument.exporters import write_chrome_trace

            write_chrome_trace(registry, run_dir / "trace.json")
            artifacts["trace"] = "trace.json"
            summary = registry.summary()
            with open(run_dir / "registry.json", "w",
                      encoding="utf-8") as fh:
                json.dump(
                    {
                        "sections": summary["sections"],
                        "counters": summary["counters"],
                        "steps": summary.get("steps", []),
                    },
                    fh,
                )
            artifacts["registry"] = "registry.json"
            from repro.instrument.perfcount import achieved_gflops

            gflops = achieved_gflops(registry)
        elif trace_path is not None and Path(trace_path).is_file():
            shutil.copy2(trace_path, run_dir / "trace.json")
            artifacts["trace"] = "trace.json"
        if bench_records:
            bench_dir = run_dir / "bench"
            bench_dir.mkdir(exist_ok=True)
            for name, rec in sorted(bench_records.items()):
                safe = "".join(
                    c if c.isalnum() or c in "-._" else "_" for c in name
                )
                with open(bench_dir / f"BENCH_{safe}.json", "w",
                          encoding="utf-8") as fh:
                    json.dump(rec, fh, indent=2, sort_keys=True)
            artifacts["bench"] = "bench"

        wall = end.get("wall_time")
        if wall is None and steps:
            wall = sum(float(s.get("wall_time", 0.0)) for s in steps)
        entry = RunEntry(
            run_id=run_id,
            created_unix=time.time(),
            config_hash=manifest.get("config_hash"),
            seed=manifest.get("seed"),
            backend=manifest.get("backend"),
            executor=manifest.get("executor"),
            workers=manifest.get("workers"),
            kernel_backend=manifest.get("kernel_backend"),
            precision=manifest.get("precision"),
            n_steps=manifest.get("n_steps"),
            n_particles=manifest.get("n_particles"),
            git_rev=manifest.get("git_rev") or git_revision(),
            verdict=verdict or end.get("verdict"),
            wall_s=float(wall) if wall is not None else None,
            steps_completed=len(steps) if steps else end.get("steps"),
            alerts=end.get("alerts"),
            gflops=gflops,
            artifacts=artifacts,
            extra=dict(extra or {}),
        )
        with open(run_dir / "entry.json", "w", encoding="utf-8") as fh:
            json.dump(entry.to_dict(), fh, indent=2, sort_keys=True)
        if manifest:
            with open(run_dir / "manifest.json", "w",
                      encoding="utf-8") as fh:
                json.dump(manifest, fh, indent=2, sort_keys=True)
        self._append_index(entry)
        return entry

    def _next_run_id(self, config_hash: str | None) -> str:
        """``run-NNNN-<hash6>``: sequence from the runs on disk."""
        seq = 0
        if self.runs_dir.is_dir():
            for child in self.runs_dir.iterdir():
                parts = child.name.split("-")
                if len(parts) >= 2 and parts[0] == "run":
                    try:
                        seq = max(seq, int(parts[1]))
                    except ValueError:
                        continue
        suffix = (config_hash or "nohash")[:6]
        return f"run-{seq + 1:04d}-{suffix}"

    def _append_index(self, entry: RunEntry) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.index_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry.to_dict()) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def entries(self) -> list[RunEntry]:
        """All entries in record order; unparseable index lines skipped."""
        out: list[RunEntry] = []
        if not self.index_path.is_file():
            return out
        with open(self.index_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(RunEntry.from_dict(json.loads(line)))
                except (json.JSONDecodeError, ValueError, TypeError):
                    continue
        return out

    def query(
        self,
        config_hash: str | None = None,
        seed: int | None = None,
        backend: str | None = None,
        executor: str | None = None,
        workers: int | None = None,
        kernel_backend: str | None = None,
        precision: str | None = None,
        git_rev: str | None = None,
        verdict: str | None = None,
    ) -> list[RunEntry]:
        """Entries matching every given filter, oldest first."""
        out = []
        for e in self.entries():
            if config_hash is not None and e.config_hash != config_hash:
                continue
            if seed is not None and e.seed != seed:
                continue
            if backend is not None and e.backend != backend:
                continue
            if executor is not None and e.executor != executor:
                continue
            if workers is not None and e.workers != workers:
                continue
            if kernel_backend is not None \
                    and e.kernel_backend != kernel_backend:
                continue
            if precision is not None and e.precision != precision:
                continue
            if git_rev is not None and e.git_rev != git_rev:
                continue
            if verdict is not None and e.verdict != verdict:
                continue
            out.append(e)
        return out

    def latest(self, **filters) -> RunEntry | None:
        """Most recently recorded entry matching the filters, if any."""
        matches = self.query(**filters)
        return matches[-1] if matches else None

    def get(self, token: str) -> RunEntry:
        """Resolve ``token`` to exactly one entry.

        Accepts an exact run id, a unique id prefix (config hashes work
        too, when unique), ``latest``, or ``latest~N`` (the Nth-newest).
        Raises :class:`KeyError` with the candidates when ambiguous or
        missing.
        """
        entries = self.entries()
        if not entries:
            raise KeyError(f"ledger at {self.root} is empty")
        if token == "latest":
            return entries[-1]
        if token.startswith("latest~"):
            try:
                back = int(token.split("~", 1)[1])
            except ValueError:
                raise KeyError(f"bad relative token {token!r}")
            if back < 0 or back >= len(entries):
                raise KeyError(
                    f"{token!r} out of range: ledger holds "
                    f"{len(entries)} run(s)"
                )
            return entries[-1 - back]
        exact = [e for e in entries if e.run_id == token]
        if len(exact) == 1:
            return exact[0]
        prefixed = [
            e for e in entries
            if e.run_id.startswith(token)
            or (e.config_hash or "").startswith(token)
        ]
        if len(prefixed) == 1:
            return prefixed[0]
        if not prefixed:
            raise KeyError(
                f"no ledgered run matches {token!r} "
                f"(have: {[e.run_id for e in entries[-5:]]}...)"
            )
        raise KeyError(
            f"{token!r} is ambiguous: "
            f"{[e.run_id for e in prefixed]}"
        )

    # ------------------------------------------------------------------
    # artifact access
    # ------------------------------------------------------------------
    def run_dir(self, entry: RunEntry) -> Path:
        return self.runs_dir / entry.run_id

    def artifact_path(self, entry: RunEntry, kind: str) -> Path | None:
        """Absolute path of an artifact (``telemetry``/``trace``/...)."""
        rel = entry.artifacts.get(kind)
        if rel is None:
            return None
        path = self.run_dir(entry) / rel
        return path if path.exists() else None

    def load_stream(self, entry: RunEntry) -> dict | None:
        """Parsed telemetry stream of an entry, if stored."""
        from repro.instrument.telemetry import read_stream

        path = self.artifact_path(entry, "telemetry")
        return read_stream(path) if path is not None else None

    def load_spans(self, entry: RunEntry) -> list | None:
        """Span events re-parsed from the stored Chrome trace, if any."""
        from repro.instrument.exporters import load_chrome_trace

        path = self.artifact_path(entry, "trace")
        if path is None:
            return None
        return load_chrome_trace(path)["spans"]

    def load_registry(self, entry: RunEntry) -> dict | None:
        """Stored registry summary (sections/counters/steps), if any."""
        path = self.artifact_path(entry, "registry")
        if path is None:
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def load_bench(self, entry: RunEntry) -> dict[str, dict]:
        """Stored BENCH records of an entry: ``{name: record}``."""
        bench_dir = self.artifact_path(entry, "bench")
        out: dict[str, dict] = {}
        if bench_dir is None or not bench_dir.is_dir():
            return out
        for path in sorted(bench_dir.glob("BENCH_*.json")):
            try:
                rec = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            out[rec.get("name", path.stem)] = rec
        return out

    def analyze(self, token_or_entry) -> "object":
        """Full :class:`repro.instrument.analysis.RunAnalysis` of a run."""
        from repro.instrument.analysis import analyze

        entry = (
            token_or_entry
            if isinstance(token_or_entry, RunEntry)
            else self.get(token_or_entry)
        )
        analysis = analyze(
            spans=self.load_spans(entry),
            stream=self.load_stream(entry),
            meta=entry.meta(),
        )
        if analysis.verdict is None:
            analysis.verdict = entry.verdict
        if analysis.wall_s <= 0 and entry.wall_s:
            analysis.wall_s = float(entry.wall_s)
        return analysis

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def gc(self, keep_last: int) -> list[str]:
        """Prune all but the newest ``keep_last`` runs; returns removed ids.

        The one operation that rewrites the index — compaction, not
        history editing: surviving entries keep their lines verbatim.
        """
        if keep_last < 0:
            raise ValueError(f"keep_last must be >= 0: {keep_last}")
        entries = self.entries()
        doomed = entries[: max(0, len(entries) - keep_last)]
        if not doomed:
            return []
        survivors = entries[len(doomed):]
        tmp = self.index_path.with_suffix(".jsonl.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for e in survivors:
                fh.write(json.dumps(e.to_dict()) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.index_path)
        removed = []
        for e in doomed:
            shutil.rmtree(self.run_dir(e), ignore_errors=True)
            removed.append(e.run_id)
        return removed
