"""The span-timer / counter registry.

See :mod:`repro.instrument` for the design overview.  Everything here is
pure stdlib — the instrumented science modules must be importable without
dragging in any heavy dependency, and the registry itself must be cheap
enough to leave compiled into every hot path.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "SpanEvent",
    "StepRecord",
    "FakeClock",
    "Counter",
    "Registry",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
    "use",
    "span",
    "count",
    "timed",
]

#: hierarchy separator in span paths (section names themselves use dots,
#: e.g. ``cic.deposit``, so paths read ``step/longrange/cic.deposit``)
PATH_SEP = "/"


@dataclass(frozen=True)
class SpanEvent:
    """One completed timed section.

    ``path`` encodes the nesting at the time the span was entered
    (``step/longrange/fft.forward``); ``name`` is the leaf label used for
    aggregation across call sites.  ``rank`` attributes the span to a
    simulated rank (0 for process-global sections); the Chrome-trace
    exporter renders distinct ranks as distinct process lanes.
    """

    name: str
    path: str
    start: float
    end: float
    thread: int
    rank: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "start": self.start,
            "end": self.end,
            "thread": self.thread,
            "rank": self.rank,
        }


@dataclass(frozen=True)
class StepRecord:
    """Per-step aggregation: section times and counter deltas.

    One record per ``HACCSimulation.step`` — the unit from which the
    paper's time-per-substep-per-particle columns are computed.
    """

    index: int
    wall_time: float
    sections: dict[str, float]
    calls: dict[str, int]
    counters: dict[str, float]

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "wall_time": self.wall_time,
            "sections": dict(self.sections),
            "calls": dict(self.calls),
            "counters": dict(self.counters),
        }


class FakeClock:
    """Deterministic injectable clock for tests and doctests.

    Calling the instance returns the current fake time; ``advance`` moves
    it forward.  Spans timed against a FakeClock have exactly reproducible
    durations.

    Examples
    --------
    >>> clock = FakeClock()
    >>> reg = Registry(clock=clock)
    >>> with reg.span("outer"):
    ...     clock.advance(1.5)
    ...     with reg.span("inner"):
    ...         clock.advance(0.5)
    >>> reg.section_seconds("outer"), reg.section_seconds("inner")
    (2.0, 0.5)
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"cannot advance a clock backwards: {dt}")
        self.now += float(dt)


class _SpanHandle:
    """Context manager for one live span (allocated only when enabled)."""

    __slots__ = ("_registry", "name", "path", "start", "rank")

    def __init__(self, registry: "Registry", name: str, rank: int = 0) -> None:
        self._registry = registry
        self.name = name
        self.path = ""
        self.start = 0.0
        self.rank = rank

    def __enter__(self) -> "_SpanHandle":
        reg = self._registry
        stack = reg._stack()
        parent = stack[-1].path if stack else ""
        self.path = parent + PATH_SEP + self.name if parent else self.name
        stack.append(self)
        self.start = reg.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        reg = self._registry
        end = reg.clock()
        stack = reg._stack()
        if not stack or stack[-1] is not self:
            raise RuntimeError(
                f"span {self.name!r} exited out of order "
                f"(open: {[s.name for s in stack]})"
            )
        stack.pop()
        reg._record(self, end)
        return False


class _NullSpan:
    """Shared no-op context manager: zero allocations when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRegistry:
    """Disabled instrumentation: every operation is a no-op.

    ``span`` hands back one shared context-manager instance and ``count``
    returns immediately — no locks, no allocations, no clock reads — so
    leaving instrumentation calls compiled into the hot paths costs a few
    attribute lookups per call and nothing else.
    """

    enabled = False

    def span(self, name: str, rank: int = 0) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        return None

    def record_external(
        self,
        name: str,
        start: float,
        end: float,
        rank: int = 0,
        path: str | None = None,
    ) -> None:
        return None

    @contextmanager
    def step(self, index: int) -> Iterator[None]:
        yield None

    # -- introspection mirrors of Registry (all empty) -----------------
    @property
    def events(self) -> list[SpanEvent]:
        return []

    @property
    def counters(self) -> dict[str, float]:
        return {}

    @property
    def steps(self) -> list[StepRecord]:
        return []

    def section_totals(self) -> dict[str, dict]:
        return {}

    def section_seconds(self, name: str) -> float:
        return 0.0

    def counter(self, name: str) -> float:
        return 0.0

    def reset(self) -> None:
        return None

    def summary(self) -> dict:
        return {"enabled": False, "sections": {}, "counters": {}, "steps": []}


class Registry:
    """Live instrumentation registry.

    Parameters
    ----------
    clock:
        Zero-argument callable returning monotonically increasing seconds;
        ``time.perf_counter`` by default, a :class:`FakeClock` in tests.
    max_events:
        Cap on retained :class:`SpanEvent` objects (aggregation continues
        past the cap; ``dropped_events`` counts the overflow).  Bounds the
        memory of long runs with per-leaf PP spans.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_events: int = 200_000,
    ) -> None:
        if max_events < 0:
            raise ValueError(f"max_events must be >= 0: {max_events}")
        self.clock = clock
        self.max_events = int(max_events)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._events: list[SpanEvent] = []
        self.dropped_events = 0
        #: per leaf name: [calls, total seconds]
        self._sections: dict[str, list] = {}
        #: per full path: [calls, total seconds]
        self._paths: dict[str, list] = {}
        self._counters: dict[str, float] = {}
        self._steps: list[StepRecord] = []

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _stack(self) -> list[_SpanHandle]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, handle: _SpanHandle, end: float) -> None:
        duration = end - handle.start
        with self._lock:
            if len(self._events) < self.max_events:
                self._events.append(
                    SpanEvent(
                        name=handle.name,
                        path=handle.path,
                        start=handle.start,
                        end=end,
                        thread=threading.get_ident(),
                        rank=handle.rank,
                    )
                )
            else:
                self.dropped_events += 1
            for key, table in (
                (handle.name, self._sections),
                (handle.path, self._paths),
            ):
                entry = table.get(key)
                if entry is None:
                    table[key] = [1, duration]
                else:
                    entry[0] += 1
                    entry[1] += duration

    # ------------------------------------------------------------------
    # recording API
    # ------------------------------------------------------------------
    def span(self, name: str, rank: int = 0) -> _SpanHandle:
        """Context manager timing ``name``, nested under the open span.

        ``rank`` tags the resulting event with a simulated-rank lane for
        per-rank trace visualization; aggregation ignores it.
        """
        return _SpanHandle(self, name, rank)

    def count(self, name: str, value: float = 1) -> None:
        """Accumulate ``value`` into counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def record_external(
        self,
        name: str,
        start: float,
        end: float,
        rank: int = 0,
        path: str | None = None,
    ) -> None:
        """Record a span measured outside this registry's span stack.

        Used for work timed in executor worker *processes*: the child
        measures ``[start, end]`` against the shared monotonic clock and
        the parent deposits the interval here, attributed to the
        worker's trace lane.  ``path`` preserves the nesting the child
        observed (prefixed by the dispatch label, so worker span trees
        hang under the task envelope); it defaults to ``name``, a
        root-level span.  Either way the event feeds the same section
        aggregates as :meth:`span`.
        """
        if end < start:
            raise ValueError(f"span ends before it starts: {start}..{end}")
        duration = end - start
        path = name if path is None else path
        with self._lock:
            if len(self._events) < self.max_events:
                self._events.append(
                    SpanEvent(
                        name=name,
                        path=path,
                        start=start,
                        end=end,
                        thread=threading.get_ident(),
                        rank=rank,
                    )
                )
            else:
                self.dropped_events += 1
            for key, table in (
                (name, self._sections),
                (path, self._paths),
            ):
                entry = table.get(key)
                if entry is None:
                    table[key] = [1, duration]
                else:
                    entry[0] += 1
                    entry[1] += duration

    @contextmanager
    def step(self, index: int) -> Iterator[None]:
        """Bracket one simulation step; appends a :class:`StepRecord`."""
        with self._lock:
            sec0 = {k: v[1] for k, v in self._sections.items()}
            calls0 = {k: v[0] for k, v in self._sections.items()}
            ctr0 = dict(self._counters)
        t0 = self.clock()
        try:
            yield None
        finally:
            wall = self.clock() - t0
            with self._lock:
                sections = {
                    k: v[1] - sec0.get(k, 0.0)
                    for k, v in self._sections.items()
                    if v[1] - sec0.get(k, 0.0) > 0.0
                }
                calls = {
                    k: v[0] - calls0.get(k, 0)
                    for k, v in self._sections.items()
                    if v[0] - calls0.get(k, 0) > 0
                }
                counters = {
                    k: v - ctr0.get(k, 0)
                    for k, v in self._counters.items()
                    if v != ctr0.get(k, 0)
                }
                self._steps.append(
                    StepRecord(
                        index=index,
                        wall_time=wall,
                        sections=sections,
                        calls=calls,
                        counters=counters,
                    )
                )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def events(self) -> list[SpanEvent]:
        with self._lock:
            return list(self._events)

    @property
    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    @property
    def steps(self) -> list[StepRecord]:
        with self._lock:
            return list(self._steps)

    def section_totals(self) -> dict[str, dict]:
        """Aggregates by leaf name: ``{name: {calls, seconds}}``."""
        with self._lock:
            return {
                k: {"calls": v[0], "seconds": v[1]}
                for k, v in self._sections.items()
            }

    def path_totals(self) -> dict[str, dict]:
        """Aggregates by full nesting path."""
        with self._lock:
            return {
                k: {"calls": v[0], "seconds": v[1]}
                for k, v in self._paths.items()
            }

    def section_seconds(self, name: str) -> float:
        with self._lock:
            entry = self._sections.get(name)
            return entry[1] if entry else 0.0

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def reset(self) -> None:
        """Drop all events, aggregates, counters and step records."""
        with self._lock:
            self._events.clear()
            self._sections.clear()
            self._paths.clear()
            self._counters.clear()
            self._steps.clear()
            self.dropped_events = 0

    def summary(self) -> dict:
        """Plain-dict snapshot for logs and BENCH records."""
        return {
            "enabled": True,
            "sections": self.section_totals(),
            "counters": self.counters,
            "steps": [s.to_dict() for s in self.steps],
            "dropped_events": self.dropped_events,
        }


# ----------------------------------------------------------------------
# process-global active registry
# ----------------------------------------------------------------------
_active: Registry | NullRegistry = NullRegistry()


def get_registry() -> Registry | NullRegistry:
    """The currently active registry (the shared no-op by default)."""
    return _active


def set_registry(registry: Registry | NullRegistry) -> Registry | NullRegistry:
    """Install ``registry`` as the active one; returns it."""
    global _active
    _active = registry
    return _active


def enable(
    clock: Callable[[], float] = time.perf_counter,
    max_events: int = 200_000,
) -> Registry:
    """Install and return a fresh live :class:`Registry`."""
    reg = Registry(clock=clock, max_events=max_events)
    set_registry(reg)
    return reg


def disable() -> NullRegistry:
    """Restore the no-op registry; returns it."""
    null = NullRegistry()
    set_registry(null)
    return null


@contextmanager
def use(registry: Registry | NullRegistry) -> Iterator[Registry | NullRegistry]:
    """Temporarily install ``registry`` (tests; restores the previous one)."""
    previous = _active
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def span(name: str, rank: int = 0):
    """Time a section against the active registry (module-level sugar)."""
    return _active.span(name, rank)


def count(name: str, value: float = 1) -> None:
    """Accumulate into a counter of the active registry."""
    _active.count(name, value)


def timed(name: str):
    """Decorator: run the wrapped callable inside ``span(name)``.

    The active registry is resolved per call, so decorated functions
    respect :func:`enable` / :func:`disable` at runtime.
    """

    def decorator(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with _active.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorator


class Counter:
    """A named always-on accumulator that mirrors into the registry.

    Unlike registry counters (which vanish when instrumentation is
    disabled), a ``Counter`` instance always holds its own running
    ``value`` — it is the single source of truth for quantities the
    science code itself consumes (e.g. the PP interaction count that
    ``HACCSimulation.interaction_count`` reports).  When a live registry
    is active, every ``add`` is mirrored there under the same name, so
    the profiler and the simulation agree on one number.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount
        _active.count(self.name, amount)

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, value={self.value})"
