"""Instrumentation: hierarchical span timers, counters, step records.

The observability layer that turns the reproduction's hot paths into the
paper's per-kernel accounting (Table II attributes time and flops to CIC
deposit, FFT, spectral filtering, tree walk and the PP kernel; HACC
itself ships built-in per-section timers, cf. arXiv:1410.2805).

Design
------
A process-global *registry* collects:

* **spans** — named, nested wall-clock sections entered via the
  :func:`span` context manager or the :func:`timed` decorator.  Nesting
  is tracked per thread (a thread-local stack), aggregation is protected
  by a single lock, and the clock is injected so tests are deterministic;
* **counters** — monotonically accumulated quantities (PP interactions,
  flops, FFT points, communication bytes);
* **step records** — per-simulation-step snapshots of section times and
  counter deltas, the unit the paper's scaling tables are built from.

The default registry is a :class:`NullRegistry` whose ``span`` returns a
shared no-op context manager and whose ``count`` does nothing: with
profiling disabled the hot paths take **no locks and perform no
allocations** (a test pins this down).  Call :func:`enable` to install a
live :class:`Registry`, :func:`disable` to go back to the no-op.

Exporters (:mod:`repro.instrument.exporters`) serialize a registry to
JSON-lines, CSV, and Chrome ``trace_event`` JSON; the reporting surface
(:mod:`repro.instrument.report`) renders the measured-vs-model table and
machine-readable ``BENCH_*.json`` records.
"""

from repro.instrument.registry import (
    Counter,
    FakeClock,
    NullRegistry,
    Registry,
    SpanEvent,
    StepRecord,
    count,
    disable,
    enable,
    get_registry,
    set_registry,
    span,
    timed,
    use,
)
from repro.instrument.logconfig import logging_setup
from repro.instrument.telemetry import (
    NullTelemetry,
    RunStream,
    StepTelemetry,
    Telemetry,
    disable_telemetry,
    enable_telemetry,
    get_telemetry,
    imbalance_factor,
    read_stream,
    run_manifest,
    set_telemetry,
    sparkline,
    use_telemetry,
)
from repro.instrument.health import (
    HealthEvent,
    HealthMonitor,
    HealthThresholds,
    SimulationHealth,
    Threshold,
)
from repro.instrument.telemetry import StreamFollower
from repro.instrument.store import (
    RunEntry,
    RunLedger,
    default_ledger_root,
    git_revision,
)
from repro.instrument.analysis import (
    RunAnalysis,
    RunComparison,
    analyze,
    compare,
    render_analysis,
    render_comparison,
)
from repro.instrument.overlap import OverlapMeter, overlap_efficiency
from repro.instrument.perfcount import (
    PhaseWork,
    achieved_gflops,
    render_roofline,
    roofline_table,
    step_perf,
    work_summary,
)

__all__ = [
    "Counter",
    "FakeClock",
    "HealthEvent",
    "HealthMonitor",
    "HealthThresholds",
    "NullRegistry",
    "NullTelemetry",
    "OverlapMeter",
    "PhaseWork",
    "Registry",
    "RunAnalysis",
    "RunComparison",
    "RunEntry",
    "RunLedger",
    "RunStream",
    "SimulationHealth",
    "SpanEvent",
    "StepRecord",
    "StepTelemetry",
    "StreamFollower",
    "Telemetry",
    "Threshold",
    "achieved_gflops",
    "analyze",
    "compare",
    "default_ledger_root",
    "git_revision",
    "render_analysis",
    "render_comparison",
    "count",
    "disable",
    "disable_telemetry",
    "enable",
    "enable_telemetry",
    "get_registry",
    "get_telemetry",
    "imbalance_factor",
    "logging_setup",
    "overlap_efficiency",
    "read_stream",
    "render_roofline",
    "roofline_table",
    "run_manifest",
    "set_registry",
    "set_telemetry",
    "span",
    "sparkline",
    "step_perf",
    "timed",
    "use",
    "use_telemetry",
    "work_summary",
]
