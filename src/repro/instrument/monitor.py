"""Run-monitor rendering: progress, ETA, imbalance, alerts from JSONL.

The view layer of ``python -m repro monitor <run.jsonl>``.  All state
comes from the telemetry stream (:mod:`repro.instrument.telemetry`), so
the renderer is a pure function of the parsed stream — the tests drive
it with synthetic streams and never touch a terminal or a clock.
"""

from __future__ import annotations

from repro.instrument.telemetry import read_stream, sparkline

__all__ = [
    "render_monitor",
    "render_dashboard",
    "monitor_exit_status",
    "dashboard_exit_status",
    "pick_imbalance_series",
]

#: gauge preference order for the headline imbalance sparkline — particle
#: counts are the paper's primary balance measure, interactions the
#: closest proxy for actual work
_IMBALANCE_PRIORITY = ("particles", "interactions", "comm_bytes")


def pick_imbalance_series(steps: list[dict]) -> tuple[str, list[float]]:
    """Choose the headline imbalance gauge and its per-step series.

    Prefers the paper's particles-per-rank measure, falling back to any
    recorded gauge; returns ``("", [])`` for streams without imbalance
    data (single-rank runs).
    """
    seen: list[str] = []
    for step in steps:
        for name in step.get("imbalance", {}):
            if name not in seen:
                seen.append(name)
    for name in _IMBALANCE_PRIORITY:
        if name in seen:
            chosen = name
            break
    else:
        if not seen:
            return "", []
        chosen = seen[0]
    series = [
        float(step["imbalance"][chosen])
        for step in steps
        if chosen in step.get("imbalance", {})
    ]
    return chosen, series


def _progress_bar(done: int, total: int, width: int = 24) -> str:
    if total <= 0:
        return "[" + "?" * width + "]"
    filled = min(width, int(round(width * done / total)))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _fmt_duration(seconds: float) -> str:
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, sec = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    return f"{minutes}m{sec:02d}s"


def render_monitor(data: dict, width: int = 32) -> str:
    """Render one monitor frame from a parsed stream (see ``read_stream``).

    Sections: run identity (manifest), progress bar with ETA from the
    mean step wall time, wall-time and imbalance sparklines, latest
    physics residuals, active alerts, and the final verdict once the
    ``end`` record exists.
    """
    manifest = data.get("manifest") or {}
    steps = data.get("steps") or []
    end = data.get("end")
    lines: list[str] = []

    # --- identity -----------------------------------------------------
    ident = []
    if manifest.get("config_hash"):
        ident.append(f"run {manifest['config_hash']}")
    if manifest.get("backend"):
        ident.append(manifest["backend"])
    if manifest.get("n_particles"):
        ident.append(f"{manifest['n_particles']:,} particles")
    if manifest.get("seed") is not None:
        ident.append(f"seed {manifest['seed']}")
    lines.append(" | ".join(ident) if ident else "run (no manifest)")

    # --- progress -----------------------------------------------------
    total = int(manifest.get("n_steps") or 0)
    done = len(steps)
    walls = [float(s.get("wall_time", 0.0)) for s in steps]
    elapsed = sum(walls)
    if steps:
        last = steps[-1]
        state = f"a = {last.get('a', 0.0):.4f}  z = {last.get('z', 0.0):.2f}"
    else:
        state = "waiting for first step"
    if total:
        bar = _progress_bar(done, total)
        pct = 100.0 * done / total
        line = f"{bar} step {done}/{total} ({pct:.0f}%)  {state}"
        if end is None and done and done < total:
            eta = (elapsed / done) * (total - done)
            line += f"  ETA {_fmt_duration(eta)}"
    else:
        line = f"step {done}  {state}"
    lines.append(line)
    lines.append(f"elapsed {_fmt_duration(elapsed)}")

    # --- sparklines ---------------------------------------------------
    if walls:
        lines.append(
            f"step wall  {sparkline(walls, width)}  "
            f"last {_fmt_duration(walls[-1])}"
        )
    name, series = pick_imbalance_series(steps)
    if series:
        lines.append(
            f"imbalance  {sparkline(series, width)}  "
            f"{name} max/mean {series[-1]:.2f}"
        )

    # --- residuals ----------------------------------------------------
    if steps and steps[-1].get("residuals"):
        parts = [
            f"{k} {float(v):.2e}"
            for k, v in sorted(steps[-1]["residuals"].items())
        ]
        lines.append("health     " + "  ".join(parts))

    # --- alerts -------------------------------------------------------
    alerts = [al for s in steps for al in s.get("alerts", [])]
    n_warn = sum(1 for al in alerts if al.get("severity") == "WARN")
    n_crit = sum(1 for al in alerts if al.get("severity") == "CRIT")
    if alerts:
        lines.append(f"alerts     {n_warn} WARN, {n_crit} CRIT")
        for al in alerts[-3:]:  # most recent crossings
            lines.append(
                f"  [{al.get('severity', '?'):4s}] "
                f"{al.get('message', al.get('check', '?'))}"
            )
    else:
        lines.append("alerts     none")

    # --- verdict ------------------------------------------------------
    if end is not None:
        verdict = end.get("verdict", "OK")
        lines.append(
            f"finished: {end.get('steps', done)} steps, "
            f"verdict {verdict}"
        )
    else:
        lines.append("running...")
    return "\n".join(lines)


def monitor_exit_status(data: dict) -> int:
    """Shell status for a monitored stream: 2 on CRIT/CRASHED, else 0."""
    end = data.get("end")
    if end is not None and end.get("verdict") in ("CRIT", "CRASHED"):
        return 2
    for step in data.get("steps") or []:
        for al in step.get("alerts", []):
            if al.get("severity") == "CRIT":
                return 2
    return 0


# ----------------------------------------------------------------------
# multi-run dashboard
# ----------------------------------------------------------------------
def _run_row(name: str, data: dict) -> tuple[str, ...]:
    manifest = data.get("manifest") or {}
    steps = data.get("steps") or []
    end = data.get("end")
    total = int(manifest.get("n_steps") or 0)
    done = len(steps)
    if total:
        progress = f"{done}/{total} ({100 * done // total}%)"
    else:
        progress = str(done)
    z = f"{steps[-1].get('z', 0.0):.2f}" if steps else "-"
    elapsed = _fmt_duration(
        sum(float(s.get("wall_time", 0.0)) for s in steps)
    )
    _, series = pick_imbalance_series(steps)
    imbal = f"{series[-1]:.2f}" if series else "-"
    alerts = [al for s in steps for al in s.get("alerts", [])]
    n_warn = sum(1 for al in alerts if al.get("severity") == "WARN")
    n_crit = sum(1 for al in alerts if al.get("severity") == "CRIT")
    if end is not None:
        status = end.get("verdict", "OK")
    elif not manifest and not steps:
        # stream file absent or empty: a queued campaign run that has
        # not been dispatched yet — distinct from a live, stepping run
        status = "waiting"
    else:
        status = "running"
    ident = manifest.get("config_hash") or ""
    workers = manifest.get("workers")
    executor = manifest.get("executor")
    if executor and workers:
        ident = f"{ident} {executor}@{workers}w".strip()
    # kernel backend + precision come from the manifest (recorded since
    # the kernel-backend seam landed); achieved ns/pair from the latest
    # step's perf block, so a live dashboard shows kernel throughput
    kernel_backend = manifest.get("kernel_backend")
    precision = manifest.get("precision")
    if kernel_backend or precision:
        kernel = f"{kernel_backend or '?'}/{precision or '?'}"
    else:
        kernel = "-"
    pair_ns = "-"
    for step in reversed(steps):
        perf = step.get("perf") or {}
        if perf.get("pair_ns") is not None:
            pair_ns = f"{float(perf['pair_ns']):.0f}"
            break
    # overlap efficiency (hidden-comm / total-comm seconds) from the
    # latest step that ran an overlapped section; "-" for sync runs
    ovl = "-"
    for step in reversed(steps):
        perf = step.get("perf") or {}
        if perf.get("overlap") is not None:
            ovl = f"{100.0 * float(perf['overlap']):.0f}%"
            break
    return (
        name,
        ident or "-",
        kernel,
        progress,
        z,
        elapsed,
        pair_ns,
        ovl,
        imbal,
        f"{n_warn}W/{n_crit}C",
        status,
    )


def render_dashboard(runs: list[tuple[str, dict]]) -> str:
    """Render the fleet view: one row per run, aligned columns.

    ``runs`` is ``[(display_name, parsed_stream), ...]`` — the
    multi-stream form of ``python -m repro monitor`` and the campaign
    dashboard ROADMAP item 1 aggregates over.
    """
    header = ("run", "config", "kernel", "step", "z", "elapsed",
              "ns/pair", "ovl", "imbal", "alerts", "status")
    rows = [_run_row(name, data) for name, data in runs]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows
        else len(header[i])
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    n_done = sum(1 for _, d in runs if d.get("end") is not None)
    lines.append(f"{n_done}/{len(runs)} run(s) finished")
    return "\n".join(lines)


def dashboard_exit_status(runs: list[tuple[str, dict]]) -> int:
    """Worst per-run exit status across the fleet."""
    return max(
        (monitor_exit_status(data) for _, data in runs), default=0
    )


def monitor_file(path, width: int = 32) -> tuple[str, int]:
    """Render a stream file once; returns ``(text, exit_status)``."""
    data = read_stream(path)
    return render_monitor(data, width=width), monitor_exit_status(data)
