"""Critical-path analysis: where a run's wall clock actually went.

The paper's performance story (Sec. IV, Figs. 7-8) is attribution: which
phase of the time step ate the wall clock, and which ranks dragged the
bulk-synchronous barrier.  This module computes that attribution from the
observability artifacts a run already leaves behind:

* the **span tree** (registry events, or a Chrome trace / JSONL export
  re-parsed by :mod:`repro.instrument.exporters`) yields per-path *self
  time* — a span's duration minus its direct children — the honest
  answer to "which section was the code *in*";
* the **per-rank / per-worker trace lanes** (``pid = rank`` lanes plus
  executor worker lanes at ``pid >= WORKER_LANE_BASE``) yield parallel
  efficiency and load-imbalance attribution per phase: total busy time
  across lanes over ``n_lanes x phase span``, the ``max/mean`` imbalance
  factor, and the *critical lane* — the rank every other rank waited on;
* the **telemetry stream** yields per-rank gauge attribution (which rank
  carried the most particles/interactions) and per-step wall statistics.

Two analyses compare into a :class:`RunComparison` with per-phase deltas
and a regression verdict — the unit ``python -m repro report --compare``
prints and the CI report lane gates.

Everything here is pure computation over plain data (no clocks, no
filesystem); the ledger (:mod:`repro.instrument.store`) is the thing
that knows where artifacts live.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.instrument.registry import SpanEvent

__all__ = [
    "PhaseStat",
    "LaneStat",
    "RankShare",
    "RunAnalysis",
    "PhaseDelta",
    "RunComparison",
    "path_self_times",
    "lane_stats",
    "rank_shares",
    "analyze_spans",
    "analyze_stream",
    "analyze",
    "compare",
    "render_analysis",
    "render_comparison",
]

#: lanes at or above this pid are executor workers, below are simulated
#: ranks (mirrors :data:`repro.parallel.executor.WORKER_LANE_BASE`
#: without importing the executor into a pure-analysis module)
WORKER_LANE_BASE = 1000

#: phase rows thinner than this fraction of the wall clock are folded
#: into the report's "other" row
MIN_PHASE_FRACTION = 0.005


@dataclass(frozen=True)
class PhaseStat:
    """Self/total time of one span path (one node of the span tree)."""

    path: str
    name: str
    total_s: float
    self_s: float
    calls: int
    fraction: float  # of the run's wall time, by self time

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "name": self.name,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "calls": self.calls,
            "fraction": self.fraction,
        }


@dataclass(frozen=True)
class LaneStat:
    """Parallel-efficiency attribution of one phase across trace lanes.

    ``efficiency`` is total busy time over ``n_lanes x span``, where the
    span is the union of the phase's active windows — 1.0 means every
    lane worked the whole phase; ``imbalance`` is the paper-style
    ``max/mean`` of per-lane busy time; ``critical_lane`` is the lane
    whose work bounded the phase (the critical path through the barrier),
    holding ``critical_share`` of the phase span.
    """

    name: str
    kind: str  # "worker" or "rank"
    n_lanes: int
    busy_s: float
    span_s: float
    efficiency: float
    imbalance: float
    critical_lane: int
    critical_busy_s: float

    @property
    def critical_share(self) -> float:
        return self.critical_busy_s / self.span_s if self.span_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "n_lanes": self.n_lanes,
            "busy_s": self.busy_s,
            "span_s": self.span_s,
            "efficiency": self.efficiency,
            "imbalance": self.imbalance,
            "critical_lane": self.critical_lane,
            "critical_busy_s": self.critical_busy_s,
            "critical_share": self.critical_share,
        }


@dataclass(frozen=True)
class RankShare:
    """Telemetry-gauge attribution: the heaviest rank of one gauge."""

    gauge: str
    n_ranks: int
    imbalance: float  # max over steps of the per-step max/mean factor
    top_rank: int
    top_share: float  # top rank's share of the gauge total (mean step)

    def to_dict(self) -> dict:
        return {
            "gauge": self.gauge,
            "n_ranks": self.n_ranks,
            "imbalance": self.imbalance,
            "top_rank": self.top_rank,
            "top_share": self.top_share,
        }


@dataclass
class RunAnalysis:
    """Everything the report knows about one run."""

    meta: dict = field(default_factory=dict)
    wall_s: float = 0.0
    n_steps: int = 0
    phases: list[PhaseStat] = field(default_factory=list)
    by_name: dict[str, dict] = field(default_factory=dict)
    lanes: list[LaneStat] = field(default_factory=list)
    ranks: list[RankShare] = field(default_factory=list)
    verdict: str | None = None

    def to_dict(self) -> dict:
        return {
            "meta": dict(self.meta),
            "wall_s": self.wall_s,
            "n_steps": self.n_steps,
            "phases": [p.to_dict() for p in self.phases],
            "by_name": {k: dict(v) for k, v in self.by_name.items()},
            "lanes": [ln.to_dict() for ln in self.lanes],
            "ranks": [r.to_dict() for r in self.ranks],
            "verdict": self.verdict,
        }


# ----------------------------------------------------------------------
# span-tree self time
# ----------------------------------------------------------------------
def path_self_times(spans: list[SpanEvent]) -> dict[str, dict]:
    """Per-path totals with self time: ``{path: {total_s, self_s, calls}}``.

    Self time is a path's total minus the totals of its *direct* child
    paths (one more ``/`` segment).  The span stack guarantees children
    lie inside their parent in time, so the subtraction is exact without
    interval arithmetic — re-parsed traces preserve paths, so the same
    computation works on exported artifacts.
    """
    totals: dict[str, list] = {}  # path -> [calls, seconds]
    for ev in spans:
        entry = totals.get(ev.path)
        if entry is None:
            totals[ev.path] = [1, ev.duration]
        else:
            entry[0] += 1
            entry[1] += ev.duration
    out = {
        path: {"total_s": sec, "self_s": sec, "calls": calls}
        for path, (calls, sec) in totals.items()
    }
    for path, entry in totals.items():
        if "/" not in path:
            continue
        parent = path.rsplit("/", 1)[0]
        if parent in out:
            out[parent]["self_s"] -= entry[1]
    for entry in out.values():
        # float cancellation can leave a tiny negative residue
        if entry["self_s"] < 0 and entry["self_s"] > -1e-9:
            entry["self_s"] = 0.0
    return out


def name_self_times(spans: list[SpanEvent]) -> dict[str, dict]:
    """Self/total time aggregated by leaf name across call sites."""
    by_path = path_self_times(spans)
    out: dict[str, dict] = {}
    for path, entry in by_path.items():
        name = path.rsplit("/", 1)[-1]
        agg = out.setdefault(
            name, {"total_s": 0.0, "self_s": 0.0, "calls": 0}
        )
        agg["total_s"] += entry["total_s"]
        agg["self_s"] += entry["self_s"]
        agg["calls"] += entry["calls"]
    return out


# ----------------------------------------------------------------------
# lane attribution
# ----------------------------------------------------------------------
def lane_stats(spans: list[SpanEvent]) -> list[LaneStat]:
    """Parallel-efficiency / imbalance attribution per laned phase.

    Considers events on non-default lanes (``rank != 0``), grouped by
    leaf name: executor worker lanes (``rank >= WORKER_LANE_BASE``) and
    simulated-rank lanes (e.g. the per-rank pencil-FFT spans).  A phase
    with a single lane still reports (efficiency against one lane), but
    phases that never leave lane 0 are not lane-attributable.
    """
    groups: dict[tuple[str, str], dict[int, float]] = {}
    windows: dict[tuple[str, str], list] = {}  # key -> [(start, end)]
    for ev in spans:
        if ev.rank == 0:
            continue
        kind = "worker" if ev.rank >= WORKER_LANE_BASE else "rank"
        key = (ev.name, kind)
        busy = groups.setdefault(key, {})
        busy[ev.rank] = busy.get(ev.rank, 0.0) + ev.duration
        windows.setdefault(key, []).append((ev.start, ev.end))
    out: list[LaneStat] = []
    for (name, kind), busy in sorted(groups.items()):
        # span = union of the phase's active windows, so the idle time
        # *between* dispatches (other phases, other steps) doesn't count
        # against its parallel efficiency -- only idle lanes *during* a
        # dispatch do, which is the barrier wait the paper attributes.
        span_s = 0.0
        cur_start = cur_end = None
        for start, end in sorted(windows[(name, kind)]):
            if cur_end is None or start > cur_end:
                if cur_end is not None:
                    span_s += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        if cur_end is not None:
            span_s += cur_end - cur_start
        span_s = max(span_s, 0.0)
        total = sum(busy.values())
        n = len(busy)
        mean = total / n if n else 0.0
        crit_lane, crit_busy = max(busy.items(), key=lambda kv: kv[1])
        out.append(
            LaneStat(
                name=name,
                kind=kind,
                n_lanes=n,
                busy_s=total,
                span_s=span_s,
                efficiency=(
                    total / (n * span_s) if n and span_s > 0 else 0.0
                ),
                imbalance=crit_busy / mean if mean > 0 else 0.0,
                critical_lane=crit_lane,
                critical_busy_s=crit_busy,
            )
        )
    out.sort(key=lambda ln: ln.busy_s, reverse=True)
    return out


# ----------------------------------------------------------------------
# telemetry attribution
# ----------------------------------------------------------------------
def rank_shares(steps: list[dict]) -> list[RankShare]:
    """Which rank carried each gauge, summarized over a run's steps."""
    sums: dict[str, dict[int, float]] = {}
    worst: dict[str, float] = {}
    for step in steps:
        for gauge, ranks in (step.get("gauges") or {}).items():
            table = sums.setdefault(gauge, {})
            for rank, value in ranks.items():
                table[int(rank)] = table.get(int(rank), 0.0) + float(value)
        for gauge, factor in (step.get("imbalance") or {}).items():
            worst[gauge] = max(worst.get(gauge, 0.0), float(factor))
    out: list[RankShare] = []
    for gauge, table in sorted(sums.items()):
        total = sum(table.values())
        top_rank, top_sum = max(table.items(), key=lambda kv: kv[1])
        out.append(
            RankShare(
                gauge=gauge,
                n_ranks=len(table),
                imbalance=worst.get(gauge, 0.0),
                top_rank=top_rank,
                top_share=top_sum / total if total > 0 else 0.0,
            )
        )
    return out


# ----------------------------------------------------------------------
# whole-run analysis
# ----------------------------------------------------------------------
def _wall_from_spans(by_path: dict[str, dict]) -> float:
    step = by_path.get("step")
    if step is not None:
        return step["total_s"]
    # no step spans (partial trace): fall back to the root paths
    return sum(
        e["total_s"] for p, e in by_path.items() if "/" not in p
    )


def analyze_spans(
    spans: list[SpanEvent],
    steps: list[dict] | None = None,
    meta: dict | None = None,
) -> RunAnalysis:
    """Analyze a run from its span events (plus optional telemetry steps)."""
    by_path = path_self_times(spans)
    wall = _wall_from_spans(by_path)
    if wall <= 0 and steps:
        wall = sum(float(s.get("wall_time", 0.0)) for s in steps)
    phases = [
        PhaseStat(
            path=path,
            name=path.rsplit("/", 1)[-1],
            total_s=entry["total_s"],
            self_s=entry["self_s"],
            calls=entry["calls"],
            fraction=entry["self_s"] / wall if wall > 0 else 0.0,
        )
        for path, entry in by_path.items()
    ]
    phases.sort(key=lambda p: p.self_s, reverse=True)
    analysis = RunAnalysis(
        meta=dict(meta or {}),
        wall_s=wall,
        n_steps=len(steps) if steps else sum(
            1 for ev in spans if ev.path == "step"
        ),
        phases=phases,
        by_name=name_self_times(spans),
        lanes=lane_stats(spans),
        ranks=rank_shares(steps or []),
    )
    return analysis


def analyze_stream(data: dict, meta: dict | None = None) -> RunAnalysis:
    """Analyze a run from a parsed telemetry stream alone (no trace).

    ``data`` is :func:`repro.instrument.telemetry.read_stream` output.
    Wall time and step count come from the telemetry records; phase
    self-times are unavailable without a trace, but rank attribution and
    the health verdict are.
    """
    steps = data.get("steps") or []
    manifest = data.get("manifest") or {}
    end = data.get("end") or {}
    merged = dict(meta or {})
    for key in ("config_hash", "seed", "executor", "workers", "backend",
                "git_rev"):
        if key in manifest and key not in merged:
            merged[key] = manifest[key]
    return RunAnalysis(
        meta=merged,
        wall_s=sum(float(s.get("wall_time", 0.0)) for s in steps),
        n_steps=len(steps),
        ranks=rank_shares(steps),
        verdict=end.get("verdict"),
    )


def analyze(
    spans: list[SpanEvent] | None = None,
    stream: dict | None = None,
    meta: dict | None = None,
) -> RunAnalysis:
    """Analyze whatever artifacts a run left: trace, stream, or both."""
    if spans:
        analysis = analyze_spans(
            spans, steps=(stream or {}).get("steps"), meta=meta
        )
        end = (stream or {}).get("end") or {}
        analysis.verdict = end.get("verdict", analysis.verdict)
        if analysis.wall_s <= 0 and stream:
            analysis.wall_s = sum(
                float(s.get("wall_time", 0.0))
                for s in stream.get("steps") or []
            )
        return analysis
    if stream is not None:
        return analyze_stream(stream, meta=meta)
    return RunAnalysis(meta=dict(meta or {}))


# ----------------------------------------------------------------------
# cross-run comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseDelta:
    """One phase's self-time change between two runs."""

    name: str
    a_self_s: float
    b_self_s: float
    ratio: float  # b / a
    a_fraction: float
    verdict: str  # OK / REGRESSION / IMPROVED / NEW / GONE

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "a_self_s": self.a_self_s,
            "b_self_s": self.b_self_s,
            "ratio": self.ratio,
            "a_fraction": self.a_fraction,
            "verdict": self.verdict,
        }


@dataclass
class RunComparison:
    """Per-phase deltas between a baseline run A and a candidate run B."""

    a_meta: dict
    b_meta: dict
    a_wall_s: float
    b_wall_s: float
    wall_ratio: float
    threshold: float
    phases: list[PhaseDelta]
    verdict: str

    def to_dict(self) -> dict:
        return {
            "run_a": dict(self.a_meta),
            "run_b": dict(self.b_meta),
            "a_wall_s": self.a_wall_s,
            "b_wall_s": self.b_wall_s,
            "wall_ratio": self.wall_ratio,
            "threshold": self.threshold,
            "phases": [p.to_dict() for p in self.phases],
            "verdict": self.verdict,
        }


#: phases holding at least this share of the baseline wall participate
#: in the overall regression verdict (thin phases are noise)
MAJOR_PHASE_FRACTION = 0.10

#: phases shorter than this (seconds) never drive a verdict on their own
MIN_GATED_SECONDS = 1e-3


def compare(
    a: RunAnalysis, b: RunAnalysis, threshold: float = 0.25
) -> RunComparison:
    """Compare candidate ``b`` against baseline ``a``.

    Phase verdicts use the by-name self times; the overall verdict is
    REGRESSION when the wall clock or any *major* phase (>= 10% of the
    baseline wall and above a noise floor) slowed beyond ``threshold``,
    IMPROVED when the wall clock sped up beyond it, else OK.
    """
    names = sorted(set(a.by_name) | set(b.by_name))
    deltas: list[PhaseDelta] = []
    regressed_major = False
    for name in names:
        a_self = a.by_name.get(name, {}).get("self_s", 0.0)
        b_self = b.by_name.get(name, {}).get("self_s", 0.0)
        a_frac = a_self / a.wall_s if a.wall_s > 0 else 0.0
        if name not in a.by_name:
            verdict, ratio = "NEW", float("inf")
        elif name not in b.by_name:
            verdict, ratio = "GONE", 0.0
        elif a_self <= 0:
            verdict, ratio = "OK", 1.0
        else:
            ratio = b_self / a_self
            if ratio > 1.0 + threshold:
                verdict = "REGRESSION"
            elif ratio < 1.0 - threshold:
                verdict = "IMPROVED"
            else:
                verdict = "OK"
        if (
            verdict == "REGRESSION"
            and a_frac >= MAJOR_PHASE_FRACTION
            and a_self >= MIN_GATED_SECONDS
        ):
            regressed_major = True
        deltas.append(
            PhaseDelta(
                name=name,
                a_self_s=a_self,
                b_self_s=b_self,
                ratio=ratio,
                a_fraction=a_frac,
                verdict=verdict,
            )
        )
    deltas.sort(key=lambda d: max(d.a_self_s, d.b_self_s), reverse=True)
    wall_ratio = b.wall_s / a.wall_s if a.wall_s > 0 else 0.0
    if a.wall_s > 0 and wall_ratio > 1.0 + threshold:
        overall = "REGRESSION"
    elif regressed_major:
        overall = "REGRESSION"
    elif a.wall_s > 0 and 0 < wall_ratio < 1.0 - threshold:
        overall = "IMPROVED"
    else:
        overall = "OK"
    return RunComparison(
        a_meta=dict(a.meta),
        b_meta=dict(b.meta),
        a_wall_s=a.wall_s,
        b_wall_s=b.wall_s,
        wall_ratio=wall_ratio,
        threshold=threshold,
        phases=deltas,
        verdict=overall,
    )


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _ident(meta: dict) -> str:
    bits = []
    for key in ("run_id", "config_hash"):
        if meta.get(key):
            bits.append(str(meta[key]))
            break
    if meta.get("backend"):
        bits.append(str(meta["backend"]))
    if meta.get("executor") and meta.get("workers"):
        bits.append(f"{meta['executor']}@{meta['workers']}w")
    if meta.get("seed") is not None:
        bits.append(f"seed {meta['seed']}")
    if meta.get("git_rev"):
        bits.append(f"git {meta['git_rev']}")
    return " | ".join(bits) if bits else "(no metadata)"


def render_analysis(analysis: RunAnalysis, top: int = 12) -> str:
    """Human-readable single-run report: self times, lanes, ranks."""
    lines = [f"run: {_ident(analysis.meta)}"]
    lines.append(
        f"wall {analysis.wall_s:.3f} s over {analysis.n_steps} step(s)"
        + (f", verdict {analysis.verdict}" if analysis.verdict else "")
    )
    shown = [
        p for p in analysis.phases
        if p.fraction >= MIN_PHASE_FRACTION
    ][:top]
    if shown:
        lines.append("")
        lines.append(
            f"{'phase (by path)':40s} {'self s':>9s} {'total s':>9s} "
            f"{'% wall':>7s} {'calls':>7s}"
        )
        for p in shown:
            lines.append(
                f"{p.path[:40]:40s} {p.self_s:9.4f} {p.total_s:9.4f} "
                f"{100 * p.fraction:6.1f}% {p.calls:7d}"
            )
        rest = analysis.wall_s - sum(p.self_s for p in shown)
        if analysis.wall_s > 0 and rest > 0:
            lines.append(
                f"{'(other)':40s} {rest:9.4f} {'':>9s} "
                f"{100 * rest / analysis.wall_s:6.1f}%"
            )
    if analysis.lanes:
        lines.append("")
        lines.append(
            f"{'parallel phase':24s} {'lanes':>5s} {'busy s':>8s} "
            f"{'effic':>6s} {'imbal':>6s}  critical"
        )
        for ln in analysis.lanes:
            lines.append(
                f"{ln.name[:24]:24s} {ln.n_lanes:5d} {ln.busy_s:8.4f} "
                f"{100 * ln.efficiency:5.1f}% {ln.imbalance:6.2f}  "
                f"{ln.kind} {ln.critical_lane} "
                f"({100 * ln.critical_share:.0f}% of span)"
            )
    if analysis.ranks:
        lines.append("")
        lines.append(
            f"{'gauge':16s} {'ranks':>5s} {'imbal':>6s}  heaviest"
        )
        for r in analysis.ranks:
            lines.append(
                f"{r.gauge:16s} {r.n_ranks:5d} {r.imbalance:6.2f}  "
                f"rank {r.top_rank} ({100 * r.top_share:.0f}% of total)"
            )
    return "\n".join(lines)


def render_comparison(cmp: RunComparison, top: int = 12) -> str:
    """Human-readable A-vs-B report with the regression verdict."""
    lines = [
        f"baseline A: {_ident(cmp.a_meta)}",
        f"candidate B: {_ident(cmp.b_meta)}",
        (
            f"wall {cmp.a_wall_s:.3f} s -> {cmp.b_wall_s:.3f} s "
            f"({_fmt_ratio(cmp.wall_ratio)}, threshold "
            f"{100 * cmp.threshold:.0f}%)"
        ),
        "",
        f"{'phase':24s} {'A self s':>9s} {'B self s':>9s} "
        f"{'B/A':>7s} {'% wall':>7s}  verdict",
    ]
    shown = 0
    for d in cmp.phases:
        if shown >= top and d.verdict == "OK":
            continue
        if max(d.a_self_s, d.b_self_s) <= 0:
            continue
        lines.append(
            f"{d.name[:24]:24s} {d.a_self_s:9.4f} {d.b_self_s:9.4f} "
            f"{_fmt_ratio(d.ratio):>7s} {100 * d.a_fraction:6.1f}%  "
            f"{d.verdict}"
        )
        shown += 1
    lines.append("")
    lines.append(f"verdict: {cmp.verdict}")
    return "\n".join(lines)


def _fmt_ratio(ratio: float) -> str:
    if ratio == float("inf"):
        return "new"
    return f"{ratio:.2f}x"
