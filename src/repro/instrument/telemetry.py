"""Per-rank telemetry: gauges, imbalance factors, and live run streams.

The instrumentation registry (PR 1) aggregates process-global spans and
counters; this module adds the *rank* dimension the paper's scaling
story actually lives in (Sec. 4, Figs. 7-8: particle overloading keeps
the per-rank work balanced, and the 2-D pencil FFT keeps per-rank
message volume bounded).  Three pieces:

* **per-rank gauges** — named per-step, per-rank samples (particles per
  rank, ghost fraction, PP interactions per rank, tree depth, bytes on
  the wire) collected by the simulation driver and the solvers, reduced
  to the paper-style ``max/mean`` *imbalance factor* each step;
* **step events** — one :class:`StepTelemetry` per simulation step
  (scale factor, wall time, gauges, imbalance factors, physics
  residuals, health alerts), the unit the run monitor renders;
* **run streams** — an append-only JSONL file (:class:`RunStream`):
  a manifest line (config hash, package versions, RNG seed), one
  telemetry line per step flushed immediately so ``python -m repro
  monitor`` can tail a *live* run, and an end line with the final health
  verdict.

Like the registry, the process-global default is a no-op
(:class:`NullTelemetry`): the driver's hook is a single attribute test,
so disabled telemetry adds no allocations to the stepping hot path.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping

__all__ = [
    "StepTelemetry",
    "NullTelemetry",
    "Telemetry",
    "RunStream",
    "StreamFollower",
    "get_telemetry",
    "set_telemetry",
    "enable_telemetry",
    "disable_telemetry",
    "use_telemetry",
    "read_stream",
    "iter_stream",
    "imbalance_factor",
    "sparkline",
    "run_manifest",
]


def imbalance_factor(values: Iterable[float]) -> float:
    """The paper-style load-imbalance measure: ``max / mean``.

    1.0 means perfect balance; the factor is what the overloading
    discussion (Sec. 4) keeps near unity.  Empty input returns 0.0, an
    all-zero sample returns 1.0 (no work anywhere is balanced work).
    """
    vals = [float(v) for v in values]
    if not vals:
        return 0.0
    mean = sum(vals) / len(vals)
    if mean == 0.0:
        return 1.0
    return max(vals) / mean


@dataclass(frozen=True)
class StepTelemetry:
    """Everything telemetry knows about one completed simulation step."""

    index: int
    a: float
    wall_time: float
    gauges: dict
    imbalance: dict
    residuals: dict
    alerts: tuple
    #: achieved-throughput summary of the step (``gflops``, ``pair_ns``,
    #: ``ai`` — see :func:`repro.instrument.perfcount.step_perf`); empty
    #: when the registry was disabled or the step charged no work
    perf: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.perf is None:
            object.__setattr__(self, "perf", {})

    @property
    def z(self) -> float:
        return 1.0 / self.a - 1.0 if self.a > 0 else float("inf")

    def to_dict(self) -> dict:
        out = {
            "step": self.index,
            "a": self.a,
            "z": self.z,
            "wall_time": self.wall_time,
            "gauges": {
                name: {str(r): v for r, v in ranks.items()}
                for name, ranks in self.gauges.items()
            },
            "imbalance": dict(self.imbalance),
            "residuals": dict(self.residuals),
            "alerts": list(self.alerts),
        }
        if self.perf:
            out["perf"] = dict(self.perf)
        return out


class RunStream:
    """Append-only JSONL stream of one run, flushed line by line.

    The first line is the manifest (when given), then one
    ``kind: "telemetry"`` line per step, then a ``kind: "end"`` line —
    each flushed as written, so a concurrent ``python -m repro monitor
    --follow`` sees steps as they complete.
    """

    def __init__(self, path, manifest: dict | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self.closed = False
        if manifest is not None:
            self.append({"kind": "manifest", **manifest})

    def append(self, record: Mapping) -> None:
        """Write one JSON line and flush it."""
        rec = dict(record)
        rec.setdefault("kind", "telemetry")
        with self._lock:
            if self.closed:
                raise ValueError(f"stream {self.path} is closed")
            self._fh.write(json.dumps(rec) + "\n")
            self._fh.flush()

    def close(self, end: Mapping | None = None) -> None:
        """Optionally write the ``kind: "end"`` record, then close."""
        if self.closed:
            return
        if end is not None:
            self.append({**dict(end), "kind": "end"})
        with self._lock:
            self.closed = True
            self._fh.close()

    def __enter__(self) -> "RunStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def iter_stream(src) -> Iterator[dict]:
    """Yield the parsed records of a telemetry JSONL file or open file.

    Unparseable trailing lines (a live writer mid-line) are skipped
    silently — the next poll will see them completed.
    """
    if isinstance(src, (str, Path)):
        with open(src, "r", encoding="utf-8") as fh:
            yield from iter_stream(fh)
        return
    for line in src:
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            continue


def read_stream(src) -> dict:
    """Parse a whole stream: ``{"manifest": ..., "steps": [...], "end": ...}``.

    ``manifest`` and ``end`` are ``None`` when the stream does not (yet)
    contain them; ``steps`` holds the telemetry records in order.
    """
    manifest = None
    end = None
    steps: list[dict] = []
    for rec in iter_stream(src):
        kind = rec.get("kind")
        if kind == "manifest":
            manifest = rec
        elif kind == "end":
            end = rec
        elif kind == "telemetry":
            steps.append(rec)
    return {"manifest": manifest, "steps": steps, "end": end}


class StreamFollower:
    """Incremental tail-buffering reader of a *live* telemetry stream.

    ``python -m repro monitor --follow`` used to re-read and re-parse
    the whole file every poll, and a line caught mid-flush was dropped
    for that frame.  The follower instead remembers its byte offset,
    reads only what the writer appended, and **buffers a partial trailing
    line** until its newline arrives — a record is parsed exactly once,
    and never while half-written.  A *complete* line that still fails to
    parse (actual corruption, not an in-flight flush) is counted in
    ``parse_errors`` and skipped rather than raised, so a monitor
    survives a torn write.

    The follower also folds records into a running ``read_stream``-shaped
    view (:attr:`data`), so render code is identical for one-shot and
    follow modes.  Truncation (the file shrank — e.g. a rerun recreated
    it) resets the follower to the new beginning.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._offset = 0
        self._tail = b""
        self.parse_errors = 0
        self.data: dict = {"manifest": None, "steps": [], "end": None}

    def poll(self) -> list[dict]:
        """Consume newly completed records; returns the new ones in order."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size < self._offset:
            # the file was truncated/recreated under us: start over
            self._offset = 0
            self._tail = b""
            self.parse_errors = 0
            self.data = {"manifest": None, "steps": [], "end": None}
        if size == self._offset:
            return []
        with open(self.path, "rb") as fh:
            fh.seek(self._offset)
            chunk = fh.read()
        self._offset += len(chunk)
        buf = self._tail + chunk
        lines = buf.split(b"\n")
        self._tail = lines.pop()  # b"" after a clean flush
        records: list[dict] = []
        for raw in lines:
            raw = raw.strip()
            if not raw:
                continue
            try:
                rec = json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                self.parse_errors += 1
                continue
            records.append(rec)
            kind = rec.get("kind")
            if kind == "manifest":
                self.data["manifest"] = rec
            elif kind == "end":
                self.data["end"] = rec
            elif kind == "telemetry":
                self.data["steps"].append(rec)
        return records

    @property
    def finished(self) -> bool:
        """True once the stream's ``end`` record has been consumed."""
        return self.data["end"] is not None


#: unicode block ramp used by :func:`sparkline`
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Iterable[float], width: int = 32) -> str:
    """Render a sequence as a unicode sparkline, downsampled to ``width``.

    A constant sequence renders at the lowest level; non-finite values
    render as spaces.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        # average adjacent windows down to `width` samples
        out = []
        for i in range(width):
            lo = i * len(vals) // width
            hi = max((i + 1) * len(vals) // width, lo + 1)
            out.append(sum(vals[lo:hi]) / (hi - lo))
        vals = out
    finite = [v for v in vals if v == v and abs(v) != float("inf")]
    if not finite:
        return " " * len(vals)
    vmin, vmax = min(finite), max(finite)
    span = vmax - vmin
    chars = []
    for v in vals:
        if v != v or abs(v) == float("inf"):
            chars.append(" ")
        elif span == 0:
            chars.append(_SPARK_CHARS[0])
        else:
            idx = int((v - vmin) / span * (len(_SPARK_CHARS) - 1))
            chars.append(_SPARK_CHARS[idx])
    return "".join(chars)


def run_manifest(config=None, extra: Mapping | None = None) -> dict:
    """Provenance header for a run stream.

    Records the package versions, the full configuration (plus its
    stable hash — see :meth:`repro.config.SimulationConfig.config_hash`)
    and the RNG seed, so a telemetry file identifies the run it came
    from without any side channel.
    """
    import platform

    import numpy

    import repro

    manifest: dict = {
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "created_unix": time.time(),
    }
    try:
        import scipy

        manifest["scipy"] = scipy.__version__
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        manifest["scipy"] = None
    from repro.instrument.store import git_revision

    manifest["git_rev"] = git_revision()
    if config is not None:
        manifest["config"] = config.to_dict()
        manifest["config_hash"] = config.config_hash()
        manifest["seed"] = config.seed
        manifest["n_steps"] = config.n_steps
        manifest["n_particles"] = config.n_particles
        manifest["backend"] = config.backend
        manifest["executor"] = getattr(config, "executor", "serial")
        manifest["workers"] = getattr(config, "workers", 1)
        manifest["kernel_backend"] = getattr(
            config, "kernel_backend", "auto"
        )
        manifest["precision"] = getattr(config, "dtype", "f64")
    if extra:
        manifest.update(dict(extra))
    return manifest


class NullTelemetry:
    """Disabled telemetry: every operation is a no-op.

    Mirrors :class:`repro.instrument.NullRegistry` — the driver's
    per-step hook reduces to one attribute test, no allocations.
    """

    enabled = False
    stream = None

    def gauge(self, name: str, rank: int, value: float) -> None:
        return None

    def add_gauge(self, name: str, rank: int, value: float) -> None:
        return None

    def record_step(
        self, index, a, wall_time, residuals=None, alerts=None, perf=None
    ):
        return None

    @property
    def steps(self) -> list[StepTelemetry]:
        return []

    @property
    def last(self) -> StepTelemetry | None:
        return None

    def imbalance(self, name: str) -> float:
        return 0.0

    def peek_imbalance(self) -> dict:
        return {}

    def finish(self, **extra) -> None:
        return None

    def summary(self) -> dict:
        return {"enabled": False, "steps": 0, "alerts": 0}


class Telemetry:
    """Live per-rank telemetry collector.

    Parameters
    ----------
    stream:
        Optional :class:`RunStream`; every recorded step is appended to
        it immediately (the live-monitoring path).

    Usage
    -----
    Producers (the simulation driver, the overloaded short-range path)
    call :meth:`gauge` / :meth:`add_gauge` with per-rank samples while a
    step runs; the driver then calls :meth:`record_step`, which snapshots
    the pending gauges into a :class:`StepTelemetry`, computes the
    ``max/mean`` imbalance factor per gauge, and clears the slate for the
    next step.
    """

    enabled = True

    def __init__(self, stream: RunStream | None = None) -> None:
        self.stream = stream
        self._lock = threading.Lock()
        self._pending: dict[str, dict[int, float]] = {}
        self._steps: list[StepTelemetry] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def gauge(self, name: str, rank: int, value: float) -> None:
        """Set gauge ``name`` for ``rank`` (overwrites within the step)."""
        with self._lock:
            self._pending.setdefault(name, {})[int(rank)] = float(value)

    def add_gauge(self, name: str, rank: int, value: float) -> None:
        """Accumulate into gauge ``name`` for ``rank`` within the step."""
        with self._lock:
            table = self._pending.setdefault(name, {})
            table[int(rank)] = table.get(int(rank), 0.0) + float(value)

    def record_step(
        self,
        index: int,
        a: float,
        wall_time: float,
        residuals: Mapping[str, float] | None = None,
        alerts: Iterable[Mapping] | None = None,
        perf: Mapping | None = None,
    ) -> StepTelemetry:
        """Close out one step: snapshot gauges, compute imbalance, emit."""
        with self._lock:
            gauges = {
                name: dict(ranks) for name, ranks in self._pending.items()
            }
            self._pending.clear()
        step = StepTelemetry(
            index=int(index),
            a=float(a),
            wall_time=float(wall_time),
            gauges=gauges,
            imbalance={
                name: imbalance_factor(ranks.values())
                for name, ranks in gauges.items()
            },
            residuals=dict(residuals) if residuals else {},
            alerts=tuple(dict(al) for al in alerts) if alerts else (),
            perf=dict(perf) if perf else {},
        )
        with self._lock:
            self._steps.append(step)
        if self.stream is not None:
            self.stream.append(step.to_dict())
        return step

    def finish(self, **extra) -> None:
        """Write the stream's ``end`` record (wall totals, alert counts)."""
        if self.stream is None or self.stream.closed:
            return
        steps = self.steps
        self.stream.close(
            end={
                "steps": len(steps),
                "wall_time": sum(s.wall_time for s in steps),
                "alerts": sum(len(s.alerts) for s in steps),
                **extra,
            }
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def steps(self) -> list[StepTelemetry]:
        with self._lock:
            return list(self._steps)

    @property
    def last(self) -> StepTelemetry | None:
        with self._lock:
            return self._steps[-1] if self._steps else None

    def imbalance(self, name: str) -> float:
        """Latest imbalance factor for gauge ``name`` (0.0 if unseen)."""
        with self._lock:
            for step in reversed(self._steps):
                if name in step.imbalance:
                    return step.imbalance[name]
        return 0.0

    def peek_imbalance(self) -> dict[str, float]:
        """Imbalance factors of the gauges pending in the current step.

        Lets the driver feed the health monitor's ``imbalance`` check
        *before* :meth:`record_step` snapshots (and clears) the gauges.
        """
        with self._lock:
            return {
                name: imbalance_factor(ranks.values())
                for name, ranks in self._pending.items()
            }

    def max_imbalance(self) -> dict[str, float]:
        """Per-gauge maximum imbalance factor over all recorded steps."""
        out: dict[str, float] = {}
        for step in self.steps:
            for name, factor in step.imbalance.items():
                out[name] = max(out.get(name, 0.0), factor)
        return out

    def summary(self) -> dict:
        steps = self.steps
        return {
            "enabled": True,
            "steps": len(steps),
            "alerts": sum(len(s.alerts) for s in steps),
            "max_imbalance": self.max_imbalance(),
            "wall_time": sum(s.wall_time for s in steps),
        }


# ----------------------------------------------------------------------
# process-global active telemetry (mirrors the registry pattern)
# ----------------------------------------------------------------------
_active: Telemetry | NullTelemetry = NullTelemetry()


def get_telemetry() -> Telemetry | NullTelemetry:
    """The currently active telemetry (the shared no-op by default)."""
    return _active


def set_telemetry(
    telemetry: Telemetry | NullTelemetry,
) -> Telemetry | NullTelemetry:
    """Install ``telemetry`` as the active one; returns it."""
    global _active
    _active = telemetry
    return _active


def enable_telemetry(stream: RunStream | None = None) -> Telemetry:
    """Install and return a fresh live :class:`Telemetry`."""
    return set_telemetry(Telemetry(stream=stream))


def disable_telemetry() -> NullTelemetry:
    """Restore the no-op telemetry; returns it."""
    return set_telemetry(NullTelemetry())


class use_telemetry:
    """Context manager: temporarily install ``telemetry`` (tests)."""

    def __init__(self, telemetry: Telemetry | NullTelemetry) -> None:
        self.telemetry = telemetry
        self._previous: Telemetry | NullTelemetry | None = None

    def __enter__(self) -> Telemetry | NullTelemetry:
        self._previous = _active
        set_telemetry(self.telemetry)
        return self.telemetry

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_telemetry(self._previous)
        return False
