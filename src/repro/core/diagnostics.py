"""Run diagnostics: the Layzer-Irvine cosmic energy check.

For collisionless matter in an expanding universe the peculiar kinetic
and potential energies obey the Layzer-Irvine equation

.. math:: \\frac{d(T + U)}{da} = -\\frac{2T + U}{a},

a global integral of the Vlasov-Poisson system (Eqs. 1-2 of the paper)
that no individual-force check can substitute: it couples the
time-stepping, the Poisson solve and the expansion history.  The monitor
accumulates the residual

.. math:: \\Delta(a) = [T + U]_{a_0}^{a}
          + \\int_{a_0}^{a} \\frac{2T + U}{a'} \\, da'

which vanishes for the exact dynamics; its size measures integration
error and shrinks with the step count (an integration test asserts the
convergence rate).

Energy definitions in code units (``p = a^2 dx/dt``, H0 = 1):

* ``T = (1/2) sum m p^2 / a^2``  (peculiar kinetic energy, v = p/a);
* ``U = (1/(2a)) sum m phi_tilde(x)`` with
  ``del^2 phi_tilde = (3/2) Omega_m delta`` — by CIC adjointness this is
  the *mesh field energy* ``(1/2a) int phi rho``, the functional whose
  gradient the PM dynamics actually applies, so it is the consistent
  choice for the conservation check.

With ``subtract_self_energy=True`` the monitor instead reports the
pairwise (correlation + discreteness) energy, removing each particle's
own-CIC-cloud contribution via a precomputed sub-cell-offset table.
That bookkeeping is the physically meaningful binding energy — the
own-cloud term is comparable to the correlation energy at typical
loadings — but it degrades the LI consistency (the dynamics "knows"
about the field energy, not the pairwise split), so the default keeps
the field-energy form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.particles import Particles
from repro.grid.cic import cic_deposit, cic_interpolate
from repro.grid.poisson import SpectralPoissonSolver

__all__ = [
    "EnergyState",
    "LayzerIrvineMonitor",
    "total_momentum",
    "momentum_drift",
    "cic_mass_error",
    "fft_roundtrip_error",
]


# ----------------------------------------------------------------------
# cheap per-step invariants (consumed by repro.instrument.health)
# ----------------------------------------------------------------------
def total_momentum(particles: Particles) -> np.ndarray:
    """Total canonical momentum ``sum_i m_i p_i`` (shape ``(3,)``).

    Periodic gravity exerts no net force, so the exact dynamics conserve
    this vector; any drift is integration or force-asymmetry error.
    """
    return np.asarray(
        particles.masses @ particles.momenta, dtype=np.float64
    ).reshape(3)


def momentum_drift(particles: Particles, initial: np.ndarray) -> float:
    """Momentum non-conservation, normalized dimensionlessly.

    ``|P - P0| / sum m |p|`` — the drift measured against the total
    momentum *scale* of the system rather than ``|P0|`` (which is ~0 for
    well-seeded initial conditions and would make the ratio blow up).
    """
    drift = np.linalg.norm(total_momentum(particles) - np.asarray(initial))
    scale = float(
        np.sum(
            particles.masses
            * np.linalg.norm(particles.momenta, axis=1)
        )
    )
    return drift / max(scale, 1e-300)


def cic_mass_error(particles: Particles, grid_size: int) -> float:
    """Relative mass defect of a CIC deposit of the current particles.

    CIC weights sum to one per particle, so ``sum(grid) == sum(m)`` up
    to rounding; a larger defect indicates NaN positions or a broken
    deposit path.
    """
    counts = cic_deposit(
        particles.positions, grid_size, particles.box_size, particles.masses
    )
    total = float(np.sum(particles.masses))
    return abs(float(counts.sum()) - total) / max(abs(total), 1e-300)


def fft_roundtrip_error(field_values: np.ndarray) -> float:
    """Relative max error of an FFT forward/inverse round trip.

    Run on the live density grid each step, this catches numerical
    corruption in the spectral pipeline (the paper's long-range solver
    is all FFTs) at the cost of one extra transform pair.
    """
    field_values = np.asarray(field_values, dtype=np.float64)
    axes = tuple(range(field_values.ndim))
    back = np.fft.irfftn(
        np.fft.rfftn(field_values), s=field_values.shape, axes=axes
    )
    scale = float(np.max(np.abs(field_values)))
    return float(np.max(np.abs(back - field_values))) / max(scale, 1e-300)


@dataclass(frozen=True)
class EnergyState:
    """Kinetic / potential energies at one scale factor."""

    a: float
    kinetic: float
    potential: float

    @property
    def total(self) -> float:
        return self.kinetic + self.potential


@dataclass
class LayzerIrvineMonitor:
    """Accumulates the Layzer-Irvine residual over a PM run.

    Parameters
    ----------
    poisson:
        The simulation's Poisson solver (supplies the filtered potential
        consistent with the applied forces).
    omega_m:
        Matter density parameter (the potential prefactor).

    Usage
    -----
    Call :meth:`record` after every step (and once at the start); read
    :meth:`residual` at the end.  The trapezoidal quadrature of the
    source term converges at the integrator's order, so the residual is
    dominated by the dynamics' own error.
    """

    poisson: SpectralPoissonSolver
    omega_m: float
    states: list[EnergyState] = field(default_factory=list)
    self_table_points: int = 5
    subtract_self_energy: bool = False

    def __post_init__(self) -> None:
        self._self_table: np.ndarray | None = None

    # ------------------------------------------------------------------
    # self-energy table
    # ------------------------------------------------------------------
    def _build_self_table(self) -> np.ndarray:
        """Self-potential of a unit CIC cloud vs sub-cell offset.

        Returned per unit weight and per unit ``counts`` normalization;
        :meth:`measure` scales it by the run's delta normalization.
        The table is ``(m, m, m)`` over offsets in [0, 1) cells; values
        vary by ~10%, so trilinear interpolation suffices.
        """
        m = self.self_table_points
        n = self.poisson.n
        box = self.poisson.box_size
        spacing = box / n
        base = spacing * (n // 2)  # keep away from the origin corner
        table = np.empty((m, m, m))
        offs = np.arange(m) / m
        for i, ox in enumerate(offs):
            for j, oy in enumerate(offs):
                for k, oz in enumerate(offs):
                    p = np.array(
                        [[base + ox * spacing,
                          base + oy * spacing,
                          base + oz * spacing]]
                    )
                    counts = cic_deposit(p, n, box)
                    phi = self.poisson.potential(counts)
                    table[i, j, k] = cic_interpolate(phi, p, box)[0]
        return table

    def _self_potential(self, positions: np.ndarray) -> np.ndarray:
        """Interpolated per-particle self-potential (unit normalization)."""
        if self._self_table is None:
            self._self_table = self._build_self_table()
        m = self.self_table_points
        n = self.poisson.n
        box = self.poisson.box_size
        frac = np.mod(positions / (box / n), 1.0) * m
        base = np.floor(frac).astype(np.int64) % m
        t = frac - np.floor(frac)
        out = np.zeros(positions.shape[0])
        table = self._self_table
        for dx in (0, 1):
            wx = (1 - t[:, 0]) if dx == 0 else t[:, 0]
            ix = (base[:, 0] + dx) % m
            for dy in (0, 1):
                wy = (1 - t[:, 1]) if dy == 0 else t[:, 1]
                iy = (base[:, 1] + dy) % m
                for dz in (0, 1):
                    wz = (1 - t[:, 2]) if dz == 0 else t[:, 2]
                    iz = (base[:, 2] + dz) % m
                    out += table[ix, iy, iz] * wx * wy * wz
        return out

    # ------------------------------------------------------------------
    def measure(self, particles: Particles, a: float) -> EnergyState:
        """Compute (T, U) without recording."""
        if a <= 0:
            raise ValueError(f"scale factor must be positive: {a}")
        p2 = np.einsum("ij,ij->i", particles.momenta, particles.momenta)
        kinetic = float(0.5 * np.sum(particles.masses * p2) / a**2)

        counts = cic_deposit(
            particles.positions,
            self.poisson.n,
            particles.box_size,
            particles.masses,
        )
        mean = counts.mean()
        delta = counts / mean - 1.0
        pref = 1.5 * self.omega_m
        phi = pref * self.poisson.potential(delta)
        phi_at = cic_interpolate(phi, particles.positions, particles.box_size)
        if self.subtract_self_energy:
            # each particle's own-cloud contribution carries delta
            # weight m_i / mean under the contrast normalization
            phi_at = phi_at - (
                pref
                * particles.masses
                / mean
                * self._self_potential(particles.positions)
            )
        potential = float(0.5 / a * np.sum(particles.masses * phi_at))
        return EnergyState(a=float(a), kinetic=kinetic, potential=potential)

    def record(self, particles: Particles, a: float) -> EnergyState:
        """Measure and append the energy state."""
        state = self.measure(particles, a)
        self.states.append(state)
        return state

    # ------------------------------------------------------------------
    def residual(self) -> float:
        """The accumulated Layzer-Irvine violation (0 for exact dynamics)."""
        if len(self.states) < 2:
            raise RuntimeError("need at least two recorded states")
        first, last = self.states[0], self.states[-1]
        lhs = last.total - first.total
        # trapezoidal integral of (2T + U)/a over the recorded ladder
        a_vals = np.array([s.a for s in self.states])
        src = np.array(
            [(2 * s.kinetic + s.potential) / s.a for s in self.states]
        )
        rhs = -np.trapezoid(src, a_vals)
        return float(lhs - rhs)

    def energy_flux(self) -> float:
        """Integrated |2T + U| / a — the scale the residual competes with."""
        if len(self.states) < 2:
            raise RuntimeError("need at least two recorded states")
        a_vals = np.array([s.a for s in self.states])
        src = np.array(
            [abs(2 * s.kinetic + s.potential) / s.a for s in self.states]
        )
        return float(np.trapezoid(src, a_vals))

    def relative_residual(self) -> float:
        """Residual normalized by the integrated energy flux."""
        return self.residual() / max(self.energy_flux(), 1e-300)
