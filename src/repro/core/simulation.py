"""The HACC simulation driver.

Wires together everything below it: Zel'dovich/2LPT initial conditions,
the spectrally filtered PM Poisson solver (long/medium range), a
rank-local short-range backend (RCB TreePM, P3M, direct, or none), and
the sub-cycled SKS symplectic stepper.  Optionally the short-range force
is evaluated over *overloaded domains* (the paper's multi-rank
configuration) instead of single-rank periodic ghosts — the two paths
agree to machine precision, which is an integration test.

Force normalization
-------------------
The code evolves ``dp/da = g K`` with ``g = -grad phi``,
``del^2 phi = (3/2) Omega_m delta`` (see :mod:`repro.core.timestepper`).
The PM component supplies the filtered ``delta``-sourced force; the
short-range component adds ``(3/2) Omega_m (V / 4 pi N) sum m_j f_SR``,
the same normalization measured and fitted in
:mod:`repro.shortrange.grid_force`, so PM + SR sums to the exact Newtonian
pair force inside the handover radius.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import defaultdict
from typing import Callable

import numpy as np

from repro.config import SimulationConfig
from repro.instrument import get_registry, get_telemetry
from repro.core.particles import Particles
from repro.core.timestepper import SubcycledStepper
from repro.cosmology.initial_conditions import make_initial_conditions
from repro.grid.poisson import SpectralPoissonSolver
from repro.parallel.decomposition import DomainDecomposition
from repro.parallel.executor import RankExecutor, resolve_shared
from repro.parallel.overload import OverloadExchange
from repro.resilience.faults import get_fault_plan
from repro.shortrange.grid_force import (
    default_grid_force_fit,
    pair_force_normalization,
)
from repro.shortrange.backends import resolve_backend
from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.solvers import (
    build_solver,
    solver_from_spec,
    solver_spec,
)

__all__ = ["HACCSimulation"]

logger = logging.getLogger(__name__)


# ----------------------------------------------------------------------
# executor worker plumbing (module-level: process tasks pickle by
# reference and the worker solver lives in the child's module globals)
# ----------------------------------------------------------------------
_WORKER_SOLVER = None


def _init_worker_solver(spec) -> None:
    """Process-pool initializer: build the worker's private solver."""
    global _WORKER_SOLVER
    _WORKER_SOLVER = solver_from_spec(spec) if spec is not None else None


def _solve_domain(solver, rank, positions, masses, active):
    """One rank's short-range solve — the task body of every backend.

    Mirrors the serial loop exactly (same actives-first stable ordering,
    same float operations) so results are bit-identical regardless of
    where it runs.  Returns ``(rank, accelerations, pair_count,
    tree_depth)``; the pair count is the worker kernel's private delta,
    charged to the authoritative counters by the driver in rank order.
    """
    get_fault_plan().sleep("shortrange.domain")
    if positions.shape[0] == 0:
        return rank, np.zeros((0, 3), dtype=np.float64), 0, None
    order = np.argsort(~active, kind="stable")  # actives first
    n_act = int(np.count_nonzero(active))
    k0 = solver.kernel.interaction_count
    local = solver.accelerations_cloud(positions[order], masses[order], n_act)
    pairs = int(solver.kernel.interaction_count - k0)
    depth = getattr(solver, "last_tree_depth", None)
    return rank, local, pairs, depth


def _solve_domain_shared(payload):
    """Process-backend task: reconstruct the domain cloud from indices.

    ``positions``/``masses`` arrive as shared-memory handles; the domain
    ships only global ids plus per-axis periodic wrap codes (int8 in
    {-1, 0, 1}).  ``ids_indexed + codes * box`` repeats the identical
    floating-point addition (in the state dtype) the overload exchange
    performed, so the reconstructed cloud is bitwise equal to the one
    the serial path saw (the dispatcher verifies this before choosing
    index shipping).
    """
    rank, pos_ref, mas_ref, ids, codes, active, box = payload
    gpos = resolve_shared(pos_ref)
    gmas = resolve_shared(mas_ref)
    base = gpos[ids]
    positions = base + codes.astype(base.dtype) * base.dtype.type(box)
    return _solve_domain(_WORKER_SOLVER, rank, positions, gmas[ids], active)


def _solve_domain_arrays(payload):
    """Process-backend fallback task: the domain arrays travel whole.

    Used when index reconstruction would not be exact — e.g. domains
    rebuilt by rank-death recovery, whose positions are not simple
    wrapped copies of the global array.
    """
    rank, positions, masses, active = payload
    return _solve_domain(_WORKER_SOLVER, rank, positions, masses, active)


def _dispatch_domain_task(item):
    """Uniform process-task envelope: ``(task_fn, payload)`` pairs.

    Lets one ``map`` call mix index-shipped and whole-array domains
    while keeping result order aligned with the domain list.
    """
    fn, payload = item
    return fn(payload)


class HACCSimulation:
    """A full HACC-style N-body simulation.

    Parameters
    ----------
    config:
        Run parameters (:class:`repro.config.SimulationConfig`).
    particles:
        Optional pre-built particle state; by default Zel'dovich/2LPT
        initial conditions are generated from ``config``.
    decomposition_dims:
        If given (e.g. ``(2, 2, 2)``), the short-range force is evaluated
        per overloaded rank domain — the paper's parallel structure — with
        an overload refresh after every full step.
    overload_depth:
        Overload shell depth in Mpc/h; defaults to the short-range cutoff
        plus one grid cell of drift margin.
    retry_policy:
        Optional :class:`repro.resilience.retry.RetryPolicy`; when given
        (and the run is decomposed), the overload exchange communicates
        over a :class:`~repro.resilience.retry.ResilientComm` that
        absorbs injected transient failures with bounded backoff.
    recover_on_rank_death:
        When an injected rank death hits a decomposed run, reconstruct
        the lost domain from the neighbors' overload replicas (default).
        Disabled, the loss is recorded as a CRIT ``rank_died`` health
        event and the domain's short-range contribution is dropped.

    Examples
    --------
    >>> from repro.config import SimulationConfig
    >>> cfg = SimulationConfig(box_size=64.0, n_per_dim=8, n_steps=2,
    ...                        backend="pm", z_initial=20.0, z_final=10.0)
    >>> sim = HACCSimulation(cfg)
    >>> sim.run()
    >>> abs(sim.a - cfg.a_final) < 1e-12
    True
    """

    def __init__(
        self,
        config: SimulationConfig,
        particles: Particles | None = None,
        decomposition_dims: tuple[int, int, int] | None = None,
        overload_depth: float | None = None,
        retry_policy=None,
        recover_on_rank_death: bool = True,
    ) -> None:
        self.config = config
        self.cosmology = config.cosmology
        self.prefactor = 1.5 * self.cosmology.omega_m

        # resolve the kernel backend ONCE (auto -> numba when importable,
        # else numpy; explicit unavailable names fail loudly here) and
        # carry the resolved *name* everywhere — including into picklable
        # solver specs, so process workers rebuild the same choice
        self.kernel_backend: str = resolve_backend(config.kernel_backend).name

        self.poisson = SpectralPoissonSolver(
            config.grid(),
            config.box_size,
            sigma=config.sigma,
            ns=config.ns,
            laplacian_order=config.laplacian_order,
            gradient_order=config.gradient_order,
            dtype=None if config.dtype == "f64" else config.precision_dtype,
            kernel_backend=self.kernel_backend,
        )

        if particles is None:
            ics = make_initial_conditions(
                self.cosmology,
                n_per_dim=config.n_per_dim,
                box_size=config.box_size,
                z_init=config.z_initial,
                seed=config.seed,
                order=config.lpt_order,
            )
            particles = Particles.from_ics(ics)
        if particles.box_size != config.box_size:
            raise ValueError(
                f"particle box {particles.box_size} != config box "
                f"{config.box_size}"
            )
        # the config's precision is policy: cast the particle state once
        # at construction (a no-op for the default f64 path, whose ICs
        # are already float64)
        if particles.positions.dtype != config.precision_dtype:
            particles = particles.astype(config.precision_dtype)
        self.particles = particles
        self.pair_norm = pair_force_normalization(
            config.box_size, self.particles.n
        )

        self.kernel: ShortRangeKernel | None = None
        self.short_solver = None
        self._solver_spec: dict | None = None
        if config.backend != "pm":
            fit = default_grid_force_fit(
                config.sigma, config.ns, config.rcut_cells
            )
            self.kernel = ShortRangeKernel(
                fit,
                config.spacing(),
                eps_cells=config.eps_cells,
                dtype=config.precision_dtype,
            )
            self.short_solver = build_solver(
                config.backend,
                self.kernel,
                leaf_size=config.leaf_size,
                naive=config.shortrange_naive,
                chunk_pairs=config.chunk_pairs,
                kernel_backend=self.kernel_backend,
            )
            self._solver_spec = solver_spec(
                config.backend,
                self.kernel,
                leaf_size=config.leaf_size,
                naive=config.shortrange_naive,
                chunk_pairs=config.chunk_pairs,
                kernel_backend=self.kernel_backend,
            )

        #: rank executor running the bulk-synchronous parallel sections
        #: (see :mod:`repro.parallel.executor`); the Poisson solver
        #: shares it for the CIC deposit, gathers and gradient FFTs
        self.executor = RankExecutor.from_config(
            config,
            initializer=_init_worker_solver,
            initargs=(self._solver_spec,),
        )
        self.poisson.executor = self.executor
        self.poisson.overlap = config.overlap
        self._worker_local = threading.local()

        self.exchange: OverloadExchange | None = None
        self.recover_on_rank_death = bool(recover_on_rank_death)
        self.recovery_reports: list = []
        self._fault_events: list = []
        if decomposition_dims is not None:
            decomp = DomainDecomposition(config.box_size, decomposition_dims)
            depth = (
                overload_depth
                if overload_depth is not None
                else config.rcut() + config.spacing()
            )
            comm = None
            if retry_policy is not None:
                from repro.resilience.retry import ResilientComm

                comm = ResilientComm(
                    decomp.n_ranks, policy=retry_policy
                )
            self.exchange = OverloadExchange(decomp, depth, comm=comm)

        self.stepper = SubcycledStepper(
            cosmology=self.cosmology,
            long_range=self._long_range,
            short_range=(
                self._short_range if self.short_solver is not None else None
            ),
            n_subcycles=config.n_subcycles,
        )
        self.a = config.a_initial
        self._edges = config.step_edges()
        self._step_index = 0
        self.timings: dict[str, float] = defaultdict(float)
        #: optional physics health monitor (see :meth:`attach_health`)
        self.health = None
        self._comm_bytes_prev: np.ndarray | None = None

    # ------------------------------------------------------------------
    # force callbacks
    # ------------------------------------------------------------------
    def _long_range(self, positions: np.ndarray) -> np.ndarray:
        t0 = time.perf_counter()
        with get_registry().span("longrange"):
            acc = self.prefactor * self.poisson.accelerations(
                positions, weights=self.particles.masses
            )
        self.timings["long_range"] += time.perf_counter() - t0
        return acc

    def _short_range(self, positions: np.ndarray) -> np.ndarray:
        t0 = time.perf_counter()
        get_fault_plan().sleep("shortrange")
        with get_registry().span("shortrange"):
            scale = self.prefactor * self.pair_norm
            if self.exchange is None:
                acc = scale * self.short_solver.accelerations(
                    positions,
                    self.particles.masses,
                    box_size=self.config.box_size,
                )
            else:
                acc = scale * self._short_range_overloaded(positions)
        self.timings["short_range"] += time.perf_counter() - t0
        return acc

    def _short_range_overloaded(self, positions: np.ndarray) -> np.ndarray:
        """Per-domain rank-local short-range force via overloading.

        Active particles of each domain are the targets; the domain's
        passive replicas supply the boundary sources, so no ghosts and no
        communication are needed during the force evaluation itself —
        exactly the decoupling the paper's overloading buys.
        """
        plan = get_fault_plan()
        tel = get_telemetry()
        if self.config.overlap and self.executor.parallel:
            return self._short_range_overlapped(positions, plan, tel)
        domains = self.exchange.distribute(
            positions,
            self.particles.momenta,
            self.particles.masses,
            self.particles.ids,
        )
        if plan.enabled:
            domains = self._handle_rank_death(domains, plan)
        if self.executor.parallel:
            return self._short_range_parallel(positions, domains, tel)
        acc = np.zeros_like(positions)
        for dom in domains:
            if tel.enabled:
                tel.gauge("particles", dom.rank, dom.n_active)
                tel.gauge("ghosts", dom.rank, dom.n_passive)
                tel.gauge(
                    "ghost_fraction", dom.rank, dom.overload_fraction()
                )
            plan.sleep("shortrange.domain")
            if dom.n_total == 0:
                continue
            order = np.argsort(~dom.active, kind="stable")  # actives first
            pos = dom.positions[order]
            mas = dom.masses[order]
            ids = dom.ids[order]
            n_act = dom.n_active
            k0 = self.kernel.interaction_count if tel.enabled else 0
            local = self.short_solver.accelerations_cloud(pos, mas, n_act)
            if tel.enabled:
                tel.add_gauge(
                    "interactions",
                    dom.rank,
                    self.kernel.interaction_count - k0,
                )
                depth = getattr(self.short_solver, "last_tree_depth", None)
                if depth is not None:
                    tel.gauge("tree_depth", dom.rank, depth)
            acc[ids[:n_act]] = local
        return acc

    # ------------------------------------------------------------------
    # parallel short-range dispatch
    # ------------------------------------------------------------------
    def _local_solver(self):
        """Per-thread worker clone of the short-range solver.

        Serial and thread backends run tasks in the driver's threads;
        each thread gets its own clone so the batched engine's grow-only
        workspace and the kernel's counters are never shared between
        concurrent evaluations.
        """
        solver = getattr(self._worker_local, "solver", None)
        if solver is None:
            solver = solver_from_spec(self._solver_spec)
            self._worker_local.solver = solver
        return solver

    def _share_particles(self, positions):
        """Publish the global particle state for process workers.

        Returns the ``(pos_mod, pos_ref, mas_ref, box)`` tuple
        :meth:`_domain_task` needs to ship index payloads, or ``None``
        for the in-process backends (which see the caller's arrays
        directly).
        """
        if self.executor.backend != "process":
            return None
        box = self.config.box_size
        pos_mod = np.mod(positions, box)
        pos_ref = self.executor.share("shortrange.positions", pos_mod)
        mas_ref = self.executor.share(
            "shortrange.masses", self.particles.masses
        )
        return pos_mod, pos_ref, mas_ref, box

    def _domain_task(self, dom, shared):
        """``(task_fn, payload)`` for one domain's solve.

        The single source of payload construction for the synchronous
        and overlapped dispatch paths — both ship the identical floats,
        which is half of the bit-identity argument (the other half is
        the shared reduction in :meth:`_reduce_domain_results`).
        """
        if shared is None:
            return self._solve_domain_local, (
                dom.rank, dom.positions, dom.masses, dom.active,
            )
        pos_mod, pos_ref, mas_ref, box = shared
        if dom.n_total:
            base = pos_mod[dom.ids]
            codes = np.rint(
                (dom.positions - base) / box
            ).astype(np.int8)
            # same dtype arithmetic as the worker-side recon
            recon = (
                base + codes.astype(base.dtype) * base.dtype.type(box)
            )
            if np.array_equal(recon, dom.positions):
                return _solve_domain_shared, (
                    dom.rank, pos_ref, mas_ref,
                    dom.ids, codes, dom.active, box,
                )
        return _solve_domain_arrays, (
            dom.rank, dom.positions, dom.masses, dom.active,
        )

    def _reduce_domain_results(self, positions, domains, results, tel):
        """Scatter solves into the global acceleration, in rank order.

        All reductions (acceleration scatter, counter charging,
        telemetry gauges) happen here in rank order — which is what
        makes the result bit-identical to the serial loop for every
        backend and for the sync and overlapped dispatch paths alike.
        """
        acc = np.zeros_like(positions)
        for dom, res in zip(domains, results):
            rank, local, pairs, depth = res
            if tel.enabled:
                tel.gauge("particles", dom.rank, dom.n_active)
                tel.gauge("ghosts", dom.rank, dom.n_passive)
                tel.gauge(
                    "ghost_fraction", dom.rank, dom.overload_fraction()
                )
            if pairs:
                # charge the authoritative counters here, in rank order:
                # worker kernels tally privately (mirror_counters=False)
                self.kernel.record_interactions(pairs)
            if tel.enabled:
                tel.add_gauge("interactions", dom.rank, pairs)
                if depth is not None:
                    tel.gauge("tree_depth", dom.rank, depth)
            if dom.n_total == 0:
                continue
            # boolean selection preserves order, so these ids match the
            # actives-first rows the task computed
            acc[dom.ids[dom.active]] = local
        return acc

    def _short_range_parallel(self, positions, domains, tel):
        """Fan the per-domain solves out over the rank executor.

        Work is *partitioned* per domain regardless of backend and all
        reductions happen in :meth:`_reduce_domain_results` in rank
        order.  Collectives already happened (``distribute`` above) and
        the next one waits for ``map`` to join all ranks, so the
        bulk-synchronous structure is preserved.
        """
        ex = self.executor
        ranks = [dom.rank for dom in domains]
        shared = self._share_particles(positions)
        tasks = [self._domain_task(dom, shared) for dom in domains]
        if shared is not None:
            results = ex.map(
                _dispatch_domain_task,
                tasks,
                ranks=ranks,
                label="shortrange.domain",
            )
        else:
            results = ex.map(
                self._solve_domain_local,
                [payload for _, payload in tasks],
                ranks=ranks,
                label="shortrange.domain",
            )
        return self._reduce_domain_results(positions, domains, results, tel)

    def _short_range_overlapped(self, positions, plan, tel):
        """Comm/compute-overlapped variant of the per-domain dispatch.

        The exchange streams domains out one rank at a time
        (:meth:`~repro.parallel.overload.OverloadExchange.
        distribute_stream`); each domain's solve is submitted the moment
        it is assembled, so later ranks' assembly runs while earlier
        solves are in flight — the paper's Sec. IV comm-hiding at domain
        granularity.  An :class:`~repro.instrument.OverlapMeter` times
        every exchange segment and classifies it hidden when at least
        one solve was genuinely in flight, which is what the overlap-
        efficiency column reports.

        Determinism: the stream yields bitwise-identical domains in the
        same rank order as ``distribute``, payload construction and the
        reduction are the exact code the sync path runs, and handles are
        consumed in submission (= rank) order — so trajectories are
        bit-identical sync vs overlapped at equal worker counts.

        A step with a scheduled rank death drains the stream first: the
        recovery protocol needs the global domain view (survivor
        replicas rebuild the dead rank), so its exchange is exposed comm
        by construction, and the recovered set is then dispatched
        asynchronously as usual.
        """
        from repro.instrument import OverlapMeter

        ex = self.executor
        meter = OverlapMeter()
        shared = self._share_particles(positions)
        stream = self.exchange.distribute_stream(
            positions,
            self.particles.momenta,
            self.particles.masses,
            self.particles.ids,
        )
        domains: list = []
        with ex.wave("shortrange.overlap") as wave:
            def submit_domain(dom):
                fn, payload = self._domain_task(dom, shared)
                if shared is not None:
                    wave.submit(
                        _dispatch_domain_task,
                        (fn, payload),
                        rank=dom.rank,
                        label="shortrange.domain",
                    )
                else:
                    wave.submit(
                        fn,
                        payload,
                        rank=dom.rank,
                        label="shortrange.domain",
                        inprocess=True,
                    )

            if plan.enabled and plan.deaths_pending():
                with meter.comm(hidden=False):
                    domains = list(stream)
                domains = self._handle_rank_death(domains, plan)
                for dom in domains:
                    submit_domain(dom)
            else:
                while True:
                    hidden = any(not h.done() for h in wave.handles)
                    with meter.comm(hidden=hidden):
                        dom = next(stream, None)
                    if dom is None:
                        break
                    domains.append(dom)
                    submit_domain(dom)
            results = wave.results()
        return self._reduce_domain_results(positions, domains, results, tel)

    def _solve_domain_local(self, payload):
        """In-process task body (serial/thread backends)."""
        rank, positions, masses, active = payload
        return _solve_domain(self._local_solver(), rank, positions,
                             masses, active)

    def close(self) -> None:
        """Release executor pools and shared memory (idempotent)."""
        self.executor.close()

    def __enter__(self) -> "HACCSimulation":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _handle_rank_death(self, domains, plan):
        """Apply any scheduled rank death to this force evaluation.

        With recovery enabled (the default) the dead domains are rebuilt
        from the survivors' overload replicas
        (:func:`repro.resilience.recovery.recover_ranks`) and a WARN
        ``rank_recovered`` health event is logged per rank; otherwise the
        domains are simply dropped — their particles get no short-range
        kick this evaluation — and the loss is a CRIT ``rank_died``
        event that forces the run verdict to CRIT.
        """
        dead = plan.ranks_to_kill()
        dead = frozenset(r for r in dead if r < len(domains))
        if not dead:
            return domains
        step = self._step_index
        if not self.recover_on_rank_death:
            for r in sorted(dead):
                self._emit_fault_event(
                    "CRIT",
                    "rank_died",
                    f"rank {r} died at step {step} and was not recovered",
                )
            logger.critical(
                "faults: rank(s) %s died at step %d (recovery disabled)",
                sorted(dead), step,
            )
            return [d for d in domains if d.rank not in dead]
        from repro.resilience.recovery import recover_ranks

        domains, report = recover_ranks(self.exchange, domains, dead)
        self.recovery_reports.append(report)
        plan.note_recovery("rank_death", len(dead))
        for r in sorted(dead):
            self._emit_fault_event(
                "WARN",
                "rank_recovered",
                f"rank {r} died at step {step}; rebuilt "
                f"{report.recovered_by_rank.get(r, 0)} of its particles "
                f"from overload replicas "
                f"({report.n_lost} lost beyond the overload depth)",
                value=float(report.recovered_by_rank.get(r, 0)),
            )
        logger.warning(
            "faults: recovered rank(s) %s at step %d "
            "(%d particles rebuilt, %d lost, coverage %.3f)",
            sorted(dead), step, report.n_recovered, report.n_lost,
            report.coverage(),
        )
        return domains

    # ------------------------------------------------------------------
    # telemetry / health
    # ------------------------------------------------------------------
    def _emit_fault_event(
        self, severity: str, check: str, message: str, value: float = 0.0
    ):
        """Record a machine-fault event for health + telemetry.

        Routed through the attached health monitor when there is one (so
        it counts toward the run verdict / exit status); always queued
        for the step's telemetry ``alerts`` either way.
        """
        from repro.instrument.health import HealthEvent

        if self.health is not None:
            event = self.health.monitor.emit(
                self._step_index, severity, check, message=message,
                value=value,
            )
        else:
            event = HealthEvent(
                step=self._step_index,
                severity=severity,
                check=check,
                value=float(value),
                threshold=0.0,
                message=message,
            )
        self._fault_events.append(event)
        return event
    def attach_health(self, thresholds=None, check_fft: bool = True):
        """Enable physics health monitoring (see
        :class:`repro.instrument.SimulationHealth`).

        Must be called before the first step — the monitor snapshots the
        initial energy state and total momentum.  Returns the monitor.
        """
        from repro.instrument import SimulationHealth

        if self._step_index != 0:
            raise RuntimeError(
                "attach_health must be called before the first step"
            )
        self.health = SimulationHealth(
            self, thresholds=thresholds, check_fft=check_fft
        )
        return self.health

    def _record_telemetry(self, tel, wall: float) -> None:
        """Close out one step's telemetry: comm gauges, health, record.

        Runs only when telemetry or health monitoring is enabled, after
        the step completes; ``self._step_index`` already names the
        *count* of finished steps, so the record carries index
        ``_step_index - 1`` (0-based).
        """
        step_index = self._step_index - 1
        if tel.enabled and self.exchange is not None:
            stats = self.exchange.comm.stats
            if stats.matrix_enabled:
                sent = stats.rank_send_bytes()
                prev = self._comm_bytes_prev
                delta = sent if prev is None else sent - prev
                self._comm_bytes_prev = sent
                for rank, nbytes in enumerate(delta):
                    tel.gauge("comm_bytes", rank, float(nbytes))
        residuals: dict[str, float] = {}
        alerts: tuple = ()
        if self.health is not None:
            values = self.health.values()
            residuals = dict(values)
            if tel.enabled:
                imb = tel.peek_imbalance()
                if imb:
                    values["imbalance"] = max(imb.values())
            events = self.health.monitor.check(step_index, values)
            self.health.last_events = events
            alerts = tuple(e.to_dict() for e in events)
        if self._fault_events:
            alerts = tuple(
                e.to_dict() for e in self._fault_events
            ) + alerts
            self._fault_events.clear()
        if tel.enabled:
            # achieved-throughput summary of the step just closed: the
            # registry's StepRecord carries the per-step counter deltas
            # the perfcount work model converts to GFLOP/s and ns/pair
            perf = None
            reg = get_registry()
            if reg.enabled and reg.steps:
                from repro.instrument.perfcount import step_perf

                perf = step_perf(reg.steps[-1])
            tel.record_step(
                step_index,
                self.a,
                wall,
                residuals=residuals,
                alerts=alerts,
                perf=perf,
            )

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one full long-range step (with sub-cycling).

        When instrumentation is enabled the step is bracketed by a
        ``step`` span and a :class:`repro.instrument.StepRecord`
        capturing the per-section time and counter deltas.
        """
        if self._step_index >= self.config.n_steps:
            raise RuntimeError("simulation already at final time")
        a0 = self._edges[self._step_index]
        a1 = self._edges[self._step_index + 1]
        reg = get_registry()
        tel = get_telemetry()
        plan = get_fault_plan()
        if plan.enabled:
            plan.begin_step(self._step_index)
        t0 = time.perf_counter()
        with reg.step(self._step_index), reg.span("step"):
            self.stepper.step(self.particles, a0, a1)
        wall = time.perf_counter() - t0
        self.a = a1
        self._step_index += 1
        if tel.enabled or self.health is not None:
            self._record_telemetry(tel, wall)
        elif self._fault_events:
            self._fault_events.clear()
        logger.debug(
            "step %d/%d done: a = %.5f (z = %.3f)",
            self._step_index, self.config.n_steps, self.a, self.redshift,
        )

    def run(
        self,
        callback: Callable[["HACCSimulation"], None] | None = None,
        checkpointer=None,
    ) -> None:
        """Run to the final redshift, invoking ``callback`` after each step.

        When a :class:`repro.io.Checkpointer` is given, its schedule is
        consulted after every step (and the final state is always
        written), so an interrupted run can be resumed from the latest
        valid checkpoint.
        """
        logger.debug(
            "run: %d particles, %d steps x %d subcycles, backend=%s",
            self.particles.n, self.config.n_steps,
            self.config.n_subcycles, self.config.backend,
        )
        try:
            while self._step_index < self.config.n_steps:
                self.step()
                if callback is not None:
                    callback(self)
                if checkpointer is not None:
                    final = self._step_index >= self.config.n_steps
                    checkpointer.maybe_checkpoint(self, force=final)
        except BaseException as exc:
            self._flush_telemetry_on_crash(exc)
            raise

    def _flush_telemetry_on_crash(self, exc: BaseException) -> None:
        """Leave an analyzable stream behind when the driver dies.

        A crashed run is exactly the one whose telemetry matters most:
        write the ``end`` record (verdict ``CRASHED``, the exception, the
        step reached) and close the stream, so ``monitor`` and the run
        ledger see a complete — if short — stream instead of a dangling
        file.  A graceful preemption (SIGTERM/SIGINT converted to
        :class:`~repro.resilience.signals.ShutdownRequested`) is not a
        crash: it ends with verdict ``INTERRUPTED`` so monitors and the
        campaign supervisor can tell "resumable" from "broken".  Never
        raises: the original exception must propagate.
        """
        try:
            from repro.resilience.signals import ShutdownRequested

            verdict = (
                "INTERRUPTED"
                if isinstance(exc, ShutdownRequested)
                else "CRASHED"
            )
            tel = get_telemetry()
            if tel.enabled and tel.stream is not None \
                    and not tel.stream.closed:
                tel.finish(
                    verdict=verdict,
                    error=f"{type(exc).__name__}: {exc}",
                    crashed_at_step=self._step_index,
                )
        except Exception:  # pragma: no cover - best-effort teardown
            logger.exception("telemetry flush on crash failed")

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @property
    def redshift(self) -> float:
        return 1.0 / self.a - 1.0

    def interaction_count(self) -> int:
        """Cumulative short-range pair interactions (perf cross-check).

        Backed by the kernel's ``pp.interactions`` instrument counter, so
        this number, the ablation benchmarks, and a profiled run's
        counter table all agree by construction.
        """
        return self.kernel.interaction_count if self.kernel else 0

    def density_contrast(self, n: int | None = None) -> np.ndarray:
        """Current CIC density contrast on an ``n^3`` grid."""
        from repro.grid.cic import density_contrast

        return density_contrast(
            self.particles.positions,
            n if n is not None else self.config.grid(),
            self.config.box_size,
            self.particles.masses,
        )
