"""The HACC simulation driver.

Wires together everything below it: Zel'dovich/2LPT initial conditions,
the spectrally filtered PM Poisson solver (long/medium range), a
rank-local short-range backend (RCB TreePM, P3M, direct, or none), and
the sub-cycled SKS symplectic stepper.  Optionally the short-range force
is evaluated over *overloaded domains* (the paper's multi-rank
configuration) instead of single-rank periodic ghosts — the two paths
agree to machine precision, which is an integration test.

Force normalization
-------------------
The code evolves ``dp/da = g K`` with ``g = -grad phi``,
``del^2 phi = (3/2) Omega_m delta`` (see :mod:`repro.core.timestepper`).
The PM component supplies the filtered ``delta``-sourced force; the
short-range component adds ``(3/2) Omega_m (V / 4 pi N) sum m_j f_SR``,
the same normalization measured and fitted in
:mod:`repro.shortrange.grid_force`, so PM + SR sums to the exact Newtonian
pair force inside the handover radius.
"""

from __future__ import annotations

import logging
import time
from collections import defaultdict
from typing import Callable

import numpy as np

from repro.config import SimulationConfig
from repro.instrument import get_registry, get_telemetry
from repro.core.particles import Particles
from repro.core.timestepper import SubcycledStepper
from repro.cosmology.initial_conditions import make_initial_conditions
from repro.grid.poisson import SpectralPoissonSolver
from repro.parallel.decomposition import DomainDecomposition
from repro.parallel.overload import OverloadExchange
from repro.shortrange.grid_force import (
    default_grid_force_fit,
    pair_force_normalization,
)
from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.solvers import (
    DirectShortRange,
    P3MShortRange,
    TreePMShortRange,
)

__all__ = ["HACCSimulation"]

logger = logging.getLogger(__name__)


class HACCSimulation:
    """A full HACC-style N-body simulation.

    Parameters
    ----------
    config:
        Run parameters (:class:`repro.config.SimulationConfig`).
    particles:
        Optional pre-built particle state; by default Zel'dovich/2LPT
        initial conditions are generated from ``config``.
    decomposition_dims:
        If given (e.g. ``(2, 2, 2)``), the short-range force is evaluated
        per overloaded rank domain — the paper's parallel structure — with
        an overload refresh after every full step.
    overload_depth:
        Overload shell depth in Mpc/h; defaults to the short-range cutoff
        plus one grid cell of drift margin.

    Examples
    --------
    >>> from repro.config import SimulationConfig
    >>> cfg = SimulationConfig(box_size=64.0, n_per_dim=8, n_steps=2,
    ...                        backend="pm", z_initial=20.0, z_final=10.0)
    >>> sim = HACCSimulation(cfg)
    >>> sim.run()
    >>> abs(sim.a - cfg.a_final) < 1e-12
    True
    """

    def __init__(
        self,
        config: SimulationConfig,
        particles: Particles | None = None,
        decomposition_dims: tuple[int, int, int] | None = None,
        overload_depth: float | None = None,
    ) -> None:
        self.config = config
        self.cosmology = config.cosmology
        self.prefactor = 1.5 * self.cosmology.omega_m

        self.poisson = SpectralPoissonSolver(
            config.grid(),
            config.box_size,
            sigma=config.sigma,
            ns=config.ns,
            laplacian_order=config.laplacian_order,
            gradient_order=config.gradient_order,
        )

        if particles is None:
            ics = make_initial_conditions(
                self.cosmology,
                n_per_dim=config.n_per_dim,
                box_size=config.box_size,
                z_init=config.z_initial,
                seed=config.seed,
                order=config.lpt_order,
            )
            particles = Particles.from_ics(ics)
        if particles.box_size != config.box_size:
            raise ValueError(
                f"particle box {particles.box_size} != config box "
                f"{config.box_size}"
            )
        self.particles = particles
        self.pair_norm = pair_force_normalization(
            config.box_size, self.particles.n
        )

        self.kernel: ShortRangeKernel | None = None
        self.short_solver = None
        if config.backend != "pm":
            fit = default_grid_force_fit(
                config.sigma, config.ns, config.rcut_cells
            )
            self.kernel = ShortRangeKernel(
                fit, config.spacing(), eps_cells=config.eps_cells
            )
            if config.backend == "treepm":
                self.short_solver = TreePMShortRange(
                    self.kernel,
                    leaf_size=config.leaf_size,
                    naive=config.shortrange_naive,
                    chunk_pairs=config.chunk_pairs,
                )
            elif config.backend == "p3m":
                self.short_solver = P3MShortRange(
                    self.kernel,
                    naive=config.shortrange_naive,
                    chunk_pairs=config.chunk_pairs,
                )
            else:
                self.short_solver = DirectShortRange(self.kernel)

        self.exchange: OverloadExchange | None = None
        if decomposition_dims is not None:
            decomp = DomainDecomposition(config.box_size, decomposition_dims)
            depth = (
                overload_depth
                if overload_depth is not None
                else config.rcut() + config.spacing()
            )
            self.exchange = OverloadExchange(decomp, depth)

        self.stepper = SubcycledStepper(
            cosmology=self.cosmology,
            long_range=self._long_range,
            short_range=(
                self._short_range if self.short_solver is not None else None
            ),
            n_subcycles=config.n_subcycles,
        )
        self.a = config.a_initial
        self._edges = config.step_edges()
        self._step_index = 0
        self.timings: dict[str, float] = defaultdict(float)
        #: optional physics health monitor (see :meth:`attach_health`)
        self.health = None
        self._comm_bytes_prev: np.ndarray | None = None

    # ------------------------------------------------------------------
    # force callbacks
    # ------------------------------------------------------------------
    def _long_range(self, positions: np.ndarray) -> np.ndarray:
        t0 = time.perf_counter()
        with get_registry().span("longrange"):
            acc = self.prefactor * self.poisson.accelerations(
                positions, weights=self.particles.masses
            )
        self.timings["long_range"] += time.perf_counter() - t0
        return acc

    def _short_range(self, positions: np.ndarray) -> np.ndarray:
        t0 = time.perf_counter()
        with get_registry().span("shortrange"):
            scale = self.prefactor * self.pair_norm
            if self.exchange is None:
                acc = scale * self.short_solver.accelerations(
                    positions,
                    self.particles.masses,
                    box_size=self.config.box_size,
                )
            else:
                acc = scale * self._short_range_overloaded(positions)
        self.timings["short_range"] += time.perf_counter() - t0
        return acc

    def _short_range_overloaded(self, positions: np.ndarray) -> np.ndarray:
        """Per-domain rank-local short-range force via overloading.

        Active particles of each domain are the targets; the domain's
        passive replicas supply the boundary sources, so no ghosts and no
        communication are needed during the force evaluation itself —
        exactly the decoupling the paper's overloading buys.
        """
        domains = self.exchange.distribute(
            positions,
            self.particles.momenta,
            self.particles.masses,
            self.particles.ids,
        )
        tel = get_telemetry()
        acc = np.zeros_like(positions)
        for dom in domains:
            if tel.enabled:
                tel.gauge("particles", dom.rank, dom.n_active)
                tel.gauge("ghosts", dom.rank, dom.n_passive)
                tel.gauge(
                    "ghost_fraction", dom.rank, dom.overload_fraction()
                )
            if dom.n_total == 0:
                continue
            order = np.argsort(~dom.active, kind="stable")  # actives first
            pos = dom.positions[order]
            mas = dom.masses[order]
            ids = dom.ids[order]
            n_act = dom.n_active
            k0 = self.kernel.interaction_count if tel.enabled else 0
            local = self.short_solver.accelerations_cloud(pos, mas, n_act)
            if tel.enabled:
                tel.add_gauge(
                    "interactions",
                    dom.rank,
                    self.kernel.interaction_count - k0,
                )
                depth = getattr(self.short_solver, "last_tree_depth", None)
                if depth is not None:
                    tel.gauge("tree_depth", dom.rank, depth)
            acc[ids[:n_act]] = local
        return acc

    # ------------------------------------------------------------------
    # telemetry / health
    # ------------------------------------------------------------------
    def attach_health(self, thresholds=None, check_fft: bool = True):
        """Enable physics health monitoring (see
        :class:`repro.instrument.SimulationHealth`).

        Must be called before the first step — the monitor snapshots the
        initial energy state and total momentum.  Returns the monitor.
        """
        from repro.instrument import SimulationHealth

        if self._step_index != 0:
            raise RuntimeError(
                "attach_health must be called before the first step"
            )
        self.health = SimulationHealth(
            self, thresholds=thresholds, check_fft=check_fft
        )
        return self.health

    def _record_telemetry(self, tel, wall: float) -> None:
        """Close out one step's telemetry: comm gauges, health, record.

        Runs only when telemetry or health monitoring is enabled, after
        the step completes; ``self._step_index`` already names the
        *count* of finished steps, so the record carries index
        ``_step_index - 1`` (0-based).
        """
        step_index = self._step_index - 1
        if tel.enabled and self.exchange is not None:
            stats = self.exchange.comm.stats
            if stats.matrix_enabled:
                sent = stats.rank_send_bytes()
                prev = self._comm_bytes_prev
                delta = sent if prev is None else sent - prev
                self._comm_bytes_prev = sent
                for rank, nbytes in enumerate(delta):
                    tel.gauge("comm_bytes", rank, float(nbytes))
        residuals: dict[str, float] = {}
        alerts: tuple = ()
        if self.health is not None:
            values = self.health.values()
            residuals = dict(values)
            if tel.enabled:
                imb = tel.peek_imbalance()
                if imb:
                    values["imbalance"] = max(imb.values())
            events = self.health.monitor.check(step_index, values)
            self.health.last_events = events
            alerts = tuple(e.to_dict() for e in events)
        if tel.enabled:
            tel.record_step(
                step_index,
                self.a,
                wall,
                residuals=residuals,
                alerts=alerts,
            )

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one full long-range step (with sub-cycling).

        When instrumentation is enabled the step is bracketed by a
        ``step`` span and a :class:`repro.instrument.StepRecord`
        capturing the per-section time and counter deltas.
        """
        if self._step_index >= self.config.n_steps:
            raise RuntimeError("simulation already at final time")
        a0 = self._edges[self._step_index]
        a1 = self._edges[self._step_index + 1]
        reg = get_registry()
        tel = get_telemetry()
        t0 = time.perf_counter()
        with reg.step(self._step_index), reg.span("step"):
            self.stepper.step(self.particles, a0, a1)
        wall = time.perf_counter() - t0
        self.a = a1
        self._step_index += 1
        if tel.enabled or self.health is not None:
            self._record_telemetry(tel, wall)
        logger.debug(
            "step %d/%d done: a = %.5f (z = %.3f)",
            self._step_index, self.config.n_steps, self.a, self.redshift,
        )

    def run(
        self,
        callback: Callable[["HACCSimulation"], None] | None = None,
    ) -> None:
        """Run to the final redshift, invoking ``callback`` after each step."""
        logger.debug(
            "run: %d particles, %d steps x %d subcycles, backend=%s",
            self.particles.n, self.config.n_steps,
            self.config.n_subcycles, self.config.backend,
        )
        while self._step_index < self.config.n_steps:
            self.step()
            if callback is not None:
                callback(self)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @property
    def redshift(self) -> float:
        return 1.0 / self.a - 1.0

    def interaction_count(self) -> int:
        """Cumulative short-range pair interactions (perf cross-check).

        Backed by the kernel's ``pp.interactions`` instrument counter, so
        this number, the ablation benchmarks, and a profiled run's
        counter table all agree by construction.
        """
        return self.kernel.interaction_count if self.kernel else 0

    def density_contrast(self, n: int | None = None) -> np.ndarray:
        """Current CIC density contrast on an ``n^3`` grid."""
        from repro.grid.cic import density_contrast

        return density_contrast(
            self.particles.positions,
            n if n is not None else self.config.grid(),
            self.config.box_size,
            self.particles.masses,
        )
