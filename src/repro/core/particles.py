"""Structure-of-arrays particle container.

HACC stores particle data as a collection of arrays — three coordinates,
three velocity components, mass, identifier — rather than an array of
structures (Section III), because the tree partition and the force kernel
stream through one component at a time.  NumPy's layout makes the same
choice natural: each field is one contiguous array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cosmology.initial_conditions import ZeldovichICs

__all__ = ["Particles"]


@dataclass
class Particles:
    """Particle phase-space state in comoving coordinates.

    Attributes
    ----------
    positions:
        (N, 3) comoving positions in [0, box_size), Mpc/h.
    momenta:
        (N, 3) comoving momenta ``p = a^2 dx/dt`` (code units, H0=1).
    masses:
        (N,) weights in units of the mean particle mass (1 for equal-mass
        runs; kept general for zoom-in configurations).
    ids:
        (N,) stable global identifiers.
    box_size:
        Periodic box side, Mpc/h.
    """

    positions: np.ndarray
    momenta: np.ndarray
    masses: np.ndarray
    ids: np.ndarray
    box_size: float

    def __post_init__(self) -> None:
        n = self.positions.shape[0]
        if self.positions.shape != (n, 3):
            raise ValueError(
                f"positions must be (N, 3), got {self.positions.shape}"
            )
        if self.momenta.shape != (n, 3):
            raise ValueError(
                f"momenta shape {self.momenta.shape} != positions"
            )
        if self.masses.shape != (n,):
            raise ValueError(f"masses must be (N,), got {self.masses.shape}")
        if self.ids.shape != (n,):
            raise ValueError(f"ids must be (N,), got {self.ids.shape}")
        if self.box_size <= 0:
            raise ValueError(f"box_size must be positive: {self.box_size}")

    # ------------------------------------------------------------------
    @classmethod
    def from_ics(cls, ics: ZeldovichICs) -> "Particles":
        """Wrap generated initial conditions (unit masses, fresh ids)."""
        n = ics.n_particles
        return cls(
            positions=ics.positions.copy(),
            momenta=ics.momenta.copy(),
            masses=np.ones(n, dtype=np.float64),
            ids=np.arange(n, dtype=np.int64),
            box_size=ics.box_size,
        )

    @classmethod
    def uniform_random(
        cls, n: int, box_size: float, seed: int = 0
    ) -> "Particles":
        """Cold, uniformly random particles (testing convenience)."""
        rng = np.random.default_rng(seed)
        return cls(
            positions=rng.uniform(0.0, box_size, (n, 3)),
            momenta=np.zeros((n, 3)),
            masses=np.ones(n),
            ids=np.arange(n, dtype=np.int64),
            box_size=box_size,
        )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.positions.shape[0]

    def wrap(self) -> None:
        """Fold positions back into the periodic box, in place."""
        np.mod(self.positions, self.box_size, out=self.positions)

    def kinetic_energy(self, a: float) -> float:
        """Total peculiar kinetic energy ``sum m v^2 / 2`` with
        ``v = p / a`` (comoving peculiar velocity ``a dx/dt``)."""
        if a <= 0:
            raise ValueError(f"scale factor must be positive: {a}")
        v2 = np.einsum("ij,ij->i", self.momenta, self.momenta) / a**2
        return float(0.5 * np.sum(self.masses * v2))

    def rms_displacement(self, reference: np.ndarray) -> float:
        """RMS periodic distance from reference positions (drift tests)."""
        d = self.positions - reference
        d -= self.box_size * np.round(d / self.box_size)
        return float(np.sqrt(np.mean(np.sum(d * d, axis=1))))

    def copy(self) -> "Particles":
        """Deep copy (snapshots, reversibility tests)."""
        return Particles(
            positions=self.positions.copy(),
            momenta=self.momenta.copy(),
            masses=self.masses.copy(),
            ids=self.ids.copy(),
            box_size=self.box_size,
        )

    def astype(self, dtype) -> "Particles":
        """Copy with the floating-point state cast to ``dtype``.

        The mixed-precision entry point: ``astype(np.float32)`` is how a
        run adopts the paper's single-precision particle state.  Ids stay
        int64; a no-op cast still returns fresh arrays (copy semantics).
        """
        dt = np.dtype(dtype)
        return Particles(
            positions=self.positions.astype(dt),
            momenta=self.momenta.astype(dt),
            masses=self.masses.astype(dt),
            ids=self.ids.copy(),
            box_size=self.box_size,
        )
