"""The 2nd-order split-operator symplectic SKS time stepper.

Equation (6) of the paper:

.. math:: M_{full}(t) = M_{lr}(t/2)\\,\\big(M_{sr}(t/n_c)\\big)^{n_c}\\,M_{lr}(t/2)

The long-range map is a *kick* (velocities updated from the PM force,
positions frozen); each short-range sub-cycle is itself a symmetric
stream-kick-stream composition.  The slowly varying long-range force is
frozen across the ``n_c`` sub-cycles, which is what makes the scheme
cheap: the expensive global Poisson solve happens twice per full step
while the local short-range force is evaluated ``n_c`` times.

Drift and kick weights are exact integrals over the expansion history
(momentum convention ``p = a^2 dx/dt``, units ``H0 = 1``):

.. math:: x \\mathrel{+}= p \\int \\frac{da}{a^3 E(a)}, \\qquad
          p \\mathrel{+}= g \\int \\frac{da}{a^2 E(a)},

where ``g = -grad phi`` solves ``del^2 phi = (3/2) Omega_m delta`` — the
explicit ``1/a`` of the comoving Poisson equation is folded into the kick
integral, so the force callbacks are scale-factor independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.integrate import quad

from repro.cosmology.background import Cosmology
from repro.core.particles import Particles
from repro.instrument import get_registry

__all__ = ["drift_coefficient", "kick_coefficient", "SubcycledStepper"]


def drift_coefficient(cosmology: Cosmology, a0: float, a1: float) -> float:
    """Exact stream (drift) weight ``int_{a0}^{a1} da / (a^3 E(a))``."""
    if a0 <= 0 or a1 <= 0:
        raise ValueError("scale factors must be positive")
    if a1 == a0:
        return 0.0
    val, _ = quad(
        lambda a: 1.0 / (a**3 * float(cosmology.efunc(a))), a0, a1
    )
    return val


def kick_coefficient(cosmology: Cosmology, a0: float, a1: float) -> float:
    """Exact kick weight ``int_{a0}^{a1} da / (a^2 E(a))``."""
    if a0 <= 0 or a1 <= 0:
        raise ValueError("scale factors must be positive")
    if a1 == a0:
        return 0.0
    val, _ = quad(
        lambda a: 1.0 / (a**2 * float(cosmology.efunc(a))), a0, a1
    )
    return val


@dataclass
class SubcycledStepper:
    """Advances particles through full SKS steps.

    Parameters
    ----------
    cosmology:
        Supplies the expansion history for the drift/kick integrals.
    long_range:
        Callback ``positions -> (N, 3)`` long-range (PM) acceleration.
    short_range:
        Callback ``positions -> (N, 3)`` short-range acceleration, or
        None for a PM-only run (in which case sub-cycling degenerates to
        pure streaming).
    n_subcycles:
        ``n_c`` in Eq. (6); the paper uses 5-10.

    Notes
    -----
    The maps are applied exactly in the order of Eq. (6); the symmetric
    composition makes the integrator second-order and time-reversible up
    to force-freezing errors, which the reversibility test exploits.
    """

    cosmology: Cosmology
    long_range: Callable[[np.ndarray], np.ndarray]
    short_range: Callable[[np.ndarray], np.ndarray] | None
    n_subcycles: int = 5

    #: cumulative operation counters for the performance cross-check
    n_long_range_evals: int = field(default=0, init=False)
    n_short_range_evals: int = field(default=0, init=False)
    n_substeps: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.n_subcycles < 1:
            raise ValueError(
                f"n_subcycles must be >= 1, got {self.n_subcycles}"
            )

    # ------------------------------------------------------------------
    def kick_long(self, particles: Particles, a0: float, a1: float) -> None:
        """Long-range kick map M_lr over [a0, a1]: velocities only."""
        acc = self.long_range(particles.positions)
        self.n_long_range_evals += 1
        with get_registry().span("sks.kick"):
            particles.momenta += acc * kick_coefficient(
                self.cosmology, a0, a1
            )

    def stream(self, particles: Particles, a0: float, a1: float) -> None:
        """Stream map: positions advance, velocities fixed."""
        with get_registry().span("sks.stream"):
            particles.positions += particles.momenta * drift_coefficient(
                self.cosmology, a0, a1
            )
            particles.wrap()

    def kick_short(self, particles: Particles, a0: float, a1: float) -> None:
        """Short-range kick map within a sub-cycle."""
        if self.short_range is None:
            return
        acc = self.short_range(particles.positions)
        self.n_short_range_evals += 1
        with get_registry().span("sks.kick"):
            particles.momenta += acc * kick_coefficient(
                self.cosmology, a0, a1
            )

    # ------------------------------------------------------------------
    def step(self, particles: Particles, a0: float, a1: float) -> None:
        """One full map  M_lr(1/2) (M_sr(1/nc))^nc M_lr(1/2)  over [a0, a1]."""
        if not 0 < a0 < a1:
            raise ValueError(f"need 0 < a0 < a1, got a0={a0}, a1={a1}")
        reg = get_registry()
        a_mid = 0.5 * (a0 + a1)
        self.kick_long(particles, a0, a_mid)
        edges = np.linspace(a0, a1, self.n_subcycles + 1)
        for b0, b1 in zip(edges[:-1], edges[1:]):
            b_mid = 0.5 * (b0 + b1)
            with reg.span("sks.subcycle"):
                self.stream(particles, b0, b_mid)
                self.kick_short(particles, b0, b1)
                self.stream(particles, b_mid, b1)
            self.n_substeps += 1
            reg.count("sks.substeps", 1)
        self.kick_long(particles, a_mid, a1)
