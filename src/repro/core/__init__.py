"""The HACC core: particle container, SKS time stepper, simulation driver."""

from repro.core.particles import Particles
from repro.core.timestepper import (
    SubcycledStepper,
    drift_coefficient,
    kick_coefficient,
)
from repro.core.simulation import HACCSimulation
from repro.core.diagnostics import EnergyState, LayzerIrvineMonitor
from repro.core.pipeline import ProductSchedule, SimulationPipeline

__all__ = [
    "Particles",
    "SubcycledStepper",
    "drift_coefficient",
    "kick_coefficient",
    "HACCSimulation",
    "EnergyState",
    "LayzerIrvineMonitor",
    "ProductSchedule",
    "SimulationPipeline",
]
