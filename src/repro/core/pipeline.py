"""Production run driver: simulation + scheduled in-situ analysis.

The paper's science test run "stored a slice of the three-dimensional
density at the final time ..., as well as a subset of the particles and
the mass fluctuation power spectrum at 10 intermediate snapshots" — a
run is not just time stepping but a schedule of in-situ products.  This
module provides that orchestration layer: declarative product schedules
(by redshift) attached to a :class:`HACCSimulation`, executed from the
step callback, with everything written through :mod:`repro.io`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.power import matter_power_spectrum
from repro.core.diagnostics import LayzerIrvineMonitor
from repro.core.simulation import HACCSimulation
from repro.io.snapshots import save_power_history, save_snapshot

__all__ = ["ProductSchedule", "SimulationPipeline"]


@dataclass(frozen=True)
class ProductSchedule:
    """Which products to produce at which redshifts.

    Attributes
    ----------
    power_redshifts:
        Measure (and store) P(k) when the run crosses these z.
    snapshot_redshifts:
        Write particle snapshots at these z.
    snapshot_subsample:
        Store every n-th particle (the paper's "subset of the particles").
    track_energy:
        Record the Layzer-Irvine energy ladder every step.
    power_grid_factor:
        Measurement grid relative to the force grid (2 = oversampled).
    """

    power_redshifts: tuple[float, ...] = ()
    snapshot_redshifts: tuple[float, ...] = ()
    snapshot_subsample: int = 1
    track_energy: bool = False
    power_grid_factor: int = 1

    def __post_init__(self) -> None:
        if self.snapshot_subsample < 1:
            raise ValueError(
                f"snapshot_subsample must be >= 1: {self.snapshot_subsample}"
            )
        if self.power_grid_factor < 1:
            raise ValueError(
                f"power_grid_factor must be >= 1: {self.power_grid_factor}"
            )
        for z_list in (self.power_redshifts, self.snapshot_redshifts):
            if any(z < 0 for z in z_list):
                raise ValueError("schedule redshifts must be >= 0")


class SimulationPipeline:
    """Run a simulation with scheduled in-situ products.

    Parameters
    ----------
    sim:
        A constructed (not yet run) simulation.
    schedule:
        The product schedule.
    output_dir:
        Where snapshots and the power history land (created if needed).

    Examples
    --------
    >>> import tempfile
    >>> from repro import HACCSimulation, SimulationConfig
    >>> cfg = SimulationConfig(box_size=64.0, n_per_dim=8, backend="pm",
    ...                        z_initial=25.0, z_final=10.0, n_steps=2)
    >>> pipe = SimulationPipeline(
    ...     HACCSimulation(cfg),
    ...     ProductSchedule(power_redshifts=(10.0,)),
    ...     tempfile.mkdtemp(),
    ... )
    >>> results = pipe.run()
    >>> len(results.power_spectra)
    1
    """

    def __init__(
        self,
        sim: HACCSimulation,
        schedule: ProductSchedule,
        output_dir: str | Path,
    ) -> None:
        self.sim = sim
        self.schedule = schedule
        self.output_dir = Path(output_dir)
        self.output_dir.mkdir(parents=True, exist_ok=True)
        self.power_spectra: list = []
        self.power_redshifts: list[float] = []
        self.snapshot_paths: list[Path] = []
        self.energy_monitor: LayzerIrvineMonitor | None = None
        if schedule.track_energy:
            self.energy_monitor = LayzerIrvineMonitor(
                sim.poisson, sim.cosmology.omega_m
            )
        self._pending_power = sorted(schedule.power_redshifts, reverse=True)
        self._pending_snap = sorted(schedule.snapshot_redshifts, reverse=True)

    # ------------------------------------------------------------------
    def _measure_power(self) -> None:
        cfg = self.sim.config
        ps = matter_power_spectrum(
            self.sim.particles.positions,
            cfg.box_size,
            cfg.grid() * self.schedule.power_grid_factor,
            subtract_shot_noise=False,
        )
        self.power_spectra.append(ps)
        self.power_redshifts.append(max(self.sim.redshift, 0.0))

    def _write_snapshot(self, z_label: float) -> None:
        path = save_snapshot(
            self.output_dir / f"snapshot_z{z_label:.2f}",
            self.sim.particles,
            self.sim.a,
            subsample=self.schedule.snapshot_subsample,
            metadata={"z_label": z_label, "z_actual": self.sim.redshift},
        )
        self.snapshot_paths.append(path)

    def _on_step(self, sim: HACCSimulation) -> None:
        z = sim.redshift
        while self._pending_power and z <= self._pending_power[0]:
            self._pending_power.pop(0)
            self._measure_power()
        while self._pending_snap and z <= self._pending_snap[0]:
            self._write_snapshot(self._pending_snap.pop(0))
        if self.energy_monitor is not None:
            self.energy_monitor.record(sim.particles, sim.a)

    # ------------------------------------------------------------------
    def run(self) -> "SimulationPipeline":
        """Execute the run; returns self with all products populated."""
        if self.energy_monitor is not None:
            self.energy_monitor.record(self.sim.particles, self.sim.a)
        self.sim.run(callback=self._on_step)
        if self.power_spectra:
            save_power_history(
                self.output_dir / "power_history",
                self.power_redshifts,
                self.power_spectra,
                metadata={
                    "box_size": self.sim.config.box_size,
                    "n_particles": self.sim.config.n_particles,
                    "backend": self.sim.config.backend,
                },
            )
        return self

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """What the run produced (for logs and tests)."""
        out = {
            "final_redshift": self.sim.redshift,
            "n_power_spectra": len(self.power_spectra),
            "n_snapshots": len(self.snapshot_paths),
            "interactions": self.sim.interaction_count(),
        }
        if self.energy_monitor is not None and len(
            self.energy_monitor.states
        ) >= 2:
            out["energy_residual"] = self.energy_monitor.relative_residual()
        return out
