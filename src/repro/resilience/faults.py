"""Deterministic fault injection: the chaos side of the resilience layer.

A 14-hour run on 96 BG/Q racks *will* see transient network errors, dying
nodes, and torn checkpoint writes; a code that cannot rehearse those
failures cannot claim to survive them.  This module provides a
process-global :class:`FaultPlan` (mirroring the instrument registry /
telemetry singleton pattern) holding *seeded, deterministic* fault
schedules which the production hot paths consult through cheap hooks:

* **transient comm failures** — :meth:`FaultPlan.comm_fault` is called at
  the top of every :class:`repro.parallel.comm.SimulatedComm` collective
  and raises :class:`TransientCommError` with a configured probability
  (optionally capped, optionally restricted to tags), *before* any
  traffic is recorded — a failed attempt moves no bytes.  The
  :class:`repro.resilience.retry.ResilientComm` wrapper turns these into
  bounded retries;
* **rank death** — :meth:`FaultPlan.ranks_to_kill` reports the ranks
  scheduled to die at the current simulation step (one-shot); the driver
  drops the corresponding overloaded domain and, unless recovery is
  disabled, reconstructs it from neighbor replicas
  (:mod:`repro.resilience.recovery`);
* **checkpoint corruption** — :meth:`FaultPlan.checkpoint_fault` hands
  the checkpoint writer a one-shot truncation/bit-flip instruction for
  the N-th write, exercising the checksum + rotation fallback path;
* **slow-downs** — :meth:`FaultPlan.sleep` stalls a named section
  (``"fft"``, ``"shortrange"``), the straggler-node failure mode the
  telemetry imbalance gauges are meant to expose.

The default plan is a :class:`NullFaultPlan` whose ``enabled`` is False:
every hook site is a single attribute test, so production runs pay
nothing.  All randomness comes from one ``random.Random(seed)`` owned by
the plan — the same plan replayed over the same run injects the same
faults, which is what makes chaos tests assertable.
"""

from __future__ import annotations

import fnmatch
import random
import time
from typing import Iterable

from repro.instrument.registry import get_registry

__all__ = [
    "TransientCommError",
    "NullFaultPlan",
    "FaultPlan",
    "get_fault_plan",
    "set_fault_plan",
    "enable_faults",
    "disable_faults",
    "use_faults",
]

#: recognized checkpoint corruption modes
CHECKPOINT_FAULT_MODES = ("truncate", "bitflip")


class TransientCommError(RuntimeError):
    """An injected send/recv failure; retryable by design."""

    def __init__(self, tag: str, attempt_info: str = "") -> None:
        self.tag = tag
        super().__init__(
            f"injected transient comm failure on {tag!r}" + attempt_info
        )


class NullFaultPlan:
    """The always-healthy default: no faults, no state, no overhead."""

    enabled = False

    def begin_step(self, index: int) -> None:  # pragma: no cover - trivial
        pass

    def comm_fault(self, tag: str) -> None:  # pragma: no cover - trivial
        pass

    def deaths_pending(self) -> bool:
        return False

    def ranks_to_kill(self) -> frozenset[int]:
        return frozenset()

    def checkpoint_fault(self):
        return None

    def sleep(self, section: str) -> None:  # pragma: no cover - trivial
        pass

    def note_recovery(self, kind: str, n: int = 1) -> None:
        pass

    def summary(self) -> dict:
        return {"enabled": False, "injected": {}, "recovered": {}}


class FaultPlan:
    """A deterministic, seeded schedule of injectable failures.

    Parameters
    ----------
    seed:
        Seed of the plan's private RNG; the only source of randomness
        for probabilistic faults (the comm failure draw and the default
        bit-flip position).

    Schedules are added with the chainable ``with_*`` methods::

        plan = (FaultPlan(seed=7)
                .with_comm_failures(0.2, max_failures=3)
                .with_rank_death(step=4, rank=1)
                .with_checkpoint_corruption(write_index=1, mode="truncate"))
        set_fault_plan(plan)

    Injection counts are tracked in :attr:`injected` (by kind) and
    recoveries reported back by the resilient layers in
    :attr:`recovered`; :meth:`summary` folds both into the
    ``faults_injected`` / ``faults_recovered`` numbers the bench records
    carry.
    """

    enabled = True

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._comm_specs: list[dict] = []
        self._deaths: dict[int, set[int]] = {}
        self._ckpt_faults: dict[int, dict] = {}
        self._slowdowns: dict[str, float] = {}
        self._step = -1
        self._ckpt_writes = 0
        self.injected: dict[str, int] = {}
        self.recovered: dict[str, int] = {}

    # ------------------------------------------------------------------
    # schedule builders (chainable)
    # ------------------------------------------------------------------
    def with_comm_failures(
        self,
        rate: float,
        tags: str | Iterable[str] | None = None,
        max_failures: int | None = None,
    ) -> "FaultPlan":
        """Fail matching collectives with probability ``rate`` per call.

        ``tags`` is an fnmatch pattern (or list of patterns) against the
        collective's tag (``"overload.*"``, ``"fft.transpose.zy"``);
        ``None`` matches everything.  ``max_failures`` caps the total
        injections of this spec so a retried operation eventually
        succeeds even at ``rate=1.0``.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"failure rate must be in [0, 1]: {rate}")
        if isinstance(tags, str):
            tags = (tags,)
        self._comm_specs.append(
            {
                "rate": float(rate),
                "tags": tuple(tags) if tags is not None else None,
                "remaining": (
                    int(max_failures) if max_failures is not None else None
                ),
            }
        )
        return self

    def with_rank_death(self, step: int, rank: int) -> "FaultPlan":
        """Kill ``rank`` at simulation step ``step`` (one-shot)."""
        if step < 0 or rank < 0:
            raise ValueError(
                f"step and rank must be >= 0: step={step}, rank={rank}"
            )
        self._deaths.setdefault(int(step), set()).add(int(rank))
        return self

    def with_checkpoint_corruption(
        self,
        write_index: int = 0,
        mode: str = "truncate",
        offset: int | None = None,
    ) -> "FaultPlan":
        """Corrupt the ``write_index``-th checkpoint written (0-based).

        ``mode`` is ``"truncate"`` (drop the file's tail at ``offset``
        bytes, default half the file) or ``"bitflip"`` (XOR one bit at
        ``offset``, default drawn from the plan RNG).
        """
        if mode not in CHECKPOINT_FAULT_MODES:
            raise ValueError(
                f"mode must be one of {CHECKPOINT_FAULT_MODES}: {mode!r}"
            )
        if write_index < 0:
            raise ValueError(f"write_index must be >= 0: {write_index}")
        self._ckpt_faults[int(write_index)] = {
            "mode": mode,
            "offset": None if offset is None else int(offset),
        }
        return self

    def with_slowdown(self, section: str, seconds: float) -> "FaultPlan":
        """Stall ``section`` (``"fft"``, ``"shortrange"``) per visit."""
        if seconds < 0:
            raise ValueError(f"slowdown must be >= 0 s: {seconds}")
        self._slowdowns[str(section)] = float(seconds)
        return self

    # ------------------------------------------------------------------
    # hooks (called from the production paths)
    # ------------------------------------------------------------------
    def begin_step(self, index: int) -> None:
        """Driver hook: the simulation is entering step ``index``."""
        self._step = int(index)

    def comm_fault(self, tag: str) -> None:
        """Maybe raise a :class:`TransientCommError` for this collective."""
        for spec in self._comm_specs:
            if spec["remaining"] is not None and spec["remaining"] <= 0:
                continue
            tags = spec["tags"]
            if tags is not None and not any(
                fnmatch.fnmatchcase(tag, pat) for pat in tags
            ):
                continue
            if self._rng.random() < spec["rate"]:
                if spec["remaining"] is not None:
                    spec["remaining"] -= 1
                self._note_injection("comm")
                raise TransientCommError(tag)

    def deaths_pending(self) -> bool:
        """True when a rank death is scheduled for the current step.

        Non-consuming peek: lets the overlapped dispatch path decide
        *before* submitting work whether this step needs the synchronous
        recovery protocol, without spending the one-shot schedule entry
        that :meth:`ranks_to_kill` consumes.
        """
        return bool(self._deaths.get(self._step))

    def ranks_to_kill(self) -> frozenset[int]:
        """Ranks scheduled to die at the current step; one-shot.

        The first caller at a given step receives the rank set and the
        schedule entry is consumed — death is an instantaneous event,
        and after recovery (or the loss being absorbed) the system is
        healthy again.
        """
        dead = self._deaths.pop(self._step, None)
        if not dead:
            return frozenset()
        self._note_injection("rank_death", len(dead))
        return frozenset(dead)

    def checkpoint_fault(self) -> dict | None:
        """One-shot corruption instruction for the current write, if any.

        Every call advances the plan's write counter; the checkpoint
        writer calls this exactly once per file written.
        """
        idx = self._ckpt_writes
        self._ckpt_writes += 1
        spec = self._ckpt_faults.pop(idx, None)
        if spec is None:
            return None
        self._note_injection("checkpoint")
        return dict(spec)

    def sleep(self, section: str) -> None:
        """Stall a named section if a slowdown is scheduled for it."""
        seconds = self._slowdowns.get(section, 0.0)
        if seconds > 0.0:
            self._note_injection("slowdown")
            time.sleep(seconds)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _note_injection(self, kind: str, n: int = 1) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + n
        reg = get_registry()
        if reg.enabled:
            reg.count(f"faults.{kind}", n)

    def note_recovery(self, kind: str, n: int = 1) -> None:
        """Resilient layers report a survived fault (``kind`` as above)."""
        self.recovered[kind] = self.recovered.get(kind, 0) + n
        reg = get_registry()
        if reg.enabled:
            reg.count(f"faults.recovered.{kind}", n)

    def rng_uniform(self, n: int) -> int:
        """A deterministic draw in ``[0, n)`` from the plan's RNG."""
        return self._rng.randrange(max(1, int(n)))

    def faults_injected(self) -> int:
        return sum(self.injected.values())

    def faults_recovered(self) -> int:
        return sum(self.recovered.values())

    def summary(self) -> dict:
        """Plain-dict snapshot for bench records and end-of-run logs."""
        return {
            "enabled": True,
            "seed": self.seed,
            "injected": dict(self.injected),
            "recovered": dict(self.recovered),
            "faults_injected": self.faults_injected(),
            "faults_recovered": self.faults_recovered(),
        }


# ----------------------------------------------------------------------
# process-global active plan (mirrors the registry/telemetry pattern)
# ----------------------------------------------------------------------
_active: FaultPlan | NullFaultPlan = NullFaultPlan()


def get_fault_plan() -> FaultPlan | NullFaultPlan:
    """The currently active fault plan (the shared no-op by default)."""
    return _active


def set_fault_plan(
    plan: FaultPlan | NullFaultPlan,
) -> FaultPlan | NullFaultPlan:
    """Install ``plan`` as the active one; returns it."""
    global _active
    _active = plan
    return _active


def enable_faults(seed: int = 0) -> FaultPlan:
    """Install and return a fresh empty :class:`FaultPlan`."""
    return set_fault_plan(FaultPlan(seed=seed))


def disable_faults() -> NullFaultPlan:
    """Restore the no-op plan; returns it."""
    return set_fault_plan(NullFaultPlan())


class use_faults:
    """Context manager: temporarily install ``plan`` (tests)."""

    def __init__(self, plan: FaultPlan | NullFaultPlan) -> None:
        self.plan = plan
        self._previous: FaultPlan | NullFaultPlan | None = None

    def __enter__(self) -> FaultPlan | NullFaultPlan:
        self._previous = get_fault_plan()
        return set_fault_plan(self.plan)

    def __exit__(self, *exc) -> None:
        assert self._previous is not None
        set_fault_plan(self._previous)
