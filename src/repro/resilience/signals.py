"""Graceful shutdown on SIGTERM/SIGINT: checkpoint the tail, then exit.

On a shared machine a run ends by preemption more often than by reaching
``z_final`` — the batch scheduler (or the campaign supervisor, which
sends SIGTERM on a per-run timeout) revokes the allocation and gives the
process a short grace window.  Until this module, ``src/`` installed no
signal handlers at all, so a preempted run died mid-step and lost
everything since the last scheduled checkpoint, and its telemetry stream
dangled without an ``end`` record.

:func:`graceful_shutdown` converts the first delivery of each handled
signal into a :class:`ShutdownRequested` exception raised at the next
bytecode boundary.  It derives from :class:`BaseException` (like
``KeyboardInterrupt``, and for the same reason): blanket ``except
Exception`` recovery code must not swallow an operator's termination
request.  The CLI catches it, asks the active :class:`~repro.io.
checkpoint.Checkpointer` for a final forced checkpoint, flushes the
telemetry ``end`` record with verdict ``INTERRUPTED``, and exits with
:data:`INTERRUPTED_EXIT_CODE` — distinct from both success and crash, so
a supervisor can tell "cleanly preempted, resumable" from "broken".

A second delivery of the same signal falls through to the previous
handler (normally the Python default, i.e. immediate death) so a hung
teardown can still be killed by hand.
"""

from __future__ import annotations

import signal
import threading
from typing import Callable, Iterable

__all__ = [
    "INTERRUPTED_EXIT_CODE",
    "ShutdownRequested",
    "graceful_shutdown",
]

#: exit status of a run that checkpointed and stopped on SIGTERM/SIGINT
#: (BSD ``EX_TEMPFAIL``: "try again later" — exactly the resume
#: semantics); distinct from 0 (done), 1 (error) and 2 (CRIT health)
INTERRUPTED_EXIT_CODE = 75


class ShutdownRequested(BaseException):
    """A handled termination signal arrived; unwind and checkpoint.

    Derives from :class:`BaseException` so ordinary ``except Exception``
    blocks cannot absorb it (the ``KeyboardInterrupt`` precedent).
    """

    def __init__(self, signum: int) -> None:
        self.signum = int(signum)
        try:
            name = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            name = str(signum)
        self.signal_name = name
        super().__init__(f"shutdown requested by {name}")


class graceful_shutdown:
    """Context manager: raise :class:`ShutdownRequested` on termination.

    Parameters
    ----------
    signals:
        Signal numbers to intercept (default ``SIGTERM`` and
        ``SIGINT``).
    on_signal:
        Optional callback invoked from the handler (before the raise)
        with the signal number — e.g. to log which signal arrived.

    Notes
    -----
    Signal handlers can only be installed from the main thread; used
    anywhere else the context degrades to a no-op (``installed`` stays
    False) rather than failing, so library code can wrap itself
    unconditionally.  Handlers are chained one-shot: the first delivery
    restores the previous handler and raises, the second falls through
    to that previous handler.
    """

    def __init__(
        self,
        signals: Iterable[int] = (signal.SIGTERM, signal.SIGINT),
        on_signal: Callable[[int], None] | None = None,
    ) -> None:
        self.signals = tuple(signals)
        self.on_signal = on_signal
        self.installed = False
        self.triggered: int | None = None
        self._previous: dict[int, object] = {}

    def _handler(self, signum, frame) -> None:
        self.triggered = signum
        # one-shot: a second delivery reaches the previous handler
        previous = self._previous.get(signum, signal.SIG_DFL)
        try:
            signal.signal(signum, previous)
        except (ValueError, OSError):  # pragma: no cover - teardown race
            pass
        if self.on_signal is not None:
            self.on_signal(signum)
        raise ShutdownRequested(signum)

    def __enter__(self) -> "graceful_shutdown":
        if threading.current_thread() is not threading.main_thread():
            return self
        for signum in self.signals:
            self._previous[signum] = signal.getsignal(signum)
            signal.signal(signum, self._handler)
        self.installed = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.installed:
            for signum, previous in self._previous.items():
                try:
                    if signal.getsignal(signum) == self._handler:
                        signal.signal(signum, previous)
                except (ValueError, OSError):  # pragma: no cover
                    pass
            self.installed = False
        return False
