"""Fault tolerance: injection, resilient comm, and rank recovery.

Three pieces (see the module docstrings for the design):

* :mod:`repro.resilience.faults` — the process-global, seeded
  :class:`~repro.resilience.faults.FaultPlan` and the hook API the
  production paths consult (transient comm failures, rank death,
  checkpoint corruption, section slow-downs);
* :mod:`repro.resilience.retry` — :class:`~repro.resilience.retry.
  ResilientComm`, a drop-in communicator whose collectives retry under
  an exponential-backoff :class:`~repro.resilience.retry.RetryPolicy`;
* :mod:`repro.resilience.recovery` — reconstruction of a dead rank's
  domain from the neighbors' particle-overload replicas.

This ``__init__`` resolves its exports lazily (PEP 562): the fault hooks
compiled into :mod:`repro.parallel.comm` import
``repro.resilience.faults`` while ``repro.parallel.comm`` itself is
being imported, and an eager ``from .retry import ...`` here would close
that cycle (retry subclasses ``SimulatedComm``).
"""

from __future__ import annotations

_EXPORTS = {
    "TransientCommError": "repro.resilience.faults",
    "NullFaultPlan": "repro.resilience.faults",
    "FaultPlan": "repro.resilience.faults",
    "get_fault_plan": "repro.resilience.faults",
    "set_fault_plan": "repro.resilience.faults",
    "enable_faults": "repro.resilience.faults",
    "disable_faults": "repro.resilience.faults",
    "use_faults": "repro.resilience.faults",
    "CommGaveUpError": "repro.resilience.retry",
    "RetryPolicy": "repro.resilience.retry",
    "ResilientComm": "repro.resilience.retry",
    "RecoveryReport": "repro.resilience.recovery",
    "harvest_replicas": "repro.resilience.recovery",
    "recover_ranks": "repro.resilience.recovery",
    "INTERRUPTED_EXIT_CODE": "repro.resilience.signals",
    "ShutdownRequested": "repro.resilience.signals",
    "graceful_shutdown": "repro.resilience.signals",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
