"""Resilient communication: deadline-bounded retries with backoff.

On a torus the transient failure modes (link CRC errors, ECC-corrected
memory stalls, software timeouts) are routinely absorbed by retrying the
operation; only persistent failures should surface.  This module wraps
:class:`repro.parallel.comm.SimulatedComm` so every collective —
point-to-point ``exchange`` batches, ``alltoallv`` transposes, the tree
collectives — is retried under an exponential-backoff
:class:`RetryPolicy` when the fault-injection layer raises a
:class:`~repro.resilience.faults.TransientCommError`:

* each retry increments the ``comm.retries`` instrument counter and
  emits a WARN :class:`~repro.instrument.HealthEvent` into an attached
  health monitor;
* exhausting the attempt budget or the wall-clock deadline increments
  ``comm.gave_up``, emits a CRIT event, and raises
  :class:`CommGaveUpError` — the unrecoverable outcome a run's health
  verdict must reflect;
* a retry that eventually succeeds reports ``note_recovery("comm")`` to
  the active fault plan, so chaos runs can assert injected == recovered.

Failed attempts are charged nothing: the fault hook fires before any
traffic is recorded, so :class:`~repro.parallel.comm.CommStats` sees
exactly one successful delivery regardless of how many attempts it took.
Backoff delays are deterministic (the jitter comes from a seeded RNG)
and the sleep/clock functions are injectable, so tests assert the exact
delay sequence without waiting on real time.
"""

from __future__ import annotations

import logging
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.instrument.registry import get_registry
from repro.parallel.comm import CommStats, SimulatedComm
from repro.resilience.faults import TransientCommError, get_fault_plan

__all__ = ["CommGaveUpError", "RetryPolicy", "ResilientComm"]

logger = logging.getLogger(__name__)


class CommGaveUpError(RuntimeError):
    """A collective failed through every allowed retry."""

    def __init__(self, tag: str, attempts: int, elapsed: float) -> None:
        self.tag = tag
        self.attempts = attempts
        self.elapsed = elapsed
        super().__init__(
            f"comm operation {tag!r} gave up after {attempts} attempts "
            f"({elapsed:.3f}s)"
        )


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter and a wall-clock deadline.

    Parameters
    ----------
    max_attempts:
        Total tries per operation (first attempt included).
    base_delay:
        Sleep before the first retry, seconds; doubles (``multiplier``)
        per retry up to ``max_delay``.
    multiplier, max_delay:
        Backoff growth factor and per-retry cap.
    deadline:
        Optional wall-clock budget per operation, seconds; once
        exceeded, the operation gives up even with attempts remaining.
    jitter:
        Fractional jitter: each delay is scaled by ``1 + U(0, jitter)``
        drawn from the policy's seeded RNG (deterministic sequence).
    seed:
        Jitter RNG seed.
    sleep, clock:
        Injectable for tests (default ``time.sleep`` /
        ``time.monotonic``).
    monitor:
        Optional :class:`repro.instrument.HealthMonitor`; retries emit
        WARN ``comm_retry`` events, give-ups emit CRIT ``comm_gave_up``.
    """

    max_attempts: int = 4
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    deadline: float | None = None
    jitter: float = 0.5
    seed: int = 0
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic
    monitor: object | None = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0: {self.jitter}")
        self._rng = random.Random(self.seed)

    def delay(self, retry_index: int) -> float:
        """The jittered backoff before the ``retry_index``-th retry."""
        raw = min(
            self.base_delay * self.multiplier**retry_index, self.max_delay
        )
        if self.jitter:
            raw *= 1.0 + self._rng.random() * self.jitter
        return raw

    def _emit(self, severity: str, check: str, message: str) -> None:
        if self.monitor is not None:
            self.monitor.emit(-1, severity, check, message=message)

    def run(self, fn: Callable, tag: str):
        """Call ``fn`` under this policy; the resilient-comm hot loop."""
        start = self.clock()
        reg = get_registry()
        for attempt in range(1, self.max_attempts + 1):
            try:
                result = fn()
            except TransientCommError as exc:
                elapsed = self.clock() - start
                out_of_budget = attempt >= self.max_attempts or (
                    self.deadline is not None and elapsed >= self.deadline
                )
                if out_of_budget:
                    if reg.enabled:
                        reg.count("comm.gave_up", 1)
                    self._emit(
                        "CRIT",
                        "comm_gave_up",
                        f"{tag}: gave up after {attempt} attempts "
                        f"({elapsed:.3f}s)",
                    )
                    logger.critical(
                        "comm: %s gave up after %d attempts (%.3fs)",
                        tag, attempt, elapsed,
                    )
                    raise CommGaveUpError(tag, attempt, elapsed) from exc
                if reg.enabled:
                    reg.count("comm.retries", 1)
                self._emit(
                    "WARN",
                    "comm_retry",
                    f"{tag}: transient failure, retry {attempt}",
                )
                logger.warning(
                    "comm: transient failure on %s (attempt %d/%d), "
                    "backing off", tag, attempt, self.max_attempts,
                )
                self.sleep(self.delay(attempt - 1))
            else:
                if attempt > 1:
                    plan = get_fault_plan()
                    if plan.enabled:
                        plan.note_recovery("comm")
                return result
        raise AssertionError("unreachable")  # pragma: no cover


class ResilientComm(SimulatedComm):
    """A :class:`SimulatedComm` whose collectives retry under a policy.

    Drop-in replacement: construct with the same ``(size, stats,
    members)`` plus a :class:`RetryPolicy`; sub-communicators created by
    :meth:`split` share the parent's policy (and therefore its jitter
    RNG and health monitor), mirroring how the base class shares
    :class:`~repro.parallel.comm.CommStats`.
    """

    def __init__(
        self,
        size: int,
        stats: CommStats | None = None,
        members: Sequence[int] | None = None,
        policy: RetryPolicy | None = None,
    ) -> None:
        super().__init__(size, stats=stats, members=members)
        self.policy = policy if policy is not None else RetryPolicy()

    def _child(
        self, size: int, stats: CommStats, members: tuple[int, ...]
    ) -> "ResilientComm":
        return ResilientComm(
            size, stats=stats, members=members, policy=self.policy
        )

    # collectives -------------------------------------------------------
    def alltoallv(
        self, sendbufs: Sequence[Sequence], tag: str = "alltoallv"
    ) -> list[list]:
        return self.policy.run(
            lambda: super(ResilientComm, self).alltoallv(sendbufs, tag=tag),
            tag,
        )

    def exchange(
        self, sends: Mapping[tuple[int, int], np.ndarray], tag: str = "exchange"
    ) -> dict[tuple[int, int], np.ndarray]:
        return self.policy.run(
            lambda: super(ResilientComm, self).exchange(sends, tag=tag), tag
        )

    def allreduce(
        self, values: Sequence, op: Callable = sum, tag: str = "allreduce"
    ):
        return self.policy.run(
            lambda: super(ResilientComm, self).allreduce(values, op=op, tag=tag),
            tag,
        )

    def allgather(self, values: Sequence, tag: str = "allgather") -> list:
        return self.policy.run(
            lambda: super(ResilientComm, self).allgather(values, tag=tag), tag
        )

    def barrier(self, tag: str = "barrier") -> None:
        return self.policy.run(
            lambda: super(ResilientComm, self).barrier(tag=tag), tag
        )
