"""Rank-loss recovery from particle-overload replicas.

The paper's particle overloading (Sec. II) replicates *complete
particles* — positions, momenta, masses, ids — in a shell of depth ``d``
around every rank domain.  That redundancy, bought for communication
avoidance, is exactly what a resilient code can spend on fault
tolerance: when a rank dies, every one of its particles within ``d`` of
the domain boundary still exists bit-for-bit as a passive replica on a
neighbor.  Recovery is then:

1. harvest, from the surviving domains, all passive replicas whose home
   block is a dead rank (deduplicated by global particle id — corner
   particles are replicated to several neighbors);
2. merge them with the survivors' active particles into a recovered
   global set;
3. redistribute via :meth:`repro.parallel.overload.OverloadExchange.
   distribute` (traffic charged under ``"overload.recover"``), which
   respawns the dead rank's domain with a correctly rebuilt overload
   shell everywhere.

Particles deeper than ``d`` inside the dead domain have no replica
anywhere — they are reported as *lost* in the :class:`RecoveryReport`
and simply drop out of this force evaluation (the driver leaves their
short-range kick at zero; the long-range PM force is global and
unaffected).  A production deployment would re-read them from the last
checkpoint; the chaos suite sizes the overload depth so the lost
fraction is small and asserts the recovered run's power spectrum stays
within the overload tolerance of a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.parallel.overload import OverloadedDomain, OverloadExchange

__all__ = ["RecoveryReport", "harvest_replicas", "recover_ranks"]


@dataclass
class RecoveryReport:
    """Outcome of one rank-recovery episode.

    ``n_recovered``/``n_lost`` count the dead ranks' *active* particles
    that were (not) reconstructible from surviving replicas;
    ``recovered_by_rank`` breaks the recovered count down per dead rank.
    """

    dead_ranks: tuple[int, ...]
    n_recovered: int
    n_lost: int
    recovered_by_rank: dict[int, int] = field(default_factory=dict)
    lost_ids: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    @property
    def n_expected(self) -> int:
        return self.n_recovered + self.n_lost

    def coverage(self) -> float:
        """Recovered fraction of the dead ranks' active particles."""
        total = self.n_expected
        return self.n_recovered / total if total else 1.0

    def to_dict(self) -> dict:
        return {
            "dead_ranks": list(self.dead_ranks),
            "n_recovered": self.n_recovered,
            "n_lost": self.n_lost,
            "coverage": self.coverage(),
            "recovered_by_rank": dict(self.recovered_by_rank),
        }


def harvest_replicas(
    survivors: list[OverloadedDomain],
    dead_ranks: frozenset[int] | set[int],
    exchange: OverloadExchange,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Collect deduplicated replicas of the dead ranks' particles.

    Returns ``(positions, momenta, masses, ids, home_ranks)`` of every
    particle whose home block belongs to a dead rank and which survives
    as a passive replica on at least one surviving domain.  Positions
    are wrapped back into the primary box (replicas near a periodic seam
    are stored in the neighbor's unwrapped frame).
    """
    decomp = exchange.decomposition
    box = decomp.box_size
    pos_parts, mom_parts, mas_parts, id_parts = [], [], [], []
    for dom in survivors:
        passive = ~dom.active
        if not passive.any():
            continue
        pos = np.mod(dom.positions[passive], box)
        home = decomp.assign(pos)
        take = np.isin(home, list(dead_ranks))
        if not take.any():
            continue
        pos_parts.append(pos[take])
        mom_parts.append(dom.momenta[passive][take])
        mas_parts.append(dom.masses[passive][take])
        id_parts.append(dom.ids[passive][take])
    if not pos_parts:
        empty3 = np.empty((0, 3))
        return (
            empty3,
            empty3.copy(),
            np.empty(0),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    pos = np.concatenate(pos_parts, axis=0)
    mom = np.concatenate(mom_parts, axis=0)
    mas = np.concatenate(mas_parts)
    pid = np.concatenate(id_parts)
    # corner/edge particles live on several neighbors: keep one copy each
    _, first = np.unique(pid, return_index=True)
    pos, mom, mas, pid = pos[first], mom[first], mas[first], pid[first]
    return pos, mom, mas, pid, exchange.decomposition.assign(pos)


def recover_ranks(
    exchange: OverloadExchange,
    domains: list[OverloadedDomain],
    dead_ranks: frozenset[int] | set[int],
    tag: str = "overload.recover",
) -> tuple[list[OverloadedDomain], RecoveryReport]:
    """Rebuild a domain set after losing ``dead_ranks``.

    ``domains`` is the *pre-death* domain list (the driver still holds
    it when the death is injected); the dead entries are used only to
    measure what should have been recovered — the reconstruction itself
    touches survivor data exclusively.  Returns the recovered domain
    list (every rank present again, overload shells rebuilt) and a
    :class:`RecoveryReport`.
    """
    dead_ranks = frozenset(int(r) for r in dead_ranks)
    if not dead_ranks:
        return domains, RecoveryReport((), 0, 0)
    known = {dom.rank for dom in domains}
    missing = dead_ranks - known
    if missing:
        raise ValueError(
            f"dead ranks {sorted(missing)} not present in the domain set"
        )
    survivors = [d for d in domains if d.rank not in dead_ranks]
    dead_doms = [d for d in domains if d.rank in dead_ranks]

    r_pos, r_mom, r_mas, r_pid, r_home = harvest_replicas(
        survivors, dead_ranks, exchange
    )

    # what the dead ranks owned, for loss accounting only
    expected_ids = (
        np.concatenate([d.ids[d.active] for d in dead_doms])
        if dead_doms
        else np.empty(0, dtype=np.int64)
    )
    lost_ids = np.setdiff1d(expected_ids, r_pid)
    recovered_by_rank = {
        int(r): int(np.count_nonzero(r_home == r)) for r in sorted(dead_ranks)
    }

    parts_pos = [r_pos] + [d.positions[d.active] for d in survivors]
    parts_mom = [r_mom] + [d.momenta[d.active] for d in survivors]
    parts_mas = [r_mas] + [d.masses[d.active] for d in survivors]
    parts_pid = [r_pid] + [d.ids[d.active] for d in survivors]
    new_domains = exchange.distribute(
        np.concatenate(parts_pos, axis=0),
        np.concatenate(parts_mom, axis=0),
        np.concatenate(parts_mas),
        np.concatenate(parts_pid),
        tag=tag,
    )
    report = RecoveryReport(
        dead_ranks=tuple(sorted(dead_ranks)),
        n_recovered=int(r_pid.size),
        n_lost=int(lost_ids.size),
        recovered_by_rank=recovered_by_rank,
        lost_ids=lost_ids,
    )
    return new_domains, report
