"""HACC-style FFT substrate.

The paper stresses that HACC ships "its own scalable, high performance 3-D
FFT routine implemented using a 2-D pencil decomposition" and depends on no
vendor library.  Mirroring that:

* :mod:`repro.fft.local` — a from-scratch sequential 1-D FFT (mixed-radix
  Cooley-Tukey with a Bluestein fallback for large prime lengths, so
  non-power-of-two sizes such as 6400 or 9216 work), batched over rows and
  verified against ``numpy.fft`` in the tests.
* :mod:`repro.fft.pencil` — the 2-D pencil-decomposed distributed 3-D FFT
  (``Nrank < N^2``) built from interleaved transposes and sequential 1-D
  FFT passes over the simulated communicator.
* :mod:`repro.fft.slab` — the original slab-decomposed FFT
  (``Nrank < N``), kept as the Roadrunner-era baseline for Fig. 6.
"""

from repro.fft.local import (
    SequentialFFT,
    clear_plan_caches,
    factor_chain,
    fft1d,
    ifft1d,
    plan_cache_info,
)
from repro.fft.pencil import PencilFFT
from repro.fft.slab import SlabFFT

__all__ = [
    "fft1d",
    "ifft1d",
    "SequentialFFT",
    "PencilFFT",
    "SlabFFT",
    "factor_chain",
    "plan_cache_info",
    "clear_plan_caches",
]
