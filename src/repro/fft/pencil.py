"""2-D pencil-decomposed distributed 3-D FFT.

This is the algorithm that gives HACC its weak-scaling guarantee
(Section IV.A of the paper): with ranks arranged in a ``pr x pc`` grid the
scalability limit is ``Nrank < N^2`` instead of the slab decomposition's
``Nrank < N``.  The transform is composed of *interleaved transposition and
sequential 1-D FFT steps* where each transposition involves only a subset
of ranks (one row or one column of the rank grid):

1. 1-D FFTs along z on the initial z-pencils ``(N/pr, N/pc, N)``;
2. z<->y transpose inside each **row** communicator (``pc`` ranks);
3. 1-D FFTs along y on y-pencils ``(N/pr, N, N/pc)``;
4. y<->x transpose inside each **column** communicator (``pr`` ranks);
5. 1-D FFTs along x on x-pencils ``(N, N/pr, N/pc)``.

The inverse runs the same schedule backwards.  All message traffic flows
through :class:`repro.parallel.SimulatedComm` and is recorded under the
tags ``"fft.transpose.zy"`` / ``"fft.transpose.yx"``; the machine model
converts those byte counts into torus time for Table I / Fig. 6.

Non-power-of-two sizes are supported (the paper runs 6400^3, 9216^3,
15360^3 grids) — the only requirement is that ``pr`` and ``pc`` divide N.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fft.local import SequentialFFT
from repro.instrument import get_registry, timed
from repro.parallel.comm import SimulatedComm
from repro.resilience.faults import get_fault_plan

__all__ = ["PencilFFT", "PencilLayout"]


@dataclass(frozen=True)
class PencilLayout:
    """Describes which global sub-block a rank's local array covers.

    ``axes_blocked`` names the two decomposed axes; the remaining axis is
    fully local ("the pencil direction").
    """

    kind: str  # "z-pencil", "y-pencil" or "x-pencil"
    pr: int
    pc: int
    n: int

    def local_shape(self) -> tuple[int, int, int]:
        n, pr, pc = self.n, self.pr, self.pc
        if self.kind == "z-pencil":
            return (n // pr, n // pc, n)
        if self.kind == "y-pencil":
            return (n // pr, n, n // pc)
        if self.kind == "x-pencil":
            return (n, n // pr, n // pc)
        raise ValueError(f"unknown layout kind {self.kind!r}")


class PencilFFT:
    """Distributed 3-D FFT over a ``pr x pc`` rank grid.

    Parameters
    ----------
    n:
        Grid points per dimension (``pr | n`` and ``pc | n`` required).
    pr, pc:
        Rank grid dimensions; total ranks ``pr * pc``.
    comm:
        Optional shared :class:`SimulatedComm` of size ``pr * pc``.
    fft:
        Sequential 1-D FFT backend (native or numpy).

    Notes
    -----
    Rank ``(i, j)`` is linearized as ``rank = i * pc + j``.  Rank-local
    blocks are passed around as ``list`` s indexed by rank — the in-process
    stand-in for per-process memory.

    Examples
    --------
    >>> import numpy as np
    >>> p = PencilFFT(8, 2, 2)
    >>> x = np.random.default_rng(0).standard_normal((8, 8, 8))
    >>> k = p.gather(p.forward(p.scatter(x)), "x-pencil")
    >>> np.allclose(k, np.fft.fftn(x))
    True
    """

    def __init__(
        self,
        n: int,
        pr: int,
        pc: int,
        comm: SimulatedComm | None = None,
        fft: SequentialFFT | None = None,
    ) -> None:
        if n < 2:
            raise ValueError(f"grid size must be >= 2, got {n}")
        if pr < 1 or pc < 1:
            raise ValueError(f"rank grid must be positive, got {pr}x{pc}")
        if n % pr or n % pc:
            raise ValueError(
                f"pr={pr} and pc={pc} must divide the grid size n={n}"
            )
        if pr * pc > n * n:
            raise ValueError(
                "pencil decomposition requires Nrank <= N^2: "
                f"{pr * pc} ranks for N={n}"
            )
        self.n = int(n)
        self.pr = int(pr)
        self.pc = int(pc)
        self.size = self.pr * self.pc
        self.comm = comm if comm is not None else SimulatedComm(self.size)
        if self.comm.size != self.size:
            raise ValueError(
                f"communicator size {self.comm.size} != pr*pc = {self.size}"
            )
        self.fft = fft if fft is not None else SequentialFFT()
        # row communicator r_i groups ranks {i*pc + j : j}, column
        # communicator c_j groups {i*pc + j : i}.
        self._row_comms = self.comm.split(
            [rank // self.pc for rank in range(self.size)]
        )
        self._col_comms = self.comm.split(
            [rank % self.pc for rank in range(self.size)]
        )
        # per-(transpose, rank) receive-assembly buffers, reused across
        # calls: a step makes 8 transposes (1 forward + 3 inverse, 2
        # transposes each), all with identical shapes
        self._transpose_bufs: dict[tuple[str, int], np.ndarray] = {}

    def _concat_into(
        self, key: str, rank: int, parts: list[np.ndarray], axis: int
    ) -> np.ndarray:
        """``np.concatenate`` into a reused per-(transpose, rank) buffer.

        Transpose outputs are consumed immediately by the next 1-D FFT
        pass (which allocates fresh arrays), so the buffers never escape
        ``forward``/``inverse`` and reuse across calls is safe.
        """
        shape = list(parts[0].shape)
        shape[axis] = sum(p.shape[axis] for p in parts)
        dtype = np.result_type(*[p.dtype for p in parts])
        bkey = (key, rank)
        buf = self._transpose_bufs.get(bkey)
        if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
            buf = np.empty(tuple(shape), dtype=dtype)
            self._transpose_bufs[bkey] = buf
        np.concatenate(parts, axis=axis, out=buf)
        return buf

    @property
    def transpose_buffer_bytes(self) -> int:
        """Bytes currently held by the reused transpose buffers."""
        return sum(b.nbytes for b in self._transpose_bufs.values())

    # ------------------------------------------------------------------
    def rank_of(self, i: int, j: int) -> int:
        """Linear rank id for rank-grid coordinates (i, j)."""
        return i * self.pc + j

    def layout(self, kind: str) -> PencilLayout:
        return PencilLayout(kind, self.pr, self.pc, self.n)

    # ------------------------------------------------------------------
    # scatter / gather (test and driver convenience; a production code
    # would never hold the global array, but the reproduction runs at
    # sizes where doing so for verification is cheap)
    # ------------------------------------------------------------------
    def scatter(self, field: np.ndarray) -> list[np.ndarray]:
        """Split a global (n, n, n) array into z-pencil blocks per rank."""
        n, pr, pc = self.n, self.pr, self.pc
        if field.shape != (n, n, n):
            raise ValueError(
                f"field shape {field.shape} != {(n, n, n)}"
            )
        with get_registry().span("fft.pencil.scatter"):
            nx, ny = n // pr, n // pc
            blocks = []
            for i in range(pr):
                for j in range(pc):
                    blocks.append(
                        np.ascontiguousarray(
                            field[
                                i * nx : (i + 1) * nx, j * ny : (j + 1) * ny, :
                            ]
                        )
                    )
        return blocks

    def gather(self, blocks: list[np.ndarray], kind: str) -> np.ndarray:
        """Reassemble rank-local blocks into the global array."""
        n, pr, pc = self.n, self.pr, self.pc
        dtype = np.result_type(*[b.dtype for b in blocks])
        with get_registry().span("fft.pencil.gather"):
            out = self._gather(blocks, kind, dtype)
        return out

    def _gather(self, blocks, kind: str, dtype) -> np.ndarray:
        n, pr, pc = self.n, self.pr, self.pc
        out = np.empty((n, n, n), dtype=dtype)
        nx, ny, nz = n // pr, n // pc, n // pc
        for i in range(pr):
            for j in range(pc):
                b = blocks[self.rank_of(i, j)]
                if kind == "z-pencil":
                    out[i * nx : (i + 1) * nx, j * ny : (j + 1) * ny, :] = b
                elif kind == "y-pencil":
                    out[i * nx : (i + 1) * nx, :, j * nz : (j + 1) * nz] = b
                elif kind == "x-pencil":
                    ny2 = n // pr
                    out[:, i * ny2 : (i + 1) * ny2, j * nz : (j + 1) * nz] = b
                else:
                    raise ValueError(f"unknown layout kind {kind!r}")
        return out

    # ------------------------------------------------------------------
    # transposes
    # ------------------------------------------------------------------
    @timed("fft.transpose.zy")
    def _transpose_zy(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """z-pencils -> y-pencils: alltoall within each row of the grid."""
        n, pr, pc = self.n, self.pr, self.pc
        ny, nz = n // pc, n // pc
        out: list[np.ndarray | None] = [None] * self.size
        for i in range(pr):
            row_ranks = [self.rank_of(i, j) for j in range(pc)]
            send = [
                [
                    np.ascontiguousarray(
                        blocks[r][:, :, jp * nz : (jp + 1) * nz]
                    )
                    for jp in range(pc)
                ]
                for r in row_ranks
            ]
            recv = self._row_comms[i].alltoallv(send, tag="fft.transpose.zy")
            for j in range(pc):
                # rank (i, j) assembles full y from the pc chunks; chunk
                # from source j' carries y-block C_{j'}.
                out[row_ranks[j]] = self._concat_into(
                    "zy", row_ranks[j], recv[j], axis=1
                )
        return out  # type: ignore[return-value]

    @timed("fft.transpose.yz")
    def _transpose_yz(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Inverse of :meth:`_transpose_zy` (y-pencils -> z-pencils)."""
        n, pr, pc = self.n, self.pr, self.pc
        ny = n // pc
        out: list[np.ndarray | None] = [None] * self.size
        for i in range(pr):
            row_ranks = [self.rank_of(i, j) for j in range(pc)]
            send = [
                [
                    np.ascontiguousarray(
                        blocks[r][:, jp * ny : (jp + 1) * ny, :]
                    )
                    for jp in range(pc)
                ]
                for r in row_ranks
            ]
            recv = self._row_comms[i].alltoallv(send, tag="fft.transpose.zy")
            for j in range(pc):
                out[row_ranks[j]] = self._concat_into(
                    "yz", row_ranks[j], recv[j], axis=2
                )
        return out  # type: ignore[return-value]

    @timed("fft.transpose.yx")
    def _transpose_yx(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """y-pencils -> x-pencils: alltoall within each column of the grid."""
        n, pr, pc = self.n, self.pr, self.pc
        ny2 = n // pr
        out: list[np.ndarray | None] = [None] * self.size
        for j in range(pc):
            col_ranks = [self.rank_of(i, j) for i in range(pr)]
            send = [
                [
                    np.ascontiguousarray(
                        blocks[r][:, ip * ny2 : (ip + 1) * ny2, :]
                    )
                    for ip in range(pr)
                ]
                for r in col_ranks
            ]
            recv = self._col_comms[j].alltoallv(send, tag="fft.transpose.yx")
            for i in range(pr):
                out[col_ranks[i]] = self._concat_into(
                    "yx", col_ranks[i], recv[i], axis=0
                )
        return out  # type: ignore[return-value]

    @timed("fft.transpose.xy")
    def _transpose_xy(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Inverse of :meth:`_transpose_yx` (x-pencils -> y-pencils)."""
        n, pr, pc = self.n, self.pr, self.pc
        nx = n // pr
        out: list[np.ndarray | None] = [None] * self.size
        for j in range(pc):
            col_ranks = [self.rank_of(i, j) for i in range(pr)]
            send = [
                [
                    np.ascontiguousarray(
                        blocks[r][ip * nx : (ip + 1) * nx, :, :]
                    )
                    for ip in range(pr)
                ]
                for r in col_ranks
            ]
            recv = self._col_comms[j].alltoallv(send, tag="fft.transpose.yx")
            for i in range(pr):
                out[col_ranks[i]] = self._concat_into(
                    "xy", col_ranks[i], recv[i], axis=1
                )
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def _fft_pass(
        self, blocks: list[np.ndarray], axis: int, inverse: bool
    ) -> list[np.ndarray]:
        """One 1-D FFT sweep over all rank blocks.

        With a live registry each rank's transform is timed in its own
        ``rank`` lane (``fft.1d`` spans), so the Chrome-trace export shows
        the per-rank compute alongside the transpose communication; with
        the no-op registry this is the plain list comprehension.
        """
        fn = self.fft.ifft if inverse else self.fft.fft
        reg = get_registry()
        if not reg.enabled:
            return [fn(b, axis=axis) for b in blocks]
        out = []
        for rank, b in enumerate(blocks):
            with reg.span("fft.1d", rank=rank):
                out.append(fn(b, axis=axis))
        return out

    def _count_fft_work(self, reg, out_blocks: list[np.ndarray]) -> None:
        """Charge one full N^3-point transform into the fft work bucket."""
        from repro.instrument import perfcount

        itemsize = (
            out_blocks[0].dtype.itemsize if out_blocks else 16
        )
        reg.count("fft.flops", perfcount.fft_flops(self.n**3))
        reg.count("fft.bytes", perfcount.fft_bytes(self.n**3, itemsize))

    def forward(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Forward 3-D FFT: z-pencil real/complex blocks -> x-pencil spectra."""
        self._check_blocks(blocks, "z-pencil")
        get_fault_plan().sleep("fft")  # injectable straggler stall
        reg = get_registry()
        with reg.span("fft.pencil.forward"):
            work = self._fft_pass(blocks, axis=2, inverse=False)
            work = self._transpose_zy(work)
            work = self._fft_pass(work, axis=1, inverse=False)
            work = self._transpose_yx(work)
            out = self._fft_pass(work, axis=0, inverse=False)
        reg.count("fft.forward_points", self.n**3)
        self._count_fft_work(reg, out)
        return out

    def inverse(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Inverse 3-D FFT: x-pencil spectra -> z-pencil complex blocks."""
        self._check_blocks(blocks, "x-pencil")
        get_fault_plan().sleep("fft")  # injectable straggler stall
        reg = get_registry()
        with reg.span("fft.pencil.inverse"):
            work = self._fft_pass(blocks, axis=0, inverse=True)
            work = self._transpose_xy(work)
            work = self._fft_pass(work, axis=1, inverse=True)
            work = self._transpose_yz(work)
            out = self._fft_pass(work, axis=2, inverse=True)
        reg.count("fft.inverse_points", self.n**3)
        self._count_fft_work(reg, out)
        return out

    # ------------------------------------------------------------------
    def transpose_bytes_per_rank(self) -> int:
        """Bytes each rank ships per forward transform (both transposes).

        Every transpose moves the rank's full local volume (minus the
        self-chunk); this analytic count is what the machine-model network
        term uses, and the tests check it against recorded traffic.
        """
        local = self.n**3 // self.size  # complex128 elements
        zy = local * 16 * (self.pc - 1) // self.pc
        yx = local * 16 * (self.pr - 1) // self.pr
        return zy + yx

    def _check_blocks(self, blocks: list[np.ndarray], kind: str) -> None:
        if len(blocks) != self.size:
            raise ValueError(
                f"expected {self.size} rank blocks, got {len(blocks)}"
            )
        expect = self.layout(kind).local_shape()
        for r, b in enumerate(blocks):
            if b.shape != expect:
                raise ValueError(
                    f"rank {r}: block shape {b.shape} != {expect} for {kind}"
                )
