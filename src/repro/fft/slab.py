"""Slab-decomposed distributed 3-D FFT (the first-generation HACC FFT).

Each rank owns a contiguous slab of ``n / Nrank`` x-planes, performs local
2-D FFTs over (y, z), then one global all-to-all transpose redistributes
the data as y-slabs so the final 1-D pass along x is local.  The hard
limit ``Nrank < N`` noted in Section IV.A is enforced here — it is exactly
why the pencil decomposition (:mod:`repro.fft.pencil`) was developed, and
the Fig. 6 benchmark contrasts the two.
"""

from __future__ import annotations

import numpy as np

from repro.fft.local import SequentialFFT
from repro.parallel.comm import SimulatedComm

__all__ = ["SlabFFT"]


class SlabFFT:
    """1-D (slab) decomposed FFT over ``Nrank`` ranks, ``Nrank | n``.

    Examples
    --------
    >>> import numpy as np
    >>> s = SlabFFT(8, 4)
    >>> x = np.random.default_rng(1).standard_normal((8, 8, 8))
    >>> np.allclose(s.gather(s.forward(s.scatter(x)), "y-slab"),
    ...             np.fft.fftn(x))
    True
    """

    def __init__(
        self,
        n: int,
        nranks: int,
        comm: SimulatedComm | None = None,
        fft: SequentialFFT | None = None,
    ) -> None:
        if n < 2:
            raise ValueError(f"grid size must be >= 2, got {n}")
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if nranks > n:
            raise ValueError(
                "slab decomposition requires Nrank <= N "
                f"(got {nranks} ranks for N={n}); use PencilFFT instead"
            )
        if n % nranks:
            raise ValueError(f"nranks={nranks} must divide n={n}")
        self.n = int(n)
        self.size = int(nranks)
        self.nx = self.n // self.size
        self.comm = comm if comm is not None else SimulatedComm(self.size)
        if self.comm.size != self.size:
            raise ValueError(
                f"communicator size {self.comm.size} != {self.size}"
            )
        self.fft = fft if fft is not None else SequentialFFT()

    # ------------------------------------------------------------------
    def scatter(self, field: np.ndarray) -> list[np.ndarray]:
        """Split a global (n, n, n) array into x-slabs."""
        n = self.n
        if field.shape != (n, n, n):
            raise ValueError(f"field shape {field.shape} != {(n, n, n)}")
        nx = self.nx
        return [
            np.ascontiguousarray(field[r * nx : (r + 1) * nx])
            for r in range(self.size)
        ]

    def gather(self, blocks: list[np.ndarray], kind: str) -> np.ndarray:
        """Reassemble rank-local slabs into the global array."""
        n, nx = self.n, self.nx
        dtype = np.result_type(*[b.dtype for b in blocks])
        out = np.empty((n, n, n), dtype=dtype)
        for r, b in enumerate(blocks):
            if kind == "x-slab":
                out[r * nx : (r + 1) * nx] = b
            elif kind == "y-slab":
                out[:, r * nx : (r + 1) * nx, :] = b
            else:
                raise ValueError(f"unknown slab kind {kind!r}")
        return out

    # ------------------------------------------------------------------
    def _transpose_xy(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """x-slabs -> y-slabs via one global all-to-all."""
        nx = self.nx
        send = [
            [
                np.ascontiguousarray(b[:, r * nx : (r + 1) * nx, :])
                for r in range(self.size)
            ]
            for b in blocks
        ]
        recv = self.comm.alltoallv(send, tag="fft.transpose.slab")
        return [np.concatenate(row, axis=0) for row in recv]

    def _transpose_yx(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """y-slabs -> x-slabs (inverse transpose)."""
        nx = self.nx
        send = [
            [
                np.ascontiguousarray(b[r * nx : (r + 1) * nx, :, :])
                for r in range(self.size)
            ]
            for b in blocks
        ]
        recv = self.comm.alltoallv(send, tag="fft.transpose.slab")
        return [np.concatenate(row, axis=1) for row in recv]

    # ------------------------------------------------------------------
    def forward(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Forward FFT: x-slabs in, y-slabs of the spectrum out."""
        self._check(blocks)
        work = [self.fft.fft(self.fft.fft(b, axis=2), axis=1) for b in blocks]
        work = self._transpose_xy(work)
        return [self.fft.fft(b, axis=0) for b in work]

    def inverse(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Inverse FFT: y-slab spectra in, x-slab complex field out."""
        self._check(blocks)
        work = [self.fft.ifft(b, axis=0) for b in blocks]
        work = self._transpose_yx(work)
        return [self.fft.ifft(self.fft.ifft(b, axis=1), axis=2) for b in work]

    def transpose_bytes_per_rank(self) -> int:
        """Bytes each rank ships in the global transpose (complex128)."""
        local = self.n**3 // self.size
        return local * 16 * (self.size - 1) // self.size

    def _check(self, blocks: list[np.ndarray]) -> None:
        if len(blocks) != self.size:
            raise ValueError(
                f"expected {self.size} rank blocks, got {len(blocks)}"
            )
