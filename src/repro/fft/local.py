"""Sequential 1-D FFT built from scratch (no ``numpy.fft`` in the hot path).

Algorithm
---------
Mixed-radix Cooley-Tukey decimation in time: a length-``n = p m`` transform
is split into ``p`` interleaved length-``m`` sub-transforms which are then
combined with twiddle factors and a ``p x p`` DFT applied across the
sub-transform axis (a single ``einsum``).  Small prime lengths use a direct
DFT matrix; large prime lengths use Bluestein's algorithm (chirp-z reduced
to a power-of-two cyclic convolution, which recurses into the radix-2 path).
Everything is vectorized over an arbitrary batch of rows, which is exactly
the access pattern of the pencil-decomposed 3-D FFT (many independent 1-D
lines per pass).

Accuracy is that of a standard CT factorization (relative error
``~1e-13`` at n=1024 in double precision); the test suite compares against
``numpy.fft`` across composite, power-of-two and prime lengths.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

__all__ = [
    "fft1d",
    "ifft1d",
    "SequentialFFT",
    "smallest_prime_factor",
    "factor_chain",
    "plan_cache_info",
    "clear_plan_caches",
]

#: lengths at or below which a dense DFT matrix beats recursion
_DIRECT_CUTOFF = 31


def smallest_prime_factor(n: int) -> int:
    """Smallest prime factor of ``n >= 2`` (trial division)."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if n % 2 == 0:
        return 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return f
        f += 2
    return n


@lru_cache(maxsize=4096)
def _split_factor(n: int) -> int:
    """Cached smallest-prime-factor lookup for the CT recursion.

    Repeated transforms of one grid size re-derive the identical factor
    chain on every call (and, pre-cache, on every *row batch*); caching
    makes the plan a dictionary lookup after the first transform —
    the "plan once, execute many" structure of production FFT libraries.
    """
    return smallest_prime_factor(n)


def factor_chain(n: int) -> tuple[int, ...]:
    """The radix sequence the CT recursion uses for length ``n``.

    Purely informational (the recursion consults :func:`_split_factor`
    level by level); exposed so tests and benchmarks can inspect the
    plan.  The last entry is the terminal sub-length, handled by a
    direct DFT matrix (``<= _DIRECT_CUTOFF``) or Bluestein (prime).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    chain: list[int] = []
    while n > _DIRECT_CUTOFF:
        p = _split_factor(n)
        if p == n:  # prime: Bluestein terminal
            break
        chain.append(p)
        n //= p
    chain.append(n)
    return tuple(chain)


def plan_cache_info() -> dict:
    """Hit/miss statistics of every FFT plan cache (for tests/benchmarks)."""
    return {
        "dft_matrix": _dft_matrix.cache_info(),
        "twiddles": _twiddles.cache_info(),
        "bluestein": _bluestein_setup.cache_info(),
        "split_factor": _split_factor.cache_info(),
    }


def clear_plan_caches() -> None:
    """Drop all cached plans (used by cache-behavior tests)."""
    for f in (_dft_matrix, _twiddles, _bluestein_setup, _split_factor):
        f.cache_clear()


@lru_cache(maxsize=128)
def _dft_matrix(n: int, sign: float) -> np.ndarray:
    """Dense DFT matrix ``W[j, k] = exp(sign * 2 pi i j k / n)``."""
    idx = np.arange(n)
    return np.exp(sign * 2j * np.pi * np.outer(idx, idx) / n)


@lru_cache(maxsize=256)
def _twiddles(n: int, p: int, sign: float) -> np.ndarray:
    """Twiddle block of shape (p, n // p) for the CT combine step."""
    m = n // p
    s = np.arange(p).reshape(p, 1)
    q = np.arange(m).reshape(1, m)
    return np.exp(sign * 2j * np.pi * s * q / n)


def _fft_rec(x: np.ndarray, sign: float) -> np.ndarray:
    """Recursive CT kernel; ``x`` is complex with transform axis last."""
    n = x.shape[-1]
    if n == 1:
        return x.copy()
    if n <= _DIRECT_CUTOFF:
        return x @ _dft_matrix(n, sign).T
    p = _split_factor(n)
    if p == n:  # large prime: Bluestein
        return _bluestein(x, sign)
    m = n // p
    # decimate in time: p interleaved length-m transforms
    subs = np.stack(
        [_fft_rec(np.ascontiguousarray(x[..., s::p]), sign) for s in range(p)],
        axis=-2,
    )  # (..., p, m)
    subs = subs * _twiddles(n, p, sign)
    wp = _dft_matrix(p, sign)  # (p, p): output block r from sub s
    out = np.einsum("rs,...sq->...rq", wp, subs)
    return out.reshape(x.shape[:-1] + (n,))


@lru_cache(maxsize=64)
def _bluestein_setup(n: int, sign: float):
    """Chirp and pre-transformed filter for Bluestein length ``n``."""
    m = 1 << (2 * n - 1).bit_length()  # power-of-two conv length >= 2n-1
    j = np.arange(n)
    chirp = np.exp(sign * 1j * np.pi * (j * j % (2 * n)) / n)
    b = np.zeros(m, dtype=np.complex128)
    b[:n] = np.conj(chirp)
    b[m - n + 1 :] = np.conj(chirp[1:][::-1])
    b_hat = _fft_rec(b, -1.0)
    return m, chirp, b_hat


def _bluestein(x: np.ndarray, sign: float) -> np.ndarray:
    """Prime-length transform via chirp-z -> power-of-two convolution."""
    n = x.shape[-1]
    m, chirp, b_hat = _bluestein_setup(n, sign)
    a = np.zeros(x.shape[:-1] + (m,), dtype=np.complex128)
    a[..., :n] = x * chirp
    a_hat = _fft_rec(a, -1.0)
    conv = _fft_rec(a_hat * b_hat, +1.0) / m
    return conv[..., :n] * chirp


def fft1d(x, axis: int = -1) -> np.ndarray:
    """Forward DFT along ``axis`` (convention: ``X_k = sum_j x_j e^{-2pi i jk/n}``).

    Parameters
    ----------
    x:
        Real or complex array.
    axis:
        Transform axis (moved to the end internally for contiguity).

    Examples
    --------
    >>> rng = np.random.default_rng(0)
    >>> v = rng.standard_normal(12)
    >>> np.allclose(fft1d(v), np.fft.fft(v))
    True
    """
    x = np.asarray(x)
    xc = np.moveaxis(x.astype(np.complex128, copy=False), axis, -1)
    out = _fft_rec(np.ascontiguousarray(xc), -1.0)
    return np.moveaxis(out, -1, axis)


def ifft1d(x, axis: int = -1) -> np.ndarray:
    """Inverse DFT along ``axis`` (normalized by ``1/n``)."""
    x = np.asarray(x)
    xc = np.moveaxis(x.astype(np.complex128, copy=False), axis, -1)
    n = xc.shape[-1]
    out = _fft_rec(np.ascontiguousarray(xc), +1.0) / n
    return np.moveaxis(out, -1, axis)


class SequentialFFT:
    """Pluggable 1-D FFT backend for the distributed transforms.

    Parameters
    ----------
    backend:
        ``"native"`` uses this module's from-scratch implementation —
        faithful to the paper's no-vendor-libraries constraint;
        ``"numpy"`` delegates to ``numpy.fft`` — the fast path for large
        production runs of the *reproduction* (both produce identical
        results; tests pin them together).
    """

    BACKENDS = ("native", "numpy")

    def __init__(self, backend: str = "numpy") -> None:
        if backend not in self.BACKENDS:
            raise ValueError(f"unknown FFT backend {backend!r}")
        self.backend = backend

    def fft(self, x, axis: int = -1) -> np.ndarray:
        """Forward complex transform along ``axis``."""
        if self.backend == "native":
            return fft1d(x, axis=axis)
        return np.fft.fft(x, axis=axis)

    def ifft(self, x, axis: int = -1) -> np.ndarray:
        """Inverse complex transform along ``axis``."""
        if self.backend == "native":
            return ifft1d(x, axis=axis)
        return np.fft.ifft(x, axis=axis)

    def flops(self, n: int, batch: int = 1) -> float:
        """Nominal flop count ``5 n log2 n`` per line, times ``batch``.

        Used by the machine model to convert transform sizes into work.
        """
        if n < 1:
            raise ValueError(f"n must be positive, got {n}")
        return 5.0 * n * math.log2(max(n, 2)) * batch
