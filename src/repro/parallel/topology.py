"""N-dimensional torus network topology (the BG/Q 5-D torus).

Each BG/Q compute node has 10 bidirectional links (2 per torus dimension)
with 40 GB/s aggregate bandwidth (Section III).  The machine model needs
hop counts, diameters and bisection widths to convert the communication
volumes recorded by :class:`repro.parallel.SimulatedComm` into time; this
module supplies that geometry for arbitrary torus shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import reduce

import numpy as np

__all__ = ["TorusTopology"]


@dataclass(frozen=True)
class TorusTopology:
    """A torus with the given per-dimension extents.

    Examples
    --------
    >>> t = TorusTopology((4, 4, 4, 8, 2))   # one BG/Q rack (1024 nodes)
    >>> t.n_nodes
    1024
    >>> t.hops(0, 0)
    0
    """

    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims or any(d < 1 for d in self.dims):
            raise ValueError(f"torus dims must be positive: {self.dims}")

    @classmethod
    def balanced(cls, n_nodes: int, ndim: int = 5) -> "TorusTopology":
        """Near-balanced torus for ``n_nodes`` (BG/Q partitions are 5-D)."""
        from repro.parallel.decomposition import balanced_dims

        return cls(balanced_dims(n_nodes, ndim))

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return reduce(lambda a, b: a * b, self.dims, 1)

    @property
    def n_links_per_node(self) -> int:
        """Bidirectional links per node: 2 per torus dimension.

        Dimensions of extent 1 or 2 contribute fewer distinct links; the
        full 5-D BG/Q torus has 10.
        """
        links = 0
        for d in self.dims:
            if d == 1:
                continue
            links += 1 if d == 2 else 2
        return links

    def coords(self, node: int) -> tuple[int, ...]:
        """Torus coordinates of a linear node id (row-major)."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range")
        out = []
        for d in reversed(self.dims):
            out.append(node % d)
            node //= d
        return tuple(reversed(out))

    def node_of(self, coords) -> int:
        """Linear node id from torus coordinates (periodic wrap applied)."""
        node = 0
        for c, d in zip(coords, self.dims):
            node = node * d + (int(c) % d)
        return node

    # ------------------------------------------------------------------
    def hops(self, a: int, b: int) -> int:
        """Minimal hop distance between two nodes (per-dim wrap-around)."""
        ca, cb = self.coords(a), self.coords(b)
        total = 0
        for x, y, d in zip(ca, cb, self.dims):
            delta = abs(x - y)
            total += min(delta, d - delta)
        return total

    @property
    def diameter(self) -> int:
        """Maximum hop distance: ``sum floor(d_i / 2)``."""
        return sum(d // 2 for d in self.dims)

    def average_hops(self) -> float:
        """Mean hop distance between uniformly random node pairs.

        Closed form per dimension: mean wrap distance of a ``d``-cycle is
        ``d/4`` for even ``d`` and ``(d^2 - 1) / (4 d)`` for odd ``d``.
        """
        total = 0.0
        for d in self.dims:
            total += d / 4.0 if d % 2 == 0 else (d * d - 1.0) / (4.0 * d)
        return total

    def bisection_links(self) -> int:
        """Links crossing a balanced bisection of the torus.

        Cutting the longest dimension ``dmax`` in half severs
        ``2 * n_nodes / dmax`` links (two cut planes of a wrapped cycle);
        this is the standard torus bisection used to size all-to-all
        traffic.
        """
        dmax = max(self.dims)
        if dmax == 1:
            return 0
        cut_planes = 1 if dmax == 2 else 2
        return cut_planes * (self.n_nodes // dmax)

    # ------------------------------------------------------------------
    def alltoall_time(
        self,
        bytes_per_node: float,
        link_bandwidth: float,
        latency: float = 0.0,
    ) -> float:
        """Time for an all-to-all moving ``bytes_per_node`` off every node.

        Bisection-limited model: half the total traffic must cross the
        bisection.  ``link_bandwidth`` in bytes/s per link.
        """
        if bytes_per_node < 0:
            raise ValueError("bytes_per_node must be non-negative")
        if link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        links = max(self.bisection_links(), 1)
        cross = 0.5 * bytes_per_node * self.n_nodes
        return latency + cross / (links * link_bandwidth)

    def nearest_neighbor_time(
        self,
        bytes_per_link: float,
        link_bandwidth: float,
        latency: float = 0.0,
    ) -> float:
        """Time for a simultaneous nearest-neighbor exchange."""
        if link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        return latency + bytes_per_link / link_bandwidth
