"""Simulated message-passing substrate and domain decomposition.

The paper runs HACC on up to 1,572,864 MPI ranks.  This subpackage provides
an **in-process rank virtual machine**: rank-local data lives in separate
NumPy arrays, all communication goes through :class:`SimulatedComm`
collectives that move bytes between rank-local buffers and *account for
every message* (count, bytes, phase tag).  Algorithms written against this
interface — the pencil-decomposed FFT, the particle-overloading exchange —
are structurally identical to their MPI versions, and the recorded traffic
feeds the BG/Q network model in :mod:`repro.machine`.
"""

from repro.parallel.comm import CommStats, SimulatedComm
from repro.parallel.decomposition import DomainDecomposition
from repro.parallel.executor import (
    RankExecutor,
    SharedArrayHandle,
    WorkerError,
    resolve_shared,
)
from repro.parallel.overload import OverloadedDomain, OverloadExchange
from repro.parallel.topology import TorusTopology

__all__ = [
    "SimulatedComm",
    "CommStats",
    "DomainDecomposition",
    "OverloadedDomain",
    "OverloadExchange",
    "RankExecutor",
    "SharedArrayHandle",
    "WorkerError",
    "resolve_shared",
    "TorusTopology",
]
