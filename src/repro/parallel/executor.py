"""Shared-memory rank executor: run the simulated rank fleet concurrently.

The paper's evaluation is built on hybrid parallelism — MPI ranks across
nodes plus OpenMP threads within a node (Section IV, Fig. 5).  In this
reproduction the ranks are simulated in one process, but the *structure*
is the same: between bulk-synchronous :class:`~repro.parallel.comm.
SimulatedComm` collectives, each rank's short-range solve (and each
gradient component's inverse FFT) is independent work.  The
:class:`RankExecutor` maps that work onto one of three interchangeable
backends:

``serial``
    An ordered in-thread loop over the *same work partition* the other
    backends use.  The default, and the reference every other backend
    must match bit-for-bit.
``thread``
    A persistent :class:`~concurrent.futures.ThreadPoolExecutor`.  NumPy
    releases the GIL inside the batched pair engine's large array ops and
    inside pocketfft, so rank solves genuinely overlap (the analogue of
    the paper's OpenMP threads within a node).
``process``
    A persistent :mod:`multiprocessing` fork pool.  Particle arrays are
    published once per step into POSIX shared memory
    (:meth:`RankExecutor.share`), so per-rank dispatch ships *indices*
    into those arrays, not copies — the analogue of ranks addressing a
    node's memory directly.

Determinism contract: the executor changes **where** tasks run, never
**what** they compute or the order results are consumed.  Work is
*partitioned* by the worker count alone — the serial backend at
``workers=4`` walks the exact 4-way partition the thread and process
backends dispatch, just in order.  ``map`` returns
results in payload order, the caller performs all reductions in that
fixed order, and every backend runs the identical per-task float
operations — so trajectories are bit-identical across backends (a test
pins this).  Collectives stay atomic: the executor joins all ranks
before any :class:`SimulatedComm` call, exactly the bulk-synchronous
structure of the paper's code.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.instrument import get_registry

__all__ = [
    "EXECUTOR_BACKENDS",
    "SHM_PREFIX",
    "WORKER_LANE_BASE",
    "WAVE_LANE_BASE",
    "WorkerError",
    "UnpicklableTaskError",
    "SharedArrayHandle",
    "TaskHandle",
    "Wave",
    "RankExecutor",
    "resolve_shared",
]

#: the interchangeable execution backends, in "distance from serial" order
EXECUTOR_BACKENDS = ("serial", "thread", "process")

#: Chrome-trace lane offset: worker lanes live at ``pid >= 1000`` so they
#: never collide with simulated-rank lanes (``pid = rank``)
WORKER_LANE_BASE = 1000

#: Chrome-trace lane offset for wave envelopes: each :class:`Wave` label
#: gets a stable lane at ``pid >= 2000`` so overlapping waves render as
#: parallel tracks above the worker lanes
WAVE_LANE_BASE = 2000

_HANDLE_COUNTER = itertools.count()


class WorkerError(RuntimeError):
    """A task raised inside the executor.

    Carries the simulated ``rank`` of the failing task (the first failure
    in payload order, so which rank is reported is deterministic even
    when several fail concurrently) and chains the original exception.
    """

    def __init__(self, rank: int, original: BaseException) -> None:
        super().__init__(
            f"rank {rank} task failed: "
            f"{type(original).__name__}: {original}"
        )
        self.rank = int(rank)
        self.original = original


class UnpicklableTaskError(TypeError):
    """A task function cannot cross the process boundary.

    Raised by the process backend's cross-process dispatch paths instead
    of letting the pool die on an opaque pickling traceback — names the
    offending phase so the caller knows which dispatch to fix (use a
    module-level function, or keep the phase in-process via
    :meth:`RankExecutor.map_inprocess` / ``submit_inprocess``).
    """

    def __init__(self, label: str, original: BaseException) -> None:
        super().__init__(
            f"phase {label!r} cannot be dispatched to process workers: "
            f"its task function is not picklable "
            f"({type(original).__name__}: {original}).  Use a "
            f"module-level function, or dispatch with map_inprocess / "
            f"submit_inprocess to stay in the parent process."
        )
        self.label = label
        self.original = original


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable reference to a shared-memory NumPy array.

    Shipped to process workers instead of the array itself; resolve with
    :func:`resolve_shared`.
    """

    name: str
    shape: tuple
    dtype: str


# ----------------------------------------------------------------------
# creator-side leak guard: every segment this process creates is tracked
# here and swept at interpreter exit.  ``close()`` is the normal unlink
# path, but a run torn down mid-step — a timeout SIGTERM from the
# campaign supervisor, an exception that skips ``sim.close()``, a test
# that forgot the context manager — must not leave /dev/shm segments
# behind (they survive the process and eat a machine's shm quota).
# SIGKILL still defeats any in-process guard; the supervisor sweeps the
# victim's segments by pid-prefixed name after a hard kill.
# ----------------------------------------------------------------------
_LIVE_SEGMENTS: dict[str, "object"] = {}
_LIVE_LOCK = threading.Lock()

#: /dev/shm name prefix of segments created by this process — the
#: supervisor's post-SIGKILL sweep matches on this
SHM_PREFIX = "repro-"


def _track_segment(shm) -> None:
    with _LIVE_LOCK:
        _LIVE_SEGMENTS[shm.name] = shm


def _untrack_segment(name: str) -> None:
    with _LIVE_LOCK:
        _LIVE_SEGMENTS.pop(name, None)


@atexit.register
def _sweep_segments() -> None:
    """Unlink any still-live shared segments at interpreter exit."""
    with _LIVE_LOCK:
        leftovers = list(_LIVE_SEGMENTS.values())
        _LIVE_SEGMENTS.clear()
    for shm in leftovers:
        try:
            shm.close()
            shm.unlink()
        except Exception:  # pragma: no cover - already gone is fine
            pass


# ----------------------------------------------------------------------
# worker-side shared-memory attachment (module-level: used in children)
# ----------------------------------------------------------------------
_ATTACHED: dict[str, "object"] = {}


def resolve_shared(ref) -> np.ndarray:
    """Materialize an array shipped through :meth:`RankExecutor.share`.

    Plain arrays (serial/thread backends share by reference) pass
    through; a :class:`SharedArrayHandle` is attached by name — cached
    per process, so repeated per-step dispatches reuse the mapping.
    """
    if isinstance(ref, np.ndarray):
        return ref
    if not isinstance(ref, SharedArrayHandle):
        raise TypeError(f"not a shareable array reference: {ref!r}")
    shm = _ATTACHED.get(ref.name)
    if shm is None:
        from multiprocessing import resource_tracker, shared_memory

        # Attaching registers the name with the resource tracker, which
        # pool children *share* with the creator (the tracker cache is a
        # set, so the re-register is idempotent).  Do not unregister
        # here: the creator's unlink performs the one removal, and a
        # second would make the tracker process raise KeyError.
        shm = shared_memory.SharedMemory(name=ref.name)
        _ATTACHED[ref.name] = shm
    count = int(np.prod(ref.shape, dtype=np.int64)) if ref.shape else 1
    arr = np.frombuffer(shm.buf, dtype=np.dtype(ref.dtype), count=count)
    return arr.reshape(ref.shape)


# ----------------------------------------------------------------------
# process-pool plumbing (module-level so it pickles by reference)
# ----------------------------------------------------------------------
def _pool_init(initializer, initargs) -> None:
    if initializer is not None:
        initializer(*initargs)


#: cap on span records shipped back per process task (a runaway nested
#: section must not make every result message huge)
_WORKER_SPAN_CAP = 4096


def _process_call(item):
    """Run one task in a pool worker; never raises.

    Returns ``(pid, t0, t1, ok, result_or_exc, spans, counters)``: the
    parent re-raises failures in payload order (deterministic
    attribution) and records the ``[t0, t1]`` interval as an external
    span on the worker's trace lane — ``time.perf_counter`` is
    CLOCK_MONOTONIC on Linux, shared across processes, so child
    timestamps land on the parent timeline.

    When the parent dispatched with instrumentation enabled (``capture``
    set), the task runs against a private child-side
    :class:`~repro.instrument.registry.Registry`, and the *real* spans
    the task opened (tree build/walk, PP batches, ...) ship back as
    ``(name, path, start, end)`` tuples — so process-backend traces and
    section aggregates carry the same interior structure the thread
    backend records directly, not just one opaque lane rectangle.  The
    task's registry *counters* (tree sizes, batch pair tallies, CIC/FFT
    work counts) ship back the same way and are merged by the parent in
    payload order, so counted work is invariant across executor
    backends.  Worker kernels run with ``mirror_counters=False`` and the
    driver charges ``pp.*`` from task results, so those never appear
    here twice.
    """
    fn, payload, capture = item
    spans: tuple = ()
    counters: tuple = ()
    t0 = time.perf_counter()
    try:
        if capture:
            from repro.instrument.registry import Registry, use

            reg = Registry(max_events=_WORKER_SPAN_CAP)
            with use(reg):
                result = fn(payload)
            spans = tuple(
                (ev.name, ev.path, ev.start, ev.end) for ev in reg.events
            )
            counters = tuple(reg.counters.items())
        else:
            result = fn(payload)
        return (
            os.getpid(), t0, time.perf_counter(), True, result, spans,
            counters,
        )
    except Exception as exc:
        return (
            os.getpid(), t0, time.perf_counter(), False, exc, spans,
            counters,
        )


def _chunk_call(item):
    """Run a contiguous chunk of payloads in one pool task; never raises.

    The chunked envelope is the dispatch-overhead fix: one pickled
    ``(fn, payloads, capture)`` message and one result message per chunk
    instead of per payload.  Returns ``(pid, t0, t1, results, spans,
    counters)`` where ``results`` is a per-payload ``(ok, value_or_exc)``
    tuple in payload order; instrumentation aggregates over the whole
    chunk (payload execution order is preserved inside it, so merged
    counter totals match the per-payload dispatch exactly).
    """
    fn, payloads, capture = item
    spans: tuple = ()
    counters: tuple = ()
    t0 = time.perf_counter()

    def run_all():
        out = []
        for payload in payloads:
            try:
                out.append((True, fn(payload)))
            except Exception as exc:
                out.append((False, exc))
        return tuple(out)

    if capture:
        from repro.instrument.registry import Registry, use

        reg = Registry(max_events=_WORKER_SPAN_CAP)
        with use(reg):
            results = run_all()
        spans = tuple(
            (ev.name, ev.path, ev.start, ev.end) for ev in reg.events
        )
        counters = tuple(reg.counters.items())
    else:
        results = run_all()
    return (os.getpid(), t0, time.perf_counter(), results, spans, counters)


class TaskHandle:
    """Deferred result of :meth:`RankExecutor.submit`.

    ``result()`` blocks until the task finishes, merges the task's
    instrumentation into the parent registry (process backend — exactly
    once, on first consume, so trace lanes and counter totals follow
    *consumption* order just like ``map``), and re-raises failures as
    :class:`WorkerError` attributed to the submitting rank.  Handles are
    single-task futures; consume them in a deterministic order and the
    executor's bit-identity contract carries over unchanged.
    """

    __slots__ = (
        "_executor", "_rank", "_label", "_kind", "_obj",
        "_done", "_ok", "_value",
    )

    def __init__(self, executor, rank, label, kind, obj=None) -> None:
        self._executor = executor
        self._rank = int(rank)
        self._label = label
        self._kind = kind  # "value" | "error" | "future" | "pool"
        self._obj = obj
        self._done = kind in ("value", "error")
        if kind == "value":
            self._ok, self._value = True, obj
            self._obj = None
        elif kind == "error":
            self._ok, self._value = False, obj
            self._obj = None
        else:
            self._ok, self._value = False, None

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def label(self) -> str:
        return self._label

    def done(self) -> bool:
        """True when the task has finished (without blocking)."""
        if self._done:
            return True
        if self._kind == "future":
            return self._obj.done()
        return self._obj.ready()

    def result(self):
        """Block for, merge, and return the task's result (idempotent)."""
        if not self._done:
            self._resolve()
        if self._ok:
            return self._value
        exc = self._value
        if isinstance(exc, WorkerError):
            raise exc
        raise WorkerError(self._rank, exc) from exc

    def _resolve(self) -> None:
        if self._kind == "future":
            exc = self._obj.exception()
            if exc is not None:
                self._ok, self._value = False, exc
            else:
                self._ok, self._value = True, self._obj.result()
        else:  # "pool": a _process_call envelope from a process worker
            pid, t0, t1, ok, value, spans, counters = self._obj.get()
            self._executor._merge_worker_record(
                self._label, pid, t0, t1, spans, counters
            )
            self._ok, self._value = ok, value
        self._done = True
        self._obj = None


class Wave:
    """A group of in-flight tasks forming one overlap wave.

    Tasks submitted through a wave share a Chrome-trace envelope: on
    ``close()`` (or context-manager exit) the wave's ``[open, close]``
    interval is recorded as ``wave.<label>`` on a stable per-label lane
    at :data:`WAVE_LANE_BASE`, so concurrent waves (ghost exchange vs
    interior solves, gradient FFTs vs CIC gathers) render as overlapping
    tracks.  ``results()`` consumes every handle in submission order —
    the deterministic reduction order the bit-identity contract needs.
    """

    def __init__(self, executor: "RankExecutor", label: str) -> None:
        self._executor = executor
        self.label = str(label)
        self._handles: list[TaskHandle] = []
        self._t0 = time.perf_counter()
        self._closed = False

    def submit(
        self, fn, payload, *, rank=None, label=None, inprocess=False
    ) -> TaskHandle:
        """Submit one task into the wave; defaults rank to wave position."""
        if rank is None:
            rank = len(self._handles)
        submit = (
            self._executor.submit_inprocess
            if inprocess
            else self._executor.submit
        )
        handle = submit(fn, payload, rank=rank, label=label or self.label)
        self._handles.append(handle)
        return handle

    @property
    def handles(self) -> list[TaskHandle]:
        return list(self._handles)

    def results(self) -> list:
        """Consume all handles in submission order."""
        return [h.result() for h in self._handles]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        reg = get_registry()
        if reg.enabled:
            reg.record_external(
                f"wave.{self.label}",
                self._t0,
                time.perf_counter(),
                rank=self._executor._wave_lane(self.label),
            )

    def __enter__(self) -> "Wave":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class RankExecutor:
    """Dispatch independent rank-local tasks onto a worker backend.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"thread"`` or ``"process"``.
    workers:
        Worker count (must be >= 1).  Sets the work *partition* for
        every backend; the serial backend runs that same partition as
        an ordered loop, so ``workers`` alone determines the float
        reassociation and the backends agree bitwise.
    initializer, initargs:
        Run once in every process-pool worker after fork (e.g. to build
        the worker's private short-range solver).  Ignored by the other
        backends, whose tasks can see the caller's objects directly.
    groups:
        Shard the process backend into ``groups`` independent pools of
        ``workers // groups`` processes each — the multi-node-style rank
        groups of the paper's 5-D torus partitioning (see
        :class:`repro.machine.mapping.RankGroupLayout`).  Work is routed
        to groups in contiguous blocks; results are still consumed in
        payload order, so grouping changes placement only, never values.
        Ignored by the serial and thread backends.

    Notes
    -----
    Pools are created lazily on first dispatch and persist until
    :meth:`close` — per-step dispatch reuses warm workers, warm shared
    memory and (in-process) warm NumPy buffers.  The executor is also a
    context manager.
    """

    def __init__(
        self,
        backend: str = "serial",
        workers: int = 1,
        initializer: Callable | None = None,
        initargs: tuple = (),
        groups: int = 1,
    ) -> None:
        if backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"backend must be one of {EXECUTOR_BACKENDS}, "
                f"got {backend!r}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        if groups < 1:
            raise ValueError(f"groups must be >= 1: {groups}")
        if groups > workers or workers % groups:
            raise ValueError(
                f"groups ({groups}) must evenly divide workers "
                f"({workers})"
            )
        self.backend = backend
        self.workers = int(workers)
        self.groups = int(groups)
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._threads: ThreadPoolExecutor | None = None
        self._pools: dict[int, object] = {}  # group -> mp pool
        self._shared: dict[str, tuple] = {}  # key -> (shm, handle)
        self._lanes: dict[int, int] = {}  # thread ident / pid -> lane
        self._wave_lanes: dict[str, int] = {}  # wave label -> lane
        self._picklable: dict[int, bool] = {}  # id(fn) -> preflight ok
        self._lane_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def from_config(
        cls,
        config,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> "RankExecutor":
        """Build from ``config.executor`` / ``config.workers``."""
        return cls(
            backend=getattr(config, "executor", "serial"),
            workers=getattr(config, "workers", 1),
            initializer=initializer,
            initargs=initargs,
            groups=getattr(config, "worker_groups", 1),
        )

    @property
    def n_workers(self) -> int:
        """Partition width — identical across backends by design."""
        return self.workers

    @property
    def parallel(self) -> bool:
        """True when dispatch should fan work out (workers > 1)."""
        return self.n_workers > 1

    # ------------------------------------------------------------------
    # lanes
    # ------------------------------------------------------------------
    def _lane(self, key: int) -> int:
        """Stable worker-lane id for a thread ident or child pid."""
        with self._lane_lock:
            lane = self._lanes.get(key)
            if lane is None:
                lane = WORKER_LANE_BASE + len(self._lanes)
                self._lanes[key] = lane
            return lane

    def _wave_lane(self, label: str) -> int:
        """Stable wave-envelope lane id for a wave label."""
        with self._lane_lock:
            lane = self._wave_lanes.get(label)
            if lane is None:
                lane = WAVE_LANE_BASE + len(self._wave_lanes)
                self._wave_lanes[label] = lane
            return lane

    # ------------------------------------------------------------------
    # dispatch bookkeeping
    # ------------------------------------------------------------------
    def _check_picklable(self, fn: Callable, label: str) -> None:
        """Preflight-pickle ``fn`` before it reaches a process pool.

        A closure or bound method shipped to the pool used to surface as
        an opaque mid-dispatch pickling traceback; fail fast with the
        phase name instead.  Cached per function object so warm per-step
        dispatch pays one dict lookup, not a pickle.
        """
        key = id(fn)
        if self._picklable.get(key):
            return
        import pickle

        try:
            pickle.dumps(fn)
        except Exception as exc:
            raise UnpicklableTaskError(label, exc) from exc
        self._picklable[key] = True

    def _charge_dispatch(self, n_tasks: int, n_envelopes: int,
                         seconds: float) -> None:
        """Record dispatch overhead honestly on the parent registry."""
        reg = get_registry()
        if reg.enabled:
            reg.count("executor.dispatches", 1)
            reg.count("executor.tasks", n_tasks)
            reg.count("executor.envelopes", n_envelopes)
            reg.count("executor.dispatch_s", seconds)

    def _chunk_bounds(self, n: int) -> list[tuple[int, int]]:
        """Contiguous chunk boundaries for an ``n``-payload dispatch.

        One chunk per worker when payloads outnumber workers (the
        envelope-reuse fix: per-dispatch cost scales with workers, not
        domains), one payload per chunk otherwise.  Chunks are a pure
        scheduling decision — results are flattened back to payload
        order, so values are identical to per-payload dispatch.
        """
        k = min(self.workers, n)
        bounds = [n * i // k for i in range(k + 1)]
        return [(a, b) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]

    def _group_of(self, index: int, n_items: int) -> int:
        """Blocked chunk->group routing (see RankGroupLayout.group_of)."""
        if self.groups == 1 or n_items < 1:
            return 0
        return min(index * self.groups // n_items, self.groups - 1)

    def _merge_worker_record(
        self, label, pid, t0, t1, spans, counters
    ) -> None:
        """Fold one process-worker envelope into the parent registry."""
        reg = get_registry()
        if not reg.enabled:
            return
        lane = self._lane(pid)
        reg.record_external(label, t0, t1, rank=lane)
        # worker-side interior spans, re-rooted under the task envelope
        # so the lane renders (and nests) as a real tree
        for name, path, s0, s1 in spans:
            reg.record_external(
                name, s0, s1, rank=lane, path=f"{label}/{path}"
            )
        # worker-side counters, merged in consumption order so the
        # totals are deterministic and identical to serial/thread
        for name, value_ in counters:
            reg.count(name, value_)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable,
        payloads: Sequence,
        *,
        ranks: Sequence[int] | None = None,
        label: str = "executor.task",
    ) -> list:
        """Run ``fn(payload)`` for every payload; results in input order.

        ``ranks`` names the simulated rank behind each payload for error
        attribution and defaults to the payload index.  For the process
        backend ``fn`` must be a module-level (picklable) function and
        payload arrays should go through :meth:`share`.  The first
        failing task *in payload order* is re-raised as
        :class:`WorkerError`.
        """
        payloads = list(payloads)
        if ranks is None:
            ranks = range(len(payloads))
        ranks = [int(r) for r in ranks]
        if len(ranks) != len(payloads):
            raise ValueError(
                f"{len(ranks)} ranks for {len(payloads)} payloads"
            )
        if not payloads:
            return []
        if self.backend == "process":
            return self._map_process(fn, payloads, ranks, label)
        if self.backend == "thread" and self.workers > 1:
            return self._map_thread(fn, payloads, ranks, label)
        return self._map_serial(fn, payloads, ranks, label)

    def map_inprocess(
        self,
        fn: Callable,
        payloads: Sequence,
        *,
        ranks: Sequence[int] | None = None,
        label: str = "executor.task",
    ) -> list:
        """Like :meth:`map` but never crosses a process boundary.

        For sections whose operands are large in-process arrays that are
        cheap to compute but expensive to ship (the three gradient
        inverse FFTs, the CIC gathers): the thread *and* process
        backends run them concurrently on the parent's side thread pool
        — closures and bound methods are fine here, nothing is pickled.
        (The process backend used to fall back to an ordered serial loop
        silently; it now gets the same thread-pool concurrency the
        thread backend always had.)
        """
        payloads = list(payloads)
        if ranks is None:
            ranks = range(len(payloads))
        ranks = [int(r) for r in ranks]
        if not payloads:
            return []
        if self.workers > 1 and self.backend in ("thread", "process"):
            return self._map_thread(fn, payloads, ranks, label)
        return self._map_serial(fn, payloads, ranks, label)

    # -- futures --------------------------------------------------------
    def submit(
        self,
        fn: Callable,
        payload,
        *,
        rank: int = 0,
        label: str = "executor.task",
    ) -> TaskHandle:
        """Start ``fn(payload)`` without waiting; returns a TaskHandle.

        The asynchronous counterpart of :meth:`map` — phases submit work
        the moment its inputs exist and consume handles in a fixed order
        later, so communication and independent compute overlap.  The
        serial backend (and any single-worker executor) executes eagerly
        at submit time: submission order *is* execution order, which
        makes it the bit-identical reference for the overlapped paths.
        """
        rank = int(rank)
        if self.backend == "process" and self.workers > 1:
            return self._submit_process(fn, payload, rank, label)
        if self.backend == "thread" and self.workers > 1:
            return self._submit_thread(fn, payload, rank, label)
        return self._submit_eager(fn, payload, rank, label)

    def submit_inprocess(
        self,
        fn: Callable,
        payload,
        *,
        rank: int = 0,
        label: str = "executor.task",
    ) -> TaskHandle:
        """Like :meth:`submit` but never crosses a process boundary."""
        rank = int(rank)
        if self.workers > 1 and self.backend in ("thread", "process"):
            return self._submit_thread(fn, payload, rank, label)
        return self._submit_eager(fn, payload, rank, label)

    def wave(self, label: str) -> Wave:
        """Open an overlap :class:`Wave` (use as a context manager)."""
        return Wave(self, label)

    def _submit_eager(self, fn, payload, rank, label) -> TaskHandle:
        try:
            return TaskHandle(self, rank, label, "value", fn(payload))
        except Exception as exc:
            return TaskHandle(self, rank, label, "error", exc)

    def _submit_thread(self, fn, payload, rank, label) -> TaskHandle:
        pool = self._ensure_threads()

        def task():
            reg = get_registry()
            if reg.enabled:
                lane = self._lane(threading.get_ident())
                with reg.span(label, rank=lane):
                    return fn(payload)
            return fn(payload)

        return TaskHandle(self, rank, label, "future", pool.submit(task))

    def _submit_process(self, fn, payload, rank, label) -> TaskHandle:
        self._check_picklable(fn, label)
        pool = self._ensure_pool(rank % self.groups)
        capture = get_registry().enabled
        res = pool.apply_async(_process_call, ((fn, payload, capture),))
        return TaskHandle(self, rank, label, "pool", res)

    # -- serial ---------------------------------------------------------
    def _map_serial(self, fn, payloads, ranks, label) -> list:
        out = []
        for rank, payload in zip(ranks, payloads):
            try:
                out.append(fn(payload))
            except WorkerError:
                raise
            except Exception as exc:
                raise WorkerError(rank, exc) from exc
        return out

    # -- thread ---------------------------------------------------------
    def _ensure_threads(self) -> ThreadPoolExecutor:
        if self._threads is None:
            if self._closed:
                raise RuntimeError("executor is closed")
            self._threads = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-exec",
            )
        return self._threads

    def _map_thread(self, fn, payloads, ranks, label) -> list:
        pool = self._ensure_threads()
        t0 = time.perf_counter()
        chunks = self._chunk_bounds(len(payloads))

        def run_chunk(chunk_payloads):
            def run_all():
                results = []
                for payload in chunk_payloads:
                    try:
                        results.append((True, fn(payload)))
                    except Exception as exc:
                        results.append((False, exc))
                return results

            reg = get_registry()
            if reg.enabled:
                lane = self._lane(threading.get_ident())
                with reg.span(label, rank=lane):
                    return run_all()
            return run_all()

        futures = [
            pool.submit(run_chunk, payloads[a:b]) for a, b in chunks
        ]
        self._charge_dispatch(
            len(payloads), len(chunks), time.perf_counter() - t0
        )
        out, failure = [], None
        for (a, b), fut in zip(chunks, futures):
            for rank, (ok, value) in zip(ranks[a:b], fut.result()):
                if not ok and failure is None:
                    failure = (rank, value)
                out.append(value if ok else None)
        if failure is not None:
            rank, exc = failure
            if isinstance(exc, WorkerError):
                raise exc
            raise WorkerError(rank, exc) from exc
        return out

    # -- process --------------------------------------------------------
    def _ensure_pool(self, group: int = 0):
        pool = self._pools.get(group)
        if pool is None:
            if self._closed:
                raise RuntimeError("executor is closed")
            import multiprocessing as mp

            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                ctx = mp.get_context("spawn")
            pool = ctx.Pool(
                processes=self.workers // self.groups,
                initializer=_pool_init,
                initargs=(self._initializer, self._initargs),
            )
            self._pools[group] = pool
        return pool

    def _map_process(self, fn, payloads, ranks, label) -> list:
        self._check_picklable(fn, label)
        capture = get_registry().enabled
        t0 = time.perf_counter()
        chunks = self._chunk_bounds(len(payloads))
        pending = []
        for i, (a, b) in enumerate(chunks):
            pool = self._ensure_pool(self._group_of(i, len(chunks)))
            pending.append(
                pool.apply_async(
                    _chunk_call, ((fn, tuple(payloads[a:b]), capture),)
                )
            )
        self._charge_dispatch(
            len(payloads), len(chunks), time.perf_counter() - t0
        )
        out, failure = [], None
        for (a, b), res in zip(chunks, pending):
            pid, ct0, ct1, results, spans, counters = res.get()
            self._merge_worker_record(label, pid, ct0, ct1, spans, counters)
            for rank, (ok, value) in zip(ranks[a:b], results):
                if not ok and failure is None:
                    failure = (rank, value)
                out.append(value if ok else None)
        if failure is not None:
            rank, exc = failure
            if isinstance(exc, WorkerError):
                raise exc
            raise WorkerError(rank, exc) from exc
        return out

    # ------------------------------------------------------------------
    # shared arrays
    # ------------------------------------------------------------------
    def share(self, key: str, array: np.ndarray):
        """Publish an array to the workers under ``key``.

        Serial/thread backends share the caller's memory directly (the
        return value *is* the array).  The process backend copies into a
        named shared-memory block — reused across steps while the shape
        and dtype are stable, reallocated otherwise — and returns a
        picklable :class:`SharedArrayHandle`.  Only call between
        dispatches: workers read the block while tasks are in flight.
        """
        array = np.ascontiguousarray(array)
        if self.backend != "process":
            return array
        entry = self._shared.get(key)
        if entry is not None:
            shm, handle = entry
            if (
                handle.shape == array.shape
                and np.dtype(handle.dtype) == array.dtype
            ):
                np.frombuffer(shm.buf, dtype=array.dtype)[
                    :
                ] = array.ravel()
                return handle
            self._release_shared(key)
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(
            create=True,
            size=max(int(array.nbytes), 1),
            name=(
                f"{SHM_PREFIX}{os.getpid()}-{key.replace('/', '_')}-"
                f"{next(_HANDLE_COUNTER)}"
            ),
        )
        _track_segment(shm)
        np.frombuffer(shm.buf, dtype=array.dtype, count=array.size)[
            :
        ] = array.ravel()
        handle = SharedArrayHandle(
            name=shm.name, shape=tuple(array.shape), dtype=str(array.dtype)
        )
        self._shared[key] = (shm, handle)
        return handle

    def _release_shared(self, key: str) -> None:
        shm, _ = self._shared.pop(key)
        _untrack_segment(shm.name)
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass

    def shared_nbytes(self) -> int:
        """Bytes currently resident in this executor's shared segments.

        The f32 SOA residency measurement: the bench records this so the
        "128^3 fits" claim is a number, not a promise.
        """
        total = 0
        for _, handle in self._shared.values():
            count = (
                int(np.prod(handle.shape, dtype=np.int64))
                if handle.shape
                else 1
            )
            total += count * np.dtype(handle.dtype).itemsize
        return total

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down pools and release shared-memory blocks (idempotent)."""
        self._closed = True
        if self._threads is not None:
            self._threads.shutdown(wait=True)
            self._threads = None
        for pool in self._pools.values():
            pool.terminate()
            pool.join()
        self._pools.clear()
        for key in list(self._shared):
            self._release_shared(key)

    def __enter__(self) -> "RankExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RankExecutor(backend={self.backend!r}, "
            f"workers={self.workers})"
        )
