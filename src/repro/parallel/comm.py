"""In-process simulated MPI communicator with byte-accurate accounting.

Design
------
Rank-local state is held by the *caller* (one NumPy array per rank);
:class:`SimulatedComm` implements the bulk-synchronous collectives the HACC
algorithms need — ``alltoallv``, ``exchange`` (sparse point-to-point
batches), ``allreduce``, ``allgather`` — operating on *lists indexed by
rank*.  Because every rank's contribution is passed in a single call, the
collective is executed atomically and deterministically; there is no
interleaving to get wrong, yet the data movement (who sends how many bytes
to whom) is exactly what an MPI implementation would perform, and it is
recorded in :class:`CommStats` for the machine model.

Sub-communicators created with :meth:`split` share the parent's statistics
object, mirroring how MPI communicators share the underlying network.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.instrument import get_registry
from repro.resilience.faults import get_fault_plan

__all__ = ["CommStats", "SimulatedComm"]


#: log2 message-size histogram buckets: bucket ``b`` holds messages whose
#: byte count has ``bit_length() == b``, i.e. sizes in ``[2^(b-1), 2^b)``
HISTOGRAM_BUCKETS = 48


@dataclass
class CommStats:
    """Cumulative communication traffic recorded by a communicator tree.

    Parameters
    ----------
    n_ranks:
        When given, per-pair traffic (the point-to-point collectives:
        ``alltoallv`` and ``exchange``) is additionally accumulated into
        ``n_ranks x n_ranks`` message/byte matrices indexed by *global*
        rank ids — the per-rank communication volume behind the paper's
        pencil-FFT transpose accounting (Figs. 7-8).  Tree-modelled
        collectives (allreduce/allgather/barrier) have no physical
        (src, dst) pairs and appear only in the aggregate counters.
    """

    messages: int = 0
    bytes: int = 0
    by_tag: dict = field(default_factory=lambda: defaultdict(lambda: [0, 0]))
    n_ranks: int | None = None

    def __post_init__(self) -> None:
        self.msg_matrix: np.ndarray | None = None
        self.byte_matrix: np.ndarray | None = None
        if self.n_ranks is not None:
            if self.n_ranks < 1:
                raise ValueError(f"n_ranks must be >= 1: {self.n_ranks}")
            self.msg_matrix = np.zeros(
                (self.n_ranks, self.n_ranks), dtype=np.int64
            )
            self.byte_matrix = np.zeros(
                (self.n_ranks, self.n_ranks), dtype=np.int64
            )
        #: per-tag log2 message-size histograms (lazily created)
        self.by_tag_hist: dict[str, np.ndarray] = {}

    @property
    def matrix_enabled(self) -> bool:
        return self.byte_matrix is not None

    def record(
        self,
        n_messages: int,
        n_bytes: int,
        tag: str,
        pairs: Iterable[tuple[int, int, int]] | None = None,
    ) -> None:
        """Add ``n_messages`` totalling ``n_bytes`` under phase ``tag``.

        ``pairs`` optionally itemizes the same traffic as
        ``(src_global_rank, dst_global_rank, n_bytes)`` triples; when
        present they feed the rank-pair matrices and the per-tag
        message-size histogram.  Traffic is mirrored into the active
        instrument registry (no-op by default) as ``comm.messages`` /
        ``comm.bytes`` totals plus a per-tag ``comm.bytes[<tag>]``
        breakdown, so profiled runs report message volume — notably the
        FFT transpose volume — alongside the section timers.
        """
        self.messages += int(n_messages)
        self.bytes += int(n_bytes)
        entry = self.by_tag[tag]
        entry[0] += int(n_messages)
        entry[1] += int(n_bytes)
        if pairs:
            hist = self.by_tag_hist.get(tag)
            if hist is None:
                hist = np.zeros(HISTOGRAM_BUCKETS, dtype=np.int64)
                self.by_tag_hist[tag] = hist
            mm, bm = self.msg_matrix, self.byte_matrix
            for src, dst, size in pairs:
                hist[min(int(size).bit_length(), HISTOGRAM_BUCKETS - 1)] += 1
                if bm is not None:
                    mm[src, dst] += 1
                    bm[src, dst] += size
        reg = get_registry()
        if reg.enabled:
            reg.count("comm.messages", int(n_messages))
            reg.count("comm.bytes", int(n_bytes))
            reg.count(f"comm.bytes[{tag}]", int(n_bytes))

    def reset(self) -> None:
        """Zero all counters, matrices and histograms."""
        self.messages = 0
        self.bytes = 0
        self.by_tag.clear()
        self.by_tag_hist.clear()
        if self.msg_matrix is not None:
            self.msg_matrix[:] = 0
            self.byte_matrix[:] = 0

    def tag_bytes(self, tag: str) -> int:
        """Bytes recorded under ``tag`` (0 if the tag never appeared)."""
        return self.by_tag[tag][1] if tag in self.by_tag else 0

    def tag_messages(self, tag: str) -> int:
        """Messages recorded under ``tag`` (0 if the tag never appeared)."""
        return self.by_tag[tag][0] if tag in self.by_tag else 0

    def tag_histogram(self, tag: str) -> np.ndarray:
        """Log2 message-size histogram for ``tag`` (zeros if absent).

        Bucket ``b`` counts messages with ``size.bit_length() == b``,
        i.e. sizes in ``[2^(b-1), 2^b)`` bytes.
        """
        hist = self.by_tag_hist.get(tag)
        if hist is None:
            return np.zeros(HISTOGRAM_BUCKETS, dtype=np.int64)
        return hist.copy()

    def rank_send_bytes(self) -> np.ndarray:
        """Bytes sent per global rank (matrix row sums)."""
        if self.byte_matrix is None:
            raise RuntimeError(
                "rank matrices disabled; construct CommStats(n_ranks=...)"
            )
        return self.byte_matrix.sum(axis=1)

    def rank_recv_bytes(self) -> np.ndarray:
        """Bytes received per global rank (matrix column sums)."""
        if self.byte_matrix is None:
            raise RuntimeError(
                "rank matrices disabled; construct CommStats(n_ranks=...)"
            )
        return self.byte_matrix.sum(axis=0)

    def summary(self) -> dict:
        """Plain-dict snapshot, convenient for logging and benchmarks.

        Per-tag entries carry explicit ``messages`` *and* ``bytes``
        counts (plus the size histogram when per-pair traffic was
        recorded); rank totals appear when the matrices are enabled.
        """
        out = {
            "messages": self.messages,
            "bytes": self.bytes,
            "by_tag": {
                k: {"messages": v[0], "bytes": v[1]}
                for k, v in self.by_tag.items()
            },
        }
        for tag, hist in self.by_tag_hist.items():
            out["by_tag"][tag]["size_histogram"] = {
                int(b): int(c) for b, c in enumerate(hist) if c
            }
        if self.byte_matrix is not None:
            out["rank_send_bytes"] = self.rank_send_bytes().tolist()
            out["rank_recv_bytes"] = self.rank_recv_bytes().tolist()
        return out


def _nbytes(obj) -> int:
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (int, float, complex, np.generic)):
        return np.asarray(obj).nbytes
    if isinstance(obj, (tuple, list)):
        return sum(_nbytes(o) for o in obj)
    raise TypeError(f"cannot measure message size for type {type(obj)!r}")


class SimulatedComm:
    """A communicator over ``size`` simulated ranks.

    Parameters
    ----------
    size:
        Number of ranks.
    stats:
        Optional shared :class:`CommStats`; by default a fresh one is made.
    members:
        Global rank ids of the members (used by sub-communicators so that
        traffic can still be attributed to global ranks).

    Examples
    --------
    >>> comm = SimulatedComm(2)
    >>> out = comm.alltoallv([[np.zeros(1), np.ones(2)],
    ...                       [np.zeros(3), np.ones(4)]], tag="demo")
    >>> [len(b) for b in out[0]], [len(b) for b in out[1]]
    ([1, 3], [2, 4])
    """

    def __init__(
        self,
        size: int,
        stats: CommStats | None = None,
        members: Sequence[int] | None = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"communicator size must be >= 1, got {size}")
        self.size = int(size)
        self.stats = stats if stats is not None else CommStats(n_ranks=size)
        self.members = (
            tuple(range(size)) if members is None else tuple(members)
        )
        if len(self.members) != self.size:
            raise ValueError("members must have exactly `size` entries")
        if self.stats.matrix_enabled and max(self.members) >= self.stats.n_ranks:
            raise ValueError(
                f"member rank {max(self.members)} exceeds the stats matrix "
                f"size {self.stats.n_ranks}"
            )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulatedComm(size={self.size})"

    @staticmethod
    def _maybe_fail(tag: str) -> None:
        """Fault-injection hook, consulted before any traffic moves.

        Raises :class:`repro.resilience.faults.TransientCommError` when
        the active fault plan schedules a failure for this collective —
        *before* :class:`CommStats` records anything, so a failed
        attempt is never charged to the network and a retrying wrapper
        (:class:`repro.resilience.retry.ResilientComm`) double-counts
        nothing.  The default plan is disabled: one attribute test.
        """
        plan = get_fault_plan()
        if plan.enabled:
            plan.comm_fault(tag)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def alltoallv(
        self, sendbufs: Sequence[Sequence], tag: str = "alltoallv"
    ) -> list[list]:
        """Variable-size all-to-all.

        ``sendbufs[i][j]`` is the payload rank ``i`` sends to rank ``j``
        (any NumPy array, possibly empty).  Returns ``recv`` with
        ``recv[j][i] = sendbufs[i][j]``.  Self-messages (``i == j``) are
        delivered but not charged to the network, matching MPI
        implementations that short-circuit self sends through memcpy.
        """
        n = self.size
        if len(sendbufs) != n:
            raise ValueError(
                f"expected {n} send rows, got {len(sendbufs)}"
            )
        self._maybe_fail(tag)
        msgs = 0
        nbytes = 0
        pairs: list[tuple[int, int, int]] = []
        members = self.members
        recv: list[list] = [[None] * n for _ in range(n)]
        for i, row in enumerate(sendbufs):
            if len(row) != n:
                raise ValueError(
                    f"send row {i} has {len(row)} entries, expected {n}"
                )
            for j, payload in enumerate(row):
                recv[j][i] = payload
                if i != j and payload is not None:
                    size = _nbytes(payload)
                    if size:
                        msgs += 1
                        nbytes += size
                        pairs.append((members[i], members[j], size))
        self.stats.record(msgs, nbytes, tag, pairs=pairs)
        return recv

    def exchange(
        self, sends: Mapping[tuple[int, int], np.ndarray], tag: str = "exchange"
    ) -> dict[tuple[int, int], np.ndarray]:
        """Sparse batched point-to-point exchange.

        ``sends[(src, dst)]`` is delivered to ``dst``; the result maps the
        same keys (so receivers look up by ``(src, dst)``).  This is the
        particle-overloading communication pattern: each rank talks only to
        its 26 spatial neighbors.
        """
        self._maybe_fail(tag)
        msgs = 0
        nbytes = 0
        pairs: list[tuple[int, int, int]] = []
        members = self.members
        for (src, dst), payload in sends.items():
            self._check_rank(src)
            self._check_rank(dst)
            if src != dst and payload is not None:
                size = _nbytes(payload)
                if size:
                    msgs += 1
                    nbytes += size
                    pairs.append((members[src], members[dst], size))
        self.stats.record(msgs, nbytes, tag, pairs=pairs)
        return dict(sends)

    def allreduce(
        self, values: Sequence, op: Callable = sum, tag: str = "allreduce"
    ):
        """Reduce one value per rank with ``op`` and broadcast the result.

        ``op`` receives the list of per-rank values.  Traffic is charged as
        a binary-tree reduction + broadcast: ``2 (size-1)`` messages.
        """
        if len(values) != self.size:
            raise ValueError(
                f"expected {self.size} values, got {len(values)}"
            )
        self._maybe_fail(tag)
        result = op(list(values))
        per_msg = _nbytes(values[0]) if self.size else 0
        self.stats.record(2 * (self.size - 1), 2 * (self.size - 1) * per_msg, tag)
        return result

    def allgather(self, values: Sequence, tag: str = "allgather") -> list:
        """Gather one value from every rank to all ranks.

        Traffic model: recursive doubling, each rank ends up receiving
        ``size - 1`` remote contributions.
        """
        if len(values) != self.size:
            raise ValueError(
                f"expected {self.size} values, got {len(values)}"
            )
        self._maybe_fail(tag)
        nbytes = sum(_nbytes(v) for v in values)
        self.stats.record(
            self.size * (self.size - 1),
            (self.size - 1) * nbytes,
            tag,
        )
        return list(values)

    def barrier(self, tag: str = "barrier") -> None:
        """Synchronization point; charged as a tree barrier."""
        self._maybe_fail(tag)
        self.stats.record(2 * (self.size - 1), 0, tag)

    # ------------------------------------------------------------------
    # topology helpers
    # ------------------------------------------------------------------
    def split(self, colors: Sequence[int]) -> list["SimulatedComm"]:
        """Partition ranks into sub-communicators by color (MPI_Comm_split).

        Returns one communicator per distinct color, ordered by color; all
        children share this communicator's :class:`CommStats`.
        """
        if len(colors) != self.size:
            raise ValueError(
                f"expected {self.size} colors, got {len(colors)}"
            )
        groups: dict[int, list[int]] = defaultdict(list)
        for rank, color in enumerate(colors):
            groups[int(color)].append(rank)
        return [
            self._child(
                len(ranks),
                self.stats,
                tuple(self.members[r] for r in ranks),
            )
            for _, ranks in sorted(groups.items())
        ]

    def _child(
        self, size: int, stats: CommStats, members: tuple[int, ...]
    ) -> "SimulatedComm":
        """Sub-communicator factory; resilient subclasses override it so
        :meth:`split` children inherit their retry policy."""
        return SimulatedComm(size, stats=stats, members=members)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(
                f"rank {rank} out of range for communicator of size {self.size}"
            )
