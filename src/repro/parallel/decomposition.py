"""Regular (non-cubic) 3-D block domain decomposition.

HACC decomposes the periodic box into a ``gx x gy x gz`` grid of
rectangular rank domains (Section II; Table II lists geometries such as
``192x128x64``).  This module provides the geometry: rank <-> block
mapping, block bounds, particle-to-rank assignment, and a factory that
picks a balanced factorization for a given rank count the way the paper's
run configurations do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import reduce

import numpy as np

__all__ = ["DomainDecomposition", "balanced_dims"]


def _prime_factors(n: int) -> list[int]:
    out = []
    f = 2
    while f * f <= n:
        while n % f == 0:
            out.append(f)
            n //= f
        f += 1 if f == 2 else 2
    if n > 1:
        out.append(n)
    return out


def balanced_dims(n_ranks: int, ndim: int = 3) -> tuple[int, ...]:
    """Factor ``n_ranks`` into ``ndim`` near-equal dimensions.

    Greedy: assign prime factors (largest first) to the currently smallest
    dimension.  ``balanced_dims(2048)`` gives (16, 16, 8) — compare the
    paper's 16x16x8-style geometries.
    """
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    dims = [1] * ndim
    for p in sorted(_prime_factors(n_ranks), reverse=True):
        dims[int(np.argmin(dims))] *= p
    return tuple(sorted(dims, reverse=True))


@dataclass(frozen=True)
class DomainDecomposition:
    """Geometry of a 3-D block decomposition of a periodic box.

    Parameters
    ----------
    box_size:
        Periodic box side length (Mpc/h).
    dims:
        Rank grid ``(gx, gy, gz)``.

    Examples
    --------
    >>> d = DomainDecomposition(100.0, (2, 2, 1))
    >>> d.n_ranks
    4
    >>> d.rank_of_coords((1, 0, 0))
    2
    """

    box_size: float
    dims: tuple[int, int, int]

    def __post_init__(self) -> None:
        if self.box_size <= 0:
            raise ValueError(f"box_size must be positive: {self.box_size}")
        if len(self.dims) != 3 or any(d < 1 for d in self.dims):
            raise ValueError(f"dims must be three positive ints: {self.dims}")

    @classmethod
    def from_rank_count(
        cls, box_size: float, n_ranks: int
    ) -> "DomainDecomposition":
        """Decomposition with a balanced (near-cubic) rank grid."""
        return cls(box_size, balanced_dims(n_ranks))  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return self.dims[0] * self.dims[1] * self.dims[2]

    @property
    def widths(self) -> tuple[float, float, float]:
        """Per-axis rank-domain widths (Mpc/h)."""
        return tuple(self.box_size / d for d in self.dims)  # type: ignore[return-value]

    def coords_of_rank(self, rank: int) -> tuple[int, int, int]:
        """Block coordinates (ix, iy, iz) for a linear rank id."""
        gx, gy, gz = self.dims
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range (0..{self.n_ranks - 1})")
        iz = rank % gz
        iy = (rank // gz) % gy
        ix = rank // (gy * gz)
        return ix, iy, iz

    def rank_of_coords(self, coords) -> int:
        """Linear rank id for block coordinates (periodic wrap applied)."""
        gx, gy, gz = self.dims
        ix, iy, iz = (int(c) % d for c, d in zip(coords, self.dims))
        return (ix * gy + iy) * gz + iz

    def bounds(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        """(lo, hi) corner coordinates of a rank's domain, Mpc/h."""
        coords = np.asarray(self.coords_of_rank(rank), dtype=np.float64)
        w = np.asarray(self.widths)
        lo = coords * w
        return lo, lo + w

    # ------------------------------------------------------------------
    def assign(self, positions: np.ndarray) -> np.ndarray:
        """Home rank id for each particle position (positions wrapped)."""
        pos = np.mod(np.asarray(positions, dtype=np.float64), self.box_size)
        dims = np.asarray(self.dims)
        cell = np.floor(pos / self.box_size * dims).astype(np.int64)
        # guard against pos == box_size after round-off
        np.clip(cell, 0, dims - 1, out=cell)
        gx, gy, gz = self.dims
        return (cell[:, 0] * gy + cell[:, 1]) * gz + cell[:, 2]

    def neighbor_ranks(self, rank: int) -> list[int]:
        """The (up to) 26 distinct periodic neighbors of a rank's block."""
        ix, iy, iz = self.coords_of_rank(rank)
        seen = []
        for ox in (-1, 0, 1):
            for oy in (-1, 0, 1):
                for oz in (-1, 0, 1):
                    if ox == oy == oz == 0:
                        continue
                    r = self.rank_of_coords((ix + ox, iy + oy, iz + oz))
                    if r != rank and r not in seen:
                        seen.append(r)
        return seen

    # ------------------------------------------------------------------
    def overload_volume_factor(self, depth: float) -> float:
        """Ratio of overloaded to owned volume, ``prod (w_i + 2 d) / w_i``.

        This is the paper's ~10% memory-overhead estimate for production
        geometries, and the quantity that blows up in the strong-scaling
        'abuse' regime of Table III.
        """
        if depth < 0:
            raise ValueError(f"depth must be non-negative: {depth}")
        factor = 1.0
        for w in self.widths:
            if 2 * depth >= w:
                raise ValueError(
                    f"overload depth {depth} too large for domain width {w}"
                )
            factor *= (w + 2.0 * depth) / w
        return factor
