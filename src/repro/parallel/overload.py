"""Particle overloading: full replication across domain boundaries.

Instead of the thin guard zones of a conventional PM code, HACC replicates
*complete particles* in a shell of depth ``d`` around every rank domain
(Fig. 4 of the paper).  Particles inside the domain are **active** — their
mass is deposited in the Poisson solve and they are the rank's
authoritative copies; replicas in the boundary shell are **passive** —
they are moved by interpolated forces and serve as short-range force
sources, and they are refreshed only sparsely.  The payoff is that the
short-range solver becomes entirely rank-local (no communication during
sub-cycles), which is the architectural point of the paper.

This module implements the scheme over the simulated communicator:

* :meth:`OverloadExchange.distribute` — initial decomposition of a global
  particle set into per-rank overloaded domains;
* :meth:`OverloadExchange.refresh` — the sparse overload-zone refresh,
  migrating particles whose roles changed and rebuilding replicas;
* role bookkeeping (active masks, global ids) with conservation
  invariants the property tests check.

Passive copies near a periodic face carry *unwrapped* coordinates (shifted
by ±box) so each rank sees a geometrically contiguous particle cloud.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.comm import SimulatedComm
from repro.parallel.decomposition import DomainDecomposition

__all__ = ["OverloadedDomain", "OverloadExchange", "domain_stats"]


def domain_stats(domains: list["OverloadedDomain"]) -> dict:
    """Per-rank load summary of a set of overloaded domains.

    Feeds the telemetry imbalance gauges: ``active`` / ``passive`` counts
    and ghost (overload) fraction keyed by rank, plus the paper-style
    ``max/mean`` imbalance factor of the active counts.
    """
    active = {dom.rank: dom.n_active for dom in domains}
    counts = list(active.values())
    mean = sum(counts) / len(counts) if counts else 0.0
    return {
        "active": active,
        "passive": {dom.rank: dom.n_passive for dom in domains},
        "ghost_fraction": {
            dom.rank: dom.overload_fraction() for dom in domains
        },
        "imbalance": (max(counts) / mean) if mean else 0.0,
    }


@dataclass
class OverloadedDomain:
    """Per-rank particle storage in structure-of-arrays layout.

    Attributes
    ----------
    rank:
        Owning rank id.
    positions, momenta:
        (N, 3) arrays covering active + passive particles.  Positions of
        passive replicas may lie outside [0, box) — they are expressed in
        the rank's contiguous local frame.
    masses:
        (N,) particle masses.
    ids:
        (N,) global particle ids (replicas share the id of their active
        original).
    active:
        (N,) boolean mask; True for the authoritative copies.
    """

    rank: int
    positions: np.ndarray
    momenta: np.ndarray
    masses: np.ndarray
    ids: np.ndarray
    active: np.ndarray

    @property
    def n_total(self) -> int:
        return self.positions.shape[0]

    @property
    def n_active(self) -> int:
        return int(np.count_nonzero(self.active))

    @property
    def n_passive(self) -> int:
        return self.n_total - self.n_active

    def overload_fraction(self) -> float:
        """Passive/active particle ratio — the memory-overhead measure."""
        act = self.n_active
        return self.n_passive / act if act else float("inf")

    def active_view(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(positions, momenta, masses, ids) of active particles only."""
        m = self.active
        return (
            self.positions[m],
            self.momenta[m],
            self.masses[m],
            self.ids[m],
        )


class OverloadExchange:
    """Builds and refreshes overloaded domains over a communicator.

    Parameters
    ----------
    decomposition:
        Block geometry of the ranks.
    depth:
        Overload shell depth (Mpc/h); must exceed the short-range force
        cutoff plus the distance particles can drift between refreshes.
    comm:
        Shared communicator; all particle traffic is recorded under the
        tags ``"overload.distribute"`` / ``"overload.refresh"``.
    """

    def __init__(
        self,
        decomposition: DomainDecomposition,
        depth: float,
        comm: SimulatedComm | None = None,
    ) -> None:
        if depth < 0:
            raise ValueError(f"overload depth must be >= 0, got {depth}")
        for w in decomposition.widths:
            if 2 * depth >= w:
                raise ValueError(
                    f"overload depth {depth} must be < half the domain width {w}"
                )
        self.decomposition = decomposition
        self.depth = float(depth)
        self.comm = (
            comm if comm is not None else SimulatedComm(decomposition.n_ranks)
        )
        if self.comm.size != decomposition.n_ranks:
            raise ValueError(
                f"communicator size {self.comm.size} != "
                f"{decomposition.n_ranks} ranks"
            )

    # ------------------------------------------------------------------
    def distribute(
        self,
        positions: np.ndarray,
        momenta: np.ndarray,
        masses: np.ndarray | None = None,
        ids: np.ndarray | None = None,
        tag: str = "overload.distribute",
    ) -> list[OverloadedDomain]:
        """Scatter a global particle set into overloaded per-rank domains.

        The paper's initial-condition path: every particle becomes active
        on exactly one rank and passive on every rank whose overload shell
        contains it.
        """
        # float32 state stays float32 across the scatter (mixed precision)
        dt = np.asarray(positions).dtype
        if dt not in (np.float32, np.float64):
            dt = np.dtype(np.float64)
        pos = np.mod(
            np.asarray(positions, dtype=dt),
            dt.type(self.decomposition.box_size),
        )
        mom = np.asarray(momenta, dtype=dt)
        n = pos.shape[0]
        if mom.shape != pos.shape:
            raise ValueError(
                f"momenta shape {mom.shape} != positions shape {pos.shape}"
            )
        mas = (
            np.ones(n, dtype=dt)
            if masses is None
            else np.asarray(masses, dtype=dt)
        )
        pid = (
            np.arange(n, dtype=np.int64)
            if ids is None
            else np.asarray(ids, dtype=np.int64)
        )

        home = self.decomposition.assign(pos)
        sends = self._route(pos, mom, mas, pid, home)
        return self._deliver(sends, tag)

    def distribute_stream(
        self,
        positions: np.ndarray,
        momenta: np.ndarray,
        masses: np.ndarray | None = None,
        ids: np.ndarray | None = None,
        tag: str = "overload.distribute",
    ):
        """Streaming :meth:`distribute`: yield domains one rank at a time.

        The comm/compute-overlap entry point: routing and the alltoallv
        run on the first ``next()`` (so the whole exchange is still one
        collective with identical traffic accounting), but per-rank
        *assembly* — the concatenation of received fragments into an
        :class:`OverloadedDomain` — is lazy.  The caller dispatches each
        domain's short-range solve as soon as it is assembled, while the
        remaining ranks' assembly is still pending.

        Per-rank assembly is the exact code :meth:`distribute` runs, in
        the same source-rank order, so the yielded domains are bitwise
        identical to the synchronous list — overlap changes *when* a
        domain materializes, never its contents.
        """
        dt = np.asarray(positions).dtype
        if dt not in (np.float32, np.float64):
            dt = np.dtype(np.float64)
        pos = np.mod(
            np.asarray(positions, dtype=dt),
            dt.type(self.decomposition.box_size),
        )
        mom = np.asarray(momenta, dtype=dt)
        n = pos.shape[0]
        if mom.shape != pos.shape:
            raise ValueError(
                f"momenta shape {mom.shape} != positions shape {pos.shape}"
            )
        mas = (
            np.ones(n, dtype=dt)
            if masses is None
            else np.asarray(masses, dtype=dt)
        )
        pid = (
            np.arange(n, dtype=np.int64)
            if ids is None
            else np.asarray(ids, dtype=np.int64)
        )

        home = self.decomposition.assign(pos)
        sends = self._route(pos, mom, mas, pid, home)
        nr = self.decomposition.n_ranks
        payloads = [
            [self._pack(sends[i][j]) for j in range(nr)] for i in range(nr)
        ]
        recv = self.comm.alltoallv(payloads, tag=tag)
        for r in range(nr):
            yield self._assemble(recv[r], r)

    def refresh(
        self,
        domains: list[OverloadedDomain],
        tag: str = "overload.refresh",
    ) -> list[OverloadedDomain]:
        """Rebuild the overload zones from current particle positions.

        Active particles that drifted out of their domain migrate (switch
        roles with the neighboring rank's passive copy — Fig. 4's
        "particles switch roles as they cross domain boundaries"); all
        passive replicas are discarded and regenerated.  Between refreshes
        no particle communication happens at all.
        """
        box = self.decomposition.box_size
        pos_parts, mom_parts, mas_parts, id_parts = [], [], [], []
        for dom in domains:
            p, v, m, i = dom.active_view()
            pos_parts.append(np.mod(p, box))
            mom_parts.append(v)
            mas_parts.append(m)
            id_parts.append(i)
        pos = np.concatenate(pos_parts, axis=0)
        mom = np.concatenate(mom_parts, axis=0)
        mas = np.concatenate(mas_parts)
        pid = np.concatenate(id_parts)
        home = self.decomposition.assign(pos)
        # charge only the particles that actually cross rank boundaries or
        # land in a remote overload shell; _route does exactly that.
        sends = self._route(pos, mom, mas, pid, home, origin=self._origins(domains))
        return self._deliver(sends, tag)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _origins(self, domains: list[OverloadedDomain]) -> np.ndarray:
        """Rank that currently owns each active particle, in refresh order."""
        return np.concatenate(
            [np.full(dom.n_active, dom.rank, dtype=np.int64) for dom in domains]
        )

    def _route(
        self,
        pos: np.ndarray,
        mom: np.ndarray,
        mas: np.ndarray,
        pid: np.ndarray,
        home: np.ndarray,
        origin: np.ndarray | None = None,
    ) -> list[list[dict]]:
        """Compute the (src, dst) payloads for distribute/refresh.

        For each of the 26 neighbor offsets, particles within ``depth`` of
        the corresponding face/edge/corner of their home domain are
        replicated to that neighbor with appropriately shifted
        coordinates.  Self-payloads carry the active copies.
        """
        decomp = self.decomposition
        box = decomp.box_size
        dims = np.asarray(decomp.dims)
        widths = np.asarray(decomp.widths)
        d = self.depth
        nr = decomp.n_ranks

        cell = np.floor(pos / box * dims).astype(np.int64)
        np.clip(cell, 0, dims - 1, out=cell)
        lo = cell * widths
        rel_lo = pos - lo          # distance to low faces
        rel_hi = widths - rel_lo   # distance to high faces

        src_of = origin if origin is not None else home
        sends: list[list[dict]] = [
            [
                {"pos": [], "mom": [], "mas": [], "pid": [], "act": []}
                for _ in range(nr)
            ]
            for _ in range(nr)
        ]

        # active copies go to the home rank
        order = np.argsort(home, kind="stable")
        sorted_home = home[order]
        boundaries = np.searchsorted(sorted_home, np.arange(nr + 1))
        for r in range(nr):
            sel = order[boundaries[r] : boundaries[r + 1]]
            if sel.size == 0:
                continue
            src = int(src_of[sel[0]]) if origin is not None else r
            # with mixed origins, group by source rank for correct accounting
            if origin is not None:
                for s in np.unique(src_of[sel]):
                    ss = sel[src_of[sel] == s]
                    self._append(sends[int(s)][r], pos[ss], mom[ss], mas[ss], pid[ss], True)
            else:
                self._append(sends[src][r], pos[sel], mom[sel], mas[sel], pid[sel], True)

        # passive replicas: loop over the 26 neighbor offsets
        for ox in (-1, 0, 1):
            near_x = (
                np.ones(len(pos), dtype=bool)
                if ox == 0
                else (rel_lo[:, 0] < d if ox < 0 else rel_hi[:, 0] < d)
            )
            for oy in (-1, 0, 1):
                near_y = (
                    np.ones(len(pos), dtype=bool)
                    if oy == 0
                    else (rel_lo[:, 1] < d if oy < 0 else rel_hi[:, 1] < d)
                )
                for oz in (-1, 0, 1):
                    if ox == oy == oz == 0:
                        continue
                    near_z = (
                        np.ones(len(pos), dtype=bool)
                        if oz == 0
                        else (rel_lo[:, 2] < d if oz < 0 else rel_hi[:, 2] < d)
                    )
                    sel = np.flatnonzero(near_x & near_y & near_z)
                    if sel.size == 0:
                        continue
                    off = np.array([ox, oy, oz])
                    nbr_cell = cell[sel] + off
                    wraps = np.zeros((sel.size, 3))
                    wraps[nbr_cell < 0] = box
                    wraps[nbr_cell >= dims] = -box
                    # replica coordinates in the *neighbor's* frame: shift
                    # by +-box when the offset crosses the periodic seam.
                    p_shift = pos[sel] + wraps
                    dst = np.array(
                        [
                            decomp.rank_of_coords(c)
                            for c in nbr_cell
                        ],
                        dtype=np.int64,
                    )
                    for r in np.unique(dst):
                        ss = dst == r
                        idxs = sel[ss]
                        srcs = src_of[idxs]
                        for s in np.unique(srcs):
                            m2 = srcs == s
                            ii = idxs[m2]
                            self._append(
                                sends[int(s)][int(r)],
                                p_shift[ss][m2],
                                mom[ii],
                                mas[ii],
                                pid[ii],
                                False,
                            )
        return sends

    @staticmethod
    def _append(bucket: dict, pos, mom, mas, pid, active: bool) -> None:
        bucket["pos"].append(np.asarray(pos))
        bucket["mom"].append(np.asarray(mom))
        bucket["mas"].append(np.asarray(mas))
        bucket["pid"].append(np.asarray(pid))
        bucket["act"].append(
            np.full(len(pos), active, dtype=bool)
        )

    def _deliver(self, sends: list[list[dict]], tag: str) -> list[OverloadedDomain]:
        nr = self.decomposition.n_ranks
        payloads = [
            [self._pack(sends[i][j]) for j in range(nr)] for i in range(nr)
        ]
        recv = self.comm.alltoallv(payloads, tag=tag)
        return [self._assemble(recv[r], r) for r in range(nr)]

    @staticmethod
    def _assemble(received: list, rank: int) -> OverloadedDomain:
        """Concatenate one rank's received fragments, in source order."""
        parts = [p for p in received if p is not None]
        if parts:
            pos = np.concatenate([p[0] for p in parts], axis=0)
            mom = np.concatenate([p[1] for p in parts], axis=0)
            mas = np.concatenate([p[2] for p in parts])
            pid = np.concatenate([p[3] for p in parts])
            act = np.concatenate([p[4] for p in parts])
        else:
            pos = np.empty((0, 3))
            mom = np.empty((0, 3))
            mas = np.empty(0)
            pid = np.empty(0, dtype=np.int64)
            act = np.empty(0, dtype=bool)
        return OverloadedDomain(
            rank=rank,
            positions=pos,
            momenta=mom,
            masses=mas,
            ids=pid,
            active=act,
        )

    @staticmethod
    def _pack(bucket: dict):
        if not bucket["pos"]:
            return None
        return (
            np.concatenate(bucket["pos"], axis=0),
            np.concatenate(bucket["mom"], axis=0),
            np.concatenate(bucket["mas"]),
            np.concatenate(bucket["pid"]),
            np.concatenate(bucket["act"]),
        )
