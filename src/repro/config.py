"""Run configuration for the HACC reproduction.

One frozen dataclass gathers every knob the paper exposes — box size,
particle loading, filter parameters, handover radius, sub-cycling count,
short-range backend — with validation, so misconfigured runs fail at
construction instead of mid-simulation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.cosmology.background import WMAP7, Cosmology

__all__ = ["SimulationConfig"]

_BACKENDS = ("treepm", "p3m", "direct", "pm")
_EXECUTORS = ("serial", "thread", "process")
_KERNEL_BACKENDS = ("auto", "numpy", "numba", "cupy")
_PRECISIONS = ("f32", "f64")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to set up and evolve a simulation.

    Parameters
    ----------
    box_size:
        Comoving box side, Mpc/h.
    n_per_dim:
        Particles per dimension (total ``n_per_dim^3``).
    grid_size:
        PM grid points per dimension (default: equal to ``n_per_dim``,
        the paper's standard loading of ~1 particle per cell).
    z_initial, z_final:
        Start / end redshifts (paper benchmark: 25 -> 0).
    n_steps:
        Number of full (long-range) steps.
    n_subcycles:
        Short-range sub-cycles per long-range step (paper: 5-10).
    backend:
        Short-range solver: ``"treepm"`` (BG/Q path), ``"p3m"``
        (Roadrunner path), ``"direct"`` (O(N^2) reference) or ``"pm"``
        (long-range only).
    sigma, ns:
        Spectral-filter parameters (Eq. 5; nominal 0.8 / 3).
    rcut_cells:
        Short/long handover radius in grid cells (nominal 3).
    leaf_size:
        RCB fat-leaf capacity (treepm backend).
    chunk_pairs:
        Pair-block size of the batched short-range engine (bounds peak
        workspace memory; the batch analogue of sizing the working set
        to cache).
    shortrange_naive:
        Use the per-leaf / per-cell evaluation loops instead of the
        batched engine — slower, retained for equivalence checking.
    eps_cells:
        Short-range force softening (cells^2).
    lpt_order:
        1 = Zel'dovich, 2 = 2LPT initial conditions.
    step_spacing:
        ``"a"`` for uniform scale-factor steps, ``"loga"`` for uniform
        logarithmic steps.
    workers:
        Worker count for the rank executor (the node-level concurrency
        of the paper's hybrid MPI+OpenMP model; see
        :mod:`repro.parallel.executor`).  The work *partitioning* is
        keyed on this value alone, so runs at equal ``workers`` are
        bit-identical across executor backends.
    executor:
        Rank-executor backend: ``"serial"`` (default), ``"thread"``
        (NumPy-GIL-release thread pool) or ``"process"``
        (shared-memory fork pool).
    worker_groups:
        Shard the process backend's workers into this many rank groups
        (independent pools of ``workers // worker_groups`` processes —
        the paper's 5-D torus partitioning; see
        :class:`repro.machine.mapping.RankGroupLayout`).  Must divide
        ``workers`` evenly.  Placement only: trajectories are identical
        for any group count at equal ``workers``.
    overlap:
        Enable overlapped execution: the ghost exchange streams domains
        into in-flight short-range solves, and the gradient inverse
        FFTs pipeline against the CIC gathers.  Scheduling only — the
        overlapped trajectory is bit-identical to the synchronous one
        at equal ``workers`` (a test pins this).
    kernel_backend:
        Short-range inner-loop implementation: ``"auto"`` (default;
        numba when importable, else numpy), ``"numpy"`` (vectorized
        reference), ``"numba"`` (JIT-compiled parallel loops) or
        ``"cupy"`` (CUDA).  Explicitly requesting an unavailable
        backend fails loudly at solver construction.
    dtype:
        Floating-point precision of the particle state and force
        kernels: ``"f64"`` (default) or ``"f32"`` (the paper's
        mixed-precision mode — single-precision particles and kernels
        end to end; the spectral k-kernels are still *derived* in
        float64 before being cast).
    seed:
        White-noise seed for the initial conditions.
    cosmology:
        Background model (default WMAP7-era parameters).
    """

    box_size: float
    n_per_dim: int
    grid_size: int | None = None
    z_initial: float = 25.0
    z_final: float = 0.0
    n_steps: int = 32
    n_subcycles: int = 5
    backend: str = "treepm"
    sigma: float = 0.8
    ns: int = 3
    rcut_cells: float = 3.0
    leaf_size: int = 128
    chunk_pairs: int = 1 << 18
    shortrange_naive: bool = False
    eps_cells: float = 0.0
    laplacian_order: int = 6
    gradient_order: int = 4
    lpt_order: int = 1
    step_spacing: str = "a"
    workers: int = 1
    executor: str = "serial"
    worker_groups: int = 1
    overlap: bool = False
    kernel_backend: str = "auto"
    dtype: str = "f64"
    seed: int = 0
    cosmology: Cosmology = field(default_factory=lambda: WMAP7)

    def __post_init__(self) -> None:
        if self.box_size <= 0:
            raise ValueError(f"box_size must be positive: {self.box_size}")
        if self.n_per_dim < 2:
            raise ValueError(f"n_per_dim must be >= 2: {self.n_per_dim}")
        if self.grid() < 4:
            raise ValueError(f"grid_size must be >= 4: {self.grid()}")
        if self.z_initial <= self.z_final:
            raise ValueError(
                f"z_initial ({self.z_initial}) must exceed z_final "
                f"({self.z_final})"
            )
        if self.z_final < 0:
            raise ValueError(f"z_final must be >= 0: {self.z_final}")
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1: {self.n_steps}")
        if self.n_subcycles < 1:
            raise ValueError(f"n_subcycles must be >= 1: {self.n_subcycles}")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.step_spacing not in ("a", "loga"):
            raise ValueError(
                f"step_spacing must be 'a' or 'loga': {self.step_spacing!r}"
            )
        if self.rcut_cells <= 0:
            raise ValueError(f"rcut_cells must be positive: {self.rcut_cells}")
        if self.chunk_pairs < 1:
            raise ValueError(
                f"chunk_pairs must be >= 1: {self.chunk_pairs}"
            )
        if self.rcut() >= self.box_size / 2:
            raise ValueError(
                "short-range cutoff exceeds half the box; increase the "
                "grid or the box"
            )
        if self.lpt_order not in (1, 2):
            raise ValueError(f"lpt_order must be 1 or 2: {self.lpt_order}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if self.executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be one of {_EXECUTORS}, "
                f"got {self.executor!r}"
            )
        if self.worker_groups < 1:
            raise ValueError(
                f"worker_groups must be >= 1: {self.worker_groups}"
            )
        if (
            self.worker_groups > self.workers
            or self.workers % self.worker_groups
        ):
            raise ValueError(
                f"worker_groups ({self.worker_groups}) must evenly "
                f"divide workers ({self.workers})"
            )
        if self.kernel_backend not in _KERNEL_BACKENDS:
            raise ValueError(
                f"kernel_backend must be one of {_KERNEL_BACKENDS}, "
                f"got {self.kernel_backend!r}"
            )
        if self.dtype not in _PRECISIONS:
            raise ValueError(
                f"dtype must be one of {_PRECISIONS}, got {self.dtype!r}"
            )

    # ------------------------------------------------------------------
    def grid(self) -> int:
        """Effective PM grid size."""
        return self.grid_size if self.grid_size is not None else self.n_per_dim

    @property
    def n_particles(self) -> int:
        return self.n_per_dim**3

    @property
    def a_initial(self) -> float:
        return 1.0 / (1.0 + self.z_initial)

    @property
    def a_final(self) -> float:
        return 1.0 / (1.0 + self.z_final)

    def spacing(self) -> float:
        """PM grid spacing, Mpc/h."""
        return self.box_size / self.grid()

    def rcut(self) -> float:
        """Physical short/long handover radius, Mpc/h."""
        return self.rcut_cells * self.spacing()

    @property
    def precision_dtype(self) -> type:
        """The NumPy scalar type named by ``dtype``."""
        return np.float32 if self.dtype == "f32" else np.float64

    def step_edges(self) -> np.ndarray:
        """Scale-factor values bounding each full step (length n_steps+1)."""
        if self.step_spacing == "a":
            return np.linspace(self.a_initial, self.a_final, self.n_steps + 1)
        return np.exp(
            np.linspace(
                np.log(self.a_initial), np.log(self.a_final), self.n_steps + 1
            )
        )

    def with_(self, **kwargs) -> "SimulationConfig":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # provenance
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON view of the full configuration (cosmology nested)."""
        return asdict(self)

    def config_hash(self) -> str:
        """Short stable hash of the configuration for run manifests.

        Two runs share a hash iff every field (cosmology included) is
        equal, so a telemetry stream identifies the run that produced it.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationConfig":
        """Rebuild a configuration from its :meth:`to_dict` form.

        The inverse of :meth:`to_dict` (the round trip preserves the
        hash); the nested cosmology mapping becomes a
        :class:`~repro.cosmology.background.Cosmology`.  Unknown keys
        raise ``TypeError`` so a stale or foreign payload fails loudly
        instead of silently dropping a knob.
        """
        payload = dict(data)
        cosmo = payload.get("cosmology")
        if isinstance(cosmo, dict):
            payload["cosmology"] = Cosmology(**cosmo)
        return cls(**payload)
