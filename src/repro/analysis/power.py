"""Matter power spectrum estimator.

The measurement behind Fig. 10: CIC deposit, FFT, spherical binning of
``|delta_k|^2``, with CIC window deconvolution and Poisson shot-noise
subtraction.  Conventions match :mod:`repro.cosmology.gaussian_field`
(``<|delta_k|^2> = P(k) n^6 / V``), so a Gaussian realization round-trips
through the estimator to its input spectrum — a property test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cosmology.gaussian_field import fourier_grid
from repro.grid.cic import cic_deposit, cic_window

__all__ = ["PowerSpectrum", "matter_power_spectrum", "power_from_delta"]


@dataclass(frozen=True)
class PowerSpectrum:
    """Binned power spectrum measurement.

    Attributes
    ----------
    k:
        Mean wavenumber per bin, h/Mpc.
    power:
        P(k), (Mpc/h)^3.
    n_modes:
        Independent Fourier modes per bin (error bars go as
        ``P sqrt(2/n_modes)``).
    shot_noise:
        The subtracted Poisson noise level, (Mpc/h)^3 (0 if not
        subtracted).
    """

    k: np.ndarray
    power: np.ndarray
    n_modes: np.ndarray
    shot_noise: float

    def dimensionless(self) -> np.ndarray:
        """``Delta^2(k) = k^3 P / (2 pi^2)``."""
        return self.k**3 * self.power / (2.0 * np.pi**2)


def power_from_delta(
    delta: np.ndarray,
    box_size: float,
    *,
    n_bins: int | None = None,
    deconvolve_cic: bool = False,
    shot_noise: float = 0.0,
    k_min: float | None = None,
    k_max: float | None = None,
) -> PowerSpectrum:
    """Measure P(k) from a density-contrast grid.

    Parameters
    ----------
    delta:
        (n, n, n) real density contrast.
    box_size:
        Periodic box side, Mpc/h.
    n_bins:
        Number of linear k bins (default: n//2, one per fundamental mode).
    deconvolve_cic:
        Divide by the squared CIC window (set True when ``delta`` came
        from a CIC deposit).
    shot_noise:
        Constant to subtract after deconvolution (``V / Np`` for a
        particle sample; 0 for a smooth field).
    k_min, k_max:
        Binning range; defaults to [fundamental, Nyquist].
    """
    n = delta.shape[0]
    if delta.shape != (n, n, n):
        raise ValueError(f"delta must be cubic, got {delta.shape}")
    if box_size <= 0:
        raise ValueError(f"box_size must be positive: {box_size}")
    volume = box_size**3
    delta_k = np.fft.rfftn(delta)
    kx, ky, kz = fourier_grid(n, box_size)
    kk = np.sqrt(kx**2 + ky**2 + kz**2)

    pk_grid = (np.abs(delta_k) ** 2) * (volume / float(n) ** 6)
    if deconvolve_cic:
        w = cic_window(kx, ky, kz, box_size / n)
        pk_grid = pk_grid / np.maximum(w * w, 1e-12)

    # rfft stores half the spectrum: interior kz planes represent two
    # Hermitian partners, the kz=0 and kz=Nyquist planes only one.
    weight = np.full(delta_k.shape, 2.0)
    weight[:, :, 0] = 1.0
    if n % 2 == 0:
        weight[:, :, -1] = 1.0

    kfun = 2.0 * np.pi / box_size
    knyq = np.pi * n / box_size
    lo = kfun * 0.5 if k_min is None else k_min
    hi = knyq if k_max is None else k_max
    nb = n_bins if n_bins is not None else max(n // 2, 1)
    edges = np.linspace(lo, hi, nb + 1)

    flat_k = np.broadcast_to(kk, delta_k.shape).ravel()
    flat_p = pk_grid.ravel()
    flat_w = weight.ravel()
    idx = np.digitize(flat_k, edges) - 1
    valid = (idx >= 0) & (idx < nb) & (flat_k > 0)

    wsum = np.bincount(idx[valid], weights=flat_w[valid], minlength=nb)
    ksum = np.bincount(
        idx[valid], weights=(flat_w * flat_k)[valid], minlength=nb
    )
    psum = np.bincount(
        idx[valid], weights=(flat_w * flat_p)[valid], minlength=nb
    )
    good = wsum > 0
    k_mean = np.where(good, ksum / np.maximum(wsum, 1), 0.0)
    p_mean = np.where(good, psum / np.maximum(wsum, 1), 0.0) - shot_noise
    return PowerSpectrum(
        k=k_mean[good],
        power=p_mean[good],
        n_modes=wsum[good].astype(np.int64),
        shot_noise=shot_noise,
    )


def matter_power_spectrum(
    positions: np.ndarray,
    box_size: float,
    n_grid: int,
    *,
    weights: np.ndarray | None = None,
    n_bins: int | None = None,
    subtract_shot_noise: bool = True,
) -> PowerSpectrum:
    """Measure P(k) directly from particle positions.

    CIC deposit -> contrast -> :func:`power_from_delta` with window
    deconvolution and (by default) shot-noise subtraction.
    """
    counts = cic_deposit(positions, n_grid, box_size, weights)
    mean = counts.mean()
    if mean <= 0:
        raise ValueError("empty particle distribution")
    delta = counts / mean - 1.0
    n_p = positions.shape[0]
    shot = box_size**3 / n_p if subtract_shot_noise else 0.0
    return power_from_delta(
        delta,
        box_size,
        n_bins=n_bins,
        deconvolve_cic=True,
        shot_noise=shot,
    )
