"""Density fields, projections and zoom series.

The quantitative backbone of the paper's visualizations: Fig. 2's nested
zoom into the density field (demonstrating the ~1e6 global spatial
dynamic range), and Fig. 9's redshift frames showing the density contrast
growing by five orders of magnitude.  We reproduce the *numbers* behind
those images — projected density maps, per-frame contrast statistics, and
the dynamic-range ladder of a zoom sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.cic import cic_deposit

__all__ = [
    "density_projection",
    "density_contrast_statistics",
    "zoom_series",
    "ZoomLevel",
]


def density_projection(
    positions: np.ndarray,
    box_size: float,
    n: int,
    *,
    axis: int = 2,
    depth: tuple[float, float] | None = None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Projected surface density contrast on an ``n x n`` map.

    Parameters
    ----------
    positions:
        (N, 3) positions.
    box_size:
        Periodic box side.
    n:
        Map resolution per side.
    axis:
        Projection axis (0, 1 or 2).
    depth:
        Optional (lo, hi) slab along the projection axis; default is the
        whole box (Fig. 9 frames use a thin slice).
    weights:
        Optional particle masses.

    Returns
    -------
    (n, n) array of ``Sigma / <Sigma>`` (mean-normalized projected
    density; 1 for a uniform distribution).
    """
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1 or 2: {axis}")
    pos = np.mod(np.asarray(positions, dtype=np.float64), box_size)
    w = (
        np.ones(pos.shape[0])
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    if depth is not None:
        lo, hi = depth
        if not 0 <= lo < hi <= box_size:
            raise ValueError(f"bad slab range {depth} for box {box_size}")
        sel = (pos[:, axis] >= lo) & (pos[:, axis] < hi)
        pos, w = pos[sel], w[sel]
    if pos.shape[0] == 0:
        return np.zeros((n, n))
    keep = [i for i in range(3) if i != axis]
    uv = pos[:, keep]
    ij = np.minimum((uv / box_size * n).astype(np.int64), n - 1)
    flat = ij[:, 0] * n + ij[:, 1]
    grid = np.bincount(flat, weights=w, minlength=n * n).reshape(n, n)
    mean = grid.mean()
    return grid / mean if mean > 0 else grid


@dataclass(frozen=True)
class ContrastStats:
    """Summary statistics of a 3-D density-contrast field."""

    max_contrast: float
    min_contrast: float
    variance: float
    fraction_empty: float


def density_contrast_statistics(
    positions: np.ndarray,
    box_size: float,
    n: int,
    weights: np.ndarray | None = None,
) -> ContrastStats:
    """Contrast statistics of the CIC density field.

    Fig. 9's caption notes the local density contrast grows by five
    orders of magnitude during the evolution; the bench tracks
    ``max_contrast`` and ``variance`` across redshift frames.
    """
    counts = cic_deposit(positions, n, box_size, weights)
    mean = counts.mean()
    if mean <= 0:
        raise ValueError("empty particle distribution")
    delta = counts / mean - 1.0
    return ContrastStats(
        max_contrast=float(delta.max()),
        min_contrast=float(delta.min()),
        variance=float(delta.var()),
        fraction_empty=float(np.mean(counts == 0)),
    )


@dataclass(frozen=True)
class ZoomLevel:
    """One level of a Fig. 2-style zoom sequence."""

    size: float
    n_particles: int
    map: np.ndarray
    max_over_mean: float


def zoom_series(
    positions: np.ndarray,
    box_size: float,
    center: np.ndarray,
    sizes: list[float],
    n: int = 64,
    weights: np.ndarray | None = None,
) -> list[ZoomLevel]:
    """Nested zoom maps around ``center`` (Fig. 2).

    Each level selects the particles in a periodic cube of the given side
    length and produces a projected density map plus its peak-to-mean
    ratio; the ratio of outermost to innermost ``size`` is the realized
    spatial dynamic range of the sequence.
    """
    pos = np.mod(np.asarray(positions, dtype=np.float64), box_size)
    c = np.asarray(center, dtype=np.float64)
    w = (
        np.ones(pos.shape[0])
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    levels = []
    for size in sizes:
        if not 0 < size <= box_size:
            raise ValueError(f"zoom size {size} out of range for box {box_size}")
        d = pos - c
        d -= box_size * np.round(d / box_size)
        sel = np.all(np.abs(d) <= size / 2.0, axis=1)
        sub = d[sel] + size / 2.0
        if sub.shape[0]:
            ij = np.minimum((sub[:, :2] / size * n).astype(np.int64), n - 1)
            flat = ij[:, 0] * n + ij[:, 1]
            grid = np.bincount(
                flat, weights=w[sel], minlength=n * n
            ).reshape(n, n)
        else:
            grid = np.zeros((n, n))
        mean = grid.mean()
        levels.append(
            ZoomLevel(
                size=float(size),
                n_particles=int(sub.shape[0]),
                map=grid / mean if mean > 0 else grid,
                max_over_mean=float(grid.max() / mean) if mean > 0 else 0.0,
            )
        )
    return levels
