"""Halo mass functions: measured and analytic.

"The number of clusters as a function of their mass (the mass function)
is a powerful cosmological probe.  Simulations provide precision
predictions that can be compared to observations." (Section V.)  This
module bins FOF catalogs into ``dn/dln M`` and provides the
Press-Schechter (1974) and Sheth-Tormen (1999) analytic references,

.. math:: \\frac{dn}{d\\ln M} = \\frac{\\bar\\rho_m}{M} f(\\sigma)
          \\left| \\frac{d\\ln\\sigma^{-1}}{d\\ln M} \\right|,

with the multiplicity functions

.. math:: f_{PS} = \\sqrt{2/\\pi}\\,\\nu e^{-\\nu^2/2}, \\qquad
          f_{ST} = A\\sqrt{2a/\\pi}\\,[1 + (a\\nu^2)^{-p}]
                   \\nu e^{-a\\nu^2/2},

``nu = delta_c / sigma(M)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.halos import FOFCatalog
from repro.constants import DELTA_C
from repro.cosmology.power_spectrum import LinearPower

__all__ = [
    "MassFunction",
    "measured_mass_function",
    "press_schechter",
    "sheth_tormen",
]

# Sheth-Tormen parameters (1999 calibration)
_ST_A = 0.3222
_ST_LITTLE_A = 0.707
_ST_P = 0.3


@dataclass(frozen=True)
class MassFunction:
    """Binned ``dn/dln M`` measurement.

    Attributes
    ----------
    mass:
        Geometric bin centers, Msun/h.
    dn_dlnm:
        Comoving number density per ln-mass, (Mpc/h)^-3.
    counts:
        Halos per bin (for Poisson errors).
    """

    mass: np.ndarray
    dn_dlnm: np.ndarray
    counts: np.ndarray


def measured_mass_function(
    catalog: FOFCatalog,
    particle_mass: float,
    *,
    n_bins: int = 12,
    m_min: float | None = None,
    m_max: float | None = None,
) -> MassFunction:
    """Histogram a halo catalog into ``dn/dln M``.

    Parameters
    ----------
    catalog:
        FOF catalog.
    particle_mass:
        Tracer mass, Msun/h (:func:`repro.constants.particle_mass`).
    n_bins:
        Log-spaced mass bins.
    m_min, m_max:
        Bin range; defaults bracket the catalog.
    """
    if catalog.n_halos == 0:
        raise ValueError("catalog contains no halos")
    if particle_mass <= 0:
        raise ValueError(f"particle_mass must be positive: {particle_mass}")
    masses = catalog.masses(particle_mass)
    lo = m_min if m_min is not None else masses.min() * 0.999
    hi = m_max if m_max is not None else masses.max() * 1.001
    if not 0 < lo < hi:
        raise ValueError(f"bad mass range [{lo}, {hi}]")
    edges = np.logspace(math.log10(lo), math.log10(hi), n_bins + 1)
    counts, _ = np.histogram(masses, bins=edges)
    dlnm = np.diff(np.log(edges))
    volume = catalog.box_size**3
    centers = np.sqrt(edges[:-1] * edges[1:])
    return MassFunction(
        mass=centers,
        dn_dlnm=counts / (volume * dlnm),
        counts=counts,
    )


def _dn_dlnm(
    power: LinearPower,
    mass,
    a: float,
    multiplicity,
) -> np.ndarray:
    mass = np.atleast_1d(np.asarray(mass, dtype=np.float64))
    if np.any(mass <= 0):
        raise ValueError("masses must be positive")
    rho_m = power.cosmology.rho_mean_matter0()
    # sigma(M) and its log-derivative by central differences in ln M
    eps = 0.02
    out = np.empty_like(mass)
    for i, m in enumerate(mass):
        sig = power.sigma_m(m, a)
        sig_hi = power.sigma_m(m * math.exp(eps), a)
        sig_lo = power.sigma_m(m * math.exp(-eps), a)
        dlns_dlnm = (math.log(sig_hi) - math.log(sig_lo)) / (2 * eps)
        nu = DELTA_C / sig
        out[i] = rho_m / m * multiplicity(nu) * abs(dlns_dlnm)
    return out


def press_schechter(power: LinearPower, mass, a: float = 1.0) -> np.ndarray:
    """Press-Schechter ``dn/dln M`` in (Mpc/h)^-3 at scale factor ``a``."""

    def f(nu: float) -> float:
        return math.sqrt(2.0 / math.pi) * nu * math.exp(-0.5 * nu * nu)

    return _dn_dlnm(power, mass, a, f)


def sheth_tormen(power: LinearPower, mass, a: float = 1.0) -> np.ndarray:
    """Sheth-Tormen ``dn/dln M`` in (Mpc/h)^-3 at scale factor ``a``."""

    def f(nu: float) -> float:
        anu2 = _ST_LITTLE_A * nu * nu
        return (
            _ST_A
            * math.sqrt(2.0 * _ST_LITTLE_A / math.pi)
            * (1.0 + anu2**-_ST_P)
            * nu
            * math.exp(-0.5 * anu2)
        )

    return _dn_dlnm(power, mass, a, f)
