"""Velocity-field statistics.

"Cosmological information resides in the nature of material structure and
also in how structures grow with time" (Section V) — and the velocity
field *is* the growth: in linear theory the velocity divergence obeys

.. math:: \\theta(k) \\equiv \\frac{\\nabla\\cdot v}{a H f} = -\\delta(k),

so ``P_theta-theta = P_delta-delta`` in the normalized convention below —
a relation the tests verify directly on Zel'dovich initial conditions.
Provided statistics:

* CIC-deposited momentum field -> velocity divergence spectrum;
* mean pairwise (infall) velocity ``v12(r)``, the streaming-model
  ingredient of redshift-space analyses;
* bulk-flow amplitude in spheres.

Velocities here are comoving peculiar velocities ``v = p / a`` in the
code's ``H0 = 1`` units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.analysis.power import PowerSpectrum, power_from_delta
from repro.cosmology.gaussian_field import fourier_grid
from repro.grid.cic import cic_deposit

__all__ = [
    "velocity_divergence_spectrum",
    "pairwise_velocity",
    "bulk_flow",
    "PairwiseVelocity",
]


def _velocity_grids(
    positions: np.ndarray,
    velocities: np.ndarray,
    n: int,
    box_size: float,
) -> tuple[np.ndarray, ...]:
    """Volume-weighted velocity field components via CIC.

    Momentum deposit divided by the mass deposit; empty cells get zero
    velocity (they carry no statistical weight downstream).
    """
    mass = cic_deposit(positions, n, box_size)
    comps = []
    for c in range(3):
        mom = cic_deposit(positions, n, box_size, weights=velocities[:, c])
        with np.errstate(divide="ignore", invalid="ignore"):
            comps.append(np.where(mass > 0, mom / np.maximum(mass, 1e-30), 0.0))
    return tuple(comps)


def velocity_divergence_spectrum(
    positions: np.ndarray,
    velocities: np.ndarray,
    box_size: float,
    n_grid: int,
    *,
    a: float,
    growth_rate: float,
    efunc: float,
    n_bins: int | None = None,
) -> PowerSpectrum:
    """Power spectrum of the normalized velocity divergence.

    ``theta = div(v) / (a H f)`` with ``v`` the peculiar velocity; in
    linear theory ``theta = -delta`` so the returned spectrum equals the
    matter spectrum at low k — the growth-consistency observable.

    Parameters
    ----------
    positions, velocities:
        (N, 3) comoving positions and peculiar velocities (``p / a``).
    a, growth_rate, efunc:
        Scale factor, ``f = dlnD/dlna`` and ``E(a)`` of the snapshot
        (normalization ``a H f = a E f`` in H0 = 1 units).
    """
    if a <= 0 or efunc <= 0:
        raise ValueError("a and efunc must be positive")
    if growth_rate <= 0:
        raise ValueError(f"growth_rate must be positive: {growth_rate}")
    vx, vy, vz = _velocity_grids(positions, velocities, n_grid, box_size)
    kx, ky, kz = fourier_grid(n_grid, box_size)
    div_k = (
        1j * kx * np.fft.rfftn(vx)
        + 1j * ky * np.fft.rfftn(vy)
        + 1j * kz * np.fft.rfftn(vz)
    )
    norm = a * efunc * growth_rate
    theta = np.fft.irfftn(div_k, s=(n_grid,) * 3, axes=(0, 1, 2)) / norm
    return power_from_delta(theta, box_size, n_bins=n_bins)


@dataclass(frozen=True)
class PairwiseVelocity:
    """Binned mean pairwise velocity measurement.

    ``v12 < 0`` means infall (pairs approaching) — gravity's signature.
    """

    r: np.ndarray
    v12: np.ndarray
    pair_counts: np.ndarray


def pairwise_velocity(
    positions: np.ndarray,
    velocities: np.ndarray,
    box_size: float,
    *,
    r_min: float = 0.5,
    r_max: float | None = None,
    n_bins: int = 10,
    max_pairs: int = 2_000_000,
    seed: int = 0,
) -> PairwiseVelocity:
    """Mean radial relative velocity of particle pairs vs separation.

    ``v12(r) = < (v_a - v_b) . rhat_ab >`` over pairs at separation r
    (periodic).  Pair enumeration is kd-tree based; if the pair count
    exceeds ``max_pairs`` a deterministic subsample is used.
    """
    pos = np.mod(np.asarray(positions, dtype=np.float64), box_size)
    vel = np.asarray(velocities, dtype=np.float64)
    n = pos.shape[0]
    if vel.shape != pos.shape:
        raise ValueError("positions and velocities must align")
    if r_max is None:
        r_max = box_size / 4.0
    if not 0 < r_min < r_max < box_size / 2:
        raise ValueError(f"bad separation range ({r_min}, {r_max})")

    pos = np.where(pos >= box_size, 0.0, pos)
    tree = cKDTree(pos, boxsize=box_size)
    pairs = tree.query_pairs(r_max, output_type="ndarray")
    if pairs.shape[0] > max_pairs:
        rng = np.random.default_rng(seed)
        keep = rng.choice(pairs.shape[0], size=max_pairs, replace=False)
        pairs = pairs[keep]

    d = pos[pairs[:, 1]] - pos[pairs[:, 0]]
    d -= box_size * np.round(d / box_size)
    r = np.linalg.norm(d, axis=1)
    sel = r >= r_min
    pairs, d, r = pairs[sel], d[sel], r[sel]
    rhat = d / r[:, None]
    dv = vel[pairs[:, 1]] - vel[pairs[:, 0]]
    radial = np.einsum("ij,ij->i", dv, rhat)

    edges = np.logspace(math.log10(r_min), math.log10(r_max), n_bins + 1)
    idx = np.digitize(r, edges) - 1
    valid = (idx >= 0) & (idx < n_bins)
    sums = np.bincount(idx[valid], weights=radial[valid], minlength=n_bins)
    counts = np.bincount(idx[valid], minlength=n_bins)
    with np.errstate(invalid="ignore"):
        v12 = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    return PairwiseVelocity(
        r=np.sqrt(edges[:-1] * edges[1:]),
        v12=v12,
        pair_counts=counts.astype(np.int64),
    )


def bulk_flow(
    positions: np.ndarray,
    velocities: np.ndarray,
    box_size: float,
    center: np.ndarray,
    radius: float,
) -> np.ndarray:
    """Mean velocity vector of particles within ``radius`` of ``center``."""
    if radius <= 0:
        raise ValueError(f"radius must be positive: {radius}")
    pos = np.asarray(positions, dtype=np.float64)
    d = pos - np.asarray(center, dtype=np.float64)
    d -= box_size * np.round(d / box_size)
    sel = np.einsum("ij,ij->i", d, d) < radius * radius
    if not np.any(sel):
        raise ValueError("no particles inside the requested sphere")
    return np.asarray(velocities, dtype=np.float64)[sel].mean(axis=0)
