"""Redshift-space distortions (RSD).

Surveys measure galaxy positions through redshifts, so the line-of-sight
coordinate is contaminated by peculiar velocities — "measurements of the
distribution of galaxies" and "information related to structure growth"
(Section V) come tangled together exactly this way; BOSS (the paper's
Roadrunner science target) measures these distortions.

Plane-parallel implementation:

* :func:`redshift_space_positions` — ``s = x + (v . zhat / (a H)) zhat``
  in comoving coordinates (H0 = 1 units: ``aH = a E(a)``);
* :func:`power_multipoles` — the monopole/quadrupole/hexadecapole of
  P(k, mu) via Legendre-weighted mode averaging;
* Kaiser's linear-theory prediction for the multipole ratios,

  .. math:: \\frac{P_0^s}{P^r} = 1 + \\tfrac{2}{3}\\beta
            + \\tfrac{1}{5}\\beta^2, \\qquad
            \\frac{P_2^s}{P_0^s} =
            \\frac{\\tfrac{4}{3}\\beta + \\tfrac{4}{7}\\beta^2}
                 {1 + \\tfrac{2}{3}\\beta + \\tfrac{1}{5}\\beta^2},

  with ``beta = f`` for matter — verified against Zel'dovich snapshots
  in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cosmology.gaussian_field import fourier_grid
from repro.grid.cic import cic_deposit, cic_window

__all__ = [
    "redshift_space_positions",
    "PowerMultipoles",
    "power_multipoles",
    "kaiser_monopole_boost",
    "kaiser_quadrupole_ratio",
]


def redshift_space_positions(
    positions: np.ndarray,
    velocities: np.ndarray,
    box_size: float,
    *,
    a: float,
    efunc: float,
    axis: int = 2,
) -> np.ndarray:
    """Map real-space positions to redshift space (plane-parallel).

    Parameters
    ----------
    positions, velocities:
        (N, 3) comoving positions and peculiar velocities ``v = p / a``.
    a, efunc:
        Scale factor and ``E(a)`` (so ``aH = a E`` with H0 = 1).
    axis:
        Line-of-sight axis.
    """
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1 or 2: {axis}")
    if a <= 0 or efunc <= 0:
        raise ValueError("a and efunc must be positive")
    s = np.array(positions, dtype=np.float64, copy=True)
    s[:, axis] += velocities[:, axis] / (a * efunc)
    return np.mod(s, box_size)


@dataclass(frozen=True)
class PowerMultipoles:
    """Legendre multipoles of the anisotropic power spectrum."""

    k: np.ndarray
    monopole: np.ndarray
    quadrupole: np.ndarray
    hexadecapole: np.ndarray
    n_modes: np.ndarray


def power_multipoles(
    positions: np.ndarray,
    box_size: float,
    n_grid: int,
    *,
    axis: int = 2,
    n_bins: int | None = None,
    subtract_shot_noise: bool = False,
) -> PowerMultipoles:
    """Measure P_0, P_2, P_4 of a (redshift-space) particle sample.

    Each Fourier mode is weighted by ``(2l+1) L_l(mu)`` with
    ``mu = k_los / k`` and averaged in spherical k bins; the CIC window
    is deconvolved before binning.
    """
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1 or 2: {axis}")
    counts = cic_deposit(positions, n_grid, box_size)
    mean = counts.mean()
    if mean <= 0:
        raise ValueError("empty particle distribution")
    delta = counts / mean - 1.0
    delta_k = np.fft.rfftn(delta)
    kx, ky, kz = fourier_grid(n_grid, box_size)
    kk = np.sqrt(kx**2 + ky**2 + kz**2)
    k_los = (kx, ky, kz)[axis]
    with np.errstate(divide="ignore", invalid="ignore"):
        mu = np.where(kk > 0, k_los / np.maximum(kk, 1e-30), 0.0)
    mu = np.broadcast_to(mu, delta_k.shape)

    volume = box_size**3
    pk_grid = (np.abs(delta_k) ** 2) * (volume / float(n_grid) ** 6)
    w = cic_window(kx, ky, kz, box_size / n_grid)
    pk_grid = pk_grid / np.maximum(w * w, 1e-12)
    if subtract_shot_noise:
        pk_grid = pk_grid - volume / positions.shape[0]

    # rfft Hermitian weights
    weight = np.full(delta_k.shape, 2.0)
    weight[:, :, 0] = 1.0
    if n_grid % 2 == 0:
        weight[:, :, -1] = 1.0

    l2 = 0.5 * (3 * mu**2 - 1)
    l4 = 0.125 * (35 * mu**4 - 30 * mu**2 + 3)

    kfun = 2 * np.pi / box_size
    knyq = np.pi * n_grid / box_size
    nb = n_bins if n_bins is not None else max(n_grid // 2, 1)
    edges = np.linspace(0.5 * kfun, knyq, nb + 1)
    flat_k = np.broadcast_to(kk, delta_k.shape).ravel()
    idx = np.digitize(flat_k, edges) - 1
    valid = (idx >= 0) & (idx < nb) & (flat_k > 0)

    def binned(values: np.ndarray) -> np.ndarray:
        return np.bincount(
            idx[valid], weights=(weight * values).ravel()[valid], minlength=nb
        )

    wsum = np.bincount(idx[valid], weights=weight.ravel()[valid], minlength=nb)
    ksum = binned(np.broadcast_to(kk, delta_k.shape))
    p0 = binned(pk_grid)
    p2 = binned(5.0 * pk_grid * l2)
    p4 = binned(9.0 * pk_grid * l4)
    good = wsum > 0
    safe = np.maximum(wsum, 1)
    return PowerMultipoles(
        k=(ksum / safe)[good],
        monopole=(p0 / safe)[good],
        quadrupole=(p2 / safe)[good],
        hexadecapole=(p4 / safe)[good],
        n_modes=wsum[good].astype(np.int64),
    )


def kaiser_monopole_boost(beta: float) -> float:
    """Kaiser: ``P_0^s / P^r = 1 + 2 beta / 3 + beta^2 / 5``."""
    if beta < 0:
        raise ValueError(f"beta must be non-negative: {beta}")
    return 1.0 + 2.0 * beta / 3.0 + beta**2 / 5.0


def kaiser_quadrupole_ratio(beta: float) -> float:
    """Kaiser: ``P_2^s / P_0^s`` in linear theory."""
    if beta < 0:
        raise ValueError(f"beta must be non-negative: {beta}")
    return (4.0 * beta / 3.0 + 4.0 * beta**2 / 7.0) / kaiser_monopole_boost(
        beta
    )
