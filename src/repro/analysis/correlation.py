"""Two-point correlation functions.

"Large-volume simulations are essential in producing predictions for
statistical quantities such as galaxy correlation functions and the
associated power spectra" (Section V).  Two routes are provided:

* :func:`xi_from_power` — the theory side: the spherical Hankel
  transform ``xi(r) = int dk k^2 P(k) j0(kr) / (2 pi^2)``, evaluated by
  adaptive quadrature with the oscillation tamed by the standard
  exponential cutoff;
* :func:`pair_correlation` — the estimator side: periodic pair counts
  against the *analytic* random expectation (a periodic box needs no
  random catalog: ``RR`` per shell is exactly ``N(N-1)/2 V_shell / V``),
  vectorized through a kd-tree ``count_neighbors`` sweep.

The BAO feature of the Eisenstein-Hu spectrum shows up as the expected
bump near 105 Mpc/h in :func:`xi_from_power` — a unit test pins it.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass

import numpy as np
from scipy.integrate import IntegrationWarning, quad
from scipy.spatial import cKDTree

__all__ = ["xi_from_power", "CorrelationFunction", "pair_correlation"]


def xi_from_power(
    power,
    r,
    a: float = 1.0,
    *,
    k_max: float = 50.0,
    damping: float = 1.0e-3,
) -> np.ndarray:
    """Correlation function from a power spectrum callable.

    Parameters
    ----------
    power:
        Callable ``P(k, a)`` (e.g. :class:`LinearPower` or
        :class:`HalofitPower`).
    r:
        Separations, Mpc/h (scalar or array).
    a:
        Scale factor.
    k_max:
        Upper integration limit, h/Mpc.
    damping:
        Gaussian high-k damping scale ``exp(-(k damping r?)...)`` — a
        small ``exp(-(k * damping_len)^2)`` factor with
        ``damping_len = damping * 50`` Mpc/h suppresses the unresolved
        oscillatory tail; with the default it shifts xi by < 0.1% for
        r > 1 Mpc/h.
    """
    r_arr = np.atleast_1d(np.asarray(r, dtype=np.float64))
    if np.any(r_arr <= 0):
        raise ValueError("separations must be positive")
    damping_len = damping * 50.0
    out = np.empty_like(r_arr)
    for i, ri in enumerate(r_arr):
        def integrand(k: float) -> float:
            x = k * ri
            j0 = math.sin(x) / x if x > 1e-8 else 1.0
            p = float(np.atleast_1d(power(np.array([k]), a))[0])
            return k * k * p * j0 * math.exp(-((k * damping_len) ** 2))

        with warnings.catch_warnings():
            # the j0 oscillations make quad's round-off estimate fire
            # even when the integral is converged; accuracy is verified
            # against the BAO-scale analytic checks in the tests
            warnings.simplefilter("ignore", IntegrationWarning)
            val, _ = quad(
                integrand,
                1e-5,
                k_max,
                limit=800,
                epsabs=1e-12,
                epsrel=1e-7,
            )
        out[i] = val / (2.0 * math.pi**2)
    return out if np.ndim(r) else float(out[0])


@dataclass(frozen=True)
class CorrelationFunction:
    """Binned pair-correlation measurement.

    Attributes
    ----------
    r:
        Geometric bin centers, Mpc/h.
    xi:
        Estimated correlation function.
    pair_counts:
        Data-data pairs per bin.
    """

    r: np.ndarray
    xi: np.ndarray
    pair_counts: np.ndarray


def pair_correlation(
    positions: np.ndarray,
    box_size: float,
    *,
    r_min: float = 0.1,
    r_max: float | None = None,
    n_bins: int = 16,
    log_bins: bool = True,
) -> CorrelationFunction:
    """Measure xi(r) from a periodic particle distribution.

    Uses the natural estimator ``xi = DD / RR - 1`` with the analytic
    periodic ``RR = N (N-1)/2 x V_shell / V``; no random catalog needed.
    """
    pos = np.asarray(positions, dtype=np.float64)
    n = pos.shape[0]
    if pos.shape != (n, 3) or n < 2:
        raise ValueError("positions must be (N >= 2, 3)")
    if box_size <= 0:
        raise ValueError(f"box_size must be positive: {box_size}")
    if r_max is None:
        r_max = box_size / 4.0
    if not 0 < r_min < r_max < box_size / 2:
        raise ValueError(
            f"need 0 < r_min < r_max < box/2; got ({r_min}, {r_max})"
        )
    if log_bins:
        edges = np.logspace(math.log10(r_min), math.log10(r_max), n_bins + 1)
    else:
        edges = np.linspace(r_min, r_max, n_bins + 1)

    wrapped = np.mod(pos, box_size)
    wrapped = np.where(wrapped >= box_size, 0.0, wrapped)
    tree = cKDTree(wrapped, boxsize=box_size)
    cumulative = tree.count_neighbors(tree, edges)  # ordered pairs + self
    # remove self pairs and halve (count_neighbors counts ordered pairs)
    dd = np.diff((cumulative - n) / 2.0)

    volume = box_size**3
    shell = 4.0 / 3.0 * math.pi * np.diff(edges**3)
    rr = 0.5 * n * (n - 1) * shell / volume
    with np.errstate(divide="ignore", invalid="ignore"):
        xi = np.where(rr > 0, dd / rr - 1.0, 0.0)
    centers = np.sqrt(edges[:-1] * edges[1:])
    return CorrelationFunction(
        r=centers, xi=xi, pair_counts=dd.astype(np.int64)
    )
