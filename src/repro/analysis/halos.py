"""Friends-of-friends (FOF) halo finder.

Halos — the "local mass concentrations" whose statistics Section V mines
from the science run — are identified with the standard FOF percolation:
particles closer than ``b`` times the mean inter-particle separation
belong to the same group.  Implementation: periodic kd-tree pair search
plus sparse-graph connected components, both fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components
from scipy.spatial import cKDTree

__all__ = ["FOFCatalog", "fof_halos"]


@dataclass(frozen=True)
class FOFCatalog:
    """FOF group catalog, sorted by descending particle count.

    Attributes
    ----------
    labels:
        (N,) group index per particle; -1 for particles in groups below
        ``min_members``.
    sizes:
        (H,) particle count per retained halo.
    centers:
        (H, 3) periodic-aware center-of-mass positions.
    mean_velocities:
        (H, 3) mean momenta of members.
    linking_length:
        Absolute linking length used (Mpc/h).
    box_size:
        Periodic box side.
    """

    labels: np.ndarray
    sizes: np.ndarray
    centers: np.ndarray
    mean_velocities: np.ndarray
    linking_length: float
    box_size: float

    @property
    def n_halos(self) -> int:
        return self.sizes.shape[0]

    def members(self, halo: int) -> np.ndarray:
        """Particle indices of one halo."""
        if not 0 <= halo < self.n_halos:
            raise ValueError(f"halo {halo} out of range (0..{self.n_halos - 1})")
        return np.flatnonzero(self.labels == halo)

    def masses(self, particle_mass: float = 1.0) -> np.ndarray:
        """Halo masses, ``sizes * particle_mass``."""
        return self.sizes * float(particle_mass)


def _periodic_center(
    pos: np.ndarray, box_size: float, weights: np.ndarray
) -> np.ndarray:
    """Weighted mean position on a torus (unwrap about one member)."""
    ref = pos[0]
    d = pos - ref
    d -= box_size * np.round(d / box_size)
    c = ref + np.average(d, axis=0, weights=weights)
    return np.mod(c, box_size)


def fof_halos(
    positions: np.ndarray,
    box_size: float,
    *,
    b: float = 0.2,
    linking_length: float | None = None,
    min_members: int = 10,
    momenta: np.ndarray | None = None,
    masses: np.ndarray | None = None,
) -> FOFCatalog:
    """Run FOF on a periodic particle distribution.

    Parameters
    ----------
    positions:
        (N, 3) positions in [0, box_size).
    box_size:
        Periodic box side.
    b:
        Linking length in units of the mean inter-particle separation
        ``box / N^(1/3)`` (standard value 0.2); ignored if
        ``linking_length`` is given.
    linking_length:
        Absolute linking length, Mpc/h.
    min_members:
        Minimum group size retained in the catalog.
    momenta:
        Optional (N, 3) momenta for mean group velocities.
    masses:
        Optional weights for mass-weighted centers.
    """
    pos = np.asarray(positions, dtype=np.float64)
    n = pos.shape[0]
    if pos.shape != (n, 3):
        raise ValueError(f"positions must be (N, 3), got {pos.shape}")
    if n == 0:
        raise ValueError("cannot run FOF on an empty particle set")
    if box_size <= 0:
        raise ValueError(f"box_size must be positive: {box_size}")
    if linking_length is None:
        if b <= 0:
            raise ValueError(f"b must be positive: {b}")
        linking_length = b * box_size / n ** (1.0 / 3.0)
    if not 0 < linking_length < box_size / 2:
        raise ValueError(
            f"linking length {linking_length} out of range for box {box_size}"
        )
    m = (
        np.ones(n, dtype=np.float64)
        if masses is None
        else np.asarray(masses, dtype=np.float64)
    )
    v = (
        np.zeros((n, 3), dtype=np.float64)
        if momenta is None
        else np.asarray(momenta, dtype=np.float64)
    )

    wrapped = np.mod(pos, box_size)
    # cKDTree's periodic support requires coordinates strictly inside
    wrapped = np.where(wrapped >= box_size, 0.0, wrapped)
    tree = cKDTree(wrapped, boxsize=box_size)
    pairs = tree.query_pairs(linking_length, output_type="ndarray")

    if pairs.size:
        graph = coo_matrix(
            (np.ones(pairs.shape[0]), (pairs[:, 0], pairs[:, 1])),
            shape=(n, n),
        )
        _, raw_labels = connected_components(graph, directed=False)
    else:
        raw_labels = np.arange(n)

    counts = np.bincount(raw_labels)
    keep = np.flatnonzero(counts >= min_members)
    order = keep[np.argsort(counts[keep])[::-1]]

    labels = np.full(n, -1, dtype=np.int64)
    sizes = np.empty(order.shape[0], dtype=np.int64)
    centers = np.empty((order.shape[0], 3))
    vels = np.empty((order.shape[0], 3))
    for new_id, old_id in enumerate(order):
        sel = raw_labels == old_id
        labels[sel] = new_id
        sizes[new_id] = counts[old_id]
        centers[new_id] = _periodic_center(wrapped[sel], box_size, m[sel])
        vels[new_id] = np.average(v[sel], axis=0, weights=m[sel])

    return FOFCatalog(
        labels=labels,
        sizes=sizes,
        centers=centers,
        mean_velocities=vels,
        linking_length=float(linking_length),
        box_size=float(box_size),
    )
