"""Halo radial density profiles and NFW fits.

The paper's Roadrunner-era science includes "a high-statistics study of
galaxy cluster halo profiles" (Section I), and Fig. 11's cluster is
described through its mass structure.  This module measures spherically
averaged density profiles around halo centers and fits the
Navarro-Frenk-White form

.. math:: \\rho(r) = \\frac{\\rho_s}{(r/r_s)(1 + r/r_s)^2},

yielding the concentration ``c = r_vir / r_s`` — the headline statistic
of profile studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RadialProfile",
    "radial_profile",
    "NFWFit",
    "nfw_density",
    "fit_nfw",
    "sample_nfw",
]


@dataclass(frozen=True)
class RadialProfile:
    """Spherically averaged density profile around a center.

    Attributes
    ----------
    r:
        Geometric shell centers, Mpc/h.
    density:
        Mass per volume in each shell (mean-particle-mass units per
        (Mpc/h)^3 unless weights carry physical masses).
    counts:
        Particles per shell.
    """

    r: np.ndarray
    density: np.ndarray
    counts: np.ndarray


def radial_profile(
    positions: np.ndarray,
    center: np.ndarray,
    *,
    box_size: float | None = None,
    r_min: float = 0.05,
    r_max: float = 5.0,
    n_bins: int = 16,
    weights: np.ndarray | None = None,
) -> RadialProfile:
    """Measure the density profile around ``center``.

    Periodic distances are used when ``box_size`` is given.
    """
    pos = np.asarray(positions, dtype=np.float64)
    c = np.asarray(center, dtype=np.float64)
    if not 0 < r_min < r_max:
        raise ValueError(f"need 0 < r_min < r_max, got ({r_min}, {r_max})")
    d = pos - c
    if box_size is not None:
        d -= box_size * np.round(d / box_size)
    r = np.linalg.norm(d, axis=1)
    w = (
        np.ones(pos.shape[0])
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    edges = np.logspace(math.log10(r_min), math.log10(r_max), n_bins + 1)
    idx = np.digitize(r, edges) - 1
    valid = (idx >= 0) & (idx < n_bins)
    mass = np.bincount(idx[valid], weights=w[valid], minlength=n_bins)
    counts = np.bincount(idx[valid], minlength=n_bins)
    vol = 4.0 / 3.0 * math.pi * np.diff(edges**3)
    return RadialProfile(
        r=np.sqrt(edges[:-1] * edges[1:]),
        density=mass / vol,
        counts=counts.astype(np.int64),
    )


# ---------------------------------------------------------------------------
# NFW
# ---------------------------------------------------------------------------
def nfw_density(r, rho_s: float, r_s: float) -> np.ndarray:
    """The NFW profile ``rho_s / ((r/r_s)(1+r/r_s)^2)``."""
    if rho_s <= 0 or r_s <= 0:
        raise ValueError("rho_s and r_s must be positive")
    x = np.asarray(r, dtype=np.float64) / r_s
    return rho_s / (x * (1.0 + x) ** 2)


@dataclass(frozen=True)
class NFWFit:
    """Result of fitting an NFW profile.

    ``concentration`` is defined against the provided ``r_vir``.
    """

    rho_s: float
    r_s: float
    r_vir: float
    rms_log_residual: float

    @property
    def concentration(self) -> float:
        return self.r_vir / self.r_s


def fit_nfw(
    profile: RadialProfile,
    r_vir: float,
    *,
    min_count: int = 5,
) -> NFWFit:
    """Least-squares NFW fit in log density.

    ``ln rho = ln rho_s - ln x - 2 ln(1+x)``, ``x = r/r_s``: linear in
    ``ln rho_s`` for given ``r_s``, so a 1-D golden-section search over
    ``ln r_s`` with the inner parameter solved in closed form is robust
    without initial guesses.
    """
    if r_vir <= 0:
        raise ValueError(f"r_vir must be positive: {r_vir}")
    sel = (profile.counts >= min_count) & (profile.density > 0)
    if np.count_nonzero(sel) < 4:
        raise ValueError("too few populated bins to fit an NFW profile")
    r = profile.r[sel]
    ln_rho = np.log(profile.density[sel])

    def residual(ln_rs: float) -> tuple[float, float]:
        rs = math.exp(ln_rs)
        x = r / rs
        shape = -np.log(x) - 2.0 * np.log1p(x)
        ln_rho_s = float(np.mean(ln_rho - shape))
        res = ln_rho - (ln_rho_s + shape)
        return float(np.mean(res**2)), ln_rho_s

    # golden-section search over ln r_s within the sampled radial range
    lo, hi = math.log(r.min() / 3.0), math.log(r.max() * 3.0)
    phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c1 = b - phi * (b - a)
    c2 = a + phi * (b - a)
    f1, _ = residual(c1)
    f2, _ = residual(c2)
    for _ in range(80):
        if f1 < f2:
            b, c2, f2 = c2, c1, f1
            c1 = b - phi * (b - a)
            f1, _ = residual(c1)
        else:
            a, c1, f1 = c1, c2, f2
            c2 = a + phi * (b - a)
            f2, _ = residual(c2)
    ln_rs = 0.5 * (a + b)
    mse, ln_rho_s = residual(ln_rs)
    return NFWFit(
        rho_s=math.exp(ln_rho_s),
        r_s=math.exp(ln_rs),
        r_vir=float(r_vir),
        rms_log_residual=math.sqrt(mse),
    )


def sample_nfw(
    n: int,
    rho_s: float,
    r_s: float,
    r_max: float,
    seed: int = 0,
) -> np.ndarray:
    """Draw particle radii/positions from an NFW profile (testing aid).

    Inverse-transform sampling of the enclosed-mass function
    ``M(<r) ~ ln(1+x) - x/(1+x)``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1: {n}")
    rng = np.random.default_rng(seed)

    def m_of_x(x):
        return np.log1p(x) - x / (1.0 + x)

    x_max = r_max / r_s
    u = rng.uniform(0.0, m_of_x(x_max), n)
    # invert by bisection (vectorized)
    lo = np.full(n, 1e-6)
    hi = np.full(n, x_max)
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        too_low = m_of_x(mid) < u
        lo = np.where(too_low, mid, lo)
        hi = np.where(too_low, hi, mid)
    radii = 0.5 * (lo + hi) * r_s
    dirs = rng.standard_normal((n, 3))
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    return radii[:, None] * dirs
