"""Analysis chain for simulation outputs.

Implements the measurements behind the paper's science figures: the
matter fluctuation power spectrum (Fig. 10), friends-of-friends halos and
sub-halos (Fig. 11), halo mass functions with Press-Schechter /
Sheth-Tormen analytic references (Section V), and density projections /
zoom series for the dynamic-range visualizations (Figs. 2 and 9).
"""

from repro.analysis.power import PowerSpectrum, matter_power_spectrum
from repro.analysis.halos import FOFCatalog, fof_halos
from repro.analysis.subhalos import find_subhalos
from repro.analysis.mass_function import (
    measured_mass_function,
    press_schechter,
    sheth_tormen,
)
from repro.analysis.density import (
    density_projection,
    density_contrast_statistics,
    zoom_series,
)
from repro.analysis.correlation import pair_correlation, xi_from_power
from repro.analysis.lensing import convergence_power, lensing_efficiency
from repro.analysis.profiles import fit_nfw, nfw_density, radial_profile, sample_nfw
from repro.analysis.mergers import build_merger_history, match_halos
from repro.analysis.render import render_density, write_ppm, read_ppm
from repro.analysis.velocity import (
    bulk_flow,
    pairwise_velocity,
    velocity_divergence_spectrum,
)
from repro.analysis.redshift_space import (
    kaiser_monopole_boost,
    kaiser_quadrupole_ratio,
    power_multipoles,
    redshift_space_positions,
)

__all__ = [
    "PowerSpectrum",
    "matter_power_spectrum",
    "FOFCatalog",
    "fof_halos",
    "find_subhalos",
    "measured_mass_function",
    "press_schechter",
    "sheth_tormen",
    "density_projection",
    "density_contrast_statistics",
    "zoom_series",
    "xi_from_power",
    "pair_correlation",
    "convergence_power",
    "lensing_efficiency",
    "radial_profile",
    "nfw_density",
    "fit_nfw",
    "sample_nfw",
    "match_halos",
    "build_merger_history",
    "render_density",
    "write_ppm",
    "read_ppm",
    "velocity_divergence_spectrum",
    "pairwise_velocity",
    "bulk_flow",
    "redshift_space_positions",
    "power_multipoles",
    "kaiser_monopole_boost",
    "kaiser_quadrupole_ratio",
]
