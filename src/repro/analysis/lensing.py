"""Weak gravitational lensing: Limber convergence power spectra.

Section I of the paper sets the accuracy target — "certain quantities
such as lensing shear power spectra must be computed at accuracies of a
fraction of a percent" — and Section V lists "weak gravitational lensing
measurements to map the distribution of dark matter" among the probes the
simulations serve.  This module provides the standard flat-sky Limber
projection that converts a 3-D matter power spectrum (linear, HALOFIT, or
a table measured from a simulation) into the convergence power spectrum
observed by a survey:

.. math::

    C_\\ell^{\\kappa\\kappa} = \\int_0^{\\chi_s} d\\chi\\,
        \\frac{W^2(\\chi)}{\\chi^2} P\\!\\left(k = \\frac{\\ell + 1/2}{\\chi},
        z(\\chi)\\right),

with the lensing efficiency for a single source plane at comoving
distance ``chi_s``

.. math::

    W(\\chi) = \\frac{3}{2} \\Omega_m H_0^2 (1 + z)\\, \\chi
              \\left(1 - \\frac{\\chi}{\\chi_s}\\right).

Units: with distances in Mpc/h and ``H0 = 100 h`` km/s/Mpc,
``H0/c = 1/2997.92 (Mpc/h)^{-1}``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.integrate import quad
from scipy.interpolate import interp1d

from repro.constants import SPEED_OF_LIGHT_KM_S
from repro.cosmology.background import Cosmology

__all__ = ["convergence_power", "lensing_efficiency"]

#: Hubble distance c/H0 in Mpc/h
_D_H = SPEED_OF_LIGHT_KM_S / 100.0


def lensing_efficiency(
    cosmology: Cosmology, chi: float, chi_source: float
) -> float:
    """Single-source-plane lensing weight W(chi), (Mpc/h)^-1 units.

    ``W = (3/2) Omega_m (H0/c)^2 (1+z) chi (1 - chi/chi_s)``.
    """
    if not 0 <= chi <= chi_source:
        return 0.0
    z = _z_of_chi(cosmology, chi)
    return (
        1.5
        * cosmology.omega_m
        / _D_H**2
        * (1.0 + z)
        * chi
        * (1.0 - chi / chi_source)
    )


def _z_of_chi(cosmology: Cosmology, chi: float) -> float:
    """Invert the comoving distance (cached tabulation per cosmology)."""
    cache = getattr(cosmology, "_z_of_chi_cache", None)
    if cache is None:
        z_grid = np.concatenate(
            [np.linspace(0.0, 3.0, 61), np.linspace(3.2, 20.0, 40)]
        )
        chi_grid = np.array(
            [cosmology.comoving_distance(z) for z in z_grid]
        )
        cache = interp1d(
            chi_grid, z_grid, kind="cubic", bounds_error=True
        )
        object.__setattr__(cosmology, "_z_of_chi_cache", cache)
    return float(cache(chi))


def convergence_power(
    power,
    ells,
    *,
    z_source: float = 1.0,
    n_chi: int = 64,
) -> np.ndarray:
    """Limber convergence power spectrum C_ell for a single source plane.

    Parameters
    ----------
    power:
        Callable ``P(k, a)`` in (Mpc/h)^3 — linear, HALOFIT, or an
        interpolated simulation measurement.  Must expose a
        ``cosmology`` attribute.
    ells:
        Multipoles (scalar or array).
    z_source:
        Source-plane redshift.
    n_chi:
        Gauss-Legendre nodes for the line-of-sight integral.

    Returns
    -------
    Dimensionless C_ell (same shape as ``ells``).

    Notes
    -----
    The integral uses fixed Gauss-Legendre nodes so a whole C_ell curve
    costs ``n_chi`` power-spectrum evaluations per multipole; accuracy is
    ~0.1% for smooth spectra at ``n_chi = 64`` (the convergence test
    doubles the node count and compares).
    """
    cosmology: Cosmology = power.cosmology
    if z_source <= 0:
        raise ValueError(f"z_source must be positive: {z_source}")
    ells_arr = np.atleast_1d(np.asarray(ells, dtype=np.float64))
    if np.any(ells_arr <= 0):
        raise ValueError("multipoles must be positive")

    chi_s = cosmology.comoving_distance(z_source)
    nodes, weights = np.polynomial.legendre.leggauss(n_chi)
    chi = 0.5 * chi_s * (nodes + 1.0)
    w_quad = 0.5 * chi_s * weights

    z_at = np.array([_z_of_chi(cosmology, c) for c in chi])
    a_at = 1.0 / (1.0 + z_at)
    w_lens = np.array(
        [
            lensing_efficiency(cosmology, c, chi_s)
            for c in chi
        ]
    )

    out = np.empty_like(ells_arr)
    for i, ell in enumerate(ells_arr):
        k = (ell + 0.5) / chi
        p_vals = np.array(
            [float(np.atleast_1d(power(np.array([kk]), aa))[0])
             for kk, aa in zip(k, a_at)]
        )
        integrand = w_lens**2 / chi**2 * p_vals
        out[i] = float(np.sum(w_quad * integrand))
    return out if np.ndim(ells) else float(out[0])
