"""Halo matching and merger histories across snapshots.

Fig. 11's caption points at "the statistics of halo mergers and halo
build-up through sub-halo accretion ... studied with excellent
statistics".  The standard machinery is the merger tree: halos in
consecutive snapshots are linked by the particle IDs they share, the
progenitor contributing the most particles being the *main* progenitor.

This module implements the ID-based matcher and a minimal tree builder
over a time-ordered sequence of (positions, catalog) snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.halos import FOFCatalog

__all__ = ["HaloMatch", "match_halos", "MergerHistory", "build_merger_history"]


@dataclass(frozen=True)
class HaloMatch:
    """A progenitor -> descendant link between two snapshots.

    ``shared`` counts the particles common to both halos; ``fraction``
    is ``shared / progenitor size``.
    """

    progenitor: int
    descendant: int
    shared: int
    fraction: float


def match_halos(
    earlier: FOFCatalog,
    later: FOFCatalog,
    earlier_ids: np.ndarray,
    later_ids: np.ndarray,
    *,
    min_fraction: float = 0.1,
) -> list[HaloMatch]:
    """Link halos between snapshots by shared particle IDs.

    Parameters
    ----------
    earlier, later:
        FOF catalogs at the two epochs.
    earlier_ids, later_ids:
        Global particle IDs, aligned with the position arrays the
        catalogs were built from (IDs are stable across snapshots).
    min_fraction:
        Discard links carrying less than this fraction of the
        progenitor's particles.

    Returns
    -------
    One match per progenitor halo that found a descendant, each link the
    *best* (largest shared count) for its progenitor.
    """
    if not 0 <= min_fraction <= 1:
        raise ValueError(f"min_fraction must lie in [0, 1]: {min_fraction}")
    # descendant halo index per particle ID
    id_to_desc: dict[int, int] = {}
    for h in range(later.n_halos):
        for pid in later_ids[later.members(h)]:
            id_to_desc[int(pid)] = h

    matches: list[HaloMatch] = []
    for h in range(earlier.n_halos):
        member_ids = earlier_ids[earlier.members(h)]
        votes: dict[int, int] = {}
        for pid in member_ids:
            d = id_to_desc.get(int(pid))
            if d is not None:
                votes[d] = votes.get(d, 0) + 1
        if not votes:
            continue
        best, shared = max(votes.items(), key=lambda kv: kv[1])
        frac = shared / len(member_ids)
        if frac >= min_fraction:
            matches.append(
                HaloMatch(
                    progenitor=h,
                    descendant=best,
                    shared=int(shared),
                    fraction=float(frac),
                )
            )
    return matches


@dataclass
class MergerHistory:
    """Merger information for the halos of the final snapshot.

    Attributes
    ----------
    progenitors:
        ``progenitors[epoch][halo]`` lists the
        :class:`HaloMatch` links from snapshot ``epoch`` into the next.
    n_mergers:
        Per final halo: number of distinct progenitors feeding it over
        the last transition (>= 2 means a merger happened).
    mass_growth:
        Per final halo: particle count ratio vs its main progenitor in
        the previous snapshot (accretion + merging).
    """

    progenitors: list[list[HaloMatch]] = field(default_factory=list)
    n_mergers: dict = field(default_factory=dict)
    mass_growth: dict = field(default_factory=dict)


def build_merger_history(
    catalogs: list[FOFCatalog],
    id_arrays: list[np.ndarray],
    *,
    min_fraction: float = 0.1,
) -> MergerHistory:
    """Build a merger history over a time-ordered snapshot sequence.

    ``catalogs[i]`` / ``id_arrays[i]`` must be ordered from earliest to
    latest.
    """
    if len(catalogs) != len(id_arrays):
        raise ValueError("catalogs and id_arrays must align")
    if len(catalogs) < 2:
        raise ValueError("need at least two snapshots for a history")
    history = MergerHistory()
    for i in range(len(catalogs) - 1):
        history.progenitors.append(
            match_halos(
                catalogs[i],
                catalogs[i + 1],
                id_arrays[i],
                id_arrays[i + 1],
                min_fraction=min_fraction,
            )
        )

    last_links = history.progenitors[-1]
    earlier, later = catalogs[-2], catalogs[-1]
    by_desc: dict[int, list[HaloMatch]] = {}
    for link in last_links:
        by_desc.setdefault(link.descendant, []).append(link)
    for h in range(later.n_halos):
        links = by_desc.get(h, [])
        history.n_mergers[h] = len(links)
        if links:
            main = max(links, key=lambda l: l.shared)
            history.mass_growth[h] = float(
                later.sizes[h] / earlier.sizes[main.progenitor]
            )
    return history
