"""Density-field rendering: the data path behind Figs. 2 and 9.

The paper's visualizations (by co-author Insley's team) render log-scaled
density projections.  This module provides that path with zero plotting
dependencies: log-stretch normalization, a small set of built-in
colormaps, and a binary PPM (P6) writer — a format simple enough to
implement exactly and test byte-for-byte.

Typical use::

    img = render_density(density_projection(pos, box, 512))
    write_ppm("frame_z0.ppm", img)
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["log_stretch", "apply_colormap", "render_density", "write_ppm", "read_ppm", "COLORMAPS"]

# Each colormap is a list of (position, (r, g, b)) control points in
# [0, 1]; rendering interpolates linearly between them.
COLORMAPS: dict[str, list[tuple[float, tuple[int, int, int]]]] = {
    # black -> deep blue -> magenta -> orange -> white: the classic
    # dark-matter visualization ramp
    "cosmic": [
        (0.00, (0, 0, 0)),
        (0.25, (20, 20, 90)),
        (0.55, (140, 40, 130)),
        (0.80, (240, 140, 50)),
        (1.00, (255, 255, 255)),
    ],
    "gray": [
        (0.0, (0, 0, 0)),
        (1.0, (255, 255, 255)),
    ],
    "heat": [
        (0.0, (0, 0, 0)),
        (0.4, (160, 0, 0)),
        (0.75, (255, 160, 0)),
        (1.0, (255, 255, 220)),
    ],
}


def log_stretch(
    field: np.ndarray,
    *,
    floor: float = 1e-2,
    vmax: float | None = None,
) -> np.ndarray:
    """Map a non-negative density field to [0, 1] with a log stretch.

    The density contrast spans orders of magnitude (Fig. 9's five
    decades); linear scaling shows nothing, so visualizations use
    ``log(max(field, floor))`` normalized between the floor and the
    field maximum (or ``vmax``, to lock a ladder of frames to one scale).
    """
    f = np.asarray(field, dtype=np.float64)
    if np.any(f < 0):
        raise ValueError("density fields must be non-negative")
    if floor <= 0:
        raise ValueError(f"floor must be positive: {floor}")
    top = float(f.max()) if vmax is None else float(vmax)
    if top <= floor:
        return np.zeros_like(f)
    lo, hi = np.log(floor), np.log(top)
    out = (np.log(np.maximum(f, floor)) - lo) / (hi - lo)
    return np.clip(out, 0.0, 1.0)


def apply_colormap(normalized: np.ndarray, cmap: str = "cosmic") -> np.ndarray:
    """Map a [0, 1] field to uint8 RGB via a built-in colormap."""
    if cmap not in COLORMAPS:
        raise ValueError(
            f"unknown colormap {cmap!r}; available: {sorted(COLORMAPS)}"
        )
    x = np.asarray(normalized, dtype=np.float64)
    if np.any(x < 0) or np.any(x > 1):
        raise ValueError("normalized field must lie in [0, 1]")
    stops = COLORMAPS[cmap]
    positions = np.array([s[0] for s in stops])
    colors = np.array([s[1] for s in stops], dtype=np.float64)
    rgb = np.empty(x.shape + (3,), dtype=np.float64)
    for c in range(3):
        rgb[..., c] = np.interp(x, positions, colors[:, c])
    return np.round(rgb).astype(np.uint8)


def render_density(
    projection: np.ndarray,
    *,
    cmap: str = "cosmic",
    floor: float = 1e-2,
    vmax: float | None = None,
) -> np.ndarray:
    """Projection -> uint8 RGB image (log stretch + colormap)."""
    return apply_colormap(
        log_stretch(projection, floor=floor, vmax=vmax), cmap
    )


def write_ppm(path: str | Path, image: np.ndarray) -> Path:
    """Write an (H, W, 3) uint8 array as a binary PPM (P6)."""
    img = np.asarray(image)
    if img.ndim != 3 or img.shape[2] != 3 or img.dtype != np.uint8:
        raise ValueError(
            f"image must be (H, W, 3) uint8, got {img.shape} {img.dtype}"
        )
    p = Path(path)
    if p.suffix != ".ppm":
        p = p.with_name(p.name + ".ppm")
    h, w, _ = img.shape
    header = f"P6\n{w} {h}\n255\n".encode("ascii")
    p.write_bytes(header + img.tobytes())
    return p


def read_ppm(path: str | Path) -> np.ndarray:
    """Read a binary PPM (P6) written by :func:`write_ppm`."""
    raw = Path(path).read_bytes()
    if not raw.startswith(b"P6"):
        raise ValueError("not a binary PPM (P6) file")
    # header: magic, width, height, maxval — whitespace separated
    parts = raw.split(b"\n", 3)
    if len(parts) < 4:
        raise ValueError("truncated PPM header")
    dims = parts[1].split()
    w, h = int(dims[0]), int(dims[1])
    maxval = int(parts[2])
    if maxval != 255:
        raise ValueError(f"only maxval 255 supported, got {maxval}")
    data = parts[3]
    expected = w * h * 3
    if len(data) < expected:
        raise ValueError("truncated PPM payload")
    return np.frombuffer(data[:expected], dtype=np.uint8).reshape(h, w, 3)
