"""Sub-halo identification within FOF host halos.

Fig. 11 of the paper shows a ~1e15 Msun cluster halo decomposed into
sub-halos ("each sub-halo is shown in a different color ... each sub-halo,
depending on its mass, can host one or more galaxies").  This module
reproduces that decomposition with hierarchical FOF: members of a host
halo are re-percolated at a shorter linking length, which isolates the
dense self-bound clumps orbiting inside the host.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components
from scipy.spatial import cKDTree

from repro.analysis.halos import FOFCatalog

__all__ = ["Subhalo", "find_subhalos"]


@dataclass(frozen=True)
class Subhalo:
    """One sub-structure of a host halo.

    ``member_indices`` are indices into the *global* particle arrays, so
    positions/velocities of the sub-halo can be pulled directly — that is
    what the Fig. 11 bench does to report sub-halo statistics.
    """

    host: int
    member_indices: np.ndarray
    center: np.ndarray
    mean_velocity: np.ndarray

    @property
    def n_members(self) -> int:
        return self.member_indices.shape[0]


def find_subhalos(
    catalog: FOFCatalog,
    positions: np.ndarray,
    *,
    halo: int,
    linking_fraction: float = 0.5,
    min_members: int = 10,
    momenta: np.ndarray | None = None,
) -> list[Subhalo]:
    """Decompose one host halo into sub-halos.

    Parameters
    ----------
    catalog:
        FOF catalog from :func:`repro.analysis.fof_halos`.
    positions:
        The same (N, 3) particle positions the catalog was built from.
    halo:
        Host halo index in the catalog.
    linking_fraction:
        Sub-halo linking length as a fraction of the host linking length
        (shorter -> denser structures; 0.5 is a conventional choice).
    min_members:
        Minimum sub-halo size.
    momenta:
        Optional (N, 3) momenta for sub-halo mean velocities.

    Returns
    -------
    Sub-halos sorted by descending size.  The first entry is the host's
    central (most massive) structure; the rest are satellites — the
    paper's "main halo (red) ... each sub-halo in a different color".
    """
    if not 0 < linking_fraction <= 1.0:
        raise ValueError(
            f"linking_fraction must lie in (0, 1]: {linking_fraction}"
        )
    members = catalog.members(halo)
    if members.size == 0:
        return []
    pos = np.asarray(positions, dtype=np.float64)[members]
    box = catalog.box_size
    # unwrap about the host center so distances are non-periodic locally
    d = pos - catalog.centers[halo]
    d -= box * np.round(d / box)

    link = catalog.linking_length * linking_fraction
    tree = cKDTree(d)
    pairs = tree.query_pairs(link, output_type="ndarray")
    n = d.shape[0]
    if pairs.size:
        graph = coo_matrix(
            (np.ones(pairs.shape[0]), (pairs[:, 0], pairs[:, 1])),
            shape=(n, n),
        )
        _, labels = connected_components(graph, directed=False)
    else:
        labels = np.arange(n)

    counts = np.bincount(labels)
    keep = np.flatnonzero(counts >= min_members)
    order = keep[np.argsort(counts[keep])[::-1]]

    vel = (
        np.zeros((len(positions), 3))
        if momenta is None
        else np.asarray(momenta, dtype=np.float64)
    )
    subs = []
    for sid in order:
        local = np.flatnonzero(labels == sid)
        gidx = members[local]
        center = np.mod(
            catalog.centers[halo] + d[local].mean(axis=0), box
        )
        subs.append(
            Subhalo(
                host=halo,
                member_indices=gidx,
                center=center,
                mean_velocity=vel[gidx].mean(axis=0),
            )
        )
    return subs
