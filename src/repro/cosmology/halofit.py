"""HALOFIT nonlinear matter power spectrum (Takahashi et al. 2012 revision
of Smith et al. 2003).

Role in the reproduction: the paper's science program needs nonlinear
P(k) predictions "of unprecedented accuracy" for survey analysis; HALOFIT
is the community's standard analytic reference for the nonlinear regime,
so it serves here as the *independent comparator* for the nonlinear boost
our simulations measure (Fig. 10's high-k departure from linear theory)
— the same role the Millennium-class comparison runs play in the paper.

Implementation notes
--------------------
The nonlinear spectrum is a sum of a quasi-linear (two-halo) and a
one-halo term, with coefficients driven by three numbers extracted from
the linear spectrum at each redshift:

* ``k_sigma``: the nonlinear scale, where the Gaussian-filtered variance
  ``sigma^2(R) = int dlnk Delta^2_L(k) e^{-k^2 R^2}`` equals 1 at
  ``R = 1/k_sigma``;
* ``n_eff = -3 - dln sigma^2 / dln R`` (effective spectral index);
* ``C = -d^2 ln sigma^2 / dln R^2`` (spectral curvature).

All fitting coefficients are the Takahashi 2012 values, including the
``(1+w)`` dark-energy corrections, so wCDM models work out of the box.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.integrate import quad
from scipy.optimize import brentq

from repro.cosmology.power_spectrum import LinearPower

__all__ = ["HalofitPower"]


@dataclass(frozen=True)
class _SpectralParams:
    """Per-redshift HALOFIT inputs extracted from the linear spectrum."""

    k_sigma: float
    n_eff: float
    curvature: float


class HalofitPower:
    """Nonlinear P(k, a) from a linear spectrum via HALOFIT.

    Parameters
    ----------
    linear:
        Sigma8-normalized linear power spectrum.

    Examples
    --------
    >>> from repro.cosmology import WMAP7, LinearPower
    >>> nl = HalofitPower(LinearPower(WMAP7))
    >>> float(nl(0.01) / LinearPower(WMAP7)(0.01)) < 1.05
    True
    """

    def __init__(self, linear: LinearPower) -> None:
        self.linear = linear
        self.cosmology = linear.cosmology
        self._params_cache: dict[float, _SpectralParams] = {}

    # ------------------------------------------------------------------
    # spectral parameters
    # ------------------------------------------------------------------
    def _growth2(self, a: float) -> float:
        if a == 1.0:
            return 1.0
        d = float(self.cosmology.growth_factor(a))
        return d * d

    def _sigma2(self, r: float, a: float) -> float:
        """Gaussian-filtered variance of the linear field at radius r."""
        # evaluate the z=0 spectrum once and scale by D^2(a): the growth
        # ODE is far too expensive to re-solve inside the quadrature
        g2 = self._growth2(a)

        def integrand(lnk: float) -> float:
            k = math.exp(lnk)
            d2 = g2 * float(self.linear.dimensionless(np.array([k]), 1.0)[0])
            return d2 * math.exp(-(k * r) ** 2)

        # the integrand peaks near k ~ 1/r; integrate generously around it
        lo = math.log(1e-5)
        hi = math.log(max(10.0 / r, 10.0))
        val, _ = quad(integrand, lo, hi, limit=300)
        return val

    def spectral_params(self, a: float = 1.0) -> _SpectralParams:
        """(k_sigma, n_eff, C) at scale factor ``a`` (cached)."""
        key = round(float(a), 10)
        if key in self._params_cache:
            return self._params_cache[key]
        if not 0 < a <= 1.0 + 1e-12:
            raise ValueError(f"scale factor out of range: {a}")

        def g(ln_r: float) -> float:
            return math.log(self._sigma2(math.exp(ln_r), a))

        # solve sigma^2(R) = 1; bracket in ln R
        lo, hi = math.log(1e-4), math.log(1e2)
        if g(lo) < 0:
            raise ValueError(
                "linear spectrum too cold for HALOFIT at this redshift "
                "(sigma^2 < 1 on all scales)"
            )
        ln_r = brentq(g, lo, hi, xtol=1e-8)
        eps = 0.05
        g0 = g(ln_r)
        gp = g(ln_r + eps)
        gm = g(ln_r - eps)
        dln = (gp - gm) / (2 * eps)
        d2ln = (gp - 2 * g0 + gm) / eps**2
        params = _SpectralParams(
            k_sigma=math.exp(-ln_r),
            n_eff=-3.0 - dln,
            curvature=-d2ln,
        )
        self._params_cache[key] = params
        return params

    # ------------------------------------------------------------------
    # the fit
    # ------------------------------------------------------------------
    def __call__(self, k, a: float = 1.0) -> np.ndarray:
        """Nonlinear P(k, a), (Mpc/h)^3 for k in h/Mpc."""
        k = np.atleast_1d(np.asarray(k, dtype=np.float64))
        if np.any(k < 0):
            raise ValueError("wavenumbers must be non-negative")
        p = self.spectral_params(a)
        n, c = p.n_eff, p.curvature
        cos = self.cosmology
        om_a = float(cos.omega_m_a(a))
        ode_a = 1.0 - om_a  # flat-universe effective DE fraction
        w = cos.w0 + cos.wa * (1.0 - a)

        an = 10 ** (
            1.5222
            + 2.8553 * n
            + 2.3706 * n**2
            + 0.9903 * n**3
            + 0.2250 * n**4
            - 0.6038 * c
            + 0.1749 * ode_a * (1.0 + w)
        )
        bn = 10 ** (
            -0.5642
            + 0.5864 * n
            + 0.5716 * n**2
            - 1.5474 * c
            + 0.2279 * ode_a * (1.0 + w)
        )
        cn = 10 ** (0.3698 + 2.0404 * n + 0.8161 * n**2 + 0.5869 * c)
        gamma = 0.1971 - 0.0843 * n + 0.8460 * c
        alpha = abs(6.0835 + 1.3373 * n - 0.1959 * n**2 - 5.5274 * c)
        beta = (
            2.0379
            - 0.7354 * n
            + 0.3157 * n**2
            + 1.2490 * n**3
            + 0.3980 * n**4
            - 0.1682 * c
        )
        mu = 0.0
        nu = 10 ** (5.2105 + 3.6902 * n)
        f1 = om_a**-0.0307
        f2 = om_a**-0.0585
        f3 = om_a**0.0743

        y = k / p.k_sigma
        d2_lin = self._growth2(a) * self.linear.dimensionless(k, 1.0)

        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            fy = y / 4.0 + y**2 / 8.0
            two_halo = (
                d2_lin
                * (1.0 + d2_lin) ** beta
                / (1.0 + alpha * d2_lin)
                * np.exp(-np.minimum(fy, 700.0))
            )
            one_halo_prime = (
                an * y ** (3.0 * f1)
                / (1.0 + bn * y**f2 + (cn * f3 * y) ** (3.0 - gamma))
            )
            y_safe = np.where(y > 0, y, 1.0)
            one_halo = np.where(
                y > 0,
                one_halo_prime / (1.0 + mu / y_safe + nu / y_safe**2),
                0.0,
            )
            d2_nl = two_halo + one_halo
            pk = np.where(k > 0, d2_nl * 2.0 * np.pi**2 / np.maximum(k, 1e-30) ** 3, 0.0)
        return pk

    def boost(self, k, a: float = 1.0) -> np.ndarray:
        """Nonlinear boost ``P_NL / P_L`` (>= ~1 in the resolved regime)."""
        k = np.atleast_1d(np.asarray(k, dtype=np.float64))
        lin = self.linear(k, a)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(lin > 0, self(k, a) / np.maximum(lin, 1e-300), 1.0)

    def nonlinear_scale(self, a: float = 1.0) -> float:
        """k_sigma: where fluctuations reach unity (h/Mpc)."""
        return self.spectral_params(a).k_sigma
