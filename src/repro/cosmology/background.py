"""Background (FLRW) cosmology: expansion history and linear growth.

The expansion of the universe enters the N-body equations only through the
dimensionless Hubble rate ``E(a) = H(a)/H0`` and the linear growth factor
``D(a)``; both are provided here for flat and curved wCDM models with a
CPL dark-energy equation of state ``w(a) = w0 + wa (1 - a)``.

The growth factor is obtained by integrating the standard second-order ODE

.. math::

    D'' + \\left(3 + \\frac{d\\ln E}{d\\ln a}\\right) \\frac{D'}{a}
        = \\frac{3}{2} \\frac{\\Omega_m}{a^5 E^2(a)} D,

(primes denote d/da) which reduces to ``D = a`` in Einstein-de Sitter, a
property the test suite checks exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np
from scipy.integrate import quad, solve_ivp

from repro.constants import RHO_CRIT_MSUN_H2_MPC3, SPEED_OF_LIGHT_KM_S

__all__ = ["Cosmology", "WMAP7", "WCDM_EXAMPLE"]


@dataclass(frozen=True)
class Cosmology:
    """A homogeneous FLRW background with CPL dark energy.

    Parameters
    ----------
    omega_m:
        Total matter density parameter (CDM + baryons) today.
    omega_b:
        Baryon density parameter today (only used by the transfer function).
    h:
        Dimensionless Hubble parameter, ``H0 = 100 h`` km/s/Mpc.
    n_s:
        Scalar spectral index of the primordial power spectrum.
    sigma8:
        RMS linear density fluctuation in 8 Mpc/h spheres at z=0; fixes the
        power-spectrum normalization.
    w0, wa:
        CPL dark-energy equation of state ``w(a) = w0 + wa (1-a)``.
    omega_k:
        Curvature density parameter (0 for flat models).
    t_cmb:
        CMB temperature in K (enters the Eisenstein-Hu transfer function).
    """

    omega_m: float = 0.265
    omega_b: float = 0.0448
    h: float = 0.71
    n_s: float = 0.963
    sigma8: float = 0.80
    w0: float = -1.0
    wa: float = 0.0
    omega_k: float = 0.0
    t_cmb: float = 2.726

    def __post_init__(self) -> None:
        if not 0.0 < self.omega_m <= 2.0:
            raise ValueError(f"omega_m out of range: {self.omega_m}")
        if not 0.0 <= self.omega_b <= self.omega_m:
            raise ValueError(
                f"omega_b must lie in [0, omega_m]: got {self.omega_b}"
            )
        if self.h <= 0:
            raise ValueError(f"h must be positive: {self.h}")
        if self.sigma8 <= 0:
            raise ValueError(f"sigma8 must be positive: {self.sigma8}")

    # ------------------------------------------------------------------
    # densities
    # ------------------------------------------------------------------
    @property
    def omega_de(self) -> float:
        """Dark-energy density parameter today (closure relation)."""
        return 1.0 - self.omega_m - self.omega_k

    @property
    def omega_cdm(self) -> float:
        """Cold-dark-matter density parameter today."""
        return self.omega_m - self.omega_b

    def rho_crit0(self) -> float:
        """Critical density today, h^2 Msun / Mpc^3."""
        return RHO_CRIT_MSUN_H2_MPC3

    def rho_mean_matter0(self) -> float:
        """Mean comoving matter density, h^2 Msun / Mpc^3."""
        return self.omega_m * RHO_CRIT_MSUN_H2_MPC3

    # ------------------------------------------------------------------
    # expansion history
    # ------------------------------------------------------------------
    def de_density_evolution(self, a):
        """Dark-energy density relative to today, ``rho_de(a)/rho_de0``.

        For CPL, ``rho_de(a)/rho_de0 = a^{-3(1+w0+wa)} exp(-3 wa (1-a))``.
        """
        a = np.asarray(a, dtype=np.float64)
        return a ** (-3.0 * (1.0 + self.w0 + self.wa)) * np.exp(
            -3.0 * self.wa * (1.0 - a)
        )

    def efunc(self, a):
        """Dimensionless Hubble rate ``E(a) = H(a)/H0``."""
        a = np.asarray(a, dtype=np.float64)
        if np.any(a <= 0):
            raise ValueError("scale factor must be positive")
        e2 = (
            self.omega_m * a**-3
            + self.omega_k * a**-2
            + self.omega_de * self.de_density_evolution(a)
        )
        return np.sqrt(e2)

    def hubble(self, a):
        """H(a) in km/s/Mpc."""
        return 100.0 * self.h * self.efunc(a)

    def dlnE_dlna(self, a):
        """Logarithmic derivative ``d ln E / d ln a`` (analytic)."""
        a = np.asarray(a, dtype=np.float64)
        w_a = self.w0 + self.wa * (1.0 - a)
        e2 = self.efunc(a) ** 2
        de = self.omega_de * self.de_density_evolution(a)
        num = (
            -3.0 * self.omega_m * a**-3
            - 2.0 * self.omega_k * a**-2
            - 3.0 * (1.0 + w_a) * de
        )
        return 0.5 * num / e2

    def omega_m_a(self, a):
        """Matter density parameter at scale factor ``a``."""
        a = np.asarray(a, dtype=np.float64)
        return self.omega_m * a**-3 / self.efunc(a) ** 2

    # ------------------------------------------------------------------
    # linear growth
    # ------------------------------------------------------------------
    def growth_factor(self, a, *, normalized: bool = True):
        """Linear growth factor ``D(a)``.

        Parameters
        ----------
        a:
            Scale factor(s), scalar or array.
        normalized:
            If True (default) return ``D(a)/D(1)`` so that D=1 today;
            otherwise use the matter-era normalization ``D -> a`` as
            ``a -> 0``.

        Notes
        -----
        Solved as an initial-value problem from deep in the matter era
        (``a_start = 1e-4``) with matter-dominated initial conditions
        ``D = a``, ``dD/da = 1``.
        """
        scalar = np.isscalar(a)
        a_arr = np.atleast_1d(np.asarray(a, dtype=np.float64))
        if np.any(a_arr <= 0) or np.any(a_arr > 1.0 + 1e-12):
            raise ValueError("growth factor requested outside (0, 1]")
        d, _ = self._growth_ode(a_arr)
        if normalized:
            d1, _ = self._growth_ode(np.array([1.0]))
            d = d / d1[0]
        return float(d[0]) if scalar else d

    def growth_rate(self, a):
        """Logarithmic growth rate ``f = d ln D / d ln a``.

        Used to set Zel'dovich velocities; approximately
        ``Omega_m(a)^0.55`` for LCDM, which the tests verify.
        """
        scalar = np.isscalar(a)
        a_arr = np.atleast_1d(np.asarray(a, dtype=np.float64))
        d, dprime = self._growth_ode(a_arr)
        f = a_arr * dprime / d
        return float(f[0]) if scalar else f

    def _growth_ode(self, a_eval: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Integrate the growth ODE; returns (D, dD/da) at ``a_eval``."""
        a_start = 1.0e-4
        order = np.argsort(a_eval)
        a_sorted = a_eval[order]

        def rhs(a, y):
            d, dp = y
            e = float(self.efunc(a))
            dlne = float(self.dlnE_dlna(a))
            ddp = (
                1.5 * self.omega_m / (a**5 * e**2) * d
                - (3.0 + dlne) / a * dp
            )
            return [dp, ddp]

        t_eval = np.clip(a_sorted, a_start, None)
        sol = solve_ivp(
            rhs,
            (a_start, max(float(t_eval[-1]), a_start * (1 + 1e-12))),
            [a_start, 1.0],
            t_eval=t_eval,
            rtol=1e-10,
            atol=1e-12,
            method="RK45",
            dense_output=False,
        )
        if not sol.success:  # pragma: no cover - scipy failure is exceptional
            raise RuntimeError(f"growth ODE integration failed: {sol.message}")
        d = np.empty_like(a_eval)
        dp = np.empty_like(a_eval)
        d[order] = sol.y[0]
        dp[order] = sol.y[1]
        # below a_start the universe is matter dominated: D = a exactly.
        tiny = a_eval < a_start
        d[tiny] = a_eval[tiny]
        dp[tiny] = 1.0
        return d, dp

    # ------------------------------------------------------------------
    # distances and times
    # ------------------------------------------------------------------
    def comoving_distance(self, z: float) -> float:
        """Line-of-sight comoving distance to redshift ``z`` in Mpc/h."""
        if z < 0:
            raise ValueError(f"redshift must be non-negative: {z}")
        if z == 0:
            return 0.0
        dh = SPEED_OF_LIGHT_KM_S / 100.0  # Hubble distance in Mpc/h
        val, _ = quad(lambda zz: 1.0 / float(self.efunc(1.0 / (1.0 + zz))), 0.0, z)
        return dh * val

    def lookback_time(self, z: float) -> float:
        """Lookback time to redshift ``z`` in units of the Hubble time 1/H0."""
        if z < 0:
            raise ValueError(f"redshift must be non-negative: {z}")
        a_lo = 1.0 / (1.0 + z)
        val, _ = quad(lambda a: 1.0 / (a * float(self.efunc(a))), a_lo, 1.0)
        return val

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def with_(self, **kwargs) -> "Cosmology":
        """Return a copy with selected parameters replaced."""
        return replace(self, **kwargs)

    @staticmethod
    def a_of_z(z):
        """Scale factor for redshift(s) z."""
        z = np.asarray(z, dtype=np.float64)
        return 1.0 / (1.0 + z)

    @staticmethod
    def z_of_a(a):
        """Redshift for scale factor(s) a."""
        a = np.asarray(a, dtype=np.float64)
        return 1.0 / a - 1.0


#: WMAP7-like parameters, matching the era of the paper's science runs.
WMAP7 = Cosmology()

#: An example evolving dark-energy model (the paper's target science is
#: surveying dark-energy model space).
WCDM_EXAMPLE = Cosmology(w0=-0.9, wa=0.2)
