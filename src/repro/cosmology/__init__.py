"""Cosmology substrate: background evolution, linear power spectra,
Gaussian random fields and Zel'dovich/2LPT initial conditions.

This subpackage supplies everything the N-body core needs to set up and
interpret a simulation of the Vlasov-Poisson system in an expanding
universe (Eqs. 1-4 of Habib et al. 2012).
"""

from repro.cosmology.background import Cosmology, WCDM_EXAMPLE, WMAP7
from repro.cosmology.power_spectrum import LinearPower, TransferFunction
from repro.cosmology.gaussian_field import GaussianRandomField
from repro.cosmology.initial_conditions import ZeldovichICs, make_initial_conditions
from repro.cosmology.halofit import HalofitPower
from repro.cosmology.emulator import ParameterBox, PowerSpectrumEmulator, latin_hypercube

__all__ = [
    "Cosmology",
    "WMAP7",
    "WCDM_EXAMPLE",
    "TransferFunction",
    "LinearPower",
    "GaussianRandomField",
    "ZeldovichICs",
    "HalofitPower",
    "PowerSpectrumEmulator",
    "ParameterBox",
    "latin_hypercube",
    "make_initial_conditions",
]
