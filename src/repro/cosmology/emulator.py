"""Power-spectrum emulation over cosmological parameter space.

Section I frames the throughput problem: "Scientific inference from sets
of cosmological observations is a statistical inverse problem where many
runs of the forward problem are needed ... For many analyses, hundreds of
large-scale, state of the art simulations will be required" — the Cosmic
Calibration program (the paper's Ref. [20]) answers it by *emulating*
P(k) from a designed set of forward runs.

This module implements that pattern end-to-end, with the forward model
pluggable (HALOFIT by default; a function running actual simulations
works identically):

1. a deterministic Latin-hypercube design over (Omega_m, sigma8, w0);
2. forward evaluations of ``ln P(k)`` at the design points;
3. a per-k quadratic polynomial response surface fitted by least squares
   (the regularized low-order basis emulators actually use at this
   parameter count);
4. percent-level predictions anywhere inside the design box, at a cost
   of microseconds instead of a forward solve — the ~1e5x speedup that
   makes MCMC over simulations feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.cosmology.background import Cosmology
from repro.cosmology.halofit import HalofitPower
from repro.cosmology.power_spectrum import LinearPower

__all__ = ["ParameterBox", "latin_hypercube", "PowerSpectrumEmulator"]


@dataclass(frozen=True)
class ParameterBox:
    """The emulated region of (Omega_m, sigma8, w0) space."""

    omega_m: tuple[float, float] = (0.22, 0.32)
    sigma8: tuple[float, float] = (0.7, 0.9)
    w0: tuple[float, float] = (-1.2, -0.8)

    def __post_init__(self) -> None:
        for name in ("omega_m", "sigma8", "w0"):
            lo, hi = getattr(self, name)
            if not lo < hi:
                raise ValueError(f"empty range for {name}: ({lo}, {hi})")

    @property
    def names(self) -> tuple[str, str, str]:
        return ("omega_m", "sigma8", "w0")

    def bounds(self) -> np.ndarray:
        return np.array([self.omega_m, self.sigma8, self.w0])

    def normalize(self, params: np.ndarray) -> np.ndarray:
        """Map physical parameters to the unit cube."""
        b = self.bounds()
        return (params - b[:, 0]) / (b[:, 1] - b[:, 0])

    def denormalize(self, unit: np.ndarray) -> np.ndarray:
        b = self.bounds()
        return b[:, 0] + unit * (b[:, 1] - b[:, 0])

    def contains(self, params: np.ndarray) -> bool:
        u = self.normalize(np.asarray(params, dtype=np.float64))
        return bool(np.all(u >= -1e-9) and np.all(u <= 1 + 1e-9))


def latin_hypercube(n: int, dim: int, seed: int = 0) -> np.ndarray:
    """Deterministic Latin-hypercube sample in the unit cube.

    Each dimension's range is split into ``n`` strata with exactly one
    point per stratum — the space-filling property emulator designs need
    (a plain random sample leaves holes that inflate emulation error).
    """
    if n < 2 or dim < 1:
        raise ValueError(f"need n >= 2 points and dim >= 1: ({n}, {dim})")
    rng = np.random.default_rng(seed)
    out = np.empty((n, dim))
    for d in range(dim):
        perm = rng.permutation(n)
        out[:, d] = (perm + rng.uniform(0.3, 0.7, n)) / n
    return out


class PowerSpectrumEmulator:
    """Quadratic response-surface emulator for ``ln P(k)``.

    Parameters
    ----------
    box:
        Parameter region to emulate.
    k:
        Wavenumber grid (h/Mpc) the emulator predicts on.
    n_design:
        Forward-model evaluations in the training design (>= 10 for the
        10-term quadratic basis in 3 parameters).
    forward:
        Callable ``(cosmology, k) -> P(k)``; defaults to HALOFIT at z=0.
        Passing a function that runs an actual simulation turns this
        into the paper's full Cosmic-Calibration pipeline.
    seed:
        Design seed.
    """

    def __init__(
        self,
        box: ParameterBox | None = None,
        k: np.ndarray | None = None,
        n_design: int = 24,
        forward: Callable[[Cosmology, np.ndarray], np.ndarray] | None = None,
        seed: int = 0,
        base_cosmology: Cosmology | None = None,
    ) -> None:
        self.box = box if box is not None else ParameterBox()
        self.k = (
            np.logspace(-2, 0.5, 32) if k is None else np.asarray(k, float)
        )
        if np.any(self.k <= 0):
            raise ValueError("emulation wavenumbers must be positive")
        if n_design < 10:
            raise ValueError(
                f"quadratic basis in 3 parameters needs >= 10 designs: "
                f"{n_design}"
            )
        self._base = base_cosmology if base_cosmology is not None else Cosmology()
        self._forward = forward if forward is not None else self._halofit_forward
        unit = latin_hypercube(n_design, 3, seed=seed)
        self.design = self.box.denormalize(unit)
        self._train(unit)

    # ------------------------------------------------------------------
    def _halofit_forward(self, cosmology: Cosmology, k: np.ndarray):
        return HalofitPower(LinearPower(cosmology))(k)

    def _cosmology_at(self, params: np.ndarray) -> Cosmology:
        om, s8, w0 = (float(v) for v in params)
        return self._base.with_(omega_m=om, sigma8=s8, w0=w0)

    @staticmethod
    def _basis(unit: np.ndarray) -> np.ndarray:
        """Quadratic polynomial features of unit-cube parameters."""
        u = np.atleast_2d(unit)
        x, y, z = u[:, 0], u[:, 1], u[:, 2]
        return np.stack(
            [
                np.ones_like(x),
                x, y, z,
                x * x, y * y, z * z,
                x * y, x * z, y * z,
            ],
            axis=1,
        )

    def _train(self, unit: np.ndarray) -> None:
        targets = np.empty((unit.shape[0], self.k.size))
        for i, params in enumerate(self.design):
            p = self._forward(self._cosmology_at(params), self.k)
            if np.any(p <= 0):
                raise ValueError(
                    "forward model returned non-positive power at design "
                    f"point {params}"
                )
            targets[i] = np.log(p)
        basis = self._basis(unit)
        self.coefficients, *_ = np.linalg.lstsq(basis, targets, rcond=None)
        resid = targets - basis @ self.coefficients
        #: per-k RMS training residual of ln P (emulation error floor)
        self.training_rms = np.sqrt(np.mean(resid**2, axis=0))

    # ------------------------------------------------------------------
    def __call__(self, omega_m: float, sigma8: float, w0: float) -> np.ndarray:
        """Emulated P(k) at the requested cosmology, (Mpc/h)^3."""
        params = np.array([omega_m, sigma8, w0], dtype=np.float64)
        if not self.box.contains(params):
            raise ValueError(
                f"parameters {params.tolist()} outside the emulated box"
            )
        unit = self.box.normalize(params)
        ln_p = self._basis(unit[None, :]) @ self.coefficients
        return np.exp(ln_p[0])

    def truth(self, omega_m: float, sigma8: float, w0: float) -> np.ndarray:
        """Run the forward model directly (for accuracy checks)."""
        return self._forward(
            self._cosmology_at(np.array([omega_m, sigma8, w0])), self.k
        )

    def validate(self, n_test: int = 8, seed: int = 1) -> np.ndarray:
        """Max |ln P_emulated - ln P_true| over held-out test points."""
        unit = latin_hypercube(max(n_test, 2), 3, seed=seed)
        errs = np.zeros(self.k.size)
        for u in unit:
            params = self.box.denormalize(u)
            pred = self(*params)
            true = self.truth(*params)
            errs = np.maximum(errs, np.abs(np.log(pred) - np.log(true)))
        return errs
