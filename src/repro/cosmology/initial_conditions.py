"""Zel'dovich and 2LPT initial conditions.

Particles start on a regular lattice and are displaced with first-order
(Zel'dovich) or second-order Lagrangian perturbation theory.  The paper's
benchmark runs start at ``z_in = 25`` (science runs at ``z_in ~ 200``); both
are supported — the displacement amplitude simply scales with the growth
factor.

Momenta use the comoving convention ``p = a^2 dx/dt`` of the paper (Eq. 4)
in units where ``H0 = 1``:

.. math::  p = a^2 E(a) f(a) D(a) \\psi_0,

with ``psi_0`` the normalized Lagrangian displacement, so that the
leapfrog equation ``dx/da = p / (a^3 E)`` reproduces linear growth exactly
— a property the integration tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cosmology.background import Cosmology
from repro.cosmology.gaussian_field import GaussianRandomField, fourier_grid
from repro.cosmology.power_spectrum import LinearPower

__all__ = ["ZeldovichICs", "make_initial_conditions"]


def _displacement_fields(delta_k: np.ndarray, n: int, box_size: float):
    """Zel'dovich displacement ``psi(k) = i k delta(k) / k^2`` -> real space.

    Returns three real arrays of shape (n, n, n): the displacement
    components on the grid, for a *unit-growth* density field.
    """
    kx, ky, kz = fourier_grid(n, box_size)
    k2 = kx * kx + ky * ky + kz * kz
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_k2 = np.where(k2 > 0, 1.0 / np.where(k2 > 0, k2, 1.0), 0.0)
    base = delta_k * inv_k2
    shape = (n, n, n)
    psi = [
        np.fft.irfftn(1j * kcomp * base, s=shape, axes=(0, 1, 2))
        for kcomp in (kx, ky, kz)
    ]
    return psi


def _second_order_potential(delta_k: np.ndarray, n: int, box_size: float):
    """2LPT source field ``sum_{i<j} (phi,ii phi,jj - phi,ij^2)`` in k-space.

    ``phi`` is the first-order displacement potential with ``del^2 phi =
    -delta`` (so psi = -grad phi ... sign conventions cancel in the source,
    which is quadratic).
    """
    kx, ky, kz = fourier_grid(n, box_size)
    k2 = kx * kx + ky * ky + kz * kz
    with np.errstate(divide="ignore", invalid="ignore"):
        phi_k = np.where(k2 > 0, -delta_k / np.where(k2 > 0, k2, 1.0), 0.0)
    shape = (n, n, n)
    kvec = (kx, ky, kz)

    def dij(i, j):
        return np.fft.irfftn(-kvec[i] * kvec[j] * phi_k, s=shape, axes=(0, 1, 2))

    d00, d11, d22 = dij(0, 0), dij(1, 1), dij(2, 2)
    d01, d02, d12 = dij(0, 1), dij(0, 2), dij(1, 2)
    src = (
        d00 * d11
        + d00 * d22
        + d11 * d22
        - d01 * d01
        - d02 * d02
        - d12 * d12
    )
    return np.fft.rfftn(src)


@dataclass(frozen=True)
class ZeldovichICs:
    """Initial particle data.

    Attributes
    ----------
    positions:
        (N, 3) comoving positions in [0, box_size), Mpc/h.
    momenta:
        (N, 3) comoving momenta ``p = a^2 dx/dt`` in code units (H0 = 1).
    a_init:
        Starting scale factor.
    box_size:
        Box side (Mpc/h).
    """

    positions: np.ndarray
    momenta: np.ndarray
    a_init: float
    box_size: float

    @property
    def n_particles(self) -> int:
        return self.positions.shape[0]


def make_initial_conditions(
    cosmology: Cosmology,
    *,
    n_per_dim: int,
    box_size: float,
    z_init: float = 25.0,
    seed: int = 0,
    order: int = 1,
    power: LinearPower | None = None,
) -> ZeldovichICs:
    """Generate lattice + LPT initial conditions.

    Parameters
    ----------
    cosmology:
        Background model; supplies the growth factor, growth rate and the
        default linear power spectrum.
    n_per_dim:
        Particles per dimension (total ``n_per_dim^3``); the displacement
        mesh has the same resolution.
    box_size:
        Comoving box side in Mpc/h.
    z_init:
        Starting redshift (paper benchmark: 25; science runs: ~200).
    seed:
        White-noise seed; identical seeds give identical large-scale
        structure at any resolution of the *same* mesh size.
    order:
        1 for Zel'dovich, 2 to add the 2LPT correction.
    power:
        Optional pre-built :class:`LinearPower` (to reuse normalization).

    Returns
    -------
    ZeldovichICs

    Notes
    -----
    The density field is realized with the z=0 normalization and scaled
    back by ``D(a_init)``, the standard practice that keeps the white
    noise independent of the start redshift.
    """
    if order not in (1, 2):
        raise ValueError(f"order must be 1 or 2, got {order}")
    if z_init <= 0:
        raise ValueError(f"z_init must be positive, got {z_init}")
    n = int(n_per_dim)
    a_init = 1.0 / (1.0 + z_init)
    pk = power if power is not None else LinearPower(cosmology)

    grf = GaussianRandomField(n, box_size, lambda k: pk(k), seed=seed)
    delta_k = grf.realize_k()

    d1 = float(cosmology.growth_factor(a_init))
    f1 = float(cosmology.growth_rate(a_init))
    e_a = float(cosmology.efunc(a_init))

    psi = _displacement_fields(delta_k, n, box_size)

    # lattice coordinates (cell centers are not required; grid points align
    # with the displacement mesh so no interpolation is needed)
    spacing = box_size / n
    lattice_1d = np.arange(n, dtype=np.float64) * spacing
    qx, qy, qz = np.meshgrid(lattice_1d, lattice_1d, lattice_1d, indexing="ij")

    disp = np.stack([p.ravel() for p in psi], axis=1)
    pos = np.stack([qx.ravel(), qy.ravel(), qz.ravel()], axis=1)
    pos = pos + d1 * disp
    mom = (a_init**2 * e_a * f1 * d1) * disp

    if order == 2:
        # 2LPT: D2 ~= -3/7 D1^2 Omega_m(a)^(-1/143), growth rate
        # f2 ~= 2 Omega_m(a)^(6/11).
        om_a = float(cosmology.omega_m_a(a_init))
        d2 = -3.0 / 7.0 * d1 * d1 * om_a ** (-1.0 / 143.0)
        f2 = 2.0 * om_a ** (6.0 / 11.0)
        src_k = _second_order_potential(delta_k, n, box_size)
        psi2 = _displacement_fields(src_k, n, box_size)
        disp2 = np.stack([p.ravel() for p in psi2], axis=1)
        pos = pos + d2 * disp2
        mom = mom + (a_init**2 * e_a * f2 * d2) * disp2

    pos = np.mod(pos, box_size)
    return ZeldovichICs(
        positions=np.ascontiguousarray(pos),
        momenta=np.ascontiguousarray(mom),
        a_init=a_init,
        box_size=box_size,
    )
