"""Linear matter transfer functions and power spectra.

Implemented from scratch (no external cosmology packages):

* **BBKS** (Bardeen, Bond, Kaiser & Szalay 1986) with the Sugiyama (1995)
  shape-parameter baryon correction — the classic fit, kept as a baseline.
* **Eisenstein & Hu (1998)** zero-baryon ("no-wiggle") form.
* **Eisenstein & Hu (1998)** full fit including baryon acoustic
  oscillations — needed because BAO science (the BOSS predictions cited in
  the paper) depends on the wiggles.

The linear power spectrum is ``P(k, a) = A k^{n_s} T^2(k) D^2(a)`` with the
amplitude ``A`` fixed by ``sigma8``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.integrate import quad

from repro.cosmology.background import Cosmology

__all__ = ["TransferFunction", "LinearPower"]


class TransferFunction:
    """Linear matter transfer function fits.

    Parameters
    ----------
    cosmology:
        Background model supplying ``omega_m``, ``omega_b``, ``h``, ``t_cmb``.
    kind:
        One of ``"eisenstein_hu"`` (full, with BAO), ``"eisenstein_hu_nw"``
        (no-wiggle) or ``"bbks"``.
    """

    KINDS = ("eisenstein_hu", "eisenstein_hu_nw", "bbks")

    def __init__(self, cosmology: Cosmology, kind: str = "eisenstein_hu"):
        if kind not in self.KINDS:
            raise ValueError(f"unknown transfer function kind: {kind!r}")
        self.cosmology = cosmology
        self.kind = kind
        if kind != "bbks":
            self._setup_eh()

    # ------------------------------------------------------------------
    def __call__(self, k):
        """Evaluate T(k); ``k`` in h/Mpc, T(0) = 1."""
        k = np.asarray(k, dtype=np.float64)
        if np.any(k < 0):
            raise ValueError("wavenumbers must be non-negative")
        if self.kind == "bbks":
            return self._bbks(k)
        if self.kind == "eisenstein_hu_nw":
            return self._eh_nowiggle(k)
        return self._eh_full(k)

    # ------------------------------------------------------------------
    def _bbks(self, k: np.ndarray) -> np.ndarray:
        c = self.cosmology
        # Sugiyama (1995) shape parameter.
        gamma = c.omega_m * c.h * math.exp(
            -c.omega_b * (1.0 + math.sqrt(2.0 * c.h) / c.omega_m)
        )
        q = k / gamma
        with np.errstate(divide="ignore", invalid="ignore"):
            t = (
                np.log(1.0 + 2.34 * q)
                / (2.34 * q)
                * (
                    1.0
                    + 3.89 * q
                    + (16.1 * q) ** 2
                    + (5.46 * q) ** 3
                    + (6.71 * q) ** 4
                )
                ** -0.25
            )
        return np.where(q > 0, t, 1.0)

    # ------------------------------------------------------------------
    # Eisenstein & Hu 1998 (ApJ 496, 605) machinery
    # ------------------------------------------------------------------
    def _setup_eh(self) -> None:
        c = self.cosmology
        h = c.h
        self._om0h2 = c.omega_m * h * h
        self._ob0h2 = c.omega_b * h * h
        self._f_baryon = c.omega_b / c.omega_m if c.omega_m > 0 else 0.0
        theta = c.t_cmb / 2.7
        self._theta2 = theta * theta

        om0h2, ob0h2, th2 = self._om0h2, self._ob0h2, self._theta2

        # redshift of matter-radiation equality and the sound horizon
        self._z_eq = 2.50e4 * om0h2 / th2**2
        self._k_eq = 7.46e-2 * om0h2 / th2  # 1/Mpc (no h)

        b1 = 0.313 * om0h2**-0.419 * (1.0 + 0.607 * om0h2**0.674)
        b2 = 0.238 * om0h2**0.223
        self._z_drag = (
            1291.0
            * om0h2**0.251
            / (1.0 + 0.659 * om0h2**0.828)
            * (1.0 + b1 * ob0h2**b2)
        )

        def r_of_z(z):
            return 31.5 * ob0h2 / th2**2 * (1.0e3 / z)

        self._r_drag = r_of_z(self._z_drag)
        self._r_eq = r_of_z(self._z_eq)
        self._sound_horizon = (
            2.0
            / (3.0 * self._k_eq)
            * math.sqrt(6.0 / self._r_eq)
            * math.log(
                (math.sqrt(1.0 + self._r_drag) + math.sqrt(self._r_drag + self._r_eq))
                / (1.0 + math.sqrt(self._r_eq))
            )
        )
        self._k_silk = (
            1.6 * ob0h2**0.52 * om0h2**0.73 * (1.0 + (10.4 * om0h2) ** -0.95)
        )

        # CDM suppression
        a1 = (46.9 * om0h2) ** 0.670 * (1.0 + (32.1 * om0h2) ** -0.532)
        a2 = (12.0 * om0h2) ** 0.424 * (1.0 + (45.0 * om0h2) ** -0.582)
        fb, fc = self._f_baryon, 1.0 - self._f_baryon
        self._alpha_c = a1**-fb * a2 ** (-(fb**3))
        bb1 = 0.944 / (1.0 + (458.0 * om0h2) ** -0.708)
        bb2 = (0.395 * om0h2) ** -0.0266
        self._beta_c = 1.0 / (1.0 + bb1 * (fc**bb2 - 1.0))

        # baryon envelope
        y = (1.0 + self._z_eq) / (1.0 + self._z_drag)
        gy = y * (
            -6.0 * math.sqrt(1.0 + y)
            + (2.0 + 3.0 * y)
            * math.log((math.sqrt(1.0 + y) + 1.0) / (math.sqrt(1.0 + y) - 1.0))
        )
        self._alpha_b = 2.07 * self._k_eq * self._sound_horizon * (1.0 + self._r_drag) ** -0.75 * gy
        self._beta_b = (
            0.5
            + fb
            + (3.0 - 2.0 * fb) * math.sqrt((17.2 * om0h2) ** 2 + 1.0)
        )
        self._beta_node = 8.41 * om0h2**0.435

        # no-wiggle fit parameters (EH98 section 4.2)
        self._alpha_gamma = (
            1.0
            - 0.328 * math.log(431.0 * om0h2) * fb
            + 0.38 * math.log(22.3 * om0h2) * fb**2
        )
        self._s_approx = (
            44.5
            * math.log(9.83 / om0h2)
            / math.sqrt(1.0 + 10.0 * ob0h2**0.75)
        )

    @staticmethod
    def _t0_tilde(q: np.ndarray, alpha_c: float, beta_c: float) -> np.ndarray:
        e = math.e
        c_coef = 14.2 / alpha_c + 386.0 / (1.0 + 69.9 * q**1.08)
        ln_arg = np.log(e + 1.8 * beta_c * q)
        return ln_arg / (ln_arg + c_coef * q * q)

    def _eh_full(self, k: np.ndarray) -> np.ndarray:
        """Full EH98 transfer function with BAO; k in h/Mpc."""
        c = self.cosmology
        k_mpc = k * c.h  # EH formulas use k in 1/Mpc
        q = k_mpc / (13.41 * self._k_eq)
        s = self._sound_horizon
        ks = k_mpc * s

        # CDM part
        f = 1.0 / (1.0 + (ks / 5.4) ** 4)
        t_c = f * self._t0_tilde(q, 1.0, self._beta_c) + (1.0 - f) * self._t0_tilde(
            q, self._alpha_c, self._beta_c
        )

        # Baryon part
        with np.errstate(divide="ignore", invalid="ignore"):
            s_tilde = s / (1.0 + (self._beta_node / np.maximum(ks, 1e-30)) ** 3) ** (
                1.0 / 3.0
            )
            x = k_mpc * s_tilde
            j0 = np.where(x > 1e-8, np.sin(x) / np.maximum(x, 1e-30), 1.0 - x * x / 6.0)
            t_b = (
                self._t0_tilde(q, 1.0, 1.0) / (1.0 + (ks / 5.2) ** 2)
                + self._alpha_b
                / (1.0 + (self._beta_b / np.maximum(ks, 1e-30)) ** 3)
                * np.exp(-((k_mpc / self._k_silk) ** 1.4))
            ) * j0
        t_b = np.where(ks > 0, t_b, 1.0)

        fb, fc = self._f_baryon, 1.0 - self._f_baryon
        t = fb * t_b + fc * t_c
        return np.where(k_mpc > 0, t, 1.0)

    def _eh_nowiggle(self, k: np.ndarray) -> np.ndarray:
        """EH98 zero-baryon ('no-wiggle') shape; k in h/Mpc."""
        c = self.cosmology
        k_mpc = k * c.h
        gamma_eff = self._om0h2 / c.h * (
            self._alpha_gamma
            + (1.0 - self._alpha_gamma) / (1.0 + (0.43 * k_mpc * self._s_approx) ** 4)
        )
        q = k_mpc * self._theta2 / (gamma_eff * c.h)
        l0 = np.log(2.0 * math.e + 1.8 * q)
        c0 = 14.2 + 731.0 / (1.0 + 62.5 * q)
        t = l0 / (l0 + c0 * q * q)
        return np.where(k_mpc > 0, t, 1.0)


@dataclass
class LinearPower:
    """Sigma8-normalized linear matter power spectrum.

    ``P(k, a) = A k^{n_s} T^2(k) D^2(a)`` with k in h/Mpc and P in
    (Mpc/h)^3; ``A`` is fixed so that :meth:`sigma_r` (8) equals the
    cosmology's ``sigma8`` at a=1.

    Examples
    --------
    >>> from repro.cosmology import WMAP7
    >>> p = LinearPower(WMAP7)
    >>> abs(p.sigma_r(8.0) - WMAP7.sigma8) < 1e-3
    True
    """

    cosmology: Cosmology
    transfer: str = "eisenstein_hu"

    def __post_init__(self) -> None:
        self._tf = TransferFunction(self.cosmology, self.transfer)
        self._norm = 1.0
        self._norm = (self.cosmology.sigma8 / self.sigma_r(8.0)) ** 2

    # ------------------------------------------------------------------
    def __call__(self, k, a: float = 1.0):
        """P(k, a) in (Mpc/h)^3, k in h/Mpc (scalar or array)."""
        k = np.asarray(k, dtype=np.float64)
        d = self.cosmology.growth_factor(a) if a != 1.0 else 1.0
        t = self._tf(k)
        with np.errstate(divide="ignore"):
            p = self._norm * k**self.cosmology.n_s * t * t * d * d
        return np.where(k > 0, p, 0.0)

    def dimensionless(self, k, a: float = 1.0):
        """Dimensionless power ``Delta^2(k) = k^3 P(k) / (2 pi^2)``."""
        k = np.asarray(k, dtype=np.float64)
        return k**3 * self(k, a) / (2.0 * math.pi**2)

    # ------------------------------------------------------------------
    def sigma_r(self, r: float, a: float = 1.0) -> float:
        """RMS linear fluctuation in a top-hat sphere of radius ``r`` Mpc/h."""
        if r <= 0:
            raise ValueError(f"radius must be positive: {r}")

        def integrand(lnk):
            k = math.exp(lnk)
            x = k * r
            if x < 1e-4:
                w = 1.0 - x * x / 10.0
            else:
                w = 3.0 * (math.sin(x) - x * math.cos(x)) / x**3
            return float(self(k, a)) * (k * w) ** 2 * k / (2.0 * math.pi**2)

        lo, hi = math.log(1e-5), math.log(1e3 / r)
        val, _ = quad(integrand, lo, hi, limit=400)
        return math.sqrt(val)

    def sigma_m(self, mass: float, a: float = 1.0) -> float:
        """RMS fluctuation for the Lagrangian radius of ``mass`` (Msun/h)."""
        rho_m = self.cosmology.rho_mean_matter0()
        r = (3.0 * mass / (4.0 * math.pi * rho_m)) ** (1.0 / 3.0)
        return self.sigma_r(r, a)

    # ------------------------------------------------------------------
    def table(self, kmin: float = 1e-4, kmax: float = 1e2, n: int = 512):
        """Log-spaced (k, P) table, convenient for interpolation and IC setup."""
        k = np.logspace(math.log10(kmin), math.log10(kmax), n)
        return k, self(k)
