"""Multiple RCB trees per rank: the paper's load-balancing future work.

Section VI: "we will improve (nodal) load balancing by using multiple
trees at each rank, enabling an improved threading of the tree-build."
One monolithic tree serializes its top levels; several independent trees
over spatial sub-blocks build concurrently and bound the largest
single-thread work item.

:class:`MultiTreeShortRange` splits the rank-local particle cloud into
``n_trees`` blocks by recursive coordinate bisection (the same
center-of-mass rule as the tree itself, so blocks carry near-equal
*particle counts* even for clustered data), builds one RCB tree per
block, and evaluates each leaf against the union of the interaction
lists gathered from *all* trees.  The result is identical to the
single-tree solver — asserted by tests — while
:meth:`last_balance_report` quantifies the threading win: max/mean
block size (build balance) and per-block kernel work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.shortrange.batch import (
    DEFAULT_CHUNK_PAIRS,
    BatchedPairEngine,
    InteractionBatch,
    batch_box_query,
)
from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.rcb_tree import RCBTree, ranges_to_indices
from repro.shortrange.solvers import ShortRangeSolver

__all__ = ["MultiTreeShortRange", "rcb_blocks"]


def rcb_blocks(
    positions: np.ndarray,
    masses: np.ndarray,
    n_blocks: int,
) -> list[np.ndarray]:
    """Partition indices into ``n_blocks`` near-equal-count spatial blocks.

    Recursive coordinate bisection at the *median* perpendicular to the
    longest side — median rather than center-of-mass so every block gets
    an equal particle share (the load-balance objective), unlike the
    force tree where geometric splits aid accuracy.
    """
    if n_blocks < 1:
        raise ValueError(f"n_blocks must be >= 1: {n_blocks}")
    if n_blocks & (n_blocks - 1):
        raise ValueError(f"n_blocks must be a power of two: {n_blocks}")
    idx = np.arange(positions.shape[0], dtype=np.int64)
    blocks = [idx]
    while len(blocks) < n_blocks:
        nxt: list[np.ndarray] = []
        for b in blocks:
            if b.size <= 1:
                nxt.append(b)
                nxt.append(np.empty(0, dtype=np.int64))
                continue
            pts = positions[b]
            axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
            order = np.argsort(pts[:, axis], kind="stable")
            half = b.size // 2
            nxt.append(b[order[:half]])
            nxt.append(b[order[half:]])
        blocks = nxt
    return blocks


@dataclass
class _BlockReport:
    n_particles: int
    n_leaves: int
    interactions: int


class MultiTreeShortRange(ShortRangeSolver):
    """Short-range solver with ``n_trees`` independent RCB trees.

    Parameters
    ----------
    kernel:
        Fitted short-range kernel.
    leaf_size:
        Fat-leaf capacity per tree.
    n_trees:
        Number of trees (power of two; 1 reduces to the single-tree
        path).
    naive:
        ``False`` (default) concatenates every tree into one combined
        index space, packs all cross-tree interaction lists into a
        single :class:`~repro.shortrange.batch.InteractionBatch`, and
        evaluates it with the batched engine.  ``True`` keeps the
        original per-leaf, per-source-tree loop for equivalence tests.
    chunk_pairs:
        Pair-block size of the batched engine.
    """

    def __init__(
        self,
        kernel: ShortRangeKernel,
        leaf_size: int = 128,
        n_trees: int = 4,
        naive: bool = False,
        chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
    ) -> None:
        super().__init__(kernel)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1: {leaf_size}")
        if n_trees < 1 or (n_trees & (n_trees - 1)):
            raise ValueError(
                f"n_trees must be a positive power of two: {n_trees}"
            )
        self.leaf_size = int(leaf_size)
        self.n_trees = int(n_trees)
        self.naive = bool(naive)
        self.engine = BatchedPairEngine(kernel, chunk_pairs=chunk_pairs)
        self._report: list[_BlockReport] = []

    # ------------------------------------------------------------------
    def accelerations_cloud(self, positions, masses, n_targets):
        blocks = rcb_blocks(positions, masses, self.n_trees)
        trees: list[RCBTree | None] = []
        for b in blocks:
            trees.append(
                RCBTree(positions[b], masses[b], leaf_size=self.leaf_size)
                if b.size
                else None
            )
        if not self.naive:
            return self._accelerations_batched(
                positions, blocks, trees, n_targets
            )
        acc = np.zeros((positions.shape[0], 3), dtype=np.float64)
        self._report = []
        rcut = self.kernel.rcut
        for b, tree in zip(blocks, trees):
            if tree is None:
                self._report.append(_BlockReport(0, 0, 0))
                continue
            before = self.kernel.interaction_count
            n_leaves = 0
            for leaf in tree.leaves():
                node = tree.node(leaf)
                seg = slice(node.start, node.start + node.count)
                orig = b[tree.perm[seg]]
                if not np.any(orig < n_targets):
                    continue
                n_leaves += 1
                # gather the shared interaction list across ALL trees:
                # any block can contribute sources within rcut of this
                # leaf's bounding box
                contrib = np.zeros((node.count, 3))
                for b2, t2 in zip(blocks, trees):
                    if t2 is None:
                        continue
                    ilist = self._box_query(t2, node.lo, node.hi, rcut)
                    if ilist.size == 0:
                        continue
                    contrib += self.kernel.accumulate(
                        tree.positions[seg],
                        t2.positions[ilist],
                        t2.masses[ilist],
                    )
                acc[orig] = contrib
            self._report.append(
                _BlockReport(
                    n_particles=int(b.size),
                    n_leaves=n_leaves,
                    interactions=int(
                        self.kernel.interaction_count - before
                    ),
                )
            )
        return acc[:n_targets]

    def _accelerations_batched(self, positions, blocks, trees, n_targets):
        """Pack all trees' cross-tree lists into one batch and evaluate.

        Every tree's particle arrays are concatenated into one combined
        index space (per-tree base offsets); each query leaf's neighbor
        list is the union of its :func:`batch_box_query` hits over all
        trees, so the batch encodes exactly the per-source-tree sums of
        the naive loop — same pairs, same ``pp.interactions``.
        """
        live = [
            (bi, b, t)
            for bi, (b, t) in enumerate(zip(blocks, trees))
            if t is not None
        ]
        acc = np.zeros((positions.shape[0], 3), dtype=np.float64)
        rcut = self.kernel.rcut
        self._report = [_BlockReport(0, 0, 0) for _ in blocks]
        if not live:
            return acc[:n_targets]
        base = np.cumsum([0] + [t.n_particles for _, _, t in live])
        cat_pos = np.concatenate([t.positions for _, _, t in live], axis=0)
        cat_m = np.concatenate([t.masses for _, _, t in live])
        # combined-index -> caller-index map for the final scatter
        cat_orig = np.concatenate([b[t.perm] for _, b, t in live])

        # query leaves (those holding at least one real target), per tree
        q_lo: list[np.ndarray] = []
        q_hi: list[np.ndarray] = []
        t_start: list[np.ndarray] = []
        t_count: list[np.ndarray] = []
        q_block: list[np.ndarray] = []
        for ti, (_, b, t) in enumerate(live):
            leaf = t.leaf_ids()
            real = b[t.perm] < n_targets
            if not real.all():
                has_target = np.logical_or.reduceat(
                    real, t.node_start[leaf]
                )
                leaf = leaf[has_target]
            if leaf.size == 0:
                continue
            q_lo.append(t.node_lo[leaf])
            q_hi.append(t.node_hi[leaf])
            t_start.append(base[ti] + t.node_start[leaf])
            t_count.append(t.node_count[leaf])
            q_block.append(np.full(leaf.size, ti, dtype=np.int64))
        if not q_lo:
            return acc[:n_targets]
        qlo = np.concatenate(q_lo, axis=0) - rcut
        qhi = np.concatenate(q_hi, axis=0) + rcut
        tstarts = np.concatenate(t_start)
        tcounts = np.concatenate(t_count)
        qblock = np.concatenate(q_block)
        nq = tstarts.size

        # one multi-query walk per source tree; concatenating in tree
        # order then stable-sorting by query reproduces the naive loop's
        # per-source-tree neighbor ordering within each group
        all_q: list[np.ndarray] = []
        all_start: list[np.ndarray] = []
        all_count: list[np.ndarray] = []
        for ti, (_, _, t) in enumerate(live):
            hq, hn = batch_box_query(t, qlo, qhi)
            if hq.size == 0:
                continue
            all_q.append(hq)
            all_start.append(base[ti] + t.node_start[hn])
            all_count.append(t.node_count[hn])
        targets = ranges_to_indices(tstarts, tcounts)
        target_offsets = np.zeros(nq + 1, dtype=np.int64)
        np.cumsum(tcounts, out=target_offsets[1:])
        if all_q:
            hq = np.concatenate(all_q)
            hstart = np.concatenate(all_start)
            hcount = np.concatenate(all_count)
            order = np.argsort(hq, kind="stable")
            neighbor_indices = ranges_to_indices(
                hstart[order], hcount[order]
            )
            per_query = np.bincount(
                hq, weights=hcount.astype(np.float64), minlength=nq
            ).astype(np.int64)
        else:
            neighbor_indices = np.empty(0, dtype=np.int64)
            per_query = np.zeros(nq, dtype=np.int64)
        neighbor_offsets = np.zeros(nq + 1, dtype=np.int64)
        np.cumsum(per_query, out=neighbor_offsets[1:])
        batch = InteractionBatch(
            targets, target_offsets, neighbor_indices, neighbor_offsets
        )
        acc_cat = self.engine.evaluate(batch, cat_pos, cat_m)
        acc[cat_orig] = acc_cat

        # per-block balance metrics, identical in meaning to the naive path
        pair_counts = batch.group_pair_counts()
        for ti, (bi, b, t) in enumerate(live):
            mine = qblock == ti
            self._report[bi] = _BlockReport(
                n_particles=int(b.size),
                n_leaves=int(np.count_nonzero(mine)),
                interactions=int(pair_counts[mine].sum()),
            )
        return acc[:n_targets]

    @staticmethod
    def _box_query(
        tree: RCBTree, lo: np.ndarray, hi: np.ndarray, rcut: float
    ) -> np.ndarray:
        """Tree-order indices of particles within rcut of box [lo, hi]."""
        qlo, qhi = lo - rcut, hi + rcut
        out: list[np.ndarray] = []
        stack = [0] if tree.n_nodes else []
        while stack:
            i = stack.pop()
            node = tree.node(i)
            if np.any(node.lo > qhi) or np.any(node.hi < qlo):
                continue
            if node.is_leaf:
                out.append(
                    np.arange(
                        node.start, node.start + node.count, dtype=np.int64
                    )
                )
            else:
                stack.append(node.left)
                stack.append(node.right)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    # ------------------------------------------------------------------
    def last_balance_report(self) -> dict:
        """Load-balance metrics of the last evaluation.

        ``build_imbalance`` is max/mean block particle count: the factor
        by which the slowest tree build exceeds the average — the
        quantity multiple trees exist to shrink.
        """
        if not self._report:
            raise RuntimeError("no evaluation has run yet")
        counts = np.array([r.n_particles for r in self._report], dtype=float)
        work = np.array([r.interactions for r in self._report], dtype=float)
        mean_c = counts.mean() if counts.size else 0.0
        mean_w = work.mean() if work.size else 0.0
        return {
            "blocks": len(self._report),
            "particles_per_block": counts.tolist(),
            "build_imbalance": float(counts.max() / mean_c) if mean_c else 0.0,
            "work_imbalance": float(work.max() / mean_w) if mean_w else 0.0,
        }
