"""The vectorized NumPy reference backend.

This is the batched-engine PR's tiled evaluation, moved behind the
backend seam: fixed-size (targets x sources) tiles bound the temporary
footprint, out-of-cutoff pairs are compressed away before the expensive
kernel math, and per-target accumulation goes through ``np.bincount``.
Every other backend is validated against this one — bitwise in float64
for the numba backend, tolerance-pinned in float32.

The implementation is deliberately allocation-free in steady state: all
tile temporaries live in the engine's grow-only
:class:`~repro.shortrange.batch.Workspace`, which the engine passes in.
"""

from __future__ import annotations

import numpy as np

from repro.shortrange.backends import KernelBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(KernelBackend):
    """Always-available interpreter-vectorized reference backend."""

    name = "numpy"

    # ------------------------------------------------------------------
    def f_sr_pairs(self, s_cells, coeffs, eps, out, scratch):
        dt = s_cells.dtype.type
        np.add(s_cells, eps, out=scratch)  # x = s + eps
        np.sqrt(scratch, out=out)
        out *= scratch  # x^{3/2}
        np.divide(dt(1.0), out, out=out)  # Newtonian branch
        scratch.fill(coeffs[-1])
        for c in coeffs[-2::-1]:
            scratch *= s_cells
            scratch += c
        out -= scratch
        return out

    # ------------------------------------------------------------------
    def pair_accumulate(
        self,
        targets,
        target_offsets,
        neighbor_indices,
        neighbor_offsets,
        px,
        py,
        pz,
        msc,
        coeffs,
        eps,
        rc2_cells,
        inv_sp2,
        chunk_pairs,
        acc,
        workspace,
    ):
        dt = px.dtype
        ws = workspace
        to = target_offsets
        no = neighbor_offsets
        tcounts = np.diff(to)
        ncounts = np.diff(no)
        inside_pairs = 0
        for g in range(to.size - 1):
            nt, ns = int(tcounts[g]), int(ncounts[g])
            if nt == 0 or ns == 0:
                continue
            tidx = targets[to[g] : to[g + 1]]
            nidx = neighbor_indices[no[g] : no[g + 1]]
            tx = ws.get("tx", nt, dt)
            ty = ws.get("ty", nt, dt)
            tz = ws.get("tz", nt, dt)
            np.take(px, tidx, out=tx)
            np.take(py, tidx, out=ty)
            np.take(pz, tidx, out=tz)
            # group accumulator in the kernel dtype: the f32 path stays
            # f32 end to end (bincount's float64 partials are explicitly
            # folded back down — the only remaining interior upcast)
            gacc = ws.get("gacc", nt * 3, dt).reshape(nt, 3)
            gacc.fill(0.0)
            cs = min(ns, chunk_pairs)
            ct = min(nt, max(1, chunk_pairs // cs))
            for s0 in range(0, ns, cs):
                s1 = min(s0 + cs, ns)
                csz = s1 - s0
                src = nidx[s0:s1]
                sx = ws.get("sx", csz, dt)
                sy = ws.get("sy", csz, dt)
                sz = ws.get("sz", csz, dt)
                sm = ws.get("sm", csz, dt)
                np.take(px, src, out=sx)
                np.take(py, src, out=sy)
                np.take(pz, src, out=sz)
                np.take(msc, src, out=sm)
                for t0 in range(0, nt, ct):
                    t1 = min(t0 + ct, nt)
                    inside_pairs += self._tile(
                        ws,
                        tx[t0:t1], ty[t0:t1], tz[t0:t1],
                        sx, sy, sz, sm,
                        coeffs, eps, inv_sp2, rc2_cells,
                        gacc[t0:t1],
                    )
            acc[tidx] += gacc
        return inside_pairs

    def _tile(
        self, ws, tx, ty, tz, sx, sy, sz, sm,
        coeffs, eps, inv_sp2, rc2_cells, gacc,
    ) -> int:
        """One (targets x sources) tile: separations, compress, kernel,
        scatter.  Returns the number of in-cutoff pairs evaluated."""
        dt = tx.dtype
        ctz, csz = tx.shape[0], sx.shape[0]
        npair = ctz * csz
        dx = ws.get("dx", npair, dt).reshape(ctz, csz)
        dy = ws.get("dy", npair, dt).reshape(ctz, csz)
        dz = ws.get("dz", npair, dt).reshape(ctz, csz)
        s2 = ws.get("s2", npair, dt).reshape(ctz, csz)
        tmp = ws.get("tmp", npair, dt).reshape(ctz, csz)
        np.subtract(tx[:, None], sx[None, :], out=dx)
        np.subtract(ty[:, None], sy[None, :], out=dy)
        np.subtract(tz[:, None], sz[None, :], out=dz)
        np.multiply(dx, dx, out=s2)
        np.multiply(dy, dy, out=tmp)
        s2 += tmp
        np.multiply(dz, dz, out=tmp)
        s2 += tmp
        s2 *= inv_sp2  # squared separations in cell units
        inside = ws.get("inside", npair, np.bool_).reshape(ctz, csz)
        mask2 = ws.get("mask2", npair, np.bool_).reshape(ctz, csz)
        np.greater(s2, 0.0, out=inside)
        np.less(s2, rc2_cells, out=mask2)
        inside &= mask2
        # compress: the expensive kernel math only touches in-cutoff pairs
        idx = np.flatnonzero(inside.ravel())
        k = idx.size
        if k == 0:
            return 0
        sc = ws.get("sc", k, dt)
        np.take(s2.ravel(), idx, out=sc)
        f = ws.get("f", k, dt)
        scratch = ws.get("scratch", k, dt)
        self.f_sr_pairs(sc, coeffs, eps, f, scratch)
        row = ws.get("row", k, np.int64)
        col = ws.get("col", k, np.int64)
        np.floor_divide(idx, csz, out=row)
        np.multiply(row, csz, out=col)
        np.subtract(idx, col, out=col)
        np.take(sm, col, out=scratch)
        f *= scratch  # coefficient * m_j / spacing^3
        grab = ws.get("grab", k, dt)
        for comp, d in enumerate((dx, dy, dz)):
            np.take(d.ravel(), idx, out=grab)
            grab *= f
            gacc[:, comp] -= np.bincount(
                row, weights=grab, minlength=ctz
            ).astype(dt, copy=False)
        return k

    # ------------------------------------------------------------------
    def cic_deposit(self, flat, corner_weights, values, ncells):
        dt = corner_weights.dtype
        grid = np.zeros(ncells, dtype=dt)
        for c in range(8):
            grid += np.bincount(
                flat[c],
                weights=values * corner_weights[c],
                minlength=ncells,
            ).astype(dt, copy=False)
        return grid

    def cic_gather(self, grid_flat, flat, corner_weights):
        out = np.zeros(flat.shape[1], dtype=corner_weights.dtype)
        for c in range(8):
            out += grid_flat[flat[c]] * corner_weights[c]
        return out
