"""Pluggable short-range kernel backends.

The HACC 2014 follow-up paper describes the framework's central
architectural bet: *one* long-range spectral solver shared everywhere,
plus *swappable, per-architecture short-range kernels* — QPX intrinsics
on the BG/Q, CUDA on Titan, OpenCL on Roadrunner — all implementing the
same narrow force-kernel contract.  This package is that seam for the
reproduction.  A backend supplies four primitives:

``f_sr_pairs``
    The 26-instruction-kernel analogue: the short-range force
    coefficient ``(s + eps)^{-3/2} - poly_5(s)`` for a pre-compressed
    array of in-cutoff squared separations.
``pair_accumulate``
    The full CSR interaction-batch evaluation — separations, cutoff
    test, coefficient, per-target accumulation — the hot loop of the
    short-range phase.
``cic_deposit`` / ``cic_gather``
    The particle-mesh scatter/gather pair over precomputed CIC corner
    indices and trilinear weights (four passes per PM half-kick).

Three implementations ride the seam:

* ``numpy`` — the vectorized reference (always available); exactly the
  tiled, workspace-reusing evaluation of the batched-engine PR.
* ``numba`` — ``@njit(parallel=True)`` compiled loops, lazily compiled
  on first use.  The float32 variant compiles with ``fastmath=True``
  (the paper's mixed-precision kernel); the float64 variant compiles
  strict-IEEE so its results are **bitwise identical** to the numpy
  reference.  Automatically unavailable when numba is not importable.
* ``cupy`` — the same contract on a CUDA device, available only when
  cupy imports *and* sees a GPU.

Selection goes through :func:`resolve_backend`; ``"auto"`` picks the
fastest available CPU backend (numba, else numpy), never silently a
GPU.  Unavailable explicit requests raise :class:`BackendUnavailable`
instead of degrading quietly.
"""

from __future__ import annotations

import importlib.util
from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "KernelBackend",
    "BackendUnavailable",
    "available_backends",
    "backend_names",
    "get_backend",
    "resolve_backend",
]

#: registry order is the ``auto`` preference order (CPU-only)
_BACKEND_NAMES = ("numpy", "numba", "cupy")
_AUTO_ORDER = ("numba", "numpy")


class BackendUnavailable(RuntimeError):
    """An explicitly requested backend cannot run in this environment."""


class KernelBackend(ABC):
    """The stable kernel contract every backend implements.

    All array arguments arrive in the *kernel precision* (float32 or
    float64) chosen by the caller; a backend must neither upcast nor
    downcast — mixed precision is the caller's policy, not the
    backend's.  Scalars (``eps``, ``rc2_cells``, ``inv_sp2``) arrive as
    zero-dimensional scalars of the same dtype.
    """

    #: registry key; also what run manifests record
    name: str = "?"

    # ------------------------------------------------------------------
    @abstractmethod
    def f_sr_pairs(
        self,
        s_cells: np.ndarray,
        coeffs: np.ndarray,
        eps,
        out: np.ndarray,
        scratch: np.ndarray,
    ) -> np.ndarray:
        """Short-range coefficient for pre-compressed in-cutoff pairs.

        ``s_cells`` are squared separations in cell units, every entry
        already satisfying ``0 < s < rcut_cells^2``; ``coeffs`` is the
        grid-force polynomial (ascending order) in the kernel dtype.
        Writes ``(s+eps)^{-3/2} - poly(s)`` into ``out`` (same shape,
        kernel dtype), may clobber ``scratch``, returns ``out``.
        """

    @abstractmethod
    def pair_accumulate(
        self,
        targets: np.ndarray,
        target_offsets: np.ndarray,
        neighbor_indices: np.ndarray,
        neighbor_offsets: np.ndarray,
        px: np.ndarray,
        py: np.ndarray,
        pz: np.ndarray,
        msc: np.ndarray,
        coeffs: np.ndarray,
        eps,
        rc2_cells,
        inv_sp2,
        chunk_pairs: int,
        acc: np.ndarray,
        workspace,
    ) -> int:
        """Evaluate a CSR interaction batch into ``acc``; returns the
        number of in-cutoff pairs actually evaluated.

        ``(targets, target_offsets, neighbor_indices, neighbor_offsets)``
        are the :class:`~repro.shortrange.batch.InteractionBatch` arrays;
        ``px/py/pz`` the SOA coordinates, ``msc`` the masses already
        scaled by ``1/spacing^3`` — all in the kernel dtype.  ``acc`` is
        an ``(N, 3)`` kernel-dtype array accumulated in place with the
        attractive sign.  ``workspace`` is the engine's grow-only
        :class:`~repro.shortrange.batch.Workspace`; backends that do not
        tile through scratch buffers may ignore it.
        """

    @abstractmethod
    def cic_deposit(
        self,
        flat: np.ndarray,
        corner_weights: np.ndarray,
        values: np.ndarray,
        ncells: int,
    ) -> np.ndarray:
        """Scatter ``values`` onto a flattened grid of ``ncells`` points.

        ``flat`` is the ``(8, N)`` int64 array of flattened corner
        indices and ``corner_weights`` the matching ``(8, N)`` trilinear
        weights (kernel dtype).  Returns the ``(ncells,)`` grid in the
        ``corner_weights`` dtype.
        """

    @abstractmethod
    def cic_gather(
        self,
        grid_flat: np.ndarray,
        flat: np.ndarray,
        corner_weights: np.ndarray,
    ) -> np.ndarray:
        """Adjoint of :meth:`cic_deposit`: per-particle trilinear gather
        from a flattened grid.  Returns an ``(N,)`` array in the
        ``corner_weights`` dtype."""

    # ------------------------------------------------------------------
    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KernelBackend {self.name}>"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_INSTANCES: dict[str, KernelBackend] = {}


def backend_names() -> tuple[str, ...]:
    """All registered backend names, available or not."""
    return _BACKEND_NAMES


def _make(name: str) -> KernelBackend:
    """Import and construct a backend (may raise BackendUnavailable)."""
    if name == "numpy":
        from repro.shortrange.backends.numpy_backend import NumpyBackend

        return NumpyBackend()
    if name == "numba":
        from repro.shortrange.backends.numba_backend import NumbaBackend

        if not NumbaBackend.available():
            raise BackendUnavailable(
                "kernel backend 'numba' requested but numba is not "
                "importable in this environment"
            )
        return NumbaBackend()
    if name == "cupy":
        from repro.shortrange.backends.cupy_backend import CupyBackend

        if not CupyBackend.available():
            raise BackendUnavailable(
                "kernel backend 'cupy' requested but cupy (with a "
                "visible CUDA device) is not available"
            )
        return CupyBackend()
    raise ValueError(
        f"unknown kernel backend {name!r}; choose from "
        f"{('auto',) + _BACKEND_NAMES}"
    )


def get_backend(name: str) -> KernelBackend:
    """The backend registered as ``name`` (cached singletons).

    Raises :class:`BackendUnavailable` when the environment cannot run
    it, :class:`ValueError` for unknown names.
    """
    inst = _INSTANCES.get(name)
    if inst is None:
        inst = _make(name)
        _INSTANCES[name] = inst
    return inst


def available_backends() -> tuple[str, ...]:
    """Names of the backends that can actually run here, in registry
    order (``numpy`` is always first and always present)."""
    out = []
    for name in _BACKEND_NAMES:
        try:
            get_backend(name)
        except BackendUnavailable:
            continue
        out.append(name)
    return tuple(out)


def resolve_backend(choice) -> KernelBackend:
    """Resolve a user/config selection to a live backend instance.

    ``choice`` may be a :class:`KernelBackend` (returned as-is), one of
    the registered names, ``"auto"`` or ``None`` (both meaning "fastest
    available CPU backend": numba when importable, else numpy).
    Explicit names that cannot run raise :class:`BackendUnavailable` —
    a requested accelerator silently falling back to the interpreter is
    exactly the failure mode the seam exists to make loud.
    """
    if isinstance(choice, KernelBackend):
        return choice
    if choice is None or choice == "auto":
        for name in _AUTO_ORDER:
            # probe cheaply before importing: find_spec never executes
            # the package, so a missing numba costs ~nothing per call
            if name != "numpy" and importlib.util.find_spec(name) is None:
                continue
            try:
                return get_backend(name)
            except BackendUnavailable:
                continue
        return get_backend("numpy")
    if not isinstance(choice, str):
        raise TypeError(
            f"kernel backend must be a name or KernelBackend, got "
            f"{type(choice).__name__}"
        )
    return get_backend(choice)
