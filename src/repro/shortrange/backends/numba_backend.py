"""Numba-JIT kernel backend (compiled-speed short-range loops).

The loop bodies below are plain Python functions written in
nopython-compatible style; :func:`NumbaBackend` compiles them lazily on
first use with ``numba.njit(parallel=True)``.  Two variants exist per
function:

* **float64**: strict IEEE (``fastmath=False``) and arithmetic ordered
  exactly like the NumPy reference backend — per target, sources are
  accumulated in ascending neighbor-list order — so double-precision
  results are **bitwise identical** to the numpy backend whenever a
  group's neighbor list fits in one source chunk (always true at the
  default ``chunk_pairs``; the equivalence suite asserts it).
* **float32**: ``fastmath=True``, the paper's mixed-precision kernel —
  reassociation and FMA contraction are allowed, results are
  tolerance-pinned (1e-4) against float64 rather than bitwise.

Parallelism is over CSR *groups* (RCB leaves / P3M cells).  Groups
partition the target set, so concurrent group evaluations never write
the same accumulator row — race-free without atomics, and deterministic
because each target's sum is computed entirely by one thread in a fixed
order.

When numba is not importable the module still imports cleanly: the raw
``*_impl`` functions run as ordinary (slow) Python, which is how the
test suite pins their semantics against the NumPy reference even in
environments without numba, and :meth:`NumbaBackend.available` reports
``False`` so the registry auto-falls back to numpy.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from repro.shortrange.backends import KernelBackend

__all__ = ["NumbaBackend"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import prange
except ImportError:  # pure-Python fallback keeps the impls callable
    prange = range


# ----------------------------------------------------------------------
# loop bodies (nopython-compatible plain Python)
# ----------------------------------------------------------------------
def _f_sr_pairs_impl(s_cells, coeffs, eps, one, out):
    nc = coeffs.shape[0]
    for i in prange(s_cells.shape[0]):
        s = s_cells[i]
        x = s + eps
        t = np.sqrt(x)
        t = t * x
        f = one / t
        p = coeffs[nc - 1]
        for ci in range(nc - 2, -1, -1):
            p = p * s + coeffs[ci]
        out[i] = f - p
    return out


def _pair_accumulate_impl(
    targets, toff, nidx, noff, px, py, pz, msc,
    coeffs, eps, rc2, inv_sp2, one, acc,
):
    nc = coeffs.shape[0]
    zero = eps - eps  # typed 0 without a float64 literal
    inside_total = 0
    for g in prange(toff.shape[0] - 1):
        t0 = toff[g]
        t1 = toff[g + 1]
        s0 = noff[g]
        s1 = noff[g + 1]
        cnt = 0
        for ti in range(t0, t1):
            i = targets[ti]
            xi = px[i]
            yi = py[i]
            zi = pz[i]
            ax = zero
            ay = zero
            az = zero
            for si in range(s0, s1):
                j = nidx[si]
                dx = xi - px[j]
                dy = yi - py[j]
                dz = zi - pz[j]
                s2 = (dx * dx + dy * dy) + dz * dz
                s2 = s2 * inv_sp2
                if s2 > zero and s2 < rc2:
                    x = s2 + eps
                    t = np.sqrt(x)
                    t = t * x
                    f = one / t
                    p = coeffs[nc - 1]
                    for ci in range(nc - 2, -1, -1):
                        p = p * s2 + coeffs[ci]
                    f = f - p
                    fm = f * msc[j]
                    ax += dx * fm
                    ay += dy * fm
                    az += dz * fm
                    cnt += 1
            acc[i, 0] -= ax
            acc[i, 1] -= ay
            acc[i, 2] -= az
        inside_total += cnt
    return inside_total


def _cic_deposit_impl(flat, corner_weights, values, out):
    # serial scatter: corners of different particles collide on the
    # grid, so the particle loop must not be a prange
    for i in range(values.shape[0]):
        v = values[i]
        for c in range(8):
            out[flat[c, i]] += v * corner_weights[c, i]
    return out


def _cic_gather_impl(grid_flat, flat, corner_weights, out):
    for i in prange(flat.shape[1]):
        s = grid_flat[flat[0, i]] * corner_weights[0, i]
        for c in range(1, 8):
            s += grid_flat[flat[c, i]] * corner_weights[c, i]
        out[i] = s
    return out


# ----------------------------------------------------------------------
# lazy compilation
# ----------------------------------------------------------------------
#: fastmath flag -> dict of compiled functions (populated on first use)
_COMPILED: dict[bool, dict] = {}


def _compiled(fastmath: bool) -> dict:
    fns = _COMPILED.get(fastmath)
    if fns is None:
        import numba

        par = dict(parallel=True, fastmath=fastmath)
        fns = {
            "f_sr_pairs": numba.njit(**par)(_f_sr_pairs_impl),
            "pair_accumulate": numba.njit(**par)(_pair_accumulate_impl),
            "cic_deposit": numba.njit(fastmath=fastmath)(_cic_deposit_impl),
            "cic_gather": numba.njit(**par)(_cic_gather_impl),
        }
        _COMPILED[fastmath] = fns
    return fns


def _fastmath_for(dtype) -> bool:
    """float32 compiles with fastmath (the paper's mixed-precision
    kernel); float64 compiles strict so it stays bitwise equal to the
    NumPy reference."""
    return np.dtype(dtype) == np.float32


class NumbaBackend(KernelBackend):
    """``@njit(parallel=True)`` CPU backend, lazily compiled."""

    name = "numba"

    @classmethod
    def available(cls) -> bool:
        return importlib.util.find_spec("numba") is not None

    # ------------------------------------------------------------------
    def f_sr_pairs(self, s_cells, coeffs, eps, out, scratch):
        dt = s_cells.dtype.type
        fns = _compiled(_fastmath_for(s_cells.dtype))
        fns["f_sr_pairs"](s_cells, coeffs, dt(eps), dt(1.0), out)
        return out

    def pair_accumulate(
        self,
        targets,
        target_offsets,
        neighbor_indices,
        neighbor_offsets,
        px,
        py,
        pz,
        msc,
        coeffs,
        eps,
        rc2_cells,
        inv_sp2,
        chunk_pairs,
        acc,
        workspace,
    ):
        dt = px.dtype.type
        fns = _compiled(_fastmath_for(px.dtype))
        return int(
            fns["pair_accumulate"](
                targets,
                target_offsets,
                neighbor_indices,
                neighbor_offsets,
                px,
                py,
                pz,
                msc,
                coeffs,
                dt(eps),
                dt(rc2_cells),
                dt(inv_sp2),
                dt(1.0),
                acc,
            )
        )

    # ------------------------------------------------------------------
    def cic_deposit(self, flat, corner_weights, values, ncells):
        dt = corner_weights.dtype
        fns = _compiled(_fastmath_for(dt))
        out = np.zeros(ncells, dtype=dt)
        fns["cic_deposit"](flat, corner_weights, values, out)
        return out

    def cic_gather(self, grid_flat, flat, corner_weights):
        dt = corner_weights.dtype
        fns = _compiled(_fastmath_for(dt))
        out = np.empty(flat.shape[1], dtype=dt)
        fns["cic_gather"](grid_flat, flat, corner_weights, out)
        return out
