"""CuPy kernel backend (optional, CUDA-device only).

The GPU counterpart of the seam — HACC's Titan/Roadrunner short-range
kernels in spirit: the *same* CSR interaction batches the CPU backends
consume, evaluated with device-resident arrays.  The implementation is a
straightforward whole-group evaluation (one (targets x sources)
separation block per RCB leaf / P3M cell, masked and reduced on device)
— functional and exact rather than hand-tuned; it exists to prove the
contract is architecture-portable, exactly the HACC 2014 argument.

The backend reports :meth:`available` only when cupy imports *and* a
CUDA device is visible, so the registry never routes to a GPU that is
not there.  All transfers happen at the call boundary; results come
back as NumPy arrays in the caller's dtype.
"""

from __future__ import annotations

import numpy as np

from repro.shortrange.backends import KernelBackend

__all__ = ["CupyBackend"]


def _cupy():
    import cupy

    return cupy


class CupyBackend(KernelBackend):
    """CUDA backend riding the same seam (unoptimized reference)."""

    name = "cupy"

    @classmethod
    def available(cls) -> bool:
        try:  # pragma: no cover - requires CUDA hardware
            cp = _cupy()
            return int(cp.cuda.runtime.getDeviceCount()) > 0
        except Exception:
            return False

    # ------------------------------------------------------------------
    def _coeff(self, cp, s, coeffs_d, eps):
        dt = s.dtype.type
        x = s + dt(eps)
        newton = dt(1.0) / (cp.sqrt(x) * x)
        poly = cp.full_like(s, coeffs_d[-1])
        for ci in range(coeffs_d.shape[0] - 2, -1, -1):
            poly = poly * s + coeffs_d[ci]
        return newton - poly

    def f_sr_pairs(self, s_cells, coeffs, eps, out, scratch):
        cp = _cupy()
        s_d = cp.asarray(s_cells)
        res = self._coeff(cp, s_d, cp.asarray(coeffs), eps)
        out[...] = cp.asnumpy(res)
        return out

    # ------------------------------------------------------------------
    def pair_accumulate(
        self,
        targets,
        target_offsets,
        neighbor_indices,
        neighbor_offsets,
        px,
        py,
        pz,
        msc,
        coeffs,
        eps,
        rc2_cells,
        inv_sp2,
        chunk_pairs,
        acc,
        workspace,
    ):
        cp = _cupy()
        dt = px.dtype.type
        px_d, py_d, pz_d = cp.asarray(px), cp.asarray(py), cp.asarray(pz)
        msc_d = cp.asarray(msc)
        coeffs_d = cp.asarray(coeffs)
        acc_d = cp.zeros(acc.shape, dtype=acc.dtype)
        to = target_offsets
        no = neighbor_offsets
        inside_pairs = 0
        for g in range(to.size - 1):
            nt = int(to[g + 1] - to[g])
            ns = int(no[g + 1] - no[g])
            if nt == 0 or ns == 0:
                continue
            tidx = cp.asarray(targets[to[g] : to[g + 1]])
            nidx = cp.asarray(neighbor_indices[no[g] : no[g + 1]])
            dx = px_d[tidx][:, None] - px_d[nidx][None, :]
            dy = py_d[tidx][:, None] - py_d[nidx][None, :]
            dz = pz_d[tidx][:, None] - pz_d[nidx][None, :]
            s2 = ((dx * dx) + (dy * dy) + (dz * dz)) * dt(inv_sp2)
            inside = (s2 > 0) & (s2 < dt(rc2_cells))
            inside_pairs += int(inside.sum())
            f = cp.where(
                inside, self._coeff(cp, s2, coeffs_d, eps), dt(0.0)
            )
            f = f * msc_d[nidx][None, :]
            acc_d[tidx, 0] -= (f * dx).sum(axis=1)
            acc_d[tidx, 1] -= (f * dy).sum(axis=1)
            acc_d[tidx, 2] -= (f * dz).sum(axis=1)
        acc += cp.asnumpy(acc_d)
        return inside_pairs

    # ------------------------------------------------------------------
    def cic_deposit(self, flat, corner_weights, values, ncells):
        cp = _cupy()
        dt = corner_weights.dtype
        flat_d = cp.asarray(flat)
        cw_d = cp.asarray(corner_weights)
        v_d = cp.asarray(values)
        grid = cp.zeros(ncells, dtype=dt)
        for c in range(8):
            grid += cp.bincount(
                flat_d[c], weights=v_d * cw_d[c], minlength=ncells
            ).astype(dt, copy=False)
        return cp.asnumpy(grid)

    def cic_gather(self, grid_flat, flat, corner_weights):
        cp = _cupy()
        g_d = cp.asarray(grid_flat)
        flat_d = cp.asarray(flat)
        cw_d = cp.asarray(corner_weights)
        out = cp.zeros(flat.shape[1], dtype=corner_weights.dtype)
        for c in range(8):
            out += g_d[flat_d[c]] * cw_d[c]
        return cp.asnumpy(out)
