"""The vectorized short-range force kernel.

This is the Python analogue of the paper's QPX kernel (Section III):

.. math:: f_{SR}(s) = (s + \\epsilon)^{-3/2} - \\mathrm{poly}_5(s),
          \\qquad s = r \\cdot r,

evaluated for every (target, neighbor) pair of an interaction list at
once.  The BG/Q implementation folds the cutoff condition into the force
evaluation with ``fsel`` ternary operations instead of branching; the
NumPy translation of the same idea is a ``where``-free multiply by a 0/1
mask computed in-register, keeping the inner loop fully vectorized.

Mixed precision: the paper evaluates the short-range force in single
precision.  ``dtype=np.float32`` reproduces that; the default is float64
so accuracy tests are limited by the algorithm, not the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.instrument import Counter, get_registry
from repro.instrument.perfcount import PAIR_FLOPS, pair_bytes
from repro.shortrange.grid_force import GridForceFit

__all__ = ["ShortRangeKernel"]

#: pair-interaction flop count of the BG/Q kernel (Section III: 168 flops
#: per 26-instruction unrolled iteration covering 8 interactions); the
#: constant lives in ``repro.instrument.perfcount`` with the rest of the
#: analytic work model and is re-exported here for backward compatibility
FLOPS_PER_INTERACTION = PAIR_FLOPS


@dataclass
class ShortRangeKernel:
    """Evaluates short-range pair forces from a fitted grid force.

    Parameters
    ----------
    fit:
        Polynomial grid-force fit (cell units).
    spacing:
        Grid spacing (Mpc/h); converts the fit to physical units.
    eps_cells:
        Plummer-like short-distance cutoff ``epsilon`` in cells^2 — the
        force resolution knob (the paper's ``epsilon`` in Eq. 7).
    dtype:
        np.float64 (default) or np.float32 for the paper's mixed
        precision.
    mirror_counters:
        ``True`` (default) mirrors every interaction into the active
        instrument registry.  Executor *worker clones* set ``False``:
        ``Counter.add`` and the registry are not safe against concurrent
        writers, so workers keep a private tally and the driver charges
        the authoritative counters from the task results, in rank order.

    Notes
    -----
    In physical units, with ``s_c = s / spacing^2``:

    ``f_phys(s) = f_cells(s_c) / spacing^3`` since the Newtonian branch
    obeys ``s_c^{-3/2} = spacing^3 s^{-3/2}``.
    """

    fit: GridForceFit
    spacing: float
    eps_cells: float = 0.01
    dtype: type = np.float64
    mirror_counters: bool = True

    def __post_init__(self) -> None:
        if self.spacing <= 0:
            raise ValueError(f"spacing must be positive: {self.spacing}")
        if self.eps_cells < 0:
            raise ValueError(f"eps_cells must be >= 0: {self.eps_cells}")
        self.rcut = self.fit.rcut_cells * self.spacing
        self.rcut2 = self.rcut * self.rcut
        #: cumulative pair evaluations (perf model); an instrument Counter
        #: so the profiler and the simulation report the same number
        self._interactions = Counter("pp.interactions")

    # ------------------------------------------------------------------
    def f_sr_cells(self, s_cells) -> np.ndarray:
        """Short-range force coefficient at squared cell separations.

        The ``(s + eps)^{-3/2}`` branch uses the kernel's softening; the
        polynomial is subtracted inside the cutoff, and the whole
        expression is masked to zero outside — the ternary-select
        structure of the BG/Q kernel.
        """
        s = np.asarray(s_cells, dtype=self.dtype)
        inside = (s > 0.0) & (s < self.fit.rcut_cells**2)
        s_safe = np.where(inside, s, self.dtype(1.0))
        x = s_safe + self.dtype(self.eps_cells)
        # (s + eps)^{-3/2} as 1 / (x * sqrt(x)): sqrt + divide is several
        # times cheaper than np.power and stays in the input precision
        newton = self.dtype(1.0) / (x * np.sqrt(x))
        poly = np.zeros_like(s_safe)
        for c in reversed(self.fit.coefficients):
            poly = poly * s_safe + self.dtype(c)
        return np.where(inside, newton - poly, self.dtype(0.0))

    def pair_coeff_into(
        self,
        s_cells: np.ndarray,
        out: np.ndarray,
        scratch: np.ndarray,
    ) -> np.ndarray:
        """Allocation-free ``f_SR`` for pre-compressed in-cutoff pairs.

        ``s_cells`` must already satisfy ``0 < s < rcut_cells^2`` for
        every entry (the batch engine compresses with exactly that mask
        before calling); ``out`` and ``scratch`` are same-shape kernel-dtype
        workspaces.  ``s_cells`` is left untouched.  Returns ``out``.
        """
        dt = self.dtype
        np.add(s_cells, dt(self.eps_cells), out=scratch)  # x = s + eps
        np.sqrt(scratch, out=out)
        out *= scratch  # x^{3/2}
        np.divide(dt(1.0), out, out=out)  # Newtonian branch
        coeffs = self.fit.coefficients
        scratch.fill(dt(coeffs[-1]))
        for c in reversed(coeffs[:-1]):
            scratch *= s_cells
            scratch += dt(c)
        out -= scratch
        return out

    def f_sr(self, s_phys) -> np.ndarray:
        """Short-range coefficient at squared physical separations."""
        s_c = np.asarray(s_phys, dtype=self.dtype) / self.dtype(self.spacing**2)
        return self.f_sr_cells(s_c) / self.dtype(self.spacing**3)

    # ------------------------------------------------------------------
    def accumulate(
        self,
        targets: np.ndarray,
        sources: np.ndarray,
        source_masses: np.ndarray,
        *,
        chunk: int = 2048,
    ) -> np.ndarray:
        """Forces on ``targets`` from all ``sources`` (shared list).

        Parameters
        ----------
        targets:
            (Nt, 3) positions.
        sources:
            (Ns, 3) positions — the interaction list, shared by all
            targets exactly as every particle in an RCB leaf shares the
            leaf's neighbor list.
        source_masses:
            (Ns,) weights in units of the mean particle mass.
        chunk:
            Target-block size bounding the (chunk, Ns) temporary — the
            Python analogue of sizing the working set to cache.

        Returns
        -------
        (Nt, 3) acceleration contributions
        ``-sum_j m_j f_SR(s_ij) (x_i - x_j)`` (attractive sign).
        """
        t = np.asarray(targets, dtype=self.dtype)
        src = np.asarray(sources, dtype=self.dtype)
        m = np.asarray(source_masses, dtype=self.dtype)
        if t.ndim != 2 or t.shape[1] != 3:
            raise ValueError(f"targets must be (N, 3), got {t.shape}")
        if src.shape[0] != m.shape[0]:
            raise ValueError("sources and source_masses disagree in length")
        nt, nsrc = t.shape[0], src.shape[0]
        # accumulate in the kernel dtype: with dtype=np.float32 every
        # intermediate AND the output stay single precision (the paper's
        # mixed-precision contract; a dtype-propagation test pins this)
        out = np.zeros((nt, 3), dtype=self.dtype)
        if nsrc == 0 or nt == 0:
            return out
        reg = get_registry()
        with reg.span("pp.kernel"):
            inv_sp2 = self.dtype(1.0 / self.spacing**2)
            inv_sp3 = self.dtype(1.0 / self.spacing**3)
            for lo in range(0, nt, chunk):
                hi = min(lo + chunk, nt)
                d = t[lo:hi, None, :] - src[None, :, :]  # (c, Ns, 3)
                s_c = np.einsum("ijk,ijk->ij", d, d) * inv_sp2
                f = self.f_sr_cells(s_c) * (inv_sp3 * m[None, :])
                out[lo:hi] = -np.einsum("ij,ijk->ik", f, d)
        self.record_interactions(nt * nsrc)
        return out

    def record_interactions(self, n: int) -> None:
        """Charge ``n`` pair evaluations to the interaction/flop counters.

        Shared by the per-leaf path and the batched engine so both report
        the identical ``pp.interactions`` number for the same lists.
        """
        if not self.mirror_counters:
            self._interactions.value += n  # private tally, no registry
            return
        self._interactions.add(n)
        reg = get_registry()
        reg.count("pp.flops", FLOPS_PER_INTERACTION * n)
        # streamed traffic of the same pairs in the kernel's precision —
        # the f32 path charges half the bytes of f64 for identical flops
        reg.count("pp.bytes", pair_bytes(n, np.dtype(self.dtype).itemsize))

    # ------------------------------------------------------------------
    @property
    def interaction_count(self) -> int:
        """Cumulative pair evaluations (backed by the ``pp.interactions``
        instrument counter)."""
        return self._interactions.value

    def flops(self) -> float:
        """Flops represented by the interactions evaluated so far."""
        return FLOPS_PER_INTERACTION * self.interaction_count

    def reset_counters(self) -> None:
        self._interactions.reset()
