"""Short/close-range force solvers.

HACC obtains the short-range force by subtracting the (spectrally
filtered) grid force from the exact Newtonian force (Section II):

.. math:: f_{SR}(s) = (s + \\epsilon)^{-3/2} - \\mathrm{poly}_5(s),
          \\qquad s = r \\cdot r,

where the fifth-order polynomial is fitted to the numerically measured
grid force.  Two rank-local backends evaluate it, matching the paper's
architecture menu:

* :class:`TreePMShortRange` — the BG/Q path: recursive coordinate
  bisection (RCB) tree with fat leaves and shared per-leaf interaction
  lists ("PPTreePM");
* :class:`P3MShortRange` — the Roadrunner/GPU path: chaining-mesh direct
  particle-particle sums (P3M).

Both agree with direct :math:`O(N^2)` summation to machine precision on
small systems, and the two full-code backends agree on the nonlinear
power spectrum at the sub-percent level (the paper quotes 0.1%).
"""

from repro.shortrange.batch import (
    DEFAULT_CHUNK_PAIRS,
    BatchedPairEngine,
    InteractionBatch,
    Workspace,
    batch_box_query,
    pack_tree,
)
from repro.shortrange.grid_force import (
    GridForceFit,
    fit_grid_force,
    measure_grid_force,
    pair_force_normalization,
)
from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.rcb_tree import RCBTree, ranges_to_indices
from repro.shortrange.solvers import (
    DirectShortRange,
    P3MShortRange,
    TreePMShortRange,
    periodic_ghosts,
)
from repro.shortrange.multitree import MultiTreeShortRange, rcb_blocks

__all__ = [
    "GridForceFit",
    "measure_grid_force",
    "fit_grid_force",
    "pair_force_normalization",
    "ShortRangeKernel",
    "RCBTree",
    "TreePMShortRange",
    "P3MShortRange",
    "DirectShortRange",
    "periodic_ghosts",
    "MultiTreeShortRange",
    "rcb_blocks",
    "BatchedPairEngine",
    "InteractionBatch",
    "Workspace",
    "batch_box_query",
    "pack_tree",
    "ranges_to_indices",
    "DEFAULT_CHUNK_PAIRS",
]
