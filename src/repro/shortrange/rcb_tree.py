"""Recursive coordinate bisection (RCB) tree with fat leaves.

Two principles drive the design (Section III of the paper):

**Spatial locality** — the tree is built by recursively splitting the
particle set in two at the center-of-mass coordinate perpendicular to the
longest side of the bounding box; after the build the particle arrays are
*physically reordered* so every node owns a contiguous slice.  Force
evaluation then touches memory almost sequentially (the paper measures a
99.62% L1 hit rate).

**Walk minimization** — leaves are "fat" (tens to hundreds of particles).
The tree walk produces one shared interaction list per *leaf*, not per
particle, shifting work from slow pointer-chasing into the vectorized
force kernel.  Fat leaves also increase accuracy: more of the dominant
nearby force is summed exactly.

The partitioning step mirrors HACC's three-phase structure-of-arrays
scheme: phase 1 scans the split coordinate and records the permutation,
phases 2-3 apply it to the remaining arrays — in NumPy this is one fancy
index per array, preserving the "record swaps once, apply to all arrays"
economy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RCBTree", "RCBNode", "ranges_to_indices"]


def ranges_to_indices(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Expand ``[start, start + length)`` ranges into one flat index array.

    The vectorized replacement for ``concatenate([arange(a, b) ...])``:
    a single ``repeat`` + cumulative-offset correction, no Python loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    # element p of range k is starts[k] + (p - ends[k-1]); repeating the
    # per-range offset and adding a global arange yields every element
    offsets = np.repeat(starts - (ends - lengths), lengths)
    return offsets + np.arange(total, dtype=np.int64)


@dataclass(frozen=True)
class RCBNode:
    """View of one tree node (leaf or internal)."""

    index: int
    start: int
    count: int
    lo: np.ndarray
    hi: np.ndarray
    left: int
    right: int

    @property
    def is_leaf(self) -> bool:
        return self.left < 0


class RCBTree:
    """Rank-local RCB tree over a particle cloud (no periodicity).

    Parameters
    ----------
    positions:
        (N, 3) positions; copied and reordered internally.
    masses:
        Optional (N,) weights (default 1); reordered alongside.
    leaf_size:
        Maximum particles per leaf ("fat leaf" capacity; the paper uses
        tens to hundreds, with neighbor-list sizes of 500-2500).

    Attributes
    ----------
    positions, masses:
        Reordered SOA copies (contiguous per node).
    perm:
        ``positions[i] == original[perm[i]]`` — maps tree order back to
        the caller's order when scattering forces.

    Examples
    --------
    >>> import numpy as np
    >>> pts = np.random.default_rng(0).uniform(0, 1, (100, 3))
    >>> tree = RCBTree(pts, leaf_size=16)
    >>> sum(tree.node(l).count for l in tree.leaves()) == 100
    True
    """

    def __init__(
        self,
        positions: np.ndarray,
        masses: np.ndarray | None = None,
        leaf_size: int = 128,
    ) -> None:
        # preserve float32 inputs (mixed-precision runs); everything else
        # is promoted to float64 as before
        dt = np.asarray(positions).dtype
        if dt not in (np.float32, np.float64):
            dt = np.dtype(np.float64)
        pos = np.asarray(positions, dtype=dt)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError(f"positions must be (N, 3), got {pos.shape}")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        n = pos.shape[0]
        self.leaf_size = int(leaf_size)
        self.n_particles = n
        m = (
            np.ones(n, dtype=dt)
            if masses is None
            else np.asarray(masses, dtype=dt)
        )
        if m.shape != (n,):
            raise ValueError(f"masses shape {m.shape} != ({n},)")

        # phase-1 arrays: coordinates drive the partition; the permutation
        # is applied to every other array afterwards (phases 2-3).
        self.perm = np.arange(n, dtype=np.int64)
        self._x = pos[:, 0].copy()
        self._y = pos[:, 1].copy()
        self._z = pos[:, 2].copy()
        self._m = m.copy()

        self._start: list[int] = []
        self._count: list[int] = []
        self._lo: list[np.ndarray] = []
        self._hi: list[np.ndarray] = []
        self._left: list[int] = []
        self._right: list[int] = []
        if n:
            self._build(0, n)
        self.positions = np.stack([self._x, self._y, self._z], axis=1)
        self.masses = self._m
        # flat node arrays: the structure the vectorized (batched) walks
        # consume — one bounds test over a whole frontier instead of one
        # ``np.any`` call per visited node
        nn = len(self._start)
        self.node_start = np.asarray(self._start, dtype=np.int64)
        self.node_count = np.asarray(self._count, dtype=np.int64)
        self.node_left = np.asarray(self._left, dtype=np.int64)
        self.node_right = np.asarray(self._right, dtype=np.int64)
        if nn:
            self.node_lo = np.stack(self._lo, axis=0)
            self.node_hi = np.stack(self._hi, axis=0)
        else:
            self.node_lo = np.empty((0, 3))
            self.node_hi = np.empty((0, 3))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _bbox(self, start: int, end: int) -> tuple[np.ndarray, np.ndarray]:
        sl = slice(start, end)
        lo = np.array(
            [self._x[sl].min(), self._y[sl].min(), self._z[sl].min()]
        )
        hi = np.array(
            [self._x[sl].max(), self._y[sl].max(), self._z[sl].max()]
        )
        return lo, hi

    def _new_node(self, start, count, lo, hi) -> int:
        idx = len(self._start)
        self._start.append(start)
        self._count.append(count)
        self._lo.append(lo)
        self._hi.append(hi)
        self._left.append(-1)
        self._right.append(-1)
        return idx

    def _build(self, start: int, end: int) -> int:
        """Iterative (explicit stack) recursive bisection of [start, end)."""
        lo, hi = self._bbox(start, end)
        root = self._new_node(start, end - start, lo, hi)
        stack = [root]
        while stack:
            node = stack.pop()
            s = self._start[node]
            c = self._count[node]
            if c <= self.leaf_size:
                continue
            lo, hi = self._lo[node], self._hi[node]
            axis = int(np.argmax(hi - lo))
            coord = (self._x, self._y, self._z)[axis]
            seg = slice(s, s + c)
            # dividing line: center-of-mass coordinate along the longest side
            w = self._m[seg]
            split = float(np.average(coord[seg], weights=w))
            mask = coord[seg] <= split
            n_left = int(np.count_nonzero(mask))
            if n_left == 0 or n_left == c:
                # degenerate (all mass on one side): fall back to median
                order = np.argsort(coord[seg], kind="stable")
                n_left = c // 2
                local_perm = order
            else:
                # stable two-sided partition: lefts keep order, then rights
                idx = np.arange(c)
                local_perm = np.concatenate([idx[mask], idx[~mask]])
            self._apply_permutation(s, c, local_perm)
            l_lo, l_hi = self._bbox(s, s + n_left)
            r_lo, r_hi = self._bbox(s + n_left, s + c)
            left = self._new_node(s, n_left, l_lo, l_hi)
            right = self._new_node(s + n_left, c - n_left, r_lo, r_hi)
            self._left[node] = left
            self._right[node] = right
            stack.append(left)
            stack.append(right)
        return root

    def _apply_permutation(self, start: int, count: int, local_perm) -> None:
        """Three-phase SOA partition: one recorded swap list, many arrays."""
        seg = slice(start, start + count)
        for arr in (self._x, self._y, self._z, self._m, self.perm):
            arr[seg] = arr[seg][local_perm]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self._start)

    def node(self, index: int) -> RCBNode:
        return RCBNode(
            index=index,
            start=self._start[index],
            count=self._count[index],
            lo=self._lo[index],
            hi=self._hi[index],
            left=self._left[index],
            right=self._right[index],
        )

    def leaves(self) -> list[int]:
        """Indices of all leaf nodes."""
        return [i for i in range(self.n_nodes) if self._left[i] < 0]

    def leaf_ids(self) -> np.ndarray:
        """Leaf node indices ordered by their particle-segment start.

        Leaf segments partition ``[0, n_particles)``, so this ordering
        makes segment-wise reductions (``np.logical_or.reduceat`` over
        per-particle flags) well defined.
        """
        ids = np.flatnonzero(self.node_left < 0)
        return ids[np.argsort(self.node_start[ids], kind="stable")]

    def depth(self) -> int:
        """Maximum node depth (root = 0)."""
        if not self.n_nodes:
            return 0
        depth = {0: 0}
        best = 0
        for i in range(self.n_nodes):
            d = depth.get(i, 0)
            best = max(best, d)
            if self._left[i] >= 0:
                depth[self._left[i]] = d + 1
                depth[self._right[i]] = d + 1
        return best

    # ------------------------------------------------------------------
    def interaction_list(self, leaf: int, rcut: float) -> np.ndarray:
        """Particle indices (tree order) within ``rcut`` of a leaf's bbox.

        The walk prunes any node whose bounding box is farther than
        ``rcut`` from the leaf's box; surviving leaves contribute their
        whole contiguous slice.  All particles of the query leaf share
        the returned list (Section III).
        """
        if rcut <= 0:
            raise ValueError(f"rcut must be positive: {rcut}")
        if self._left[leaf] >= 0:
            raise ValueError(f"node {leaf} is not a leaf")
        hits = self.box_query_nodes(
            self.node_lo[leaf] - rcut, self.node_hi[leaf] + rcut
        )
        # hit leaves are disjoint segments; sorting by start and expanding
        # yields the ascending index list the old sort-and-merge produced
        hits = hits[np.argsort(self.node_start[hits], kind="stable")]
        return ranges_to_indices(self.node_start[hits], self.node_count[hits])

    def box_query_nodes(self, qlo: np.ndarray, qhi: np.ndarray) -> np.ndarray:
        """Leaf-node indices whose bounding boxes intersect ``[qlo, qhi]``.

        A breadth-first frontier walk: each iteration tests the whole
        frontier against the query box in a handful of vectorized ops,
        instead of one ``np.any`` pair per visited node.
        """
        if not self.n_nodes:
            return np.empty(0, dtype=np.int64)
        frontier = np.zeros(1, dtype=np.int64)
        found: list[np.ndarray] = []
        while frontier.size:
            alive = ~(
                (self.node_lo[frontier] > qhi).any(axis=1)
                | (self.node_hi[frontier] < qlo).any(axis=1)
            )
            frontier = frontier[alive]
            left = self.node_left[frontier]
            is_leaf = left < 0
            if is_leaf.any():
                found.append(frontier[is_leaf])
            internal = frontier[~is_leaf]
            frontier = np.concatenate(
                [self.node_left[internal], self.node_right[internal]]
            )
        if not found:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(found)
