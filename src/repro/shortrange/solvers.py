"""Short-range solver backends: PPTreePM, P3M and a direct reference.

All backends evaluate the same fitted short-range kernel
(:class:`repro.shortrange.kernel.ShortRangeKernel`) and therefore agree to
machine precision on small systems — that algorithm-independence is the
paper's cross-validation strategy ("the availability of multiple
algorithms within the HACC framework allows us to carry out careful error
analyses").

Backends operate on a *particle cloud without periodicity*: in the
multi-rank configuration the cloud is an overloaded domain whose passive
replicas provide the boundary sources; in single-rank (whole box) mode
:func:`periodic_ghosts` appends shifted images of particles near the box
faces.  In both cases only the first ``n_targets`` particles receive
forces.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.instrument import get_registry
from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.rcb_tree import RCBTree

__all__ = [
    "periodic_ghosts",
    "DirectShortRange",
    "TreePMShortRange",
    "P3MShortRange",
]


def periodic_ghosts(
    positions: np.ndarray,
    masses: np.ndarray,
    box_size: float,
    rcut: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Append periodic image particles within ``rcut`` of the box faces.

    Returns the augmented ``(positions, masses)``; the originals occupy
    the first N rows.  This plays the role particle overloading plays
    across rank boundaries, for the single-rank whole-box configuration.
    """
    if box_size <= 0:
        raise ValueError(f"box_size must be positive: {box_size}")
    if not 0 < rcut < box_size / 2:
        raise ValueError(
            f"rcut must lie in (0, box/2): rcut={rcut}, box={box_size}"
        )
    pos = np.mod(np.asarray(positions, dtype=np.float64), box_size)
    m = np.asarray(masses, dtype=np.float64)
    ghost_pos = [pos]
    ghost_m = [m]
    for ox in (-1, 0, 1):
        for oy in (-1, 0, 1):
            for oz in (-1, 0, 1):
                if ox == oy == oz == 0:
                    continue
                sel = np.ones(pos.shape[0], dtype=bool)
                if ox < 0:
                    sel &= pos[:, 0] >= box_size - rcut
                elif ox > 0:
                    sel &= pos[:, 0] < rcut
                if oy < 0:
                    sel &= pos[:, 1] >= box_size - rcut
                elif oy > 0:
                    sel &= pos[:, 1] < rcut
                if oz < 0:
                    sel &= pos[:, 2] >= box_size - rcut
                elif oz > 0:
                    sel &= pos[:, 2] < rcut
                if not np.any(sel):
                    continue
                shift = np.array([ox, oy, oz], dtype=np.float64) * box_size
                ghost_pos.append(pos[sel] + shift)
                ghost_m.append(m[sel])
    return np.concatenate(ghost_pos, axis=0), np.concatenate(ghost_m)


class ShortRangeSolver(ABC):
    """Interface: short-range accelerations on the first N particles."""

    def __init__(self, kernel: ShortRangeKernel) -> None:
        self.kernel = kernel

    @abstractmethod
    def accelerations_cloud(
        self,
        positions: np.ndarray,
        masses: np.ndarray,
        n_targets: int,
    ) -> np.ndarray:
        """Forces on ``positions[:n_targets]`` from the whole cloud."""

    def accelerations(
        self,
        positions: np.ndarray,
        masses: np.ndarray | None = None,
        box_size: float | None = None,
    ) -> np.ndarray:
        """Short-range accelerations, periodic if ``box_size`` is given.

        Unit normalization: returns
        ``-sum_j m_j f_SR(s_ij) (x_i - x_j)``; the driver scales by
        ``pair_force_normalization`` and the cosmological prefactor.
        """
        pos = np.asarray(positions, dtype=np.float64)
        n = pos.shape[0]
        m = (
            np.ones(n, dtype=np.float64)
            if masses is None
            else np.asarray(masses, dtype=np.float64)
        )
        if box_size is not None:
            cloud_pos, cloud_m = periodic_ghosts(
                pos, m, box_size, self.kernel.rcut
            )
        else:
            cloud_pos, cloud_m = pos, m
        return self.accelerations_cloud(cloud_pos, cloud_m, n)


class DirectShortRange(ShortRangeSolver):
    """O(N^2) direct summation — the correctness reference.

    Feasible to a few thousand particles; every other backend is tested
    against it.
    """

    def accelerations_cloud(self, positions, masses, n_targets):
        return self.kernel.accumulate(
            positions[:n_targets], positions, masses
        )


class TreePMShortRange(ShortRangeSolver):
    """The BG/Q backend: RCB tree + shared-leaf interaction lists.

    Parameters
    ----------
    kernel:
        The fitted short-range kernel.
    leaf_size:
        Fat-leaf capacity (the walk/kernel crossover knob of Section III).
    """

    def __init__(self, kernel: ShortRangeKernel, leaf_size: int = 128) -> None:
        super().__init__(kernel)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1: {leaf_size}")
        self.leaf_size = int(leaf_size)
        #: populated after each evaluation: interaction-list sizes per leaf
        self.last_list_sizes: np.ndarray | None = None

    def accelerations_cloud(self, positions, masses, n_targets):
        reg = get_registry()
        with reg.span("tree.build"):
            tree = RCBTree(positions, masses, leaf_size=self.leaf_size)
        reg.count("tree.build_particles", positions.shape[0])
        acc = np.zeros((positions.shape[0], 3), dtype=np.float64)
        rcut = self.kernel.rcut
        sizes = []
        for leaf in tree.leaves():
            node = tree.node(leaf)
            seg = slice(node.start, node.start + node.count)
            # skip leaves that contain no real targets (pure ghosts)
            tgt_orig = tree.perm[seg]
            if not np.any(tgt_orig < n_targets):
                continue
            with reg.span("tree.walk"):
                ilist = tree.interaction_list(leaf, rcut)
            sizes.append(ilist.size)
            contrib = self.kernel.accumulate(
                tree.positions[seg],
                tree.positions[ilist],
                tree.masses[ilist],
            )
            acc[tgt_orig] = contrib
        reg.count("tree.list_length", int(sum(sizes)))
        self.last_list_sizes = np.asarray(sizes, dtype=np.int64)
        return acc[:n_targets]


class P3MShortRange(ShortRangeSolver):
    """The Roadrunner/GPU backend: chaining-mesh direct PP sums.

    The cloud is binned into cells of side >= rcut; each cell's particles
    interact directly with the particles of the 27 surrounding cells —
    the "no mediating tree" limit where leaf populations reach ~1e5 on
    accelerated hardware.
    """

    def accelerations_cloud(self, positions, masses, n_targets):
        pos = positions
        n_cloud = pos.shape[0]
        acc = np.zeros((n_cloud, 3), dtype=np.float64)
        rcut = self.kernel.rcut
        with get_registry().span("p3m.binning"):
            lo = pos.min(axis=0) - 1e-9
            hi = pos.max(axis=0) + 1e-9
            extent = np.maximum(hi - lo, rcut)
            ncell = np.maximum((extent / rcut).astype(np.int64), 1)
            cell_of = np.minimum(
                ((pos - lo) / extent * ncell).astype(np.int64), ncell - 1
            )
            flat = (
                cell_of[:, 0] * ncell[1] + cell_of[:, 1]
            ) * ncell[2] + cell_of[:, 2]
            order = np.argsort(flat, kind="stable")
            sorted_flat = flat[order]
            uniq, starts = np.unique(sorted_flat, return_index=True)
            starts = np.append(starts, n_cloud)
            members = {
                int(u): order[starts[i] : starts[i + 1]]
                for i, u in enumerate(uniq)
            }

        def cell_id(cx, cy, cz):
            if not (
                0 <= cx < ncell[0] and 0 <= cy < ncell[1] and 0 <= cz < ncell[2]
            ):
                return None  # open boundaries: the cloud includes ghosts
            return int((cx * ncell[1] + cy) * ncell[2] + cz)

        for u in uniq:
            tgt = members[int(u)]
            cz = int(u % ncell[2])
            cy = int((u // ncell[2]) % ncell[1])
            cx = int(u // (ncell[1] * ncell[2]))
            neigh = []
            for ox in (-1, 0, 1):
                for oy in (-1, 0, 1):
                    for oz in (-1, 0, 1):
                        cid = cell_id(cx + ox, cy + oy, cz + oz)
                        if cid is not None and cid in members:
                            neigh.append(members[cid])
            src = np.concatenate(neigh)
            acc[tgt] = self.kernel.accumulate(
                pos[tgt], pos[src], masses[src]
            )
        return acc[:n_targets]
