"""Short-range solver backends: PPTreePM, P3M and a direct reference.

All backends evaluate the same fitted short-range kernel
(:class:`repro.shortrange.kernel.ShortRangeKernel`) and therefore agree to
machine precision on small systems — that algorithm-independence is the
paper's cross-validation strategy ("the availability of multiple
algorithms within the HACC framework allows us to carry out careful error
analyses").

Backends operate on a *particle cloud without periodicity*: in the
multi-rank configuration the cloud is an overloaded domain whose passive
replicas provide the boundary sources; in single-rank (whole box) mode
:func:`periodic_ghosts` appends shifted images of particles near the box
faces.  In both cases only the first ``n_targets`` particles receive
forces.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.instrument import get_registry
from repro.shortrange.batch import (
    DEFAULT_CHUNK_PAIRS,
    BatchedPairEngine,
    InteractionBatch,
    pack_tree,
)
from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.rcb_tree import RCBTree, ranges_to_indices

__all__ = [
    "periodic_ghosts",
    "DirectShortRange",
    "TreePMShortRange",
    "P3MShortRange",
    "build_solver",
    "solver_spec",
    "solver_from_spec",
]


def periodic_ghosts(
    positions: np.ndarray,
    masses: np.ndarray,
    box_size: float,
    rcut: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Append periodic image particles within ``rcut`` of the box faces.

    Returns the augmented ``(positions, masses)``; the originals occupy
    the first N rows.  This plays the role particle overloading plays
    across rank boundaries, for the single-rank whole-box configuration.
    """
    if box_size <= 0:
        raise ValueError(f"box_size must be positive: {box_size}")
    if not 0 < rcut < box_size / 2:
        raise ValueError(
            f"rcut must lie in (0, box/2): rcut={rcut}, box={box_size}"
        )
    # preserve the caller's precision: an f32 run keeps f32 ghosts
    dt = np.asarray(positions).dtype
    if dt not in (np.float32, np.float64):
        dt = np.float64
    pos = np.mod(np.asarray(positions, dtype=dt), dt.type(box_size))
    m = np.asarray(masses, dtype=dt)
    n = pos.shape[0]
    # one stacked 26-offset computation instead of a triple Python loop;
    # selecting per (particle, shift) pair also guarantees corner images
    # are emitted exactly once (sequential per-axis shifting would
    # duplicate them)
    offsets = np.array(
        [
            (ox, oy, oz)
            for ox in (-1, 0, 1)
            for oy in (-1, 0, 1)
            for oz in (-1, 0, 1)
            if (ox, oy, oz) != (0, 0, 0)
        ],
        dtype=np.float64,
    )
    # per-axis condition table indexed by offset + 1:
    # shift -1 needs pos near the high face, +1 near the low face
    always = np.ones(n, dtype=bool)
    sel = always
    for axis in range(3):
        table = np.stack(
            [pos[:, axis] >= box_size - rcut, always, pos[:, axis] < rcut]
        )
        sel = sel & table[offsets[:, axis].astype(np.int64) + 1]
    oid, pid = np.nonzero(sel)  # offset-major: matches the old loop order
    ghost_pos = pos[pid] + offsets[oid] * box_size
    return (
        np.concatenate([pos, ghost_pos], axis=0),
        np.concatenate([m, m[pid]]),
    )


def build_solver(
    backend: str,
    kernel: ShortRangeKernel,
    *,
    leaf_size: int = 128,
    naive: bool = False,
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
    kernel_backend: str | None = None,
) -> "ShortRangeSolver":
    """Construct the short-range backend named by ``backend``.

    The single construction switch shared by the simulation driver and
    by executor worker initialization, so both always build the same
    solver for the same configuration.  ``kernel_backend`` selects the
    inner-loop implementation (numpy/numba/cupy seam); ``None`` keeps
    the deterministic NumPy reference.
    """
    if backend == "treepm":
        return TreePMShortRange(
            kernel,
            leaf_size=leaf_size,
            naive=naive,
            chunk_pairs=chunk_pairs,
            kernel_backend=kernel_backend,
        )
    if backend == "p3m":
        return P3MShortRange(
            kernel,
            naive=naive,
            chunk_pairs=chunk_pairs,
            kernel_backend=kernel_backend,
        )
    if backend == "direct":
        return DirectShortRange(kernel)
    raise ValueError(f"unknown short-range backend {backend!r}")


def solver_spec(backend: str, kernel: ShortRangeKernel, **kwargs) -> dict:
    """Picklable recipe for rebuilding a solver in an executor worker.

    Captures the kernel's *parameters* (fit, spacing, softening, dtype)
    rather than the kernel object, so every worker builds a private
    kernel — and with it private counters and a private
    :class:`~repro.shortrange.batch.Workspace`; engine buffers are
    grow-only and not safe to share between concurrent evaluations.
    The kernel *backend* travels by name (picklable), so process workers
    reconstruct the same numpy/numba choice the driver resolved.
    """
    return {
        "backend": backend,
        "fit": kernel.fit,
        "spacing": kernel.spacing,
        "eps_cells": kernel.eps_cells,
        "dtype": kernel.dtype,
        **kwargs,
    }


def solver_from_spec(spec: dict) -> "ShortRangeSolver":
    """Build a *worker clone* solver from a :func:`solver_spec` recipe.

    The clone's kernel has ``mirror_counters=False``: it tallies
    interactions privately (per-task deltas) and the driver charges the
    authoritative counters from the results in rank order, keeping the
    global count identical to a serial run.
    """
    kernel = ShortRangeKernel(
        spec["fit"],
        spec["spacing"],
        eps_cells=spec["eps_cells"],
        dtype=spec["dtype"],
        mirror_counters=False,
    )
    return build_solver(
        spec["backend"],
        kernel,
        leaf_size=spec.get("leaf_size", 128),
        naive=spec.get("naive", False),
        chunk_pairs=spec.get("chunk_pairs", DEFAULT_CHUNK_PAIRS),
        kernel_backend=spec.get("kernel_backend"),
    )


class ShortRangeSolver(ABC):
    """Interface: short-range accelerations on the first N particles."""

    def __init__(self, kernel: ShortRangeKernel) -> None:
        self.kernel = kernel

    @abstractmethod
    def accelerations_cloud(
        self,
        positions: np.ndarray,
        masses: np.ndarray,
        n_targets: int,
    ) -> np.ndarray:
        """Forces on ``positions[:n_targets]`` from the whole cloud."""

    def accelerations(
        self,
        positions: np.ndarray,
        masses: np.ndarray | None = None,
        box_size: float | None = None,
    ) -> np.ndarray:
        """Short-range accelerations, periodic if ``box_size`` is given.

        Unit normalization: returns
        ``-sum_j m_j f_SR(s_ij) (x_i - x_j)``; the driver scales by
        ``pair_force_normalization`` and the cosmological prefactor.
        """
        dt = np.dtype(self.kernel.dtype)
        pos = np.asarray(positions, dtype=dt)
        n = pos.shape[0]
        m = (
            np.ones(n, dtype=dt)
            if masses is None
            else np.asarray(masses, dtype=dt)
        )
        if box_size is not None:
            cloud_pos, cloud_m = periodic_ghosts(
                pos, m, box_size, self.kernel.rcut
            )
        else:
            cloud_pos, cloud_m = pos, m
        return self.accelerations_cloud(cloud_pos, cloud_m, n)


class DirectShortRange(ShortRangeSolver):
    """O(N^2) direct summation — the correctness reference.

    Feasible to a few thousand particles; every other backend is tested
    against it.
    """

    def accelerations_cloud(self, positions, masses, n_targets):
        return self.kernel.accumulate(
            positions[:n_targets], positions, masses
        )


class TreePMShortRange(ShortRangeSolver):
    """The BG/Q backend: RCB tree + shared-leaf interaction lists.

    Parameters
    ----------
    kernel:
        The fitted short-range kernel.
    leaf_size:
        Fat-leaf capacity (the walk/kernel crossover knob of Section III).
    naive:
        ``False`` (default) packs every leaf's list into one
        :class:`~repro.shortrange.batch.InteractionBatch` and streams it
        through the chunked :class:`~repro.shortrange.batch.BatchedPairEngine`
        — the paper's list-then-stream structure.  ``True`` keeps the
        original walk-evaluate-per-leaf loop; it computes the identical
        force and exists for the equivalence suite and A/B benchmarks.
    chunk_pairs:
        Pair-block size of the batched engine (peak-workspace knob).
    kernel_backend:
        Inner-loop implementation (numpy/numba/cupy seam); ``None``
        keeps the deterministic NumPy reference.
    """

    def __init__(
        self,
        kernel: ShortRangeKernel,
        leaf_size: int = 128,
        naive: bool = False,
        chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
        kernel_backend: str | None = None,
    ) -> None:
        super().__init__(kernel)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1: {leaf_size}")
        self.leaf_size = int(leaf_size)
        self.naive = bool(naive)
        self.engine = BatchedPairEngine(
            kernel, chunk_pairs=chunk_pairs, backend=kernel_backend
        )
        #: populated after each evaluation: interaction-list sizes per leaf
        self.last_list_sizes: np.ndarray | None = None
        #: populated after each evaluation: RCB tree depth (telemetry gauge)
        self.last_tree_depth: int = 0

    def accelerations_cloud(self, positions, masses, n_targets):
        reg = get_registry()
        with reg.span("tree.build"):
            tree = RCBTree(positions, masses, leaf_size=self.leaf_size)
        self.last_tree_depth = tree.depth()
        reg.count("tree.build_particles", positions.shape[0])
        if self.naive:
            return self._accelerations_naive(tree, n_targets)
        with reg.span("tree.walk"):
            batch = pack_tree(tree, self.kernel.rcut, n_targets)
        sizes = batch.group_neighbor_counts()
        reg.count("tree.list_length", int(sizes.sum()))
        self.last_list_sizes = sizes.astype(np.int64)
        acc_tree = self.engine.evaluate(batch, tree.positions, tree.masses)
        acc = np.zeros((positions.shape[0], 3), dtype=acc_tree.dtype)
        acc[tree.perm] = acc_tree
        return acc[:n_targets]

    def _accelerations_naive(self, tree: RCBTree, n_targets: int):
        """The original per-leaf walk + evaluate loop (``naive=True``)."""
        reg = get_registry()
        acc = np.zeros((tree.n_particles, 3), dtype=self.kernel.dtype)
        rcut = self.kernel.rcut
        sizes = []
        for leaf in tree.leaves():
            node = tree.node(leaf)
            seg = slice(node.start, node.start + node.count)
            # skip leaves that contain no real targets (pure ghosts)
            tgt_orig = tree.perm[seg]
            if not np.any(tgt_orig < n_targets):
                continue
            with reg.span("tree.walk"):
                ilist = tree.interaction_list(leaf, rcut)
            sizes.append(ilist.size)
            contrib = self.kernel.accumulate(
                tree.positions[seg],
                tree.positions[ilist],
                tree.masses[ilist],
            )
            acc[tgt_orig] = contrib
        reg.count("tree.list_length", int(sum(sizes)))
        self.last_list_sizes = np.asarray(sizes, dtype=np.int64)
        return acc[:n_targets]


class P3MShortRange(ShortRangeSolver):
    """The Roadrunner/GPU backend: chaining-mesh direct PP sums.

    The cloud is binned into cells of side >= rcut; each cell's particles
    interact directly with the particles of the 27 surrounding cells —
    the "no mediating tree" limit where leaf populations reach ~1e5 on
    accelerated hardware.

    ``naive=False`` (default) builds the whole chaining-mesh neighborhood
    as one :class:`~repro.shortrange.batch.InteractionBatch` (a single
    vectorized 27-offset computation over all occupied cells) and streams
    it through the batched engine; ``naive=True`` keeps the original
    per-cell Python loop for the equivalence suite.
    """

    def __init__(
        self,
        kernel: ShortRangeKernel,
        naive: bool = False,
        chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
        kernel_backend: str | None = None,
    ) -> None:
        super().__init__(kernel)
        self.naive = bool(naive)
        self.engine = BatchedPairEngine(
            kernel, chunk_pairs=chunk_pairs, backend=kernel_backend
        )

    def _bin(self, pos: np.ndarray):
        """Chaining-mesh binning: cell geometry + cell-sorted particles."""
        rcut = self.kernel.rcut
        lo = pos.min(axis=0) - 1e-9
        hi = pos.max(axis=0) + 1e-9
        extent = np.maximum(hi - lo, rcut)
        ncell = np.maximum((extent / rcut).astype(np.int64), 1)
        cell_of = np.minimum(
            ((pos - lo) / extent * ncell).astype(np.int64), ncell - 1
        )
        flat = (
            cell_of[:, 0] * ncell[1] + cell_of[:, 1]
        ) * ncell[2] + cell_of[:, 2]
        order = np.argsort(flat, kind="stable")
        uniq, starts = np.unique(flat[order], return_index=True)
        starts = np.append(starts, pos.shape[0]).astype(np.int64)
        return ncell, uniq, starts, order

    def _pack_cells(self, ncell, uniq, starts, order) -> InteractionBatch:
        """All 27-neighborhoods of all occupied cells as one CSR batch.

        Offsets enumerate in the same row-major (ox, oy, oz) order —
        self cell included — as the naive triple loop, so the per-cell
        neighbor concatenation is identical.
        """
        n_occ = uniq.size
        czi = uniq % ncell[2]
        cyi = (uniq // ncell[2]) % ncell[1]
        cxi = uniq // (ncell[1] * ncell[2])
        off = np.array(
            [
                (ox, oy, oz)
                for ox in (-1, 0, 1)
                for oy in (-1, 0, 1)
                for oz in (-1, 0, 1)
            ],
            dtype=np.int64,
        )
        nx = cxi[:, None] + off[None, :, 0]
        ny = cyi[:, None] + off[None, :, 1]
        nz = czi[:, None] + off[None, :, 2]
        # open boundaries: the cloud already includes the ghost images
        valid = (
            (nx >= 0) & (nx < ncell[0])
            & (ny >= 0) & (ny < ncell[1])
            & (nz >= 0) & (nz < ncell[2])
        )
        nb_flat = (nx * ncell[1] + ny) * ncell[2] + nz
        j = np.searchsorted(uniq, nb_flat)
        j_cl = np.minimum(j, n_occ - 1)
        found = valid & (uniq[j_cl] == nb_flat)
        seg_len = starts[j_cl + 1] - starts[j_cl]
        per_cell = np.where(found, seg_len, 0).sum(axis=1)
        sel = found.ravel()
        neighbor_indices = order[
            ranges_to_indices(
                starts[j_cl].ravel()[sel], seg_len.ravel()[sel]
            )
        ]
        neighbor_offsets = np.zeros(n_occ + 1, dtype=np.int64)
        np.cumsum(per_cell, out=neighbor_offsets[1:])
        # cell membership segments of ``order`` are exactly the target
        # groups; ``starts`` is already their offsets array
        return InteractionBatch(
            order, starts, neighbor_indices, neighbor_offsets
        )

    def accelerations_cloud(self, positions, masses, n_targets):
        pos = np.asarray(positions, dtype=self.kernel.dtype)
        n_cloud = pos.shape[0]
        if n_cloud == 0:
            return np.zeros((0, 3), dtype=self.kernel.dtype)
        with get_registry().span("p3m.binning"):
            ncell, uniq, starts, order = self._bin(pos)
        if self.naive:
            return self._accelerations_naive(
                pos, masses, n_targets, ncell, uniq, starts, order
            )
        with get_registry().span("p3m.pack"):
            batch = self._pack_cells(ncell, uniq, starts, order)
        acc = self.engine.evaluate(batch, pos, masses)
        return acc[:n_targets]

    def _accelerations_naive(
        self, pos, masses, n_targets, ncell, uniq, starts, order
    ):
        """The original per-cell walk + evaluate loop (``naive=True``)."""
        n_cloud = pos.shape[0]
        acc = np.zeros((n_cloud, 3), dtype=self.kernel.dtype)
        members = {
            int(u): order[starts[i] : starts[i + 1]]
            for i, u in enumerate(uniq)
        }

        def cell_id(cx, cy, cz):
            if not (
                0 <= cx < ncell[0] and 0 <= cy < ncell[1] and 0 <= cz < ncell[2]
            ):
                return None  # open boundaries: the cloud includes ghosts
            return int((cx * ncell[1] + cy) * ncell[2] + cz)

        for u in uniq:
            tgt = members[int(u)]
            cz = int(u % ncell[2])
            cy = int((u // ncell[2]) % ncell[1])
            cx = int(u // (ncell[1] * ncell[2]))
            neigh = []
            for ox in (-1, 0, 1):
                for oy in (-1, 0, 1):
                    for oz in (-1, 0, 1):
                        cid = cell_id(cx + ox, cy + oy, cz + oz)
                        if cid is not None and cid in members:
                            neigh.append(members[cid])
            src = np.concatenate(neigh)
            acc[tgt] = self.kernel.accumulate(
                pos[tgt], pos[src], masses[src]
            )
        return acc[:n_targets]
