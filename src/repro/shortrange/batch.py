"""Batched short-range pair-evaluation engine.

The paper's short-range stage (Section III) owes its 69.2%-of-peak
throughput to a strict two-phase structure: interaction lists are built
once per RCB leaf by the tree walk, then *streamed* through a
branch-free, unrolled QPX kernel that never leaves registers.  The
Python analogue of "many small kernel launches" — evaluating the kernel
leaf by leaf inside a ``for`` loop, reallocating every pair temporary —
is exactly the PM/tree anti-pattern PMFAST and the HACC architecture
papers identify.  This module is the batch-oriented replacement:

**Packing** (:func:`pack_tree`, :func:`batch_box_query`) walks the tree
once for *all* leaves simultaneously — a breadth-first frontier of
(query, node) pairs pruned with whole-array bounds tests — and emits
flat CSR-style arrays (:class:`InteractionBatch`): ``targets`` +
``target_offsets`` and ``neighbor_indices`` + ``neighbor_offsets``.

**Evaluation** (:class:`BatchedPairEngine`) streams fixed-size pair
blocks (``chunk_pairs`` bounds the peak temporary footprint, the Python
analogue of sizing the working set to cache) through the fitted
:class:`~repro.shortrange.kernel.ShortRangeKernel`:

1. separations are formed SOA-style (``dx``, ``dy``, ``dz``) in
   preallocated workspaces — no per-leaf allocation;
2. pairs outside the cutoff are *compressed away* before the expensive
   kernel math (sqrt, divide, Horner) runs — interaction lists bound a
   leaf's neighborhood by boxes, so typically only ~10-30% of listed
   pairs lie inside ``rcut`` and the masked-multiply evaluation of the
   naive path wastes the rest;
3. in-cutoff forces are scattered back per target with ``bincount``.

The engine is geometry-agnostic: the RCB tree, the multi-tree solver and
the P3M chaining mesh all reduce their neighborhoods to an
:class:`InteractionBatch` and share one evaluation loop, the way every
HACC backend funnels into the same force kernel.

The evaluation itself dispatches through the pluggable kernel-backend
seam (:mod:`repro.shortrange.backends`): the engine prepares the SOA
coordinate/mass streams once per batch, then hands the CSR arrays to the
selected backend's ``pair_accumulate`` — the vectorized NumPy reference,
the numba-compiled loops, or the CuPy device kernels, all charging the
identical ``pp.interactions`` count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.instrument import get_registry
from repro.shortrange.backends import get_backend, resolve_backend
from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.rcb_tree import RCBTree, ranges_to_indices

__all__ = [
    "Workspace",
    "InteractionBatch",
    "BatchedPairEngine",
    "batch_box_query",
    "pack_tree",
    "DEFAULT_CHUNK_PAIRS",
]

#: default pair-block size: 2^18 pairs keep every float64 workspace at
#: 2 MiB — resident in L2/L3 across the whole evaluation loop
DEFAULT_CHUNK_PAIRS = 1 << 18


class Workspace:
    """Named, grow-only scratch buffers.

    ``get(name, size, dtype)`` returns a length-``size`` view of a cached
    buffer, reallocating only when a request outgrows (or re-types) the
    existing one — so steady-state evaluation performs zero large
    allocations, the Python stand-in for the paper's preallocated
    interaction-list stream buffers.
    """

    def __init__(self) -> None:
        self._bufs: dict[str, np.ndarray] = {}

    def get(self, name: str, size: int, dtype) -> np.ndarray:
        buf = self._bufs.get(name)
        if buf is None or buf.size < size or buf.dtype != np.dtype(dtype):
            buf = np.empty(max(int(size), 1), dtype=dtype)
            self._bufs[name] = buf
        return buf[:size]

    @property
    def nbytes(self) -> int:
        """Total bytes currently held across all buffers."""
        return sum(b.nbytes for b in self._bufs.values())

    def clear(self) -> None:
        self._bufs.clear()


@dataclass(frozen=True)
class InteractionBatch:
    """CSR interaction lists shared by a group of targets.

    Group ``g`` (an RCB leaf, or a P3M cell) applies the neighbor list
    ``neighbor_indices[neighbor_offsets[g]:neighbor_offsets[g+1]]`` to
    every target in ``targets[target_offsets[g]:target_offsets[g+1]]`` —
    the flat-array form of "all particles of a leaf share the leaf's
    interaction list".  Indices refer to whatever position/mass arrays
    are later handed to :meth:`BatchedPairEngine.evaluate`.

    Within one group the target indices must be unique (they are a leaf
    / cell membership); distinct groups may not share targets either —
    both solvers' groups partition the target set.
    """

    targets: np.ndarray
    target_offsets: np.ndarray
    neighbor_indices: np.ndarray
    neighbor_offsets: np.ndarray

    def __post_init__(self) -> None:
        to, no = self.target_offsets, self.neighbor_offsets
        if to.ndim != 1 or no.ndim != 1 or to.shape != no.shape:
            raise ValueError(
                f"offset arrays must be 1-D and equal length: "
                f"{to.shape} vs {no.shape}"
            )
        if to.size == 0:
            raise ValueError("offset arrays must have at least one entry")
        if np.any(np.diff(to) < 0) or np.any(np.diff(no) < 0):
            raise ValueError("offsets must be non-decreasing")
        if int(to[-1]) != self.targets.shape[0]:
            raise ValueError(
                f"target_offsets end {int(to[-1])} != "
                f"targets length {self.targets.shape[0]}"
            )
        if int(no[-1]) != self.neighbor_indices.shape[0]:
            raise ValueError(
                f"neighbor_offsets end {int(no[-1])} != "
                f"neighbor_indices length {self.neighbor_indices.shape[0]}"
            )

    @property
    def n_groups(self) -> int:
        return self.target_offsets.size - 1

    def group_target_counts(self) -> np.ndarray:
        return np.diff(self.target_offsets)

    def group_neighbor_counts(self) -> np.ndarray:
        return np.diff(self.neighbor_offsets)

    def group_pair_counts(self) -> np.ndarray:
        return self.group_target_counts() * self.group_neighbor_counts()

    @property
    def n_pairs(self) -> int:
        """Total (target, neighbor) pair evaluations the batch encodes."""
        return int(self.group_pair_counts().sum())

    @classmethod
    def empty(cls) -> "InteractionBatch":
        zero = np.zeros(1, dtype=np.int64)
        e = np.empty(0, dtype=np.int64)
        return cls(e, zero, e, zero)


def batch_box_query(
    tree: RCBTree, qlo: np.ndarray, qhi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Leaf hits of many box queries against one tree, in one walk.

    Parameters
    ----------
    tree:
        The RCB tree to query.
    qlo, qhi:
        (Q, 3) lower/upper corners of the query boxes (cutoff already
        applied by the caller).

    Returns
    -------
    ``(hit_query, hit_node)`` — parallel arrays naming every (query box,
    intersecting tree leaf) pair, sorted by query then by the leaf's
    particle-segment start (so per-query expansion yields ascending
    particle indices, matching ``RCBTree.interaction_list``).

    The walk advances a frontier of live (query, node) pairs: one
    vectorized bounds test per level replaces the per-node ``np.any``
    calls of the scalar walk — the packing pass's whole cost is a few
    dozen array operations regardless of leaf count.
    """
    box_dt = _float_dtype(tree.node_lo)
    qlo = np.atleast_2d(np.asarray(qlo, dtype=box_dt))
    qhi = np.atleast_2d(np.asarray(qhi, dtype=box_dt))
    nq = qlo.shape[0]
    e = np.empty(0, dtype=np.int64)
    if nq == 0 or tree.n_nodes == 0:
        return e, e
    f_query = np.arange(nq, dtype=np.int64)
    f_node = np.zeros(nq, dtype=np.int64)
    hits_q: list[np.ndarray] = []
    hits_n: list[np.ndarray] = []
    while f_query.size:
        alive = ~(
            (tree.node_lo[f_node] > qhi[f_query]).any(axis=1)
            | (tree.node_hi[f_node] < qlo[f_query]).any(axis=1)
        )
        f_query = f_query[alive]
        f_node = f_node[alive]
        at_leaf = tree.node_left[f_node] < 0
        if at_leaf.any():
            hits_q.append(f_query[at_leaf])
            hits_n.append(f_node[at_leaf])
        iq = f_query[~at_leaf]
        inode = f_node[~at_leaf]
        f_query = np.concatenate([iq, iq])
        f_node = np.concatenate(
            [tree.node_left[inode], tree.node_right[inode]]
        )
    if not hits_q:
        return e, e
    hq = np.concatenate(hits_q)
    hn = np.concatenate(hits_n)
    order = np.lexsort((tree.node_start[hn], hq))
    return hq[order], hn[order]


def _float_dtype(a: np.ndarray):
    """Preserve float32/float64; anything else becomes float64."""
    dt = np.asarray(a).dtype
    return dt if dt in (np.float32, np.float64) else np.float64


def pack_tree(
    tree: RCBTree, rcut: float, n_targets: int | None = None
) -> InteractionBatch:
    """Pack a whole tree's per-leaf interaction lists into one batch.

    Leaves containing no real target (``tree.perm >= n_targets``
    throughout — pure ghost leaves) are skipped, exactly as the per-leaf
    path skips them.  Indices are in *tree order*; pair the batch with
    ``tree.positions`` / ``tree.masses`` and scatter results through
    ``tree.perm``.
    """
    if rcut <= 0:
        raise ValueError(f"rcut must be positive: {rcut}")
    leaf = tree.leaf_ids()
    if leaf.size == 0:
        return InteractionBatch.empty()
    if n_targets is not None and n_targets < tree.n_particles:
        real = tree.perm < n_targets
        # leaf segments (sorted by start) partition the particle range,
        # so reduceat computes "any real target in segment" per leaf
        has_target = np.logical_or.reduceat(real, tree.node_start[leaf])
        leaf = leaf[has_target]
        if leaf.size == 0:
            return InteractionBatch.empty()
    hq, hn = batch_box_query(
        tree, tree.node_lo[leaf] - rcut, tree.node_hi[leaf] + rcut
    )
    hit_counts = tree.node_count[hn]
    neighbor_indices = ranges_to_indices(tree.node_start[hn], hit_counts)
    per_leaf = np.bincount(
        hq, weights=hit_counts.astype(np.float64), minlength=leaf.size
    ).astype(np.int64)
    neighbor_offsets = np.zeros(leaf.size + 1, dtype=np.int64)
    np.cumsum(per_leaf, out=neighbor_offsets[1:])
    tcounts = tree.node_count[leaf]
    targets = ranges_to_indices(tree.node_start[leaf], tcounts)
    target_offsets = np.zeros(leaf.size + 1, dtype=np.int64)
    np.cumsum(tcounts, out=target_offsets[1:])
    return InteractionBatch(
        targets, target_offsets, neighbor_indices, neighbor_offsets
    )


class BatchedPairEngine:
    """Chunked, workspace-reusing evaluator for an :class:`InteractionBatch`.

    Parameters
    ----------
    kernel:
        The fitted short-range kernel; supplies the pair coefficient,
        the precision (``kernel.dtype``) and the interaction counter.
    chunk_pairs:
        Upper bound on pairs materialized at once.  Each (targets x
        sources) tile is sized so ``tile_targets * tile_sources <=
        chunk_pairs``; all tile temporaries live in reused workspaces.
        (Loop-based backends evaluate pair-by-pair and ignore it.)
    backend:
        Kernel backend executing the pair loop: a
        :class:`~repro.shortrange.backends.KernelBackend` instance, a
        registered name (``"numpy"``, ``"numba"``, ``"cupy"``),
        ``"auto"`` (fastest available CPU backend), or ``None`` for the
        NumPy reference — the engine's historical behavior and the
        default, so direct constructions stay deterministic across
        environments; ``"auto"`` is opted into via the simulation
        config.

    Notes
    -----
    Pair arithmetic *and* accumulation run in ``kernel.dtype`` (the
    paper's mixed-precision option): with ``dtype=np.float32`` the
    returned accelerations are float32, with no silent float64 upcast
    along the hot path.  ``pp.interactions`` counts every (target,
    neighbor) pair of the batch — identical to the naive per-leaf path
    by construction, which the equivalence suite asserts, and identical
    across backends, which the backend suite asserts.
    """

    def __init__(
        self,
        kernel: ShortRangeKernel,
        chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
        backend=None,
    ) -> None:
        if chunk_pairs < 1:
            raise ValueError(f"chunk_pairs must be >= 1: {chunk_pairs}")
        self.kernel = kernel
        self.chunk_pairs = int(chunk_pairs)
        self.backend = (
            get_backend("numpy") if backend is None
            else resolve_backend(backend)
        )
        self.workspace = Workspace()
        #: polynomial coefficients in the kernel precision, cast once
        self._coeffs = np.asarray(
            kernel.fit.coefficients, dtype=kernel.dtype
        )
        #: pair counts of the most recent :meth:`evaluate` call — the
        #: per-rank interactions gauge of the telemetry layer reads these
        self.last_pairs: int = 0
        self.last_inside_pairs: int = 0

    # ------------------------------------------------------------------
    def evaluate(
        self,
        batch: InteractionBatch,
        positions: np.ndarray,
        masses: np.ndarray,
    ) -> np.ndarray:
        """Accelerations from all batch pairs (attractive sign).

        Parameters
        ----------
        batch:
            Packed interaction lists; indices address ``positions`` rows.
        positions:
            (N, 3) particle positions.
        masses:
            (N,) weights in units of the mean particle mass.

        Returns
        -------
        (N, 3) array in the kernel precision; rows not named by
        ``batch.targets`` are 0.
        """
        pos = np.asarray(positions)
        n = pos.shape[0]
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError(f"positions must be (N, 3), got {pos.shape}")
        kern = self.kernel
        dt = kern.dtype
        acc = np.zeros((n, 3), dtype=dt)
        total_pairs = batch.n_pairs
        self.last_pairs = total_pairs
        self.last_inside_pairs = 0
        if n == 0 or total_pairs == 0:
            return acc
        ws = self.workspace
        reg = get_registry()

        # SOA coordinate / scaled-mass copies in the kernel precision —
        # one cast for the whole batch instead of one per leaf
        px = ws.get("px", n, dt)
        py = ws.get("py", n, dt)
        pz = ws.get("pz", n, dt)
        px[:] = pos[:, 0]
        py[:] = pos[:, 1]
        pz[:] = pos[:, 2]
        msc = ws.get("m", n, dt)
        msc[:] = masses
        msc *= dt(1.0 / kern.spacing**3)
        inv_sp2 = dt(1.0 / kern.spacing**2)
        rc2_cells = dt(kern.fit.rcut_cells**2)

        with reg.span("pp.batch"):
            inside_pairs = self.backend.pair_accumulate(
                batch.targets,
                batch.target_offsets,
                batch.neighbor_indices,
                batch.neighbor_offsets,
                px, py, pz, msc,
                self._coeffs,
                dt(kern.eps_cells),
                rc2_cells,
                inv_sp2,
                self.chunk_pairs,
                acc,
                ws,
            )
        kern.record_interactions(total_pairs)
        reg.count("pp.batch.inside_pairs", inside_pairs)
        self.last_inside_pairs = inside_pairs
        return acc
