"""Numerical measurement and polynomial fit of the filtered grid force.

The paper (Section II): *"the filtered grid force was obtained numerically
to high accuracy using randomly sampled particle pairs and then fitted to
an expression with the correct large and small distance asymptotics.
Because this functional form is needed only over a small, compact region,
it can be simplified using a fifth-order polynomial expansion."*

This module reproduces that pipeline:

1. deposit a single unit particle at random sub-cell offsets, run the
   filtered Poisson solver once per source, and sample the interpolated
   force at many radii/directions (each solve yields hundreds of samples);
2. normalize so the measured force tends to the exact Newtonian
   ``s^{-3/2}`` at large separation (the continuum normalization is
   ``spacing^3 / (4 pi)`` for a unit-mass deposit, which the measurement
   confirms);
3. fit ``poly_5(s)`` over ``s in (0, r_cut^2]`` by least squares.

Everything is expressed in **grid-cell units** (separation in cells), so
one fit is reusable for any box size at fixed filter parameters; the
handover radius is the paper's 3 grid cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.grid.cic import cic_deposit, cic_interpolate
from repro.grid.filters import NOMINAL_NS, NOMINAL_SIGMA
from repro.grid.poisson import SpectralPoissonSolver

__all__ = [
    "GridForceFit",
    "measure_grid_force",
    "fit_grid_force",
    "default_grid_force_fit",
    "pair_force_normalization",
]

#: handover radius between short- and long-range forces, in grid cells
NOMINAL_RCUT_CELLS = 3.0


def pair_force_normalization(box_size: float, n_particles: int) -> float:
    """Strength of a unit-weight pair interaction in density-contrast units.

    The PM solver works with ``delta = rho/<rho> - 1``; a single particle
    of weight ``w`` in a box of volume ``V`` with ``Np`` particles sources
    a pair acceleration ``w V / (4 pi Np r^2)``.  The PP sum must use the
    same normalization for the total force to be exact; the time stepper
    multiplies both by the cosmological prefactor ``(3/2) Omega_m``.
    """
    if n_particles <= 0:
        raise ValueError(f"n_particles must be positive: {n_particles}")
    return box_size**3 / (4.0 * np.pi * n_particles)


def measure_grid_force(
    n_grid: int = 32,
    *,
    sigma: float = NOMINAL_SIGMA,
    ns: int = NOMINAL_NS,
    laplacian_order: int = 6,
    gradient_order: int = 4,
    n_sources: int = 16,
    n_samples_per_source: int = 256,
    r_max_cells: float = 4.5,
    seed: int = 12345,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample the filtered PM pair force.

    Returns
    -------
    (s, f_radial, f_transverse):
        Squared separations in cells^2, radial force coefficient
        (``F . rhat / r`` so that ``F = f(s) r_vec``) normalized to the
        Newtonian ``s^{-3/2}``, and the transverse (anisotropy-noise)
        component in the same units.
    """
    if n_grid < 16:
        raise ValueError(f"n_grid must be >= 16 for a clean measurement: {n_grid}")
    if r_max_cells >= n_grid / 4:
        raise ValueError(
            f"r_max_cells={r_max_cells} too large for grid {n_grid} "
            "(periodic images would contaminate the measurement)"
        )
    box = float(n_grid)  # spacing = 1 -> cell units
    solver = SpectralPoissonSolver(
        n_grid,
        box,
        sigma=sigma,
        ns=ns,
        laplacian_order=laplacian_order,
        gradient_order=gradient_order,
    )
    rng = np.random.default_rng(seed)
    norm = 1.0 / (4.0 * np.pi)  # unit deposit, spacing = 1

    s_all, fr_all, ft_all = [], [], []
    for _ in range(n_sources):
        src = rng.uniform(0.0, box, 3)
        rho = cic_deposit(src[None, :], n_grid, box)
        fgrids = solver.force_grids(rho)

        radii = rng.uniform(0.05, r_max_cells, n_samples_per_source)
        dirs = rng.standard_normal((n_samples_per_source, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        pts = np.mod(src[None, :] + radii[:, None] * dirs, box)
        fvec = np.stack(
            [cic_interpolate(g, pts, box) for g in fgrids], axis=1
        ) / norm
        # attractive force points along -rhat; f(s) multiplies +r_vec with
        # a minus sign in the solvers, so flip here for a positive profile.
        f_rad = -np.einsum("ij,ij->i", fvec, dirs) / radii
        f_perp = (
            np.linalg.norm(
                fvec + (f_rad * radii)[:, None] * dirs, axis=1
            )
            / radii
        )
        s_all.append(radii**2)
        fr_all.append(f_rad)
        ft_all.append(f_perp)

    return (
        np.concatenate(s_all),
        np.concatenate(fr_all),
        np.concatenate(ft_all),
    )


@dataclass(frozen=True)
class GridForceFit:
    """Fifth-order polynomial fit of the grid force, in cell units.

    ``poly(s) = sum_m c_m s^m`` approximates the radial grid-force
    coefficient for ``s <= rcut_cells^2``; beyond the cut the grid force
    equals the Newtonian force by construction and the short-range force
    vanishes.
    """

    coefficients: tuple[float, ...]
    rcut_cells: float
    sigma: float
    ns: int
    rms_residual: float

    def __call__(self, s_cells) -> np.ndarray:
        """Evaluate the polynomial at squared separations (cells^2)."""
        s = np.asarray(s_cells, dtype=np.float64)
        out = np.zeros_like(s)
        for c in reversed(self.coefficients):  # Horner
            out = out * s + c
        return out

    def short_range(self, s_cells) -> np.ndarray:
        """``f_SR(s) = s^{-3/2} - poly(s)`` inside the cutoff, else 0."""
        s = np.asarray(s_cells, dtype=np.float64)
        inside = (s > 0) & (s < self.rcut_cells**2)
        safe = np.where(inside, s, 1.0)
        return np.where(inside, safe**-1.5 - self(safe), 0.0)


def fit_grid_force(
    s: np.ndarray,
    f_radial: np.ndarray,
    *,
    rcut_cells: float = NOMINAL_RCUT_CELLS,
    degree: int = 5,
    sigma: float = NOMINAL_SIGMA,
    ns: int = NOMINAL_NS,
) -> GridForceFit:
    """Least-squares polynomial fit of the measured grid force in ``s``.

    Only samples with ``s <= rcut_cells^2`` enter the fit — the compact
    region over which the polynomial replaces the measured profile in the
    force kernel.
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1: {degree}")
    s = np.asarray(s, dtype=np.float64)
    f = np.asarray(f_radial, dtype=np.float64)
    mask = s <= rcut_cells**2
    if np.count_nonzero(mask) <= degree + 1:
        raise ValueError(
            "not enough samples inside the cutoff to fit the polynomial"
        )
    ss, ff = s[mask], f[mask]
    vander = np.vander(ss, degree + 1, increasing=True)
    coeffs, *_ = np.linalg.lstsq(vander, ff, rcond=None)
    resid = ff - vander @ coeffs
    return GridForceFit(
        coefficients=tuple(float(c) for c in coeffs),
        rcut_cells=float(rcut_cells),
        sigma=float(sigma),
        ns=int(ns),
        rms_residual=float(np.sqrt(np.mean(resid**2))),
    )


@lru_cache(maxsize=8)
def default_grid_force_fit(
    sigma: float = NOMINAL_SIGMA,
    ns: int = NOMINAL_NS,
    rcut_cells: float = NOMINAL_RCUT_CELLS,
    n_grid: int = 32,
) -> GridForceFit:
    """Measured-and-fitted grid force for the given filter parameters.

    Cached: the measurement costs a handful of small PM solves and is
    reused by every solver instance with the same parameters.
    """
    s, fr, _ = measure_grid_force(n_grid, sigma=sigma, ns=ns)
    return fit_grid_force(
        s, fr, rcut_cells=rcut_cells, sigma=sigma, ns=ns
    )
