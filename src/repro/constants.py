"""Physical constants and the code unit system.

Unit conventions
----------------
The library follows the standard large-scale-structure convention used by
HACC-style particle-mesh codes:

* **Lengths** are comoving and measured in ``Mpc/h`` where
  ``h = H0 / (100 km/s/Mpc)``.
* **Time** is parameterized by the scale factor ``a`` with ``a = 1`` today;
  redshift ``z = 1/a - 1``.
* **Code velocities** use the canonical comoving momentum of the paper,
  ``p = a^2 dx/dt`` (Eq. 4 of Habib et al. 2012), expressed in units where
  ``H0 = 1``.  With these choices the comoving Poisson equation becomes
  ``del^2 phi = (3/2) Omega_m delta / a`` and the equations of motion are

  .. math::

      dx/da = p / (a^3 E(a)), \\qquad dp/da = -\\nabla\\phi / (a E(a)),

  with ``E(a) = H(a)/H0``.
* **Masses** are measured in units of the mean particle mass unless a
  cosmology is attached, in which case :func:`particle_mass` converts to
  ``Msun/h``.

Only dimensionless combinations enter the dynamical code; the constants
below are used by analysis utilities (halo masses, mass functions) and by
the machine model (which works in seconds / flops).
"""

from __future__ import annotations

__all__ = [
    "H0_KM_S_MPC",
    "H100_INV_S",
    "GRAVITATIONAL_CONSTANT_MKS",
    "MPC_IN_M",
    "MSUN_IN_KG",
    "RHO_CRIT_MSUN_H2_MPC3",
    "DELTA_C",
    "SPEED_OF_LIGHT_KM_S",
    "particle_mass",
]

#: Hubble constant normalization, km/s/Mpc per unit ``h``.
H0_KM_S_MPC = 100.0

#: 100 km/s/Mpc expressed in 1/s (so ``H0 = h * H100_INV_S``).
H100_INV_S = 100.0 * 1.0e3 / 3.0856775814913673e22

#: Newton's constant in m^3 kg^-1 s^-2.
GRAVITATIONAL_CONSTANT_MKS = 6.67430e-11

#: One megaparsec in meters.
MPC_IN_M = 3.0856775814913673e22

#: One solar mass in kilograms.
MSUN_IN_KG = 1.98892e30

#: Critical density today in units of h^2 Msun / Mpc^3:
#: ``rho_c = 3 H0^2 / (8 pi G)`` evaluated with H0 = 100 h km/s/Mpc.
RHO_CRIT_MSUN_H2_MPC3 = 2.77536627e11

#: Linear-theory collapse threshold for spherical collapse (EdS value);
#: used by the Press-Schechter / Sheth-Tormen mass functions.
DELTA_C = 1.686

#: Speed of light, km/s (distance-redshift conversions).
SPEED_OF_LIGHT_KM_S = 299792.458


def particle_mass(omega_m: float, box_size: float, n_particles: int) -> float:
    """Tracer-particle mass in Msun/h.

    Parameters
    ----------
    omega_m:
        Total matter density parameter today.
    box_size:
        Comoving box side length in Mpc/h.
    n_particles:
        Total number of tracer particles in the box.

    Returns
    -------
    float
        ``Omega_m * rho_crit * V / N`` in Msun/h.

    Examples
    --------
    The paper's 10240^3-particle, (9.14 Gpc)^3 science run quotes
    ``m_p ~= 1.9e10 Msun``:

    >>> mp = particle_mass(0.265, 9140.0, 10240**3)
    >>> 1.0e10 < mp < 3.0e10
    True
    """
    if n_particles <= 0:
        raise ValueError(f"n_particles must be positive, got {n_particles}")
    if box_size <= 0:
        raise ValueError(f"box_size must be positive, got {box_size}")
    volume = float(box_size) ** 3
    return omega_m * RHO_CRIT_MSUN_H2_MPC3 * volume / float(n_particles)
