"""repro — a Python reproduction of HACC, the Hybrid/Hardware Accelerated
Cosmology Code of Habib et al., "The Universe at Extreme Scale:
Multi-Petaflop Sky Simulation on the BG/Q" (SC 2012).

Layering (bottom-up):

* :mod:`repro.cosmology` — FLRW backgrounds, linear power spectra,
  Gaussian random fields, Zel'dovich/2LPT initial conditions;
* :mod:`repro.fft` — from-scratch sequential FFT plus the slab- and
  pencil-decomposed distributed 3-D FFTs;
* :mod:`repro.parallel` — simulated MPI ranks, 3-D block decomposition,
  particle overloading, torus topology;
* :mod:`repro.grid` — CIC and the spectrally filtered Poisson solver;
* :mod:`repro.shortrange` — grid-force fit, PP kernel, RCB tree, TreePM
  and P3M backends;
* :mod:`repro.core` — particles, SKS sub-cycled stepper, the
  :class:`HACCSimulation` driver;
* :mod:`repro.analysis` — power spectra, FOF halos, sub-halos, mass
  functions, density diagnostics;
* :mod:`repro.machine` — the BG/Q node / torus / kernel / full-code
  performance models that regenerate the paper's scaling tables;
* :mod:`repro.io` — snapshots and measurement persistence.
"""

from repro.config import SimulationConfig
from repro.core.simulation import HACCSimulation
from repro.core.particles import Particles
from repro.cosmology import Cosmology, LinearPower, WMAP7

__version__ = "1.0.0"

__all__ = [
    "SimulationConfig",
    "HACCSimulation",
    "Particles",
    "Cosmology",
    "LinearPower",
    "WMAP7",
    "__version__",
]
