"""Thread-decomposed CIC deposit (the paper's long-range threading plan).

Section VI: "An initial step is to fully thread all the components of the
long-range solver, in particular the forward CIC algorithm."  The forward
(scatter) CIC is the hard one to thread: concurrent particles write the
same grid cells.  The standard resolution — used here — is
**privatization**: partition particles among workers, deposit into
private grids, and reduce.  The partition is deterministic, so the result
is *bitwise independent of the worker count* (floating-point addition is
reassociated only inside the final reduction, which sums worker grids in
fixed order), a property the tests pin down.

Without an executor the "workers" run sequentially (the bookkeeping
payoff: per-worker balance and the memory cost of privatization); given a
:class:`repro.parallel.executor.RankExecutor` the chunk deposits actually
run on its workers — the wiring of Section VI's threading plan.  The
partition and the reduction order depend only on the worker *count*, so
the result is identical across executor backends.  An alternative
conflict-free strategy, slab coloring (workers own disjoint grid slabs;
particles sorted by slab; boundary cells handled by the neighbor pass),
is provided for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.cic import cic_deposit

__all__ = ["ThreadedCIC", "DepositReport"]


def _deposit_chunk(payload) -> np.ndarray:
    """One worker's private-grid deposit (module-level: picklable).

    The kernel backend travels by *name* in the payload so process
    workers re-resolve it locally (backend instances are not picklable).
    """
    pos_ref, w_ref, start, stop, n, box, dtype, backend = payload
    if stop <= start:
        return np.zeros((n, n, n), dtype=np.float64 if dtype is None else dtype)
    from repro.parallel.executor import resolve_shared

    pos = resolve_shared(pos_ref)
    w = resolve_shared(w_ref)
    return cic_deposit(
        pos[start:stop], n, box, w[start:stop], dtype=dtype, backend=backend
    )


@dataclass(frozen=True)
class DepositReport:
    """Work distribution of one threaded deposit."""

    n_workers: int
    particles_per_worker: tuple[int, ...]
    private_grid_bytes: int

    @property
    def load_imbalance(self) -> float:
        counts = np.asarray(self.particles_per_worker, dtype=float)
        mean = counts.mean()
        return float(counts.max() / mean) if mean > 0 else 0.0


class ThreadedCIC:
    """Deterministic worker-partitioned CIC deposit.

    Parameters
    ----------
    n_workers:
        Number of (simulated) threads.
    strategy:
        ``"privatize"`` — block-cyclic particle split, one private grid
        per worker, tree reduction (write-conflict free, extra memory);
        ``"slab"`` — particles bucketed by x-slab of the grid, each
        worker deposits its slabs into the shared grid (cache-friendly,
        needs the bucketing pass; boundary columns touched by two
        workers are serialized into the owner).
    executor:
        Optional :class:`repro.parallel.executor.RankExecutor` running
        the ``"privatize"`` chunk deposits concurrently.  ``None``
        (default) keeps the sequential simulation of the partition.
    dtype:
        Grid precision (default float64; pass ``np.float32`` for the
        mixed-precision PM path).
    kernel_backend:
        Kernel backend *name* performing the per-chunk scatters
        (``None`` = NumPy reference).  A name rather than an instance so
        executor payloads stay picklable.
    """

    STRATEGIES = ("privatize", "slab")

    def __init__(
        self,
        n_workers: int = 4,
        strategy: str = "privatize",
        executor=None,
        dtype=None,
        kernel_backend: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1: {n_workers}")
        if strategy not in self.STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        self.n_workers = int(n_workers)
        self.strategy = strategy
        self.executor = executor
        self.dtype = None if dtype is None else np.dtype(dtype)
        self.kernel_backend = kernel_backend
        self.last_report: DepositReport | None = None

    # ------------------------------------------------------------------
    def deposit(
        self,
        positions: np.ndarray,
        n: int,
        box_size: float,
        weights: np.ndarray | None = None,
    ) -> np.ndarray:
        """CIC deposit, identical in result to :func:`cic_deposit`."""
        wdt = np.float64 if self.dtype is None else self.dtype
        pos = np.asarray(positions, dtype=wdt)
        npart = pos.shape[0]
        w = (
            np.ones(npart, dtype=wdt)
            if weights is None
            else np.asarray(weights, dtype=wdt)
        )
        if self.strategy == "privatize":
            return self._privatize(pos, n, box_size, w)
        return self._slab(pos, n, box_size, w)

    def _privatize(self, pos, n, box, w) -> np.ndarray:
        # np.array_split of a range yields contiguous chunks: the same
        # partition whether expressed as index arrays (sequential path)
        # or as [start, stop) slices (executor payloads)
        chunks = np.array_split(np.arange(pos.shape[0]), self.n_workers)
        ex = self.executor
        if ex is not None:
            pos_ref = ex.share("cic.positions", pos)
            w_ref = ex.share("cic.weights", w)
            payloads, start = [], 0
            dt_name = None if self.dtype is None else self.dtype.name
            for c in chunks:
                payloads.append(
                    (
                        pos_ref, w_ref, start, start + c.size, n, box,
                        dt_name, self.kernel_backend,
                    )
                )
                start += c.size
            grids = ex.map(_deposit_chunk, payloads, label="cic.deposit")
        else:
            grids = [
                cic_deposit(
                    pos[c], n, box, w[c],
                    dtype=self.dtype, backend=self.kernel_backend,
                )
                if c.size
                else np.zeros(
                    (n, n, n),
                    dtype=np.float64 if self.dtype is None else self.dtype,
                )
                for c in chunks
            ]
        self.last_report = DepositReport(
            n_workers=self.n_workers,
            particles_per_worker=tuple(int(c.size) for c in chunks),
            private_grid_bytes=self.n_workers * n**3 * (
                8 if self.dtype is None else self.dtype.itemsize
            ),
        )
        # fixed-order tree reduction
        while len(grids) > 1:
            nxt = []
            for i in range(0, len(grids) - 1, 2):
                nxt.append(grids[i] + grids[i + 1])
            if len(grids) % 2:
                nxt.append(grids[-1])
            grids = nxt
        return grids[0]

    def _slab(self, pos, n, box, w) -> np.ndarray:
        # bucket particles by base x-cell slab owner
        scaled = np.mod(pos[:, 0], box) * (n / box)
        scaled = np.where(scaled >= n, scaled - n, scaled)
        base_x = np.minimum(scaled.astype(np.int64), n - 1)
        owner = base_x * self.n_workers // n
        gdt = np.dtype(np.float64) if self.dtype is None else self.dtype
        grid = np.zeros((n, n, n), dtype=gdt)
        counts = []
        for worker in range(self.n_workers):
            sel = owner == worker
            counts.append(int(np.count_nonzero(sel)))
            if counts[-1]:
                # each worker's particles may touch the first column of
                # the next slab (base_x + 1); depositing into the shared
                # grid is safe here because workers run in sequence — a
                # real implementation gives the boundary column to the
                # owner via a second pass
                grid += cic_deposit(
                    pos[sel], n, box, w[sel],
                    dtype=self.dtype, backend=self.kernel_backend,
                )
        self.last_report = DepositReport(
            n_workers=self.n_workers,
            particles_per_worker=tuple(counts),
            private_grid_bytes=n**3 * gdt.itemsize,
        )
        return grid
