"""Spectral kernels of the HACC long-range solver.

Three k-space kernels compose the "Poisson-solve" (Section II):

1. the **isotropizing spectral filter** (Eq. 5)

   .. math:: S(k) = e^{-k^2 \\sigma^2 / 4}
             \\left[\\frac{2}{k\\Delta} \\sin\\frac{k\\Delta}{2}\\right]^{n_s}

   with nominal ``sigma = 0.8`` grid cells and ``n_s = 3``.  (As printed in
   the paper the bracket reads ``(2k/\\Delta) sin(k\\Delta/2)``, which does
   not reduce to unity at small k; the sinc form implemented here does and
   matches the filter's stated purpose of suppressing CIC anisotropy
   noise.)  It cuts the directional scatter of the PM pair force by over
   an order of magnitude, which is what allows the short/long force split
   at only 3 grid cells;

2. the **sixth-order periodic influence function** — the spectral inverse
   Laplacian of a 6th-order-accurate discrete operator,

   .. math:: G(k) = -\\Big[\\sum_i \\tfrac{4}{\\Delta^2}
             \\big(u_i + \\tfrac{1}{3} u_i^2 + \\tfrac{8}{45} u_i^3\\big)\\Big]^{-1},
             \\quad u_i = \\sin^2(k_i \\Delta / 2);

3. **fourth-order Super-Lanczos spectral differencing** (Hamming 1998) for
   the potential gradient,

   .. math:: D(k_i) = i\\,\\frac{8\\sin(k_i\\Delta) - \\sin(2 k_i\\Delta)}{6\\Delta}.

Each kernel reduces to its continuum limit (``1``, ``-1/k^2``, ``i k``) as
``k -> 0``; the unit tests verify both the limits and the stated
convergence orders.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "spectral_filter",
    "influence_function",
    "super_lanczos_gradient",
    "NOMINAL_SIGMA",
    "NOMINAL_NS",
]

#: Nominal filter parameters from the paper (sigma in grid-cell units).
NOMINAL_SIGMA = 0.8
NOMINAL_NS = 3


def _sinc(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    small = np.abs(x) < 1e-12
    safe = np.where(small, 1.0, x)
    return np.where(small, 1.0, np.sin(safe) / safe)


def spectral_filter(
    kx,
    ky,
    kz,
    spacing: float,
    sigma: float = NOMINAL_SIGMA,
    ns: int = NOMINAL_NS,
) -> np.ndarray:
    """Isotropizing density-smoothing filter S(k), Eq. (5).

    Parameters
    ----------
    kx, ky, kz:
        Broadcastable component wavenumber arrays (h/Mpc).
    spacing:
        Grid spacing ``Delta`` (Mpc/h).
    sigma:
        Gaussian width in units of the grid spacing (nominal 0.8).
    ns:
        Sinc-power index (nominal 3).

    Returns
    -------
    Array with ``S(0) = 1`` and monotone decay toward the Nyquist scale.
    """
    if spacing <= 0:
        raise ValueError(f"spacing must be positive: {spacing}")
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative: {sigma}")
    if ns < 0:
        raise ValueError(f"ns must be non-negative: {ns}")
    kk = np.sqrt(
        np.asarray(kx) ** 2 + np.asarray(ky) ** 2 + np.asarray(kz) ** 2
    )
    gauss = np.exp(-(kk**2) * (sigma * spacing) ** 2 / 4.0)
    return gauss * _sinc(kk * spacing / 2.0) ** ns


def influence_function(kx, ky, kz, spacing: float, order: int = 6) -> np.ndarray:
    """Periodic influence function G(k): spectral inverse Laplacian.

    ``order`` selects the discretization accuracy (2, 4 or 6; the paper
    uses 6).  The k=0 element is set to 0 (the mean of the potential is a
    gauge choice).

    Returns
    -------
    G(k) such that ``phi_k = G(k) rhs_k`` solves ``del^2 phi = rhs``.
    """
    if spacing <= 0:
        raise ValueError(f"spacing must be positive: {spacing}")
    if order not in (2, 4, 6):
        raise ValueError(f"order must be 2, 4 or 6, got {order}")
    k2_eff = np.zeros(np.broadcast(kx, ky, kz).shape, dtype=np.float64)
    for kc in (kx, ky, kz):
        u = np.sin(np.asarray(kc) * spacing / 2.0) ** 2
        series = u.copy()
        if order >= 4:
            series += u * u / 3.0
        if order >= 6:
            series += 8.0 * u * u * u / 45.0
        k2_eff = k2_eff + (4.0 / spacing**2) * series
    green = np.zeros_like(k2_eff)
    nonzero = k2_eff > 0
    green[nonzero] = -1.0 / k2_eff[nonzero]
    return green


def super_lanczos_gradient(k, spacing: float, order: int = 4) -> np.ndarray:
    """Spectral derivative kernel D(k) along one axis (pure imaginary).

    ``order=4`` is the paper's fourth-order Super-Lanczos differencing:
    ``i (8 sin(k Delta) - sin(2 k Delta)) / (6 Delta)``; ``order=2`` is
    the plain centered difference, kept for the ablation study.
    """
    if spacing <= 0:
        raise ValueError(f"spacing must be positive: {spacing}")
    theta = np.asarray(k, dtype=np.float64) * spacing
    if order == 2:
        return 1j * np.sin(theta) / spacing
    if order == 4:
        return 1j * (8.0 * np.sin(theta) - np.sin(2.0 * theta)) / (6.0 * spacing)
    raise ValueError(f"order must be 2 or 4, got {order}")
