"""Cloud-In-Cell (CIC) deposit and interpolation on a periodic grid.

CIC assigns each particle's mass to the 8 grid points surrounding it with
trilinear weights (Hockney & Eastwood 1988); interpolation is the adjoint
gather with the same weights — the momentum-conserving pairing HACC uses
for the PM force.  Both operations are fully vectorized: the scatter is a
single ``np.bincount`` over flattened corner indices, which profiling shows
is ~10x faster than ``np.add.at`` for large particle counts.
"""

from __future__ import annotations

import numpy as np

from repro.instrument import get_registry
from repro.instrument.perfcount import CIC_FLOPS_PER_PARTICLE, cic_bytes

__all__ = [
    "cic_deposit",
    "cic_interpolate",
    "density_contrast",
    "cic_window",
    "ParticleGridCoords",
]


def _float_dtype(a) -> np.dtype:
    """float32 stays float32; everything else is promoted to float64."""
    dt = np.asarray(a).dtype
    return dt if dt in (np.float32, np.float64) else np.dtype(np.float64)


def _cic_backend(backend):
    """Resolve the kernel backend for a CIC call (default: numpy).

    Imported lazily: ``repro.shortrange`` pulls in ``grid_force`` which
    imports this module, so a top-level import would be circular.
    """
    from repro.shortrange.backends import get_backend, resolve_backend

    if backend is None:
        return get_backend("numpy")
    return resolve_backend(backend)


def _corner_data(positions: np.ndarray, n: int, box_size: float, dtype=None):
    """Base cell indices and fractional offsets for each particle."""
    dt = _float_dtype(positions) if dtype is None else np.dtype(dtype)
    pos = np.asarray(positions, dtype=dt)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError(f"positions must be (N, 3), got {pos.shape}")
    if box_size <= 0:
        raise ValueError(f"box_size must be positive, got {box_size}")
    if n < 2:
        raise ValueError(f"grid size must be >= 2, got {n}")
    scaled = np.mod(pos, dt.type(box_size)) * dt.type(n / box_size)
    # mod can return box_size for inputs just below it after scaling
    scaled = np.where(scaled >= n, scaled - dt.type(n), scaled)
    base = np.floor(scaled).astype(np.int64)
    np.clip(base, 0, n - 1, out=base)
    frac = (scaled - base).astype(dt, copy=False)
    return base, frac


class ParticleGridCoords:
    """Precomputed CIC corner indices and trilinear weights.

    One PM half-kick runs *four* CIC passes over the same positions
    (one deposit + three force-component gathers); each pass repeats
    the wrap/scale/floor index arithmetic.  Computing the 8 flattened
    corner indices and weight products once and passing the object to
    :func:`cic_deposit` / :func:`cic_interpolate` via ``coords=`` does
    that work a single time.  Corners are enumerated in the same
    ``(dx, dy, dz)`` order as the inline loops, so results match the
    uncached path.

    ``dtype`` fixes the precision of the trilinear weights; by default
    it follows the positions (float32 positions keep float32 weights —
    the mixed-precision PM path has no silent float64 upcast).
    """

    def __init__(
        self,
        positions: np.ndarray,
        n: int,
        box_size: float,
        dtype=None,
    ) -> None:
        base, frac = _corner_data(positions, n, box_size, dtype=dtype)
        self.n = int(n)
        self.box_size = float(box_size)
        self.n_particles = base.shape[0]
        one = frac.dtype.type(1.0)
        ip1 = (base + 1) % n
        flats = []
        wts = []
        for dx in (0, 1):
            ix = base[:, 0] if dx == 0 else ip1[:, 0]
            wx = (one - frac[:, 0]) if dx == 0 else frac[:, 0]
            for dy in (0, 1):
                iy = base[:, 1] if dy == 0 else ip1[:, 1]
                wy = (one - frac[:, 1]) if dy == 0 else frac[:, 1]
                for dz in (0, 1):
                    iz = base[:, 2] if dz == 0 else ip1[:, 2]
                    wz = (one - frac[:, 2]) if dz == 0 else frac[:, 2]
                    flats.append((ix * n + iy) * n + iz)
                    wts.append(wx * wy * wz)
        #: (8, N) flattened grid indices of the surrounding corners
        self.flat = np.stack(flats, axis=0)
        #: (8, N) trilinear weights (each column sums to 1)
        self.weights = np.stack(wts, axis=0)

    def check(self, n: int, box_size: float) -> None:
        if n != self.n or box_size != self.box_size:
            raise ValueError(
                f"coords built for grid ({self.n}, {self.box_size}), "
                f"requested ({n}, {box_size})"
            )


def cic_deposit(
    positions: np.ndarray,
    n: int,
    box_size: float,
    weights: np.ndarray | None = None,
    coords: ParticleGridCoords | None = None,
    dtype=None,
    backend=None,
) -> np.ndarray:
    """Deposit particle mass onto an ``n^3`` periodic grid.

    Parameters
    ----------
    positions:
        (N, 3) comoving positions (wrapped into the box internally).
    n:
        Grid points per dimension.
    box_size:
        Periodic box side length.
    weights:
        Optional per-particle masses (default 1).
    coords:
        Optional precomputed :class:`ParticleGridCoords` for these
        positions — reuses the corner index/weight computation across
        the deposit and the force gathers of one PM solve.
    dtype:
        Grid precision; ``None`` keeps float64 (the historical default,
        even for float32 positions — pass ``np.float32`` explicitly for
        a mixed-precision PM grid).
    backend:
        Kernel backend (name or instance) performing the scatter;
        ``None`` uses the NumPy reference.

    Returns
    -------
    (n, n, n) array in ``dtype`` whose sum equals the total deposited
    mass (exact mass conservation — a property test pins this down).
    """
    reg = get_registry()
    dt = np.dtype(np.float64) if dtype is None else np.dtype(dtype)
    with reg.span("cic.deposit"):
        if coords is None:
            coords = ParticleGridCoords(positions, n, box_size, dtype=dt)
        else:
            coords.check(n, box_size)
        npart = coords.n_particles
        w = (
            np.ones(npart, dtype=dt)
            if weights is None
            else np.asarray(weights, dtype=dt)
        )
        if w.shape != (npart,):
            raise ValueError(f"weights shape {w.shape} != ({npart},)")

        cw = coords.weights.astype(dt, copy=False)
        grid = _cic_backend(backend).cic_deposit(
            coords.flat, cw, w, n * n * n
        )
        reg.count("cic.deposit_particles", npart)
        reg.count("cic.flops", CIC_FLOPS_PER_PARTICLE * npart)
        reg.count("cic.bytes", cic_bytes(npart, dt.itemsize))
    return grid.reshape(n, n, n)


def cic_interpolate(
    grid: np.ndarray,
    positions: np.ndarray,
    box_size: float,
    coords: ParticleGridCoords | None = None,
    dtype=None,
    backend=None,
) -> np.ndarray:
    """Gather grid values at particle positions with CIC weights.

    The adjoint of :func:`cic_deposit` — using the identical weights makes
    the PM force momentum conserving (no self-force), which the force
    tests check by measuring the net force on isolated particles.
    ``coords`` reuses a precomputed :class:`ParticleGridCoords`;
    ``dtype`` fixes the output precision (default float64) and
    ``backend`` selects the gather implementation (default NumPy).
    """
    reg = get_registry()
    dt = np.dtype(np.float64) if dtype is None else np.dtype(dtype)
    with reg.span("cic.interpolate"):
        grid = np.asarray(grid)
        n = grid.shape[0]
        if grid.shape != (n, n, n):
            raise ValueError(f"grid must be cubic, got shape {grid.shape}")
        if coords is None:
            coords = ParticleGridCoords(positions, n, box_size, dtype=dt)
        else:
            coords.check(n, box_size)
        flat_grid = grid.reshape(-1).astype(dt, copy=False)
        cw = coords.weights.astype(dt, copy=False)
        out = _cic_backend(backend).cic_gather(flat_grid, coords.flat, cw)
        reg.count("cic.interp_particles", coords.n_particles)
        reg.count("cic.flops", CIC_FLOPS_PER_PARTICLE * coords.n_particles)
        reg.count("cic.bytes", cic_bytes(coords.n_particles, dt.itemsize))
    return out


def density_contrast(
    positions: np.ndarray,
    n: int,
    box_size: float,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Dimensionless density contrast ``delta = rho / <rho> - 1`` via CIC."""
    counts = cic_deposit(positions, n, box_size, weights)
    mean = counts.mean()
    if mean <= 0:
        raise ValueError("cannot form density contrast: zero mean density")
    return counts / mean - 1.0


def cic_window(kx, ky, kz, spacing: float):
    """Fourier transform of the CIC assignment window.

    ``W(k) = prod_i sinc^2(k_i spacing / 2)`` — the power-spectrum
    estimator divides by ``W^2`` to deconvolve both deposit and
    interpolation.
    """

    def sinc(arg):
        arg = np.asarray(arg, dtype=np.float64)
        small = np.abs(arg) < 1e-12
        safe = np.where(small, 1.0, arg)
        return np.where(small, 1.0, np.sin(safe) / safe)

    half = 0.5 * spacing
    return (sinc(kx * half) * sinc(ky * half) * sinc(kz * half)) ** 2
