"""Grid layer: CIC particle-mesh operations and the spectral Poisson solver.

This is HACC's architecture-independent long/medium-range force component
(Section II): Cloud-In-Cell deposit, the isotropizing spectral filter, the
sixth-order periodic influence function, and fourth-order Super-Lanczos
spectral differencing, composed into a single forward FFT plus one inverse
FFT per force component.
"""

from repro.grid.cic import (
    ParticleGridCoords,
    cic_deposit,
    cic_interpolate,
    density_contrast,
)
from repro.grid.filters import (
    influence_function,
    spectral_filter,
    super_lanczos_gradient,
)
from repro.grid.poisson import SpectralPoissonSolver
from repro.grid.threaded_cic import ThreadedCIC

__all__ = [
    "ParticleGridCoords",
    "cic_deposit",
    "cic_interpolate",
    "density_contrast",
    "spectral_filter",
    "influence_function",
    "super_lanczos_gradient",
    "SpectralPoissonSolver",
    "ThreadedCIC",
]
