"""The spectrally filtered particle-mesh Poisson solver.

Composition (Section II of the paper): CIC deposit -> one forward FFT ->
multiply by ``S(k) G(k)`` (filter x influence function) -> one inverse FFT
per gradient component with the Super-Lanczos kernel -> CIC interpolation
back to the particles.  "The Poisson-solve in HACC is the composition of
all the kernels above in one single Fourier transform; each component of
the potential field gradient then requires an independent FFT."

Two execution paths share the same k-space kernels:

* the **single-process path** (``numpy.fft.rfftn``), used by the
  simulation driver — double precision, as the paper requires for the
  spectral component;
* the **distributed path** over :class:`repro.fft.PencilFFT`, used by the
  scaling benchmarks and by tests that pin both paths together.

The solver returns ``-grad phi`` for ``del^2 phi = delta`` (unit
prefactor); cosmological prefactors like ``(3/2) Omega_m`` are applied by
the time stepper, keeping this layer free of unit conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cosmology.gaussian_field import fourier_grid
from repro.fft.pencil import PencilFFT
from repro.grid.cic import ParticleGridCoords, cic_deposit, cic_interpolate
from repro.instrument import get_registry
from repro.instrument import perfcount
from repro.grid.filters import (
    NOMINAL_NS,
    NOMINAL_SIGMA,
    influence_function,
    spectral_filter,
    super_lanczos_gradient,
)

__all__ = ["SpectralPoissonSolver"]


@dataclass
class SpectralPoissonSolver:
    """Filtered PM solver on an ``n^3`` periodic grid.

    Parameters
    ----------
    n:
        Grid points per dimension.
    box_size:
        Periodic box side (Mpc/h).
    sigma, ns:
        Spectral-filter parameters (grid-cell units / power).
    laplacian_order:
        Influence-function accuracy order (2, 4 or 6).
    gradient_order:
        Super-Lanczos differencing order (2 or 4).
    executor:
        Optional :class:`repro.parallel.executor.RankExecutor`.  With
        more than one worker, the CIC deposit runs privatized over
        worker chunks (:class:`repro.grid.threaded_cic.ThreadedCIC`),
        the three gradient inverse FFTs run concurrently ("each
        component of the potential field gradient then requires an
        independent FFT" — a free 3-way section), and so do the three
        CIC force gathers.  Partitioning depends only on the worker
        *count*, so equal-``workers`` runs agree bitwise across
        backends.
    dtype:
        Grid precision.  ``None`` (default) keeps the historical float64
        spectral path untouched; ``np.float32`` runs the whole PM force
        — deposit, FFTs (complex64 via ``scipy.fft`` when present),
        k-space kernels, gathers — in single precision with no silent
        upcasts.
    kernel_backend:
        Kernel backend *name* for the CIC scatter/gather passes
        (``None`` = NumPy reference).
    overlap:
        Pipeline the three gradient inverse FFTs against the per-axis
        CIC gathers (axis-x gathers while axis-y transforms) instead of
        barriering between the two phases.  Needs a parallel executor;
        scheduling only — components are independent and consumed in
        axis order, so the result is bitwise identical either way.

    Examples
    --------
    A single k-mode is solved exactly up to the discrete kernels:

    >>> import numpy as np
    >>> s = SpectralPoissonSolver(32, 1.0, sigma=0.0, ns=0)
    >>> # delta(x) = cos(2 pi x): potential -cos(2 pi x)/(2 pi)^2
    >>> x = np.arange(32) / 32.0
    >>> delta = np.cos(2 * np.pi * x)[:, None, None] * np.ones((1, 32, 32))
    >>> phi = s.potential(delta)
    >>> expected = -np.cos(2 * np.pi * x) / (2 * np.pi) ** 2
    >>> float(abs(phi[:, 0, 0] - expected).max()) < 1e-6
    True
    """

    n: int
    box_size: float
    sigma: float = NOMINAL_SIGMA
    ns: int = NOMINAL_NS
    laplacian_order: int = 6
    gradient_order: int = 4
    executor: object | None = field(default=None, repr=False, compare=False)
    dtype: object = None
    kernel_backend: str | None = None
    overlap: bool = False

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"grid size must be >= 2, got {self.n}")
        if self.box_size <= 0:
            raise ValueError(f"box_size must be positive: {self.box_size}")
        self.spacing = self.box_size / self.n
        self._dtype = (
            np.dtype(np.float64)
            if self.dtype is None
            else np.dtype(self.dtype)
        )
        kx, ky, kz = fourier_grid(self.n, self.box_size)
        # k-space kernels are *computed* in float64 (they are set-up
        # cost, accuracy is free) and stored in the working precision
        self._filter_green = (
            spectral_filter(kx, ky, kz, self.spacing, self.sigma, self.ns)
            * influence_function(
                kx, ky, kz, self.spacing, self.laplacian_order
            )
        ).astype(self._dtype, copy=False)
        # the force is -grad phi: the gradient kernels are stored
        # pre-negated so each step spends one multiply per component
        # instead of a negate + multiply temporary pair.  They are
        # imaginary (i k), so the working precision maps to a complex
        # dtype (complex64 on the float32 path).
        cplx = np.complex64 if self._dtype == np.float32 else np.complex128
        self._neg_grad_kernels = tuple(
            (-super_lanczos_gradient(
                kc, self.spacing, self.gradient_order
            )).astype(cplx, copy=False)
            for kc in (kx, ky, kz)
        )
        self._threaded_cic = None

    def _parallel(self) -> bool:
        ex = self.executor
        return ex is not None and getattr(ex, "parallel", False)

    # ------------------------------------------------------------------
    # grid-level operations
    # ------------------------------------------------------------------
    def potential_k(self, delta_k: np.ndarray) -> np.ndarray:
        """Apply ``S(k) G(k)`` to an rfft-layout density spectrum."""
        if delta_k.shape != self._filter_green.shape:
            raise ValueError(
                f"delta_k shape {delta_k.shape} != rfft grid "
                f"{self._filter_green.shape}"
            )
        reg = get_registry()
        with reg.span("poisson.filter"):
            out = delta_k * self._filter_green
        reg.count("poisson.filter_points", delta_k.size)
        self._count_filter_work(reg, delta_k.size)
        return out

    def potential(self, delta: np.ndarray) -> np.ndarray:
        """Filtered potential ``phi`` with ``del^2 phi = delta``."""
        self._check_grid(delta)
        phi_k = self.potential_k(self._forward(delta))
        return self._inverse(phi_k)

    def force_grids(self, delta: np.ndarray) -> tuple[np.ndarray, ...]:
        """Force components ``-d phi / d x_i`` on the grid.

        One forward transform, three independent inverse transforms —
        exactly the paper's FFT count per long-range force evaluation.
        """
        self._check_grid(delta)
        phi_k = self.potential_k(self._forward(delta))
        if self._parallel():
            # the three components are independent inverse transforms;
            # map_inprocess runs them concurrently under the thread
            # backend and falls back to the ordered loop otherwise
            # (grids are too heavy to ship across processes)
            return tuple(
                self.executor.map_inprocess(
                    self._grad_component,
                    [(k, phi_k) for k in self._neg_grad_kernels],
                    label="fft.gradient",
                )
            )
        return tuple(
            self._grad_component((kernel, phi_k))
            for kernel in self._neg_grad_kernels
        )

    def _grad_component(self, payload) -> np.ndarray:
        """One gradient component: filter multiply + inverse FFT."""
        kernel, phi_k = payload
        reg = get_registry()
        with reg.span("poisson.filter"):
            grad_k = kernel * phi_k
        self._count_filter_work(reg, phi_k.size)
        return self._inverse(grad_k)

    # ------------------------------------------------------------------
    # instrumented transforms
    # ------------------------------------------------------------------
    def _fft_module(self):
        """``scipy.fft`` for the float32 path (it preserves single
        precision: float32 -> complex64), ``numpy.fft`` for float64
        (the historical, bitwise-stable default).  Falls back to
        ``numpy.fft`` + an explicit downcast when scipy is absent."""
        if self._dtype == np.float32:
            try:
                import scipy.fft as sfft

                return sfft
            except ImportError:  # pragma: no cover - scipy is baked in
                pass
        return np.fft

    def _complex_itemsize(self) -> int:
        """Bytes per spectral element: complex64 on the f32 path."""
        return 8 if self._dtype == np.float32 else 16

    def _count_filter_work(self, reg, npoints: int) -> None:
        """Charge the spectral multiply into the fft work bucket."""
        reg.count("fft.flops", perfcount.filter_flops(npoints))
        reg.count(
            "fft.bytes",
            perfcount.filter_bytes(npoints, self._complex_itemsize()),
        )

    def _count_fft_work(self, reg, npoints: int) -> None:
        """Charge one N-point transform (5 N log2 N butterflies)."""
        reg.count("fft.flops", perfcount.fft_flops(npoints))
        reg.count(
            "fft.bytes",
            perfcount.fft_bytes(npoints, self._complex_itemsize()),
        )

    def _forward(self, delta: np.ndarray) -> np.ndarray:
        reg = get_registry()
        fft = self._fft_module()
        with reg.span("fft.forward"):
            out = fft.rfftn(delta.astype(self._dtype, copy=False))
            if self._dtype == np.float32 and out.dtype != np.complex64:
                out = out.astype(np.complex64)  # numpy.fft fallback
        reg.count("fft.forward_points", delta.size)
        self._count_fft_work(reg, delta.size)
        return out

    def _inverse(self, field_k: np.ndarray) -> np.ndarray:
        reg = get_registry()
        fft = self._fft_module()
        with reg.span("fft.inverse"):
            out = fft.irfftn(field_k, s=(self.n,) * 3, axes=(0, 1, 2))
            out = out.astype(self._dtype, copy=False)
        reg.count("fft.inverse_points", out.size)
        self._count_fft_work(reg, out.size)
        return out

    # ------------------------------------------------------------------
    # particle-level operation (the full PM force)
    # ------------------------------------------------------------------
    def accelerations(
        self,
        positions: np.ndarray,
        weights: np.ndarray | None = None,
        *,
        return_delta: bool = False,
    ):
        """PM accelerations at the particle positions.

        Deposit -> solve -> interpolate.  Returns an (N, 3) array of
        ``-grad phi`` with ``del^2 phi = delta``; multiply by the
        cosmological prefactor to get physical accelerations.

        The CIC corner indices/weights are computed once and shared by
        the deposit and the three force gathers (four passes, one index
        computation).
        """
        dt = self._dtype
        coords = ParticleGridCoords(
            positions, self.n, self.box_size, dtype=dt
        )
        if self._parallel():
            counts = self._deposit_parallel(positions, weights)
        else:
            counts = cic_deposit(
                positions, self.n, self.box_size, weights,
                coords=coords,
                dtype=dt, backend=self.kernel_backend,
            )
        # the mean reduces ~n^3 values: accumulate it in float64 even on
        # the float32 path (a scalar, so this is not an array upcast)
        mean = counts.mean(dtype=np.float64)
        if mean <= 0:
            raise ValueError("empty particle distribution")
        delta = counts / counts.dtype.type(mean) - counts.dtype.type(1.0)
        if self._parallel() and self.overlap:
            comps = self._pipelined_force(delta, positions, coords)
        else:
            forces = self.force_grids(delta)
            if self._parallel():
                comps = self.executor.map_inprocess(
                    self._gather_component,
                    [(f, positions, coords) for f in forces],
                    label="cic.gather",
                )
            else:
                comps = [
                    cic_interpolate(
                        f, positions, self.box_size, coords=coords,
                        dtype=dt, backend=self.kernel_backend,
                    )
                    for f in forces
                ]
        acc = np.stack(comps, axis=1)
        if return_delta:
            return acc, delta
        return acc

    def _pipelined_force(self, delta, positions, coords) -> list:
        """Gradient FFTs pipelined against the per-axis CIC gathers.

        The barriered path finishes all three inverse transforms before
        the first gather starts.  Here all three transforms are
        submitted at once and each axis's gather is dispatched the
        moment its force grid lands, so axis-x gathers while axis-y is
        still transforming (overlap path 3 of the async pipeline).
        Handles are consumed in axis order and the axes are independent,
        so the stacked result is bitwise identical to the sync path.
        """
        ex = self.executor
        phi_k = self.potential_k(self._forward(delta))
        with ex.wave("pm.pipeline") as wave:
            grads = [
                wave.submit(
                    self._grad_component, (kernel, phi_k),
                    rank=axis, label="fft.gradient", inprocess=True,
                )
                for axis, kernel in enumerate(self._neg_grad_kernels)
            ]
            gathers = []
            for axis, handle in enumerate(grads):
                force = handle.result()
                gathers.append(
                    wave.submit(
                        self._gather_component, (force, positions, coords),
                        rank=axis, label="cic.gather", inprocess=True,
                    )
                )
            return [h.result() for h in gathers]

    def _gather_component(self, payload) -> np.ndarray:
        """One CIC force gather (reads the shared precomputed coords)."""
        force, positions, coords = payload
        return cic_interpolate(
            force, positions, self.box_size, coords=coords,
            dtype=self._dtype, backend=self.kernel_backend,
        )

    def _deposit_parallel(self, positions, weights) -> np.ndarray:
        """Privatized worker-chunked CIC deposit through the executor.

        The partition depends only on the worker count and the reduction
        order is fixed, so the grid is identical across executor
        backends at equal ``workers`` (and equals the serial deposit to
        float64 round-off — the reduction reassociates the sums).
        """
        from repro.grid.threaded_cic import ThreadedCIC

        tc = self._threaded_cic
        if tc is None or tc.n_workers != self.executor.n_workers:
            tc = ThreadedCIC(
                self.executor.n_workers,
                strategy="privatize",
                executor=self.executor,
                dtype=None if self.dtype is None else self._dtype,
                kernel_backend=self.kernel_backend,
            )
            self._threaded_cic = tc
        return tc.deposit(positions, self.n, self.box_size, weights)

    # ------------------------------------------------------------------
    # distributed path (pencil FFT)
    # ------------------------------------------------------------------
    def force_grids_distributed(
        self, delta: np.ndarray, pencil: PencilFFT
    ) -> tuple[np.ndarray, ...]:
        """Same as :meth:`force_grids` but through the pencil FFT.

        Uses full complex transforms (the distributed transform has no
        rfft specialization, matching HACC's complex pencil FFT); the
        result agrees with the single-process path to ~1e-12, which the
        integration tests assert.
        """
        self._check_grid(delta)
        if pencil.n != self.n:
            raise ValueError(
                f"pencil grid {pencil.n} != solver grid {self.n}"
            )
        kx, ky, kz = fourier_grid(self.n, self.box_size, rfft=False)
        fg = spectral_filter(
            kx, ky, kz, self.spacing, self.sigma, self.ns
        ) * influence_function(kx, ky, kz, self.spacing, self.laplacian_order)
        full = (self.n,) * 3
        grads = tuple(
            np.broadcast_to(
                super_lanczos_gradient(kc, self.spacing, self.gradient_order),
                full,
            )
            for kc in (kx, ky, kz)
        )

        blocks = pencil.scatter(delta.astype(np.complex128))
        spect = pencil.forward(blocks)
        # x-pencil layout: rank (i,j) holds full kx, ky block i, kz block j
        ny2, nz2 = self.n // pencil.pr, self.n // pencil.pc
        out = []
        for kernel in grads:
            phi_blocks = []
            for rank, blk in enumerate(spect):
                i, j = divmod(rank, pencil.pc)
                sl = (
                    slice(None),
                    slice(i * ny2, (i + 1) * ny2),
                    slice(j * nz2, (j + 1) * nz2),
                )
                phi_blocks.append(blk * (fg[sl] * -kernel[sl]))
            comp = pencil.gather(pencil.inverse(phi_blocks), "z-pencil")
            out.append(comp.real.copy())
        return tuple(out)

    # ------------------------------------------------------------------
    def _check_grid(self, grid: np.ndarray) -> None:
        if grid.shape != (self.n,) * 3:
            raise ValueError(
                f"grid shape {grid.shape} != {(self.n,) * 3}"
            )
