"""The 1-D sheet model: exact N-body gravity in one dimension.

Infinite parallel mass sheets are the 1-D analogue of N-body particles;
their mutual acceleration is *independent of distance*, so between
crossings the field at a sheet depends only on how many sheets lie on
each side.  With a uniform compensating background (the same mean-density
subtraction the 3-D code applies through ``delta``), the acceleration
field in our units (``4 pi G rho_bar = 1``, background density 1) is

.. math:: g(x) = x - \\frac{L}{N}\\,C(x) + K,

piecewise linear with slope +1 (the background) and a drop of ``L/N`` at
every sheet; ``K`` zeroes the mean field.  A sheet feels the field with
its own jump split symmetrically (``C = rank + 1/2``).

This gives a second, completely independent discretization of the 1-D
Vlasov-Poisson problem to cross-validate the phase-space solver — the
same multi-method strategy the paper applies with P3M vs PPTreePM.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SheetModel"]


class SheetModel:
    """N self-gravitating sheets in a periodic 1-D box.

    Parameters
    ----------
    positions:
        (N,) initial sheet positions in [0, L).
    velocities:
        (N,) initial velocities.
    box_size:
        Periodic extent L.
    """

    def __init__(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        box_size: float,
    ) -> None:
        x = np.asarray(positions, dtype=np.float64)
        v = np.asarray(velocities, dtype=np.float64)
        if x.ndim != 1 or x.shape != v.shape or x.size < 2:
            raise ValueError("positions/velocities must be matching 1-D arrays")
        if box_size <= 0:
            raise ValueError(f"box_size must be positive: {box_size}")
        self.box_size = float(box_size)
        self.x = np.mod(x, box_size)
        self.v = v.copy()
        self.time = 0.0

    @classmethod
    def cold_perturbation(
        cls,
        n: int,
        box_size: float,
        amplitude: float,
        mode: int = 1,
    ) -> "SheetModel":
        """Zel'dovich-style cold ICs matching
        :meth:`VlasovPoisson1D.set_cold_perturbation`.

        Lattice sheets displaced by ``psi = -(amplitude/k) sin(k q)`` so
        that ``delta ~= amplitude cos(k q)`` to first order; velocities
        set to the growing mode of the static-background instability,
        ``v = psi sinh'(0)... = 0`` (we start at the cosh(t) minimum:
        at rest, like the grid solver).
        """
        if not 0 <= amplitude < 1:
            raise ValueError(f"amplitude must lie in [0, 1): {amplitude}")
        q = (np.arange(n) + 0.5) * (box_size / n)
        k = 2 * np.pi * mode / box_size
        psi = -(amplitude / k) * np.sin(k * q)
        return cls(q + psi, np.zeros(n), box_size)

    # ------------------------------------------------------------------
    def acceleration(self) -> np.ndarray:
        """Exact per-sheet acceleration (mean-field zeroed)."""
        n = self.x.size
        order = np.argsort(self.x, kind="stable")
        ranks = np.empty(n)
        ranks[order] = np.arange(n) + 0.5
        g = self.x - self.box_size * ranks / n
        return g - g.mean()

    def step(self, dt: float) -> None:
        """Leapfrog (kick-drift-kick) step."""
        if dt <= 0:
            raise ValueError(f"dt must be positive: {dt}")
        self.v += 0.5 * dt * self.acceleration()
        self.x = np.mod(self.x + dt * self.v, self.box_size)
        self.v += 0.5 * dt * self.acceleration()
        self.time += dt

    def run(self, t_final: float, dt: float) -> None:
        if t_final < self.time:
            raise ValueError("t_final is in the past")
        while self.time < t_final - 1e-12:
            self.step(min(dt, t_final - self.time))

    # ------------------------------------------------------------------
    def density_contrast(self, n_bins: int) -> np.ndarray:
        """Binned delta(x) (CIC in 1-D for smoothness)."""
        if n_bins < 2:
            raise ValueError(f"n_bins must be >= 2: {n_bins}")
        scaled = self.x / self.box_size * n_bins
        base = np.floor(scaled).astype(np.int64) % n_bins
        frac = scaled - np.floor(scaled)
        counts = np.bincount(
            base, weights=1 - frac, minlength=n_bins
        ) + np.bincount((base + 1) % n_bins, weights=frac, minlength=n_bins)
        return counts / counts.mean() - 1.0

    def mode_amplitude(self, mode: int = 1, n_bins: int = 64) -> float:
        """|delta_k| of a spatial mode (growth tracking)."""
        delta = self.density_contrast(n_bins)
        delta_k = np.fft.rfft(delta) / n_bins
        return 2.0 * abs(delta_k[mode])
