"""Semi-Lagrangian Vlasov-Poisson solver on a 1+1D phase-space grid.

Solves Eq. (1)-(2) of the paper reduced to one spatial dimension on a
static background:

.. math:: \\partial_t f + v\\,\\partial_x f + g(x)\\,\\partial_v f = 0,
          \\qquad \\partial_x g = -\\delta,

with ``delta = rho/rho_bar - 1`` and units ``4 pi G rho_bar = 1`` (cold
linear perturbations grow like ``cosh t``).  The classic Cheng-Knorr
splitting alternates exact shear advections:

1. half-step in x:  ``f(x, v) <- f(x - v dt/2, v)``;
2. full kick in v:  ``f(x, v) <- f(x, v - g(x) dt)``;
3. half-step in x.

Each shear is a 1-D interpolation along one axis (periodic in x, clamped
in v with mass-loss accounting), vectorized over the other axis.

The per-step cost is ``O(nx nv)``; the 3+3-D analogue would be
``O(n^6)`` — the dimensionality wall that makes tracer particles (HACC's
approach) the only viable path at survey scale.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VlasovPoisson1D"]


class VlasovPoisson1D:
    """Phase-space distribution on an ``nx x nv`` grid.

    Parameters
    ----------
    nx, nv:
        Grid points in position and velocity.
    box_size:
        Periodic spatial extent L.
    v_max:
        Velocity grid spans [-v_max, v_max]; mass advected past the edge
        is clipped (tracked in :attr:`mass_lost`).
    """

    def __init__(
        self,
        nx: int,
        nv: int,
        box_size: float,
        v_max: float,
    ) -> None:
        if nx < 4 or nv < 4:
            raise ValueError(f"grid too small: {nx} x {nv}")
        if box_size <= 0 or v_max <= 0:
            raise ValueError("box_size and v_max must be positive")
        self.nx, self.nv = int(nx), int(nv)
        self.box_size = float(box_size)
        self.v_max = float(v_max)
        self.x = np.arange(nx) * (box_size / nx)
        self.v = np.linspace(-v_max, v_max, nv)
        self.dx = box_size / nx
        self.dv = self.v[1] - self.v[0]
        self.f = np.zeros((nx, nv))
        self.time = 0.0
        self.mass_lost = 0.0
        k = np.fft.rfftfreq(nx, d=1.0 / nx) * (2 * np.pi / box_size)
        self._inv_ik = np.zeros_like(k, dtype=np.complex128)
        self._inv_ik[1:] = 1.0 / (1j * k[1:])

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def set_cold_perturbation(
        self, amplitude: float, mode: int = 1, sigma_v: float | None = None
    ) -> None:
        """Cold (single-stream) sinusoidal density perturbation.

        ``rho(x) = 1 + amplitude cos(2 pi mode x / L)`` at rest, with a
        narrow Gaussian velocity profile of width ``sigma_v`` (default:
        2 velocity cells) standing in for the cold delta function.
        """
        if not 0 <= amplitude < 1:
            raise ValueError(f"amplitude must lie in [0, 1): {amplitude}")
        if mode < 1:
            raise ValueError(f"mode must be >= 1: {mode}")
        sv = 2.0 * self.dv if sigma_v is None else float(sigma_v)
        rho = 1.0 + amplitude * np.cos(
            2 * np.pi * mode * self.x / self.box_size
        )
        gauss = np.exp(-0.5 * (self.v / sv) ** 2)
        gauss /= gauss.sum() * self.dv
        self.f = rho[:, None] * gauss[None, :]
        self.time = 0.0
        self.mass_lost = 0.0

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def density(self) -> np.ndarray:
        """rho(x) = integral of f over v."""
        return self.f.sum(axis=1) * self.dv

    def density_contrast(self) -> np.ndarray:
        rho = self.density()
        return rho / rho.mean() - 1.0

    def total_mass(self) -> float:
        return float(self.f.sum() * self.dv * self.dx)

    def acceleration(self) -> np.ndarray:
        """g(x) with dg/dx = -delta (zero mean)."""
        delta_k = np.fft.rfft(self.density_contrast())
        return np.fft.irfft(-delta_k * self._inv_ik, n=self.nx)

    # ------------------------------------------------------------------
    # advection kernels
    # ------------------------------------------------------------------
    def _shift_x(self, dt: float) -> None:
        """f(x, v) <- f(x - v dt, v): periodic linear interpolation,
        one fractional roll per velocity column."""
        shift = self.v * dt / self.dx  # cells, per velocity
        idx = np.arange(self.nx)
        base = np.floor(shift).astype(np.int64)
        frac = shift - base
        for j in range(self.nv):
            src = (idx - base[j]) % self.nx
            src_m1 = (src - 1) % self.nx
            col = self.f[:, j]
            self.f[:, j] = (1 - frac[j]) * col[src] + frac[j] * col[src_m1]

    def _shift_v(self, dt: float) -> None:
        """f(x, v) <- f(x, v - g(x) dt): clamped linear interpolation."""
        g = self.acceleration()
        shift = g * dt / self.dv
        jdx = np.arange(self.nv, dtype=np.float64)
        before = self.f.sum()
        for i in range(self.nx):
            src = jdx - shift[i]
            self.f[i, :] = np.interp(
                src, jdx, self.f[i, :], left=0.0, right=0.0
            )
        self.mass_lost += (before - self.f.sum()) * self.dv * self.dx

    # ------------------------------------------------------------------
    def step(self, dt: float) -> None:
        """One Strang-split step."""
        if dt <= 0:
            raise ValueError(f"dt must be positive: {dt}")
        self._shift_x(0.5 * dt)
        self._shift_v(dt)
        self._shift_x(0.5 * dt)
        self.time += dt

    def run(self, t_final: float, dt: float) -> None:
        """Advance to ``t_final`` in steps of ``dt`` (last step shortened)."""
        if t_final < self.time:
            raise ValueError("t_final is in the past")
        while self.time < t_final - 1e-12:
            self.step(min(dt, t_final - self.time))

    def mode_amplitude(self, mode: int = 1) -> float:
        """|delta_k| of the requested spatial mode (growth tracking)."""
        delta_k = np.fft.rfft(self.density_contrast()) / self.nx
        return 2.0 * abs(delta_k[mode])
