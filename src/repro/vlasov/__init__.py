"""Direct Vlasov-Poisson integration (1+1D): the governing equation.

Cosmic structure formation is the Vlasov-Poisson system (Eqs. 1-2 of the
paper) — "very difficult to solve directly because of its high
dimensionality", which is *why* N-body tracer sampling exists.  This
subpackage makes that argument concrete by actually solving the 1+1
dimensional problem two independent ways:

* :class:`VlasovPoisson1D` — direct phase-space integration on an
  (x, v) grid with Strang-split semi-Lagrangian advection;
* :class:`SheetModel` — the 1-D N-body analogue (infinite parallel
  sheets), whose inter-particle force is exact.

Their mutual agreement on collapse problems validates the tracer-particle
approach at the level of the underlying PDE, and the grid solver's cost
scaling (``nx * nv`` per step, and hopeless in 6-D) demonstrates the
dimensionality wall the paper cites.

Units: non-expanding background with ``4 pi G rho_bar = 1``, so linear
perturbations grow as ``cosh(t)`` (Jeans instability of a cold medium).
"""

from repro.vlasov.phase_space import VlasovPoisson1D
from repro.vlasov.sheet import SheetModel

__all__ = ["VlasovPoisson1D", "SheetModel"]
