#!/usr/bin/env python
"""Cluster halos and sub-halos (paper Figs. 2 and 11).

Evolves a box to z=0, finds FOF halos, decomposes the most massive one
into sub-halos (Fig. 11's cluster with colored sub-halos), produces the
Fig. 2-style zoom ladder around it, and compares the measured halo mass
function to the Sheth-Tormen prediction.

Run:  python examples/cluster_halos.py [n_per_dim]
"""

import sys
import time

import numpy as np

from repro import HACCSimulation, LinearPower, SimulationConfig, WMAP7
from repro.analysis import (
    find_subhalos,
    fof_halos,
    measured_mass_function,
    sheth_tormen,
    zoom_series,
)
from repro.constants import particle_mass


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    config = SimulationConfig(
        box_size=80.0,
        n_per_dim=n,
        z_initial=25.0,
        z_final=0.0,
        n_steps=16,
        n_subcycles=3,
        backend="treepm",
        step_spacing="loga",
        seed=11,
    )
    print(f"running {config.n_particles} particles to z=0 ...")
    t0 = time.perf_counter()
    sim = HACCSimulation(config)
    sim.run()
    print(f"done in {time.perf_counter() - t0:.1f} s")

    pos = sim.particles.positions
    mp = particle_mass(WMAP7.omega_m, config.box_size, config.n_particles)
    cat = fof_halos(pos, config.box_size, b=0.2, min_members=10,
                    momenta=sim.particles.momenta)
    print(f"\nFOF: {cat.n_halos} halos; particle mass {mp:.2e} Msun/h")

    if cat.n_halos == 0:
        print("no halos formed at this resolution; increase n_per_dim")
        return

    # --- Fig. 11: the most massive halo and its sub-halos ------------------
    halo = 0
    print(f"\nmost massive halo: {cat.sizes[halo]} particles "
          f"= {cat.sizes[halo] * mp:.2e} Msun/h at "
          f"{np.round(cat.centers[halo], 1)} Mpc/h")
    subs = find_subhalos(cat, pos, halo=halo, linking_fraction=0.4,
                         min_members=10, momenta=sim.particles.momenta)
    print(f"sub-halo decomposition ({len(subs)} structures):")
    for i, s in enumerate(subs[:8]):
        tag = "main (central)" if i == 0 else f"satellite {i}"
        voff = np.linalg.norm(s.mean_velocity - cat.mean_velocities[halo])
        print(f"   {tag:15s}: {s.n_members:5d} particles, "
              f"|v - v_host| = {voff:.3f}")

    # --- Fig. 2: zoom ladder / dynamic range -------------------------------
    sizes = [config.box_size, config.box_size / 4, config.box_size / 16]
    levels = zoom_series(pos, config.box_size, cat.centers[halo], sizes, n=32)
    print("\nzoom ladder around the halo (Fig. 2 construction):")
    for lv in levels:
        print(f"   {lv.size:6.1f} Mpc/h window: {lv.n_particles:6d} particles, "
              f"peak/mean surface density = {lv.max_over_mean:8.1f}")
    print(f"   formal force resolution ~ {config.spacing() / 10:.3f} Mpc/h; "
          f"global dynamic range ~ "
          f"{config.box_size / (config.spacing() / 10):.0f}")

    # --- mass function vs Sheth-Tormen -------------------------------------
    mf = measured_mass_function(cat, mp, n_bins=6)
    st = sheth_tormen(LinearPower(WMAP7), mf.mass)
    print("\nhalo mass function dn/dlnM [(Mpc/h)^-3]:")
    print("   mass [Msun/h]   measured     Sheth-Tormen   N_halos")
    for m, dn, dn_st, c in zip(mf.mass, mf.dn_dlnm, st, mf.counts):
        if c == 0:
            continue
        print(f"   {m:12.3e} {dn:12.3e} {dn_st:12.3e} {c:6d}")


if __name__ == "__main__":
    main()
