#!/usr/bin/env python
"""Quickstart: a small end-to-end HACC-style simulation.

Generates Zel'dovich initial conditions for a WMAP7-like cosmology, evolves
them with the full PM + RCB-TreePM force stack and the sub-cycled SKS
stepper, then measures the matter power spectrum and finds halos — the same
pipeline as the paper's science runs, at laptop scale.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import HACCSimulation, LinearPower, SimulationConfig, WMAP7
from repro.analysis import fof_halos, matter_power_spectrum
from repro.constants import particle_mass


def main() -> None:
    config = SimulationConfig(
        box_size=64.0,       # Mpc/h
        n_per_dim=16,        # 4096 particles (scale up as you like)
        z_initial=25.0,      # the paper's benchmark start
        z_final=0.0,
        n_steps=12,
        n_subcycles=3,       # paper: nc = 5-10 for production
        backend="treepm",    # the BG/Q algorithm (try "p3m" or "pm")
        seed=42,
    )
    print(f"box {config.box_size} Mpc/h, {config.n_particles} particles, "
          f"backend={config.backend}")

    t0 = time.perf_counter()
    sim = HACCSimulation(config)
    sim.run(callback=lambda s: print(f"  step -> z = {s.redshift:6.2f}"))
    dt = time.perf_counter() - t0
    print(f"evolved to z = {sim.redshift:.2f} in {dt:.1f} s "
          f"({sim.interaction_count():.2e} pair interactions)")

    # --- power spectrum vs linear theory ---------------------------------
    ps = matter_power_spectrum(
        sim.particles.positions, config.box_size, config.grid(),
        subtract_shot_noise=False,
    )
    linear = LinearPower(WMAP7)
    print("\n   k [h/Mpc]    P_sim      P_linear   ratio")
    for i in range(0, len(ps.k), 2):
        lin = float(linear(ps.k[i]))
        print(f"   {ps.k[i]:8.3f} {ps.power[i]:10.1f} {lin:10.1f} "
              f"{ps.power[i] / lin:7.2f}")
    print("   (ratio > 1 at high k = nonlinear clustering, the Fig. 10 signature)")

    # --- halos ------------------------------------------------------------
    cat = fof_halos(
        sim.particles.positions, config.box_size,
        b=0.2, min_members=10, momenta=sim.particles.momenta,
    )
    mp = particle_mass(WMAP7.omega_m, config.box_size, config.n_particles)
    print(f"\nFOF (b=0.2): {cat.n_halos} halos with >= 10 particles; "
          f"particle mass {mp:.2e} Msun/h")
    for h in range(min(cat.n_halos, 5)):
        print(f"   halo {h}: {cat.sizes[h]:5d} particles "
              f"({cat.sizes[h] * mp:.2e} Msun/h) at "
              f"{np.round(cat.centers[h], 1)}")


if __name__ == "__main__":
    main()
