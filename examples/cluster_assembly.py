#!/usr/bin/env python
"""Halo assembly history: mergers, accretion, and density profiles.

Section V: clusters "form very late and are hence sensitive probes of the
late-time acceleration", and the simulations let "the statistics of halo
mergers and halo build-up through sub-halo accretion be studied with
excellent statistics".  This example runs a small box with intermediate
snapshots (checkpointing along the way, as a production campaign would),
builds the ID-based merger history of the final halos, and fits an NFW
profile to the most massive one.

Run:  python examples/cluster_assembly.py [n_per_dim]
"""

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import HACCSimulation, SimulationConfig
from repro.analysis import build_merger_history, fit_nfw, fof_halos, radial_profile
from repro.constants import particle_mass
from repro.cosmology import WMAP7
from repro.io import load_checkpoint, save_checkpoint

SNAPSHOT_REDSHIFTS = (1.0, 0.5, 0.0)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    config = SimulationConfig(
        box_size=72.0,
        n_per_dim=n,
        z_initial=25.0,
        z_final=0.0,
        n_steps=16,
        n_subcycles=2,
        backend="treepm",
        step_spacing="loga",
        seed=7,
    )
    print(f"running {config.n_particles} particles, box "
          f"{config.box_size} Mpc/h ...")
    sim = HACCSimulation(config)

    snapshots = []  # (z, positions, ids)
    pending = sorted(SNAPSHOT_REDSHIFTS, reverse=True)
    ckpt_dir = Path(tempfile.mkdtemp(prefix="hacc_ckpt_"))

    def on_step(s: HACCSimulation) -> None:
        while pending and s.redshift <= pending[0]:
            z = pending.pop(0)
            snapshots.append(
                (z, s.particles.positions.copy(), s.particles.ids.copy())
            )
            path = save_checkpoint(ckpt_dir / f"z{z:.1f}", s)
            print(f"  snapshot + checkpoint at z={z:.1f} -> {path.name}")

    t0 = time.perf_counter()
    sim.run(callback=on_step)
    print(f"done in {time.perf_counter() - t0:.1f} s")

    # --- checkpoint integrity: restore the z=0.5 state and compare ----
    restored = load_checkpoint(ckpt_dir / "z0.5.npz")
    restored.run()
    dev = np.abs(
        restored.particles.positions - sim.particles.positions
    ).max()
    print(f"\ncheckpoint restart reproduces the run to {dev:.1e} Mpc/h")

    # --- merger history ------------------------------------------------
    catalogs, id_arrays = [], []
    for z, pos, ids in snapshots:
        cat = fof_halos(pos, config.box_size, b=0.2, min_members=8)
        catalogs.append(cat)
        id_arrays.append(ids)
        print(f"z={z:3.1f}: {cat.n_halos} halos "
              f"(largest: {cat.sizes[0] if cat.n_halos else 0} particles)")

    if all(c.n_halos for c in catalogs):
        hist = build_merger_history(catalogs, id_arrays)
        final = catalogs[-1]
        print("\nassembly of the final halos:")
        for h in range(min(final.n_halos, 5)):
            n_prog = hist.n_mergers.get(h, 0)
            growth = hist.mass_growth.get(h)
            tag = (f"{n_prog} progenitors"
                   + (", merger!" if n_prog >= 2 else ""))
            gtxt = f", x{growth:.2f} mass growth" if growth else ""
            print(f"   halo {h} ({final.sizes[h]} particles): {tag}{gtxt}")

    # --- NFW profile of the most massive halo --------------------------
    final = catalogs[-1]
    if final.n_halos:
        _, pos0, _ = snapshots[-1]
        center = final.centers[0]
        prof = radial_profile(
            pos0, center, box_size=config.box_size,
            r_min=0.15, r_max=3.0, n_bins=10,
        )
        mp = particle_mass(WMAP7.omega_m, config.box_size, config.n_particles)
        try:
            fit = fit_nfw(prof, r_vir=2.0, min_count=3)
            print(f"\nNFW fit of the most massive halo "
                  f"({final.sizes[0] * mp:.2e} Msun/h):")
            print(f"   r_s = {fit.r_s:.2f} Mpc/h, concentration "
                  f"c = {fit.concentration:.1f}, rms log residual "
                  f"{fit.rms_log_residual:.2f}")
        except ValueError as exc:
            print(f"\nNFW fit skipped ({exc}); increase n_per_dim")


if __name__ == "__main__":
    main()
