#!/usr/bin/env python
"""Evolution of the matter fluctuation power spectrum (paper Fig. 10).

Runs a full TreePM simulation from z=25 to z=0 and records P(k) at the six
redshifts plotted in the paper (z = 5.5, 3.0, 1.9, 0.9, 0.4, 0.0).  The
low-k modes grow linearly; the high-k tail departs from linear theory —
"at large wavenumbers it is highly nonlinear, and cannot be obtained by
any method other than direct simulation."

The power history is saved as an .npz next to the paper's own practice of
storing "the mass fluctuation power spectrum at 10 intermediate
snapshots".

Run:  python examples/power_spectrum_evolution.py [n_per_dim]
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro import HACCSimulation, LinearPower, SimulationConfig, WMAP7
from repro.analysis import matter_power_spectrum
from repro.io import save_power_history

#: the redshift frames of Fig. 10
FIG10_REDSHIFTS = [5.5, 3.0, 1.9, 0.9, 0.4, 0.0]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    config = SimulationConfig(
        box_size=100.0,
        n_per_dim=n,
        z_initial=25.0,
        z_final=0.0,
        n_steps=20,
        n_subcycles=3,
        backend="treepm",
        step_spacing="loga",
        seed=2012,
    )
    sim = HACCSimulation(config)
    linear = LinearPower(WMAP7)

    targets = sorted(FIG10_REDSHIFTS, reverse=True)
    next_target = 0
    spectra, redshifts = [], []

    def measure(label: float) -> None:
        ps = matter_power_spectrum(
            sim.particles.positions,
            config.box_size,
            config.grid(),
            subtract_shot_noise=False,
        )
        spectra.append(ps)
        redshifts.append(label)
        print(f"  measured P(k) at z = {label:4.1f} "
              f"(sim z = {sim.redshift:5.2f})")

    print(f"evolving {config.n_particles} particles, box "
          f"{config.box_size} Mpc/h ...")
    t0 = time.perf_counter()

    def on_step(s: HACCSimulation) -> None:
        nonlocal next_target
        while next_target < len(targets) and s.redshift <= targets[next_target]:
            measure(targets[next_target])
            next_target += 1

    sim.run(callback=on_step)
    print(f"done in {time.perf_counter() - t0:.1f} s\n")

    # --- the Fig. 10 table: log10 P(k) per redshift -----------------------
    ks = spectra[0].k
    header = "   log10(k)  " + "  ".join(f"z={z:4.1f}" for z in redshifts)
    print(header)
    for i in range(0, len(ks), 2):
        row = f"   {np.log10(ks[i]):8.2f}  "
        row += "  ".join(f"{np.log10(max(s.power[i], 1e-10)):6.2f}"
                         for s in spectra)
        print(row)

    # --- growth check at the fundamental mode -----------------------------
    print("\n growth of the fundamental mode vs linear theory:")
    base = spectra[0]
    for z, s in zip(redshifts, spectra):
        d = WMAP7.growth_factor(1.0 / (1.0 + z))
        d0 = WMAP7.growth_factor(1.0 / (1.0 + redshifts[0]))
        expected = (d / d0) ** 2
        measured = s.power[0] / base.power[0]
        print(f"   z={z:4.1f}: measured x{measured:6.2f}, linear x{expected:6.2f}")

    out = Path(__file__).resolve().parent / "power_history.npz"
    save_power_history(out, redshifts, spectra,
                       metadata={"box": config.box_size, "n": n})
    print(f"\nsaved power history to {out}")


if __name__ == "__main__":
    main()
