#!/usr/bin/env python
"""The pencil-decomposed FFT and particle overloading at work.

Demonstrates HACC's parallel substrate over the in-process rank VM:

1. a 2-D pencil-decomposed 3-D FFT across a 4x2 rank grid, verified
   against the single-process transform, with per-phase traffic;
2. the slab decomposition's Nrank < N ceiling (why the pencil FFT was
   written — Section IV.A);
3. the distributed Poisson solve matching the single-process solver;
4. particle overloading: active/passive roles, replica memory overhead
   (the paper's ~10% estimate) and a refresh after movement.

Run:  python examples/distributed_fft_demo.py
"""

import numpy as np

from repro.cosmology import WMAP7, make_initial_conditions
from repro.fft import PencilFFT, SlabFFT
from repro.grid.poisson import SpectralPoissonSolver
from repro.parallel import DomainDecomposition, OverloadExchange


def pencil_demo() -> None:
    n, pr, pc = 16, 4, 2
    print(f"--- pencil FFT: {n}^3 grid over a {pr}x{pc} rank grid ---")
    rng = np.random.default_rng(0)
    field = rng.standard_normal((n, n, n))

    fft = PencilFFT(n, pr, pc)
    spectra = fft.forward(fft.scatter(field))
    err = np.abs(
        fft.gather(spectra, "x-pencil") - np.fft.fftn(field)
    ).max()
    print(f"max deviation from numpy.fft.fftn: {err:.2e}")
    stats = fft.comm.stats
    print(f"transpose traffic: {stats.messages} messages, "
          f"{stats.bytes / 1024:.1f} KiB")
    for tag, (msgs, nbytes) in sorted(stats.by_tag.items()):
        print(f"   {tag:18s}: {msgs:3d} msgs, {nbytes / 1024:8.1f} KiB")
    print(f"analytic volume: {fft.transpose_bytes_per_rank() * fft.size / 1024:.1f}"
          " KiB  (matches)")

    print("\nslab ceiling: a 16^3 FFT supports at most 16 slab ranks;")
    try:
        SlabFFT(16, 32)
    except ValueError as exc:
        print(f"   SlabFFT(16, 32) -> ValueError: {exc}")
    print(f"   PencilFFT allows up to N^2 = {16**2} ranks.")


def poisson_demo() -> None:
    print("\n--- distributed Poisson solve ---")
    n, box = 16, 32.0
    rng = np.random.default_rng(1)
    delta = rng.standard_normal((n, n, n))
    delta -= delta.mean()
    solver = SpectralPoissonSolver(n, box)
    local = solver.force_grids(delta)
    fft = PencilFFT(n, 2, 2)
    dist = solver.force_grids_distributed(delta, fft)
    err = max(np.abs(a - b).max() for a, b in zip(local, dist))
    print(f"distributed vs single-process force grids: max |diff| = {err:.2e}")


def overload_demo() -> None:
    print("\n--- particle overloading (Fig. 4) ---")
    box = 100.0
    ics = make_initial_conditions(
        WMAP7, n_per_dim=16, box_size=box, z_init=25.0, seed=4
    )
    decomp = DomainDecomposition(box, (2, 2, 2))
    depth = 5.0
    exchange = OverloadExchange(decomp, depth)
    domains = exchange.distribute(ics.positions, ics.momenta)

    total_active = sum(d.n_active for d in domains)
    total_passive = sum(d.n_passive for d in domains)
    factor = decomp.overload_volume_factor(depth)
    print(f"{decomp.n_ranks} ranks, overload depth {depth} Mpc/h")
    print(f"active copies : {total_active} (= every particle exactly once)")
    print(f"passive copies: {total_passive} "
          f"({100 * total_passive / total_active:.1f}% memory overhead; "
          f"geometric expectation {100 * (factor - 1):.1f}%)")

    # move everything and refresh — roles switch, nothing is lost
    for dom in domains:
        dom.positions += 3.0
    refreshed = exchange.refresh(domains)
    ids = np.concatenate([d.ids[d.active] for d in refreshed])
    print(f"after drift + refresh: {len(np.unique(ids))} unique active ids "
          f"(conserved), refresh traffic "
          f"{exchange.comm.stats.tag_bytes('overload.refresh') / 1024:.1f} KiB")


if __name__ == "__main__":
    pencil_demo()
    poisson_demo()
    overload_demo()
