#!/usr/bin/env python
"""Dark-energy model signatures — the paper's science program in miniature.

"With HACC, we aim to systematically study dark energy model space at
extreme scales and ... deliver quantitative predictions of unprecedented
accuracy" (Section V).  This example compares a LambdaCDM model against
an evolving dark-energy model (CPL w0 = -0.9, wa = 0.2) through the full
prediction chain:

1. expansion and linear growth histories;
2. linear and HALOFIT nonlinear power spectra;
3. actual N-body runs of both cosmologies from identical white noise,
   showing the growth difference emerge dynamically;
4. the weak-lensing convergence spectrum each model predicts.

Run:  python examples/dark_energy_signatures.py [n_per_dim]
"""

import sys
import time

import numpy as np

from repro import HACCSimulation, SimulationConfig
from repro.analysis import convergence_power, matter_power_spectrum
from repro.cosmology import WCDM_EXAMPLE, WMAP7, HalofitPower, LinearPower

LCDM, WCDM = WMAP7, WCDM_EXAMPLE


def growth_comparison() -> None:
    print("=== expansion and growth histories ===")
    print("   z     E(a) LCDM  E(a) wCDM   D LCDM   D wCDM")
    for z in (2.0, 1.0, 0.5, 0.0):
        a = 1.0 / (1.0 + z)
        print(f"   {z:3.1f}  {float(LCDM.efunc(a)):9.3f}  "
              f"{float(WCDM.efunc(a)):9.3f}  {LCDM.growth_factor(a):7.3f}  "
              f"{WCDM.growth_factor(a):7.3f}")
    d_ratio = WCDM.growth_factor(0.5) / LCDM.growth_factor(0.5)
    print(f"growth-history difference at z=1: {100 * (d_ratio - 1):.2f}% "
          "(the kind of signature surveys must resolve)")


def power_comparison() -> None:
    print("\n=== linear and nonlinear P(k) ratios (wCDM / LCDM, z=0.5) ===")
    lin_l, lin_w = LinearPower(LCDM), LinearPower(WCDM)
    nl_l, nl_w = HalofitPower(lin_l), HalofitPower(lin_w)
    k = np.array([0.05, 0.2, 0.5, 1.0, 2.0])
    a = 1.0 / 1.5
    lin_ratio = lin_w(k, a) / lin_l(k, a)
    nl_ratio = nl_w(k, a) / nl_l(k, a)
    print("   k [h/Mpc]   linear   HALOFIT")
    for kk, lr, nr in zip(k, lin_ratio, nl_ratio):
        print(f"   {kk:8.2f}  {lr:7.3f}  {nr:7.3f}")
    print("   (nonlinear collapse amplifies the dark-energy signal at high k)")


def simulation_comparison(n: int) -> None:
    print(f"\n=== dynamical check: {n}^3-particle runs of both models ===")
    results = {}
    for name, cosmo in (("LCDM", LCDM), ("wCDM", WCDM)):
        cfg = SimulationConfig(
            box_size=150.0,
            n_per_dim=n,
            z_initial=25.0,
            z_final=0.5,
            n_steps=12,
            backend="pm",          # growth test: PM captures it
            step_spacing="loga",
            seed=314,              # identical white noise for both
            cosmology=cosmo,
        )
        t0 = time.perf_counter()
        sim = HACCSimulation(cfg)
        sim.run()
        ps = matter_power_spectrum(
            sim.particles.positions, cfg.box_size, cfg.grid(),
            subtract_shot_noise=False,
        )
        results[name] = ps
        print(f"   {name}: evolved to z={sim.redshift:.1f} in "
              f"{time.perf_counter() - t0:.1f} s")

    measured = np.mean(results["wCDM"].power[:4] / results["LCDM"].power[:4])
    a = 1 / 1.5
    # identical seeds cancel cosmic variance; both models share the z=0
    # sigma8 normalization, so the low-k ratio reduces to the growth
    # ratio squared (up to stepping and mild nonlinearity)
    expected = (WCDM.growth_factor(a) / LCDM.growth_factor(a)) ** 2
    print(f"   measured wCDM/LCDM low-k power ratio: {measured:.4f}")
    print(f"   linear-theory expectation:            {expected:.4f}")


def lensing_comparison() -> None:
    print("\n=== weak-lensing convergence spectra (z_source = 1) ===")
    ells = np.array([100.0, 500.0, 2000.0])
    c_l = convergence_power(HalofitPower(LinearPower(LCDM)), ells)
    c_w = convergence_power(HalofitPower(LinearPower(WCDM)), ells)
    print("   ell    l(l+1)C/2pi LCDM    wCDM     ratio")
    for l, a, b in zip(ells, c_l, c_w):
        band_a = l * (l + 1) * a / (2 * np.pi)
        band_b = l * (l + 1) * b / (2 * np.pi)
        print(f"   {l:6.0f}  {band_a:.3e}  {band_b:.3e}  {b / a:.3f}")
    print("   (percent-level shifts over decades of ell: the Section I "
          "accuracy requirement)")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    growth_comparison()
    power_comparison()
    simulation_comparison(n)
    lensing_comparison()
