#!/usr/bin/env python
"""Why N-body?  Solving the governing equation directly (in 1+1D).

Eq. (1)-(2) of the paper — the Vlasov-Poisson system — is "very
difficult to solve directly because of its high dimensionality", which is
the entire reason tracer-particle codes like HACC exist.  This example
makes the argument concrete:

1. integrates the 1+1D problem directly on a phase-space grid;
2. integrates the same problem with the exact 1-D N-body (sheet model);
3. shows the two agree through collapse;
4. extrapolates the direct method's cost to 3+3 dimensions;
5. renders the phase-space spiral as a PPM image — shell crossing and
   multistreaming, "the development of structure on ever finer scales".

Run:  python examples/vlasov_validation.py
"""

import time
from pathlib import Path

import numpy as np

from repro.analysis.render import render_density, write_ppm
from repro.vlasov import SheetModel, VlasovPoisson1D


def main() -> None:
    amp, box = 0.05, 1.0
    vp = VlasovPoisson1D(128, 256, box, v_max=0.8)
    vp.set_cold_perturbation(amp)
    sm = SheetModel.cold_perturbation(4000, box, amp)

    print("=== linear growth: delta(t)/delta(0) vs cosh(t) ===")
    print("    t    Vlasov   N-body   cosh(t)")
    a0_v, a0_s = vp.mode_amplitude(), sm.mode_amplitude()
    for t in (0.5, 1.0, 1.5, 2.0):
        vp.run(t, 0.02)
        sm.run(t, 0.02)
        print(f"  {t:4.1f}  {vp.mode_amplitude() / a0_v:7.2f}  "
              f"{sm.mode_amplitude() / a0_s:7.2f}  {np.cosh(t):7.2f}")
    print("  (cosh growth holds until collapse goes nonlinear at t ~ 2)")

    dv = vp.density_contrast()
    ds = sm.density_contrast(128)
    err = np.abs(dv - ds).max() / np.abs(ds).max()
    print(f"\ndensity-profile agreement of the two methods at t=2.0: "
          f"{100 * (1 - err):.0f}%")

    # push through shell crossing (at amp cosh(t) ~ 1, i.e. t ~ 3.7)
    vp.run(4.3, 0.02)
    sm.run(4.3, 0.02)
    dv = vp.density_contrast()
    print(f"peak overdensity at t=4.3: {dv.max():.1f} "
          "(collapse complete)")

    # multistreaming: after shell crossing a cold (zero-dispersion) flow
    # develops several velocity branches at the same position — measure
    # it in the sheet model as the velocity spread inside the peak cell
    peak_cell = int(np.argmax(dv))
    x_lo = peak_cell / vp.nx
    in_cell = (sm.x >= x_lo) & (sm.x < x_lo + 4.0 / vp.nx)
    spread = sm.v[in_cell].max() - sm.v[in_cell].min() if in_cell.any() else 0
    print(f"velocity spread through the density peak: {spread:.3f} "
          "(was 0 in the cold ICs: multistreaming after shell crossing — "
          "Section I's 'complex multistreaming on ever finer scales')")

    out = Path(__file__).resolve().parent / "phase_space.ppm"
    img = render_density(vp.f.T[::-1], cmap="heat", floor=1e-4)
    write_ppm(out, img)
    print(f"phase-space portrait written to {out}")

    print("\n=== the dimensionality wall ===")
    for d, label in ((2, "1+1D (this demo)"), (4, "2+2D"), (6, "3+3D")):
        cells = 128**d
        print(f"  {label:18s}: {cells:.2e} cells at 128/axis")
    survey = 1e4**6
    print(f"  3+3D at the paper's 1e4+ dynamic range: {survey:.0e} cells "
          f"-> impossible; 3.6e12 tracer particles: feasible (the paper)")


if __name__ == "__main__":
    main()
