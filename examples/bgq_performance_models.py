#!/usr/bin/env python
"""The BG/Q performance models: regenerate the paper's headline numbers.

Prints the calibrated machine-model view of the paper's evaluation:
the Fig. 5 kernel threading curves, the Table I FFT timings, and the
Table II/III full-code scaling, each next to the published values.
(The per-table benches under benchmarks/ do the same with pass/fail
tolerances; this example is the human-readable tour.)

Run:  python examples/bgq_performance_models.py
"""

import numpy as np

from repro.machine import (
    BGQSystem,
    DistributedFFTModel,
    ForceKernelModel,
    FullCodeModel,
)


def kernel_tour() -> None:
    print("=== Fig. 5: force-kernel threading model ===")
    model = ForceKernelModel()
    print(f"arithmetic ceiling: {100 * model.arithmetic_ceiling:.1f}% "
          "(168 of 208 possible flops)")
    lists = np.array([100, 500, 1500, 2500, 5000])
    print("   neighbors:", "  ".join(f"{n:6d}" for n in lists))
    for r, t in [(16, 4), (8, 8), (2, 32), (16, 1), (4, 4)]:
        curve = 100 * model.peak_fraction(lists.astype(float), r, t)
        print(f"   {r:2d}r x {t:2d}t :", "  ".join(f"{v:5.1f}%" for v in curve))
    print("   (4 threads/core saturate the 6-cycle FP latency; 1 thread "
          "leaves the pipeline ~2/3 idle)")


def fft_tour() -> None:
    print("\n=== Table I: distributed FFT timings (calibrated model) ===")
    model = DistributedFFTModel.calibrated()
    print(f"effective FFT rate {model.rate_flops_per_rank / 1e9:.2f} "
          f"GFlops/rank, per-hop link efficiency {model.link_efficiency:.3f}")
    print(f"{'block':18s} {'N':>6s} {'ranks':>7s} {'paper':>8s} {'model':>8s}")
    for row in model.table1():
        print(f"{row['block']:18s} {row['n']:6d} {row['ranks']:7d} "
              f"{row['paper_s']:8.3f} {row['model_s']:8.3f}")


def fullcode_tour() -> None:
    print("\n=== Tables II/III: full-code scaling model ===")
    model = FullCodeModel.calibrated()
    h = model.headline()
    print(f"96-rack headline: paper {h['paper_pflops']:.2f} PFlops @ "
          f"{h['paper_peak_percent']:.1f}%  |  model "
          f"{h['model_pflops']:.2f} PFlops @ {h['model_peak_percent']:.1f}%")
    seq = BGQSystem.racks(96)
    print(f"(96 racks = {seq.cores:,} cores = {seq.peak_pflops:.2f} PFlops peak)")

    print("\nweak scaling (Table II): cores x time/substep/particle [s]")
    for d in model.table2():
        p, q = d["paper"], d["model"]
        print(f"   {p.cores:9,d} cores: paper {p.cores_time_substep:.2e} "
              f"model {q.cores_time_substep:.2e}  "
              f"mem {p.memory_mb_rank:4.0f}/{q.memory_mb_rank:4.0f} MB")

    print("\nstrong scaling (Table III, 1024^3 particles):")
    for d in model.table3():
        p, q = d["paper"], d["model"]
        print(f"   {p.cores:6d} cores: t/substep/particle paper "
              f"{p.time_substep_particle:.2e} model "
              f"{q.time_substep_particle:.2e}  overload x{q.overload_factor:.2f}")
    print("   (the growing overload factor is the paper's strong-scaling "
          "'abuse' cost)")


if __name__ == "__main__":
    kernel_tour()
    fft_tour()
    fullcode_tour()
